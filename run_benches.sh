#!/bin/bash
# Regenerates every table/figure in order of importance.
#
# Tables go to bench_output.txt; per-sweep host timings are appended to
# bench_timings.jsonl as one JSON object per line. DWS_JOBS controls the
# sweep worker pool (DWS_JOBS=1 reproduces the historical serial harness).
cd /root/repo
: > bench_output.txt
: > bench_timings.jsonl
# fig13_meld is the advisory melded-cycle-delta row: static melding vs DWS
# vs both on the meldable kernel variants, normalized to Conv.
for fig in table1_characterization fig13_schemes fig13_meld fig07_branch_dws fig11_branchlimited \
           fig19_energy fig16_l2lat fig17_dsize fig15_assoc fig20_sched_slots \
           fig21_wst_size fig14_heatmap fig01_motivation fig18_width_depth ablation extension_throttle; do
  echo "=== bench: $fig ===" | tee -a bench_output.txt
  t0=$(date +%s.%N)
  cargo bench -p dws-bench --bench "$fig" 2>>bench_progress.log | tee -a bench_output.txt
  status=${PIPESTATUS[0]}
  t1=$(date +%s.%N)
  dt=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f", b - a }')
  printf '{"sweep": "%s", "host_seconds": %s, "workers": "%s", "scale": "%s", "status": %d}\n' \
    "$fig" "$dt" "${DWS_JOBS:-auto}" "${DWS_SCALE:-bench}" "$status" \
    >> bench_timings.jsonl
done
echo "=== bench: scaling_wpus ===" | tee -a bench_output.txt
# The scaling study runs 32/64/128-WPU machines, each three times (Conv,
# DWS serial, DWS threaded) — restrict the benchmark set to keep its wall
# clock in line with the single-figure sweeps. DWS_THREADS picks the
# intra-run thread count (default: min(cores, 4)).
t0=$(date +%s.%N)
DWS_BENCHMARKS="${DWS_SCALING_BENCHMARKS:-Merge,FFT}" \
  cargo bench -p dws-bench --bench scaling_wpus 2>>bench_progress.log | tee -a bench_output.txt
status=${PIPESTATUS[0]}
t1=$(date +%s.%N)
dt=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f", b - a }')
printf '{"sweep": "scaling_wpus", "host_seconds": %s, "threads": "%s", "scale": "%s", "status": %d}\n' \
  "$dt" "${DWS_THREADS:-auto}" "${DWS_SCALE:-bench}" "$status" >> bench_timings.jsonl
echo "=== bench: simspeed ===" | tee -a bench_output.txt
# Keep the previous throughput report so perf-diff can show the trend.
[ -f BENCH_simspeed.json ] && cp BENCH_simspeed.json BENCH_simspeed.prev.json
cargo run --release --bin simspeed 2>>bench_progress.log | tee -a bench_output.txt
if [ -f BENCH_simspeed.prev.json ]; then
  echo "=== simspeed trend (perf-diff, advisory) ===" | tee -a bench_output.txt
  cargo run --release --bin perf-diff -- \
    BENCH_simspeed.prev.json BENCH_simspeed.json 2>>bench_progress.log \
    | tee -a bench_output.txt
  printf '{"sweep": "simspeed_trend", "status": %d}\n' "${PIPESTATUS[0]}" >> bench_timings.jsonl
fi
echo "=== bench: micro (criterion) ===" | tee -a bench_output.txt
cargo bench -p dws-bench --bench micro 2>>bench_progress.log | tee -a bench_output.txt
echo "=== fuzz throughput (advisory) ===" | tee -a bench_output.txt
# Correctness fuzzing lives in ci.sh (25-seed smoke, determinism-checked);
# here we only time a wider campaign so kernel-generation + differential-
# battery throughput is trended alongside simulator throughput. A non-zero
# status (7 = real oracle divergence) is recorded, not fatal.
t0=$(date +%s.%N)
cargo run -q --release --bin dws-cli -- fuzz --seeds 100 \
  2>>bench_progress.log | tee -a bench_output.txt
status=${PIPESTATUS[0]}
t1=$(date +%s.%N)
dt=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f", b - a }')
printf '{"sweep": "fuzz_100", "host_seconds": %s, "status": %d}\n' \
  "$dt" "$status" >> bench_timings.jsonl
echo ALL_BENCHES_DONE | tee -a bench_output.txt
