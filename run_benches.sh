#!/bin/bash
# Regenerates every table/figure in order of importance.
cd /root/repo
: > bench_output.txt
for fig in table1_characterization fig13_schemes fig07_branch_dws fig11_branchlimited \
           fig19_energy fig16_l2lat fig17_dsize fig15_assoc fig20_sched_slots \
           fig21_wst_size fig14_heatmap fig01_motivation fig18_width_depth ablation extension_throttle; do
  echo "=== bench: $fig ===" | tee -a bench_output.txt
  cargo bench -p dws-bench --bench "$fig" 2>>bench_progress.log | tee -a bench_output.txt
done
echo "=== bench: micro (criterion) ===" | tee -a bench_output.txt
cargo bench -p dws-bench --bench micro 2>>bench_progress.log | tee -a bench_output.txt
echo ALL_BENCHES_DONE | tee -a bench_output.txt
