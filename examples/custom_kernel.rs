//! Builds a custom data-parallel kernel with the IR DSL and runs it under
//! Conv and DWS — the workflow a user follows to study their own workload.
//!
//! The kernel is a histogram-style scatter-gather with a data-dependent
//! branch: each thread walks its slice of an input array, looks values up
//! in a scattered table, and conditionally accumulates — producing both
//! branch and memory divergence.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use dws::core::Policy;
use dws::isa::{CondOp, KernelBuilder, Operand, VecMemory};
use dws::kernels::KernelSpec;
use dws::sim::{Machine, SimConfig};

const N: i64 = 16_384; // input elements
const TABLE: i64 = 32_768; // lookup table entries (256 KB)

fn input_value(i: i64) -> i64 {
    if i % 2 == 0 {
        (i * 7919) % 97 // hot: a handful of table lines
    } else {
        (i * 7919) % 100_000 // cold: scattered over 256 KB
    }
}

/// in[0..N] at word 0, table at N, out[tid] at N + TABLE.
/// `nthreads` parameterizes the verifier (the grid-stride slices depend
/// on the machine's thread count).
fn build_kernel(nthreads: u64) -> KernelSpec {
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let i = b.reg();
    let v = b.reg();
    let idx = b.reg();
    let acc = b.reg();
    let a = b.reg();
    b.li(acc, 0);
    b.for_range(i, tid, Operand::Imm(N), ntid, |b| {
        b.addr(a, Operand::Imm(0), Operand::Reg(i), 8);
        b.load(v, a, 0);
        // idx = hash(v) into the table — a scattered gather
        b.mul(idx, Operand::Reg(v), Operand::Imm(2654435761));
        b.rem(idx, Operand::Reg(idx), Operand::Imm(TABLE));
        b.if_then(CondOp::Lt, Operand::Reg(idx), Operand::Imm(0), |b| {
            b.add(idx, Operand::Reg(idx), Operand::Imm(TABLE));
        });
        b.addr(a, Operand::Imm(N * 8), Operand::Reg(idx), 8);
        b.load(v, a, 0);
        // data-dependent accumulate (divergent branch)
        b.if_then(CondOp::Gt, Operand::Reg(v), Operand::Imm(500), |b| {
            b.add(acc, Operand::Reg(acc), Operand::Reg(v));
        });
    });
    b.addr(a, Operand::Imm((N + TABLE) * 8), Operand::Reg(tid), 8);
    b.store(Operand::Reg(acc), a, 0);
    b.halt();
    let program = b.build().expect("kernel is well-formed");

    let mut memory = VecMemory::new(((N + TABLE + 1024) * 8) as u64);
    for i in 0..N {
        // Even elements hash into a small hot region of the table; odd
        // elements scatter across all of it. Lanes therefore mix hits and
        // misses — the memory divergence DWS exploits.
        memory.write_i64((i * 8) as u64, input_value(i));
    }
    for t in 0..TABLE {
        memory.write_i64(((N + t) * 8) as u64, (t * 31) % 1000);
    }

    // Host reference for verification.
    let input: Vec<i64> = (0..N).map(input_value).collect();
    let table: Vec<i64> = (0..TABLE).map(|t| (t * 31) % 1000).collect();
    KernelSpec::new("custom-histogram", program, memory, move |mem| {
        let nt = nthreads;
        for t in 0..nt {
            let mut acc = 0i64;
            let mut i = t as i64;
            while i < N {
                let mut idx = (input[i as usize].wrapping_mul(2654435761)) % TABLE;
                if idx < 0 {
                    idx += TABLE;
                }
                let v = table[idx as usize];
                if v > 500 {
                    acc += v;
                }
                i += nt as i64;
            }
            let got = mem.read_i64(((N + TABLE + t as i64) * 8) as u64);
            if got != acc {
                return Err(format!("thread {t}: got {got}, expected {acc}"));
            }
        }
        Ok(())
    })
}

fn main() {
    {
        let spec = build_kernel(16);
        println!(
            "custom kernel: {} instructions, {} subdividable branches",
            spec.program.len(),
            spec.program
                .branches()
                .filter(|(_, i)| i.subdividable)
                .count()
        );
    }
    // DWS's headline value is *intra-warp* latency tolerance: it matters
    // most when there are few warps to interleave (paper Section 6.4).
    for warps in [1usize, 2, 4] {
        let spec = build_kernel(16 * warps as u64);
        let make = |p: Policy| SimConfig::paper(p).with_warps(warps).with_wpus(1);
        let conv = Machine::run(&make(Policy::conventional()), &spec).unwrap();
        spec.verify(&conv.memory).expect("Conv result correct");
        let dws = Machine::run(&make(Policy::dws_revive()), &spec).unwrap();
        spec.verify(&dws.memory).expect("DWS result correct");
        println!(
            "{warps} warp(s): Conv {:>8} cyc ({:>2.0}% mem-stalled) | DWS {:>8} cyc \
             ({:>2.0}% mem-stalled, {} splits) -> speedup {:.2}x",
            conv.cycles,
            100.0 * conv.mem_stall_fraction(),
            dws.cycles,
            100.0 * dws.mem_stall_fraction(),
            dws.wpu.mem_splits.get() + dws.wpu.branch_splits.get() + dws.wpu.revive_splits.get(),
            dws.speedup_over(&conv)
        );
    }
}
