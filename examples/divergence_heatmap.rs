//! Renders the paper's Figure 14 for one benchmark: an ASCII heat map of
//! per-thread D-cache misses (rows = warps, columns = lanes, per WPU),
//! showing that the divergence pattern is dynamic and benchmark-specific.
//!
//! ```text
//! cargo run --release --example divergence_heatmap [-- <benchmark>]
//! ```

use dws::core::Policy;
use dws::kernels::{Benchmark, Scale};
use dws::sim::{Machine, SimConfig};

const RAMP: [char; 8] = [' ', '.', ':', '-', 'o', 'O', '@', '#'];

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|name| {
            Benchmark::ALL
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(&name))
        })
        .unwrap_or(Benchmark::Fft);
    let spec = bench.build(Scale::Bench, 42);
    let r = Machine::run(&SimConfig::paper(Policy::conventional()), &spec).unwrap();
    spec.verify(&r.memory).unwrap();

    println!(
        "per-thread D-cache misses — {} (rows: warps, cols: lanes)",
        spec.name
    );
    for (wpu, map) in r.per_thread_misses.iter().enumerate() {
        let max = map.iter().flatten().copied().max().unwrap_or(0).max(1);
        println!("\nWPU {wpu} (max {max} misses/thread)");
        for (w, row) in map.iter().enumerate() {
            let cells: String = row
                .iter()
                .map(|&m| RAMP[((m * (RAMP.len() as u64 - 1) + max / 2) / max) as usize])
                .collect();
            println!("  warp {w} |{cells}|");
        }
    }
    println!(
        "\n(uneven shading = memory divergence: some lanes of a warp miss\n\
         far more than their neighbors, stalling the whole warp under the\n\
         conventional policy — the latency DWS recovers)"
    );
}
