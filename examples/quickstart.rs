//! Quickstart: run one benchmark under the conventional baseline and under
//! dynamic warp subdivision, verify both, and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dws::core::Policy;
use dws::kernels::{Benchmark, Scale};
use dws::sim::{Machine, SimConfig};

fn main() {
    let spec = Benchmark::Merge.build(Scale::Bench, 42);
    println!(
        "benchmark: {} ({} instructions)",
        spec.name,
        spec.program.len()
    );

    let conv_cfg = SimConfig::paper(Policy::conventional());
    let dws_cfg = SimConfig::paper(Policy::dws_revive());

    let conv = Machine::run(&conv_cfg, &spec).expect("Conv run completes");
    spec.verify(&conv.memory).expect("Conv result is correct");
    let dws = Machine::run(&dws_cfg, &spec).expect("DWS run completes");
    spec.verify(&dws.memory).expect("DWS result is correct");

    println!("\n{:>28} {:>12} {:>12}", "", "Conv", "DWS.ReviveSplit");
    println!("{:>28} {:>12} {:>12}", "cycles", conv.cycles, dws.cycles);
    println!(
        "{:>28} {:>12.1}% {:>11.1}%",
        "time waiting for memory",
        100.0 * conv.mem_stall_fraction(),
        100.0 * dws.mem_stall_fraction()
    );
    println!(
        "{:>28} {:>12.2} {:>12.2}",
        "avg SIMD width",
        conv.avg_simd_width(),
        dws.avg_simd_width()
    );
    println!(
        "{:>28} {:>12.2} {:>12.2}",
        "avg MLP (in-flight misses)",
        conv.avg_mlp(),
        dws.avg_mlp()
    );
    println!(
        "{:>28} {:>12.3} {:>12.3}",
        "energy (mJ)",
        conv.energy.total() * 1e3,
        dws.energy.total() * 1e3
    );
    println!(
        "\nDWS speedup: {:.2}x   energy: {:.0}% of Conv",
        dws.speedup_over(&conv),
        100.0 * dws.energy_ratio_over(&conv)
    );
}
