; saxpy with a data-dependent clamp:
;   for (i = tid; i < 4096; i += ntid)
;     y[i] = max(0, 2.5 * x[i] + y[i])
; layout: x at byte 0, y at byte 32768 (4096 f64 words each)
        mov   r2, r0          ; i = tid
loop:   bge   r2, 4096, end
        mul   r3, r2, 8       ; &x[i]
        ld    r4, [r3]
        fmul  r4, r4, 2.5
        ld    r5, [r3+32768]  ; y[i]
        fadd  r4, r4, r5
        ; clamp negative results to zero (divergent branch)
        setfge r6, r4, 0.0
        bne   r6, 0, store
        lif   r4, 0.0
store:  st    r4, [r3+32768]
        add   r2, r2, r1      ; i += ntid
        jmp   loop
end:    halt
