//! Compares every scheduling policy on one benchmark — a command-line
//! mini version of the paper's Figure 13 row. The nine simulations run in
//! parallel through `SweepRunner` (set `DWS_JOBS=1` to force serial).
//!
//! ```text
//! cargo run --release --example policy_comparison [-- <benchmark> [scale]]
//! # e.g.  cargo run --release --example policy_comparison -- Merge bench
//! ```

use dws::core::Policy;
use dws::kernels::{Benchmark, Scale};
use dws::sim::{SimConfig, SweepRunner};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .get(1)
        .and_then(|name| {
            Benchmark::ALL
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(name))
        })
        .unwrap_or(Benchmark::Merge);
    let scale = match args.get(2).map(String::as_str) {
        Some("test") => Scale::Test,
        Some("paper") => Scale::Paper,
        _ => Scale::Bench,
    };
    let spec = Arc::new(bench.build(scale, 42));
    println!("benchmark: {}  ({:?})", spec.name, scale);

    let policies = [
        Policy::conventional(),
        Policy::dws_branch_stack(),
        Policy::dws_branch_only(),
        Policy::dws_mem_only(),
        Policy::dws_aggress(),
        Policy::dws_lazy(),
        Policy::dws_revive(),
        Policy::slip(),
        Policy::slip_branch_bypass(),
    ];
    let mut sweep = SweepRunner::new();
    for policy in policies {
        sweep.add(policy.paper_name(), SimConfig::paper(policy), &spec);
    }
    let results = sweep.run();

    let mut base = None;
    println!(
        "\n{:<24} {:>10} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "policy", "cycles", "speedup", "busy%", "mem%", "width", "splits", "merges"
    );
    for outcome in &results {
        let r = outcome.result.as_ref().expect("run completes");
        outcome.spec.verify(&r.memory).expect("correct result");
        let b = *base.get_or_insert(r.cycles);
        let splits = r.wpu.branch_splits.get() + r.wpu.mem_splits.get() + r.wpu.revive_splits.get();
        let merges = r.wpu.pc_merges.get() + r.wpu.stack_merges.get() + r.wpu.slip_merges.get();
        println!(
            "{:<24} {:>10} {:>7.2}x {:>6.1}% {:>6.1}% {:>7.2} {:>8} {:>8}",
            outcome.label,
            r.cycles,
            b as f64 / r.cycles as f64,
            100.0 * r.busy_fraction(),
            100.0 * r.mem_stall_fraction(),
            r.avg_simd_width(),
            splits,
            merges,
        );
    }
}
