//! Measures simulator throughput (host seconds per simulated Mcycle).
use dws::core::Policy;
use dws::kernels::{Benchmark, Scale};
use dws::sim::{Machine, SimConfig};
use std::time::Instant;

fn main() {
    for bench in [Benchmark::Merge, Benchmark::Fft, Benchmark::Svm] {
        let spec = bench.build(Scale::Bench, 42);
        for policy in [Policy::conventional(), Policy::dws_revive()] {
            let cfg = SimConfig::paper(policy);
            let t0 = Instant::now();
            let r = Machine::run(&cfg, &spec).unwrap();
            let dt = t0.elapsed().as_secs_f64();
            println!(
                "{:8} {:16} cycles={:9} host={:6.2}s -> {:.2} Mcyc/s, {:.2} Minst/s",
                spec.name,
                policy.paper_name(),
                r.cycles,
                dt,
                r.cycles as f64 / dt / 1e6,
                r.wpu.warp_insts.get() as f64 / dt / 1e6
            );
        }
    }
}
