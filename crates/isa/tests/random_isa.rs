//! Randomized tests of the IR semantics and CFG analysis, driven by the
//! vendored deterministic PRNG (plus explicit edge cases that a random
//! stream is unlikely to hit).

use dws_engine::rng::Rng64;
use dws_isa::cfg::RECONV_NONE;
use dws_isa::interp::{eval_alu, eval_un};
use dws_isa::{AluOp, CondOp, KernelBuilder, Operand, UnOp};

/// Random i64 pairs plus the boundary values where wrapping arithmetic bites.
fn i64_pairs(seed: u64, n: usize) -> Vec<(i64, i64)> {
    let mut rng = Rng64::new(seed);
    let edges = [i64::MIN, -1, 0, 1, i64::MAX];
    let mut out: Vec<(i64, i64)> = edges
        .iter()
        .flat_map(|&a| edges.iter().map(move |&b| (a, b)))
        .collect();
    out.extend((0..n).map(|_| (rng.next_u64() as i64, rng.next_u64() as i64)));
    out
}

#[test]
fn add_sub_round_trip() {
    for (a, b) in i64_pairs(1, 1000) {
        let sum = eval_alu(AluOp::Add, a as u64, b as u64);
        let back = eval_alu(AluOp::Sub, sum, b as u64);
        assert_eq!(back as i64, a);
    }
}

#[test]
fn div_rem_identity() {
    for (a, b) in i64_pairs(2, 1000) {
        if b == 0 || (a == i64::MIN && b == -1) {
            continue; // totalized wrapping edges, covered elsewhere
        }
        let q = eval_alu(AluOp::Div, a as u64, b as u64) as i64;
        let r = eval_alu(AluOp::Rem, a as u64, b as u64) as i64;
        assert_eq!(q.wrapping_mul(b).wrapping_add(r), a, "{a} / {b}");
    }
}

#[test]
fn division_by_zero_is_total() {
    for (a, _) in i64_pairs(3, 200) {
        assert_eq!(eval_alu(AluOp::Div, a as u64, 0), 0);
        assert_eq!(eval_alu(AluOp::Rem, a as u64, 0), 0);
    }
}

#[test]
fn min_max_partition() {
    for (a, b) in i64_pairs(4, 1000) {
        let lo = eval_alu(AluOp::Min, a as u64, b as u64) as i64;
        let hi = eval_alu(AluOp::Max, a as u64, b as u64) as i64;
        assert!(lo <= hi);
        assert!((lo == a && hi == b) || (lo == b && hi == a));
    }
}

#[test]
fn float_ops_match_host() {
    let mut rng = Rng64::new(5);
    for _ in 0..1000 {
        let a = rng.range_f64(-1e12, 1e12);
        let b = rng.range_f64(-1e12, 1e12);
        let fa = a.to_bits();
        let fb = b.to_bits();
        assert_eq!(f64::from_bits(eval_alu(AluOp::FAdd, fa, fb)), a + b);
        assert_eq!(f64::from_bits(eval_alu(AluOp::FMul, fa, fb)), a * b);
        assert_eq!(f64::from_bits(eval_un(UnOp::FNeg, fa)), -a);
        assert_eq!(f64::from_bits(eval_un(UnOp::FAbs, fa)), a.abs());
    }
}

#[test]
fn not_is_involutive() {
    let mut rng = Rng64::new(6);
    for _ in 0..1000 {
        let a = rng.next_u64();
        assert_eq!(eval_un(UnOp::Not, eval_un(UnOp::Not, a)), a);
    }
}

#[test]
fn cond_trichotomy() {
    for (a, b) in i64_pairs(7, 1000) {
        let (ua, ub) = (a as u64, b as u64);
        let lt = CondOp::Lt.eval(ua, ub);
        let eq = CondOp::Eq.eval(ua, ub);
        let gt = CondOp::Gt.eval(ua, ub);
        assert_eq!(lt as u8 + eq as u8 + gt as u8, 1, "exactly one holds");
        assert_eq!(CondOp::Le.eval(ua, ub), lt || eq);
        assert_eq!(CondOp::Ge.eval(ua, ub), gt || eq);
        assert_eq!(CondOp::Ne.eval(ua, ub), !eq);
    }
}

/// Structured control flow always yields branches with a real
/// re-convergence PC strictly after the branch.
#[test]
fn structured_branches_reconverge() {
    for n_ifs in 1usize..6 {
        for loop_trips in 1i64..5 {
            let mut b = KernelBuilder::new();
            let v = b.reg();
            let i = b.reg();
            b.for_range(
                i,
                Operand::Imm(0),
                Operand::Imm(loop_trips),
                Operand::Imm(1),
                |b| {
                    for k in 0..n_ifs {
                        b.if_then_else(
                            CondOp::Gt,
                            Operand::Reg(v),
                            Operand::Imm(k as i64),
                            |b| b.add(v, Operand::Reg(v), Operand::Imm(1)),
                            |b| b.sub(v, Operand::Reg(v), Operand::Imm(1)),
                        );
                    }
                },
            );
            b.halt();
            let p = b.build().unwrap();
            for (pc, info) in p.branches() {
                assert_ne!(info.ipdom, RECONV_NONE, "branch at {pc} has no ipdom");
                assert!(
                    info.ipdom > pc || info.taken <= pc,
                    "forward branch at {} must reconverge later (ipdom {})",
                    pc,
                    info.ipdom
                );
            }
        }
    }
}
