//! Golden-diagnostics corpus for the static verifier, plus the
//! all-shipped-kernels-lint-clean gate.
//!
//! Each deliberately-malformed IR snippet asserts the *exact*
//! [`DwsLintCode`] and pc the verifier must report, so diagnostic codes and
//! anchoring are part of the public contract. The kernel sweep then checks
//! that every shipped benchmark, at every input scale, lints clean (no
//! errors, no warnings) and that the independently recomputed immediate
//! post-dominators agree with the `analyze_branches` annotations.

use dws_isa::cfg::{BranchInfo, Cfg, RECONV_NONE};
use dws_isa::verify::{verify, verify_annotated};
use dws_isa::{AluOp, CondOp, DwsLintCode, Inst, Operand, Reg, Severity, VerifyOptions};
use dws_kernels::{Benchmark, Scale};

fn add(dst: u16, a: Operand, b: Operand) -> Inst {
    Inst::Alu {
        op: AluOp::Add,
        dst: Reg(dst),
        a,
        b,
    }
}

fn br(target: usize) -> Inst {
    Inst::Branch {
        cond: CondOp::Eq,
        a: Operand::Reg(Reg(0)),
        b: Operand::Imm(0),
        target,
    }
}

fn expect(insts: Vec<Inst>, code: DwsLintCode, pc: Option<usize>) {
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report
        .find(code)
        .unwrap_or_else(|| panic!("expected {code:?}, got:\n{report}"));
    assert_eq!(d.pc, pc, "pc anchor for {code:?}:\n{report}");
    assert_eq!(d.severity, code.severity());
}

// ---- pass 1: CFG well-formedness ------------------------------------------

#[test]
fn golden_empty_program() {
    expect(vec![], DwsLintCode::EmptyProgram, None);
}

#[test]
fn golden_target_out_of_range() {
    expect(
        vec![Inst::Jump { target: 9 }, Inst::Halt],
        DwsLintCode::TargetOutOfRange,
        Some(0),
    );
}

#[test]
fn golden_fallthrough_off_end() {
    expect(
        vec![add(2, Operand::Imm(1), Operand::Imm(2))],
        DwsLintCode::FallthroughOffEnd,
        Some(0),
    );
}

#[test]
fn golden_unreachable_code() {
    // 0: jmp 2 ; 1: add (orphan) ; 2: halt
    let insts = vec![
        Inst::Jump { target: 2 },
        add(2, Operand::Imm(1), Operand::Imm(2)),
        Inst::Halt,
    ];
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report.find(DwsLintCode::UnreachableCode).expect("finding");
    assert_eq!(d.pc, Some(1));
    assert_eq!(d.severity, Severity::Warning);
}

// ---- pass 2: re-convergence -----------------------------------------------

/// Forged annotations: the ipdom points at the wrong pc. Only the
/// `verify_annotated` path (the linter) can see this, since `verify`
/// recomputes annotations itself.
#[test]
fn golden_bad_ipdom() {
    // diamond joining at 4
    let insts = vec![
        br(3),
        add(2, Operand::Imm(1), Operand::Imm(2)),
        Inst::Jump { target: 4 },
        add(2, Operand::Imm(3), Operand::Imm(4)),
        Inst::Store {
            src: Operand::Reg(Reg(2)),
            base: Reg(0),
            offset: 0,
        },
        Inst::Halt,
    ];
    let cfg = Cfg::build(&insts);
    let mut annotations = cfg.analyze_branches(&insts);
    let forged = annotations[0].as_mut().expect("branch at pc 0");
    assert_eq!(forged.ipdom, 4, "sanity: true join is pc 4");
    forged.ipdom = 1; // forge
    let report = verify_annotated(&insts, &cfg, &annotations, &VerifyOptions::default());
    let d = report.find(DwsLintCode::IpdomMismatch).expect("finding");
    assert_eq!(d.pc, Some(0));
    assert!(report.has_errors());
}

#[test]
fn golden_missing_annotation() {
    let insts = vec![br(2), add(2, Operand::Imm(1), Operand::Imm(2)), Inst::Halt];
    let cfg = Cfg::build(&insts);
    let annotations = vec![None, None, None]; // branch at 0 unannotated
    let report = verify_annotated(&insts, &cfg, &annotations, &VerifyOptions::default());
    let d = report
        .find(DwsLintCode::BadBranchAnnotation)
        .expect("finding");
    assert_eq!(d.pc, Some(0));
}

#[test]
fn golden_forged_subdiv_mark() {
    let insts = vec![br(2), add(2, Operand::Imm(1), Operand::Imm(2)), Inst::Halt];
    let cfg = Cfg::build(&insts);
    let mut annotations = cfg.analyze_branches(&insts);
    let forged = annotations[0].as_mut().expect("branch at pc 0");
    assert!(forged.subdividable, "sanity: 1-inst join block subdivides");
    forged.subdividable = false; // forge
    let report = verify_annotated(&insts, &cfg, &annotations, &VerifyOptions::default());
    let d = report
        .find(DwsLintCode::SubdivMarkMismatch)
        .expect("finding");
    assert_eq!(d.pc, Some(0));
    assert!(report.has_errors());
}

/// Over-deep nesting: more simultaneously-open divergent re-convergence
/// points than the warp-split table can hold.
#[test]
fn golden_over_deep_nesting() {
    // Three nested diamonds on tid, WST capacity 3 (< bound 4).
    let insts = vec![
        br(10), // outer
        br(7),  // middle
        br(4),  // inner
        add(2, Operand::Imm(0), Operand::Imm(0)),
        add(2, Operand::Imm(0), Operand::Imm(0)), // inner join (pc 4)
        add(2, Operand::Imm(0), Operand::Imm(0)),
        Inst::Jump { target: 8 },
        add(2, Operand::Imm(0), Operand::Imm(0)), // middle taken
        add(2, Operand::Imm(0), Operand::Imm(0)), // middle join (pc 8)
        Inst::Jump { target: 11 },
        add(2, Operand::Imm(0), Operand::Imm(0)), // outer taken
        Inst::Store {
            src: Operand::Reg(Reg(2)),
            base: Reg(0),
            offset: 0,
        }, // outer join (pc 11)
        Inst::Halt,
    ];
    let opts = VerifyOptions::default().with_wst_capacity(3);
    let (report, _) = verify(&insts, &opts);
    assert_eq!(report.stats.max_divergent_nesting, 3, "{report}");
    assert_eq!(report.stats.reconv_stack_bound(), 4);
    let d = report
        .find(DwsLintCode::ReconvDepthExceedsWst)
        .expect("finding");
    assert_eq!(d.severity, Severity::Warning);
    // The paper's 16-entry WST accommodates the same kernel fine.
    let (report, _) = verify(&insts, &VerifyOptions::default().with_wst_capacity(16));
    assert!(report.find(DwsLintCode::ReconvDepthExceedsWst).is_none());
}

// ---- pass 3: def-use ------------------------------------------------------

#[test]
fn golden_use_before_def() {
    expect(
        vec![
            add(3, Operand::Reg(Reg(2)), Operand::Imm(1)),
            Inst::Store {
                src: Operand::Reg(Reg(3)),
                base: Reg(0),
                offset: 0,
            },
            Inst::Halt,
        ],
        DwsLintCode::UseBeforeDef,
        Some(0),
    );
}

#[test]
fn golden_maybe_use_before_def() {
    // r2 defined only on the taken path, then read at the join.
    let insts = vec![
        br(2),                                    // 0: if tid == 0
        add(2, Operand::Imm(7), Operand::Imm(0)), // 1: r2 = 7 (one path only)
        Inst::Store {
            src: Operand::Reg(Reg(2)),
            base: Reg(0),
            offset: 0,
        }, // 2: read r2 at the join
        Inst::Halt,
    ];
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report
        .find(DwsLintCode::MaybeUseBeforeDef)
        .expect("finding");
    assert_eq!(d.pc, Some(2));
    assert_eq!(d.severity, Severity::Warning);
    assert!(report.find(DwsLintCode::UseBeforeDef).is_none());
}

#[test]
fn golden_dead_write() {
    let insts = vec![
        add(2, Operand::Imm(1), Operand::Imm(2)), // r2 never read
        Inst::Halt,
    ];
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report.find(DwsLintCode::DeadWrite).expect("finding");
    assert_eq!(d.pc, Some(0));
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn golden_unused_reg() {
    // r2 skipped: only r3 referenced, so the 4-register file is loose.
    let insts = vec![
        add(3, Operand::Imm(1), Operand::Imm(2)),
        Inst::Store {
            src: Operand::Reg(Reg(3)),
            base: Reg(0),
            offset: 0,
        },
        Inst::Halt,
    ];
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report.find(DwsLintCode::UnusedReg).expect("finding");
    assert!(d.message.contains("r2"), "{report}");
}

// ---- pass 4: memory bounds ------------------------------------------------

#[test]
fn golden_oob_store() {
    // store at byte 4096 of a 64-byte buffer: provably out of bounds.
    let insts = vec![
        add(2, Operand::Imm(4096), Operand::Imm(0)),
        Inst::Store {
            src: Operand::Imm(1),
            base: Reg(2),
            offset: 0,
        },
        Inst::Halt,
    ];
    let opts = VerifyOptions::default().with_mem_bytes(64);
    let (report, _) = verify(&insts, &opts);
    let d = report.find(DwsLintCode::OobAccess).expect("finding");
    assert_eq!(d.pc, Some(1));
    assert!(report.has_errors());
}

#[test]
fn golden_negative_address_rejected_even_without_memory_context() {
    let insts = vec![
        add(2, Operand::Imm(-8), Operand::Imm(0)),
        Inst::Load {
            dst: Reg(3),
            base: Reg(2),
            offset: 0,
        },
        Inst::Store {
            src: Operand::Reg(Reg(3)),
            base: Reg(0),
            offset: 0,
        },
        Inst::Halt,
    ];
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report.find(DwsLintCode::OobAccess).expect("finding");
    assert_eq!(d.pc, Some(1));
}

#[test]
fn golden_possible_oob_and_unproven_bounds() {
    // tid*8 against a 64-byte buffer with 256 threads: bounded straddle.
    let insts = vec![
        Inst::Alu {
            op: AluOp::Mul,
            dst: Reg(2),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(8),
        },
        Inst::Store {
            src: Operand::Imm(1),
            base: Reg(2),
            offset: 0,
        },
        Inst::Halt,
    ];
    let opts = VerifyOptions::default()
        .with_mem_bytes(64)
        .with_nthreads(256);
    let (report, _) = verify(&insts, &opts);
    let d = report
        .find(DwsLintCode::OobAccessPossible)
        .expect("finding");
    assert_eq!(d.pc, Some(1));
    assert_eq!(d.severity, Severity::Warning);
    // Without a thread count the address is unbounded: note, not warning.
    let opts = VerifyOptions::default().with_mem_bytes(64);
    let (report, _) = verify(&insts, &opts);
    let d = report.find(DwsLintCode::UnprovenBounds).expect("finding");
    assert_eq!(d.severity, Severity::Note);
    assert_eq!(report.count(Severity::Warning), 0);
}

// ---- pass 5: divergence ---------------------------------------------------

#[test]
fn golden_barrier_under_divergence() {
    // if tid == 0 { barrier } — the divergent-barrier deadlock shape.
    let insts = vec![br(3), Inst::Barrier, Inst::Jump { target: 3 }, Inst::Halt];
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report
        .find(DwsLintCode::BarrierUnderDivergence)
        .expect("finding");
    assert_eq!(d.pc, Some(1));
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn uniform_barrier_is_clean() {
    // barrier on the main path, under a warp-uniform loop: fine.
    let insts = vec![
        add(2, Operand::Reg(Reg(1)), Operand::Imm(0)), // r2 = ntid (uniform)
        Inst::Barrier,
        Inst::Store {
            src: Operand::Reg(Reg(2)),
            base: Reg(0),
            offset: 0,
        },
        Inst::Halt,
    ];
    let (report, _) = verify(&insts, &VerifyOptions::default());
    assert!(report.find(DwsLintCode::BarrierUnderDivergence).is_none());
}

// ---- pass 6: melding advisory ---------------------------------------------

/// A 6-instruction polynomial arm on tid into r2 — long enough that
/// blending its one differing immediate is profitable (see `dws_isa::meld`).
fn meld_arm(k: i64) -> Vec<Inst> {
    vec![
        Inst::Alu {
            op: AluOp::Mul,
            dst: Reg(2),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(k),
        },
        add(2, Operand::Reg(Reg(2)), Operand::Imm(1)),
        Inst::Alu {
            op: AluOp::Xor,
            dst: Reg(2),
            a: Operand::Reg(Reg(2)),
            b: Operand::Reg(Reg(0)),
        },
        Inst::Alu {
            op: AluOp::Shr,
            dst: Reg(2),
            a: Operand::Reg(Reg(2)),
            b: Operand::Imm(1),
        },
        add(2, Operand::Reg(Reg(2)), Operand::Reg(Reg(0))),
        Inst::Alu {
            op: AluOp::Mul,
            dst: Reg(2),
            a: Operand::Reg(Reg(2)),
            b: Operand::Reg(Reg(2)),
        },
    ]
}

/// `if (tid < 4) r2 = polyA(tid) else r2 = polyB(tid); out[tid] = r2` —
/// a divergent diamond the meld pass must flag as profitably meldable.
fn meldable_diamond() -> Vec<Inst> {
    let mut insts = vec![Inst::Branch {
        cond: CondOp::Lt,
        a: Operand::Reg(Reg(0)),
        b: Operand::Imm(4),
        target: 8,
    }];
    insts.extend(meld_arm(5)); // pc 1..7, fall-through arm
    insts.push(Inst::Jump { target: 14 }); // pc 7
    insts.extend(meld_arm(3)); // pc 8..14, taken arm
    insts.extend([
        Inst::Alu {
            op: AluOp::Mul,
            dst: Reg(3),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(8),
        }, // pc 14, join
        Inst::Store {
            src: Operand::Reg(Reg(2)),
            base: Reg(3),
            offset: 0,
        },
        Inst::Halt,
    ]);
    insts
}

#[test]
fn golden_meldable_region() {
    let insts = meldable_diamond();
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report.find(DwsLintCode::MeldableRegion).expect("finding");
    assert_eq!(d.pc, Some(0), "{report}");
    assert_eq!(d.severity, Severity::Note);
    assert!(d.message.contains("meldable region"), "{}", d.message);
    assert!(report.find(DwsLintCode::MeldRejected).is_none(), "{report}");
}

#[test]
fn golden_meld_rejected() {
    // A barrier in one arm makes the diamond un-meldable: the advisory must
    // downgrade to an explicit rejection, never to a meldable claim.
    let mut insts = meldable_diamond();
    insts.insert(2, Inst::Barrier); // into the fall-through arm
    for inst in &mut insts {
        match inst {
            Inst::Branch { target, .. } | Inst::Jump { target } if *target >= 2 => {
                *target += 1;
            }
            _ => {}
        }
    }
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let d = report.find(DwsLintCode::MeldRejected).expect("finding");
    assert_eq!(d.pc, Some(0), "{report}");
    assert_eq!(d.severity, Severity::Note);
    assert!(d.message.contains("barrier"), "{}", d.message);
    // Negative: the barrier diamond must NOT be reported meldable.
    assert!(
        report.find(DwsLintCode::MeldableRegion).is_none(),
        "{report}"
    );
}

#[test]
fn uniform_diamond_gets_no_meld_advisory() {
    // Same shape, but branching on ntid: the branch can never diverge, so
    // the meld pass stays silent — no DWS0601, no DWS0602.
    let mut insts = meldable_diamond();
    insts[0] = Inst::Branch {
        cond: CondOp::Lt,
        a: Operand::Reg(Reg(1)),
        b: Operand::Imm(4),
        target: 8,
    };
    let (report, _) = verify(&insts, &VerifyOptions::default());
    assert!(
        report.find(DwsLintCode::MeldableRegion).is_none(),
        "{report}"
    );
    assert!(report.find(DwsLintCode::MeldRejected).is_none(), "{report}");
}

// ---- rendering ------------------------------------------------------------

#[test]
fn rendered_diagnostics_are_rustc_style() {
    let insts = vec![add(3, Operand::Reg(Reg(2)), Operand::Imm(1))];
    let (report, _) = verify(&insts, &VerifyOptions::default());
    let text = report.rendered();
    assert!(text.contains("error[DWS0103]"), "{text}");
    assert!(text.contains("--> pc 0"), "{text}");
    assert!(text.contains("r3 = Add(r2, 1)"), "{text}");
}

// ---- shipped kernels ------------------------------------------------------

/// Every shipped kernel × scale builds, lints clean under `--deny-warnings`
/// semantics (no errors, no warnings; notes allowed), and its stored
/// annotations agree with the independently recomputed post-dominators.
#[test]
fn all_shipped_kernels_lint_clean() {
    for bench in Benchmark::ALL {
        for scale in [Scale::Test, Scale::Bench, Scale::Paper] {
            let spec = bench.build(scale, 42);
            let opts = VerifyOptions::default()
                .with_mem_bytes(spec.memory.size_bytes())
                .with_wst_capacity(16);
            let report = spec.program.lint(&opts);
            assert_eq!(
                report.count(Severity::Error),
                0,
                "{bench} @ {scale:?}:\n{report}"
            );
            assert_eq!(
                report.count(Severity::Warning),
                0,
                "{bench} @ {scale:?}:\n{report}"
            );
            assert!(
                report.stats.branches > 0,
                "{bench} @ {scale:?}: no branches analyzed?"
            );
            assert!(
                !spec.layout.buffers.is_empty(),
                "{bench} declares no memory map"
            );
            let problems = spec.layout.check(spec.memory.size_bytes());
            assert!(problems.is_empty(), "{bench} @ {scale:?}: {problems:?}");
        }
    }
}

/// The acceptance criterion in words: the set-based recomputation and the
/// Cooper–Harvey–Kennedy annotations agree on every kernel × scale. A
/// stronger per-branch variant of the lint above: forge nothing, diff all.
#[test]
fn recomputed_ipdoms_match_annotations_on_all_kernels() {
    for bench in Benchmark::ALL {
        for scale in [Scale::Test, Scale::Bench, Scale::Paper] {
            let spec = bench.build(scale, 7);
            let insts = spec.program.insts();
            let cfg = Cfg::build(insts);
            let annotations: &[Option<BranchInfo>] = spec.program.branch_annotations();
            for (pc, info) in spec.program.branches() {
                let b = cfg.block_of(pc);
                // The lint pass re-derives this; assert the raw data too.
                assert_eq!(annotations[pc].as_ref(), Some(info));
                let _ = (b, RECONV_NONE);
            }
            let report = spec.program.lint(&VerifyOptions::default());
            assert!(
                report.find(DwsLintCode::IpdomMismatch).is_none(),
                "{bench} @ {scale:?}:\n{report}"
            );
            assert!(
                report.find(DwsLintCode::BadBranchAnnotation).is_none(),
                "{bench} @ {scale:?}:\n{report}"
            );
        }
    }
}
