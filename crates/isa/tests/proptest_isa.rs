//! Property tests of the IR semantics and CFG analysis.

use dws_isa::cfg::RECONV_NONE;
use dws_isa::interp::{eval_alu, eval_un};
use dws_isa::{AluOp, CondOp, KernelBuilder, Operand, UnOp};
use proptest::prelude::*;

proptest! {
    #[test]
    fn add_sub_round_trip(a in any::<i64>(), b in any::<i64>()) {
        let sum = eval_alu(AluOp::Add, a as u64, b as u64);
        let back = eval_alu(AluOp::Sub, sum, b as u64);
        prop_assert_eq!(back as i64, a);
    }

    #[test]
    fn div_rem_identity(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        prop_assume!(!(a == i64::MIN && b == -1)); // wrapping edge
        let q = eval_alu(AluOp::Div, a as u64, b as u64) as i64;
        let r = eval_alu(AluOp::Rem, a as u64, b as u64) as i64;
        prop_assert_eq!(q * b + r, a);
    }

    #[test]
    fn division_by_zero_is_total(a in any::<i64>()) {
        prop_assert_eq!(eval_alu(AluOp::Div, a as u64, 0), 0);
        prop_assert_eq!(eval_alu(AluOp::Rem, a as u64, 0), 0);
    }

    #[test]
    fn min_max_partition(a in any::<i64>(), b in any::<i64>()) {
        let lo = eval_alu(AluOp::Min, a as u64, b as u64) as i64;
        let hi = eval_alu(AluOp::Max, a as u64, b as u64) as i64;
        prop_assert!(lo <= hi);
        prop_assert!((lo == a && hi == b) || (lo == b && hi == a));
    }

    #[test]
    fn float_ops_match_host(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let fa = a.to_bits();
        let fb = b.to_bits();
        prop_assert_eq!(f64::from_bits(eval_alu(AluOp::FAdd, fa, fb)), a + b);
        prop_assert_eq!(f64::from_bits(eval_alu(AluOp::FMul, fa, fb)), a * b);
        prop_assert_eq!(f64::from_bits(eval_un(UnOp::FNeg, fa)), -a);
        prop_assert_eq!(f64::from_bits(eval_un(UnOp::FAbs, fa)), a.abs());
    }

    #[test]
    fn not_is_involutive(a in any::<u64>()) {
        prop_assert_eq!(eval_un(UnOp::Not, eval_un(UnOp::Not, a)), a);
    }

    #[test]
    fn cond_trichotomy(a in any::<i64>(), b in any::<i64>()) {
        let (ua, ub) = (a as u64, b as u64);
        let lt = CondOp::Lt.eval(ua, ub);
        let eq = CondOp::Eq.eval(ua, ub);
        let gt = CondOp::Gt.eval(ua, ub);
        prop_assert_eq!(lt as u8 + eq as u8 + gt as u8, 1, "exactly one holds");
        prop_assert_eq!(CondOp::Le.eval(ua, ub), lt || eq);
        prop_assert_eq!(CondOp::Ge.eval(ua, ub), gt || eq);
        prop_assert_eq!(CondOp::Ne.eval(ua, ub), !eq);
    }

    /// Structured control flow always yields branches with a real
    /// re-convergence PC strictly after the branch.
    #[test]
    fn structured_branches_reconverge(
        n_ifs in 1usize..6,
        loop_trips in 1i64..5,
    ) {
        let mut b = KernelBuilder::new();
        let v = b.reg();
        let i = b.reg();
        b.for_range(i, Operand::Imm(0), Operand::Imm(loop_trips), Operand::Imm(1), |b| {
            for k in 0..n_ifs {
                b.if_then_else(
                    CondOp::Gt,
                    Operand::Reg(v),
                    Operand::Imm(k as i64),
                    |b| b.add(v, Operand::Reg(v), Operand::Imm(1)),
                    |b| b.sub(v, Operand::Reg(v), Operand::Imm(1)),
                );
            }
        });
        b.halt();
        let p = b.build().unwrap();
        for (pc, info) in p.branches() {
            prop_assert_ne!(info.ipdom, RECONV_NONE, "branch at {} has no ipdom", pc);
            prop_assert!(info.ipdom > pc || info.taken <= pc,
                "forward branch at {} must reconverge later (ipdom {})", pc, info.ipdom);
        }
    }
}
