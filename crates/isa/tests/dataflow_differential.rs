//! Differential oracle for the pass-3 def-use refactor.
//!
//! PR 8 re-expressed the verifier's def-use pass as instances of the
//! `dws_isa::analysis` dataflow framework ([`ReachingDefs`], [`Liveness`])
//! while keeping the original ad-hoc fixpoint as a reference
//! implementation. This test pins the two bit-identical — same diagnostic
//! codes, pcs, severities, and messages, in the same order — across every
//! shipped benchmark kernel and a sweep of generator-produced programs.
//!
//! [`ReachingDefs`]: dws_isa::ReachingDefs
//! [`Liveness`]: dws_isa::Liveness

use dws_isa::gen::{generate, GenConfig};
use dws_isa::verify::{defuse_diagnostics, defuse_diagnostics_reference};
use dws_kernels::{Benchmark, Scale};

#[test]
fn framework_defuse_matches_reference_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        for scale in [Scale::Test, Scale::Bench, Scale::Paper] {
            let spec = bench.build(scale, 42);
            let insts = spec.program.insts();
            assert_eq!(
                defuse_diagnostics(insts),
                defuse_diagnostics_reference(insts),
                "pass-3 divergence between framework and reference on {bench} @ {scale:?}"
            );
        }
    }
}

#[test]
fn framework_defuse_matches_reference_on_generated_kernels() {
    let cfg = GenConfig::default();
    for seed in 0..200u64 {
        let ast = generate(seed, &cfg);
        let program = ast.compile().expect("generated kernels verify");
        let insts = program.insts();
        assert_eq!(
            defuse_diagnostics(insts),
            defuse_diagnostics_reference(insts),
            "pass-3 divergence between framework and reference on seed {seed}"
        );
    }
}
