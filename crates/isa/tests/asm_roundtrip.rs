//! Disassembler round-trip over the real benchmark kernels: every
//! hand-built program must render to text that reparses to the identical
//! instruction stream. (Generated-kernel round-trips live in the `asm`
//! unit tests; this covers the production kernels, which exercise float
//! immediates, negative offsets, and deep branch nests.)

use dws_isa::{parse_asm, render_asm};
use dws_kernels::{Benchmark, Scale};

#[test]
fn render_round_trips_every_benchmark_kernel() {
    for bench in Benchmark::ALL {
        let spec = bench.build(Scale::Test, 7);
        let rendered = render_asm(&spec.program);
        let p2 = parse_asm(&rendered).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(spec.program.insts(), p2.insts(), "{}", spec.name);
    }
}
