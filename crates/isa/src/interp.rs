//! Functional (value-level) semantics of the IR.
//!
//! The timing simulator in `dws-core` and the lockstep-free
//! [`ReferenceRunner`] share these semantics, which is what lets the test
//! suite assert that *every* scheduling policy — conventional, every DWS
//! variant, adaptive slip — produces bit-identical memory contents.

use crate::inst::{AluOp, Inst, Operand, Reg, UnOp};
use crate::program::Program;

/// Evaluates a binary ALU operation on raw 64-bit values.
#[inline]
pub fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    use AluOp::*;
    let (ia, ib) = (a as i64, b as i64);
    let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
    match op {
        Add => ia.wrapping_add(ib) as u64,
        Sub => ia.wrapping_sub(ib) as u64,
        Mul => ia.wrapping_mul(ib) as u64,
        Div => {
            if ib == 0 {
                0
            } else {
                ia.wrapping_div(ib) as u64
            }
        }
        Rem => {
            if ib == 0 {
                0
            } else {
                ia.wrapping_rem(ib) as u64
            }
        }
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => ia.wrapping_shl((b & 63) as u32) as u64,
        Shr => ia.wrapping_shr((b & 63) as u32) as u64,
        Min => ia.min(ib) as u64,
        Max => ia.max(ib) as u64,
        FAdd => (fa + fb).to_bits(),
        FSub => (fa - fb).to_bits(),
        FMul => (fa * fb).to_bits(),
        FDiv => (fa / fb).to_bits(),
        FMin => fa.min(fb).to_bits(),
        FMax => fa.max(fb).to_bits(),
    }
}

/// Evaluates a unary operation on a raw 64-bit value.
#[inline]
pub fn eval_un(op: UnOp, a: u64) -> u64 {
    use UnOp::*;
    let ia = a as i64;
    let fa = f64::from_bits(a);
    match op {
        Mov => a,
        Not => !a,
        Neg => ia.wrapping_neg() as u64,
        FNeg => (-fa).to_bits(),
        FAbs => fa.abs().to_bits(),
        FSqrt => fa.sqrt().to_bits(),
        I2F => (ia as f64).to_bits(),
        F2I => {
            // Truncating, saturating conversion; NaN maps to 0 like Rust's
            // `as` cast.
            (fa as i64) as u64
        }
    }
}

/// Access to the functional backing store, one 8-byte word per access.
///
/// Addresses are byte addresses; implementations align down to the word.
pub trait MemoryAccess {
    /// Reads the word containing byte address `addr`.
    fn load_word(&mut self, addr: u64) -> u64;
    /// Writes the word containing byte address `addr`.
    fn store_word(&mut self, addr: u64, value: u64);
}

/// A flat, zero-initialized word-granular memory.
///
/// # Example
///
/// ```
/// use dws_isa::{MemoryAccess, VecMemory};
/// let mut m = VecMemory::new(64);
/// m.write_f64(8, 2.5);
/// assert_eq!(m.read_f64(8), 2.5);
/// assert_eq!(m.load_word(12), 2.5f64.to_bits()); // same word, aligned down
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecMemory {
    words: Vec<u64>,
}

impl VecMemory {
    /// Creates a memory of `bytes` bytes (rounded up to whole words), all 0.
    pub fn new(bytes: u64) -> Self {
        VecMemory {
            words: vec![0; bytes.div_ceil(8) as usize],
        }
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Reads the word at `addr` as a signed integer.
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.words[(addr / 8) as usize] as i64
    }

    /// Writes a signed integer word at `addr`.
    pub fn write_i64(&mut self, addr: u64, v: i64) {
        self.words[(addr / 8) as usize] = v as u64;
    }

    /// Reads the word at `addr` as a float.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.words[(addr / 8) as usize])
    }

    /// Writes a float word at `addr`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.words[(addr / 8) as usize] = v.to_bits();
    }

    /// Raw word slice (used by equivalence tests).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl MemoryAccess for VecMemory {
    fn load_word(&mut self, addr: u64) -> u64 {
        self.words[(addr / 8) as usize]
    }
    fn store_word(&mut self, addr: u64, value: u64) {
        self.words[(addr / 8) as usize] = value;
    }
}

/// One lane's view of a register file.
///
/// The per-lane interpreter ([`execute_lane`]) is generic over this so the
/// same semantics run against a standalone [`ThreadState`] *and* against a
/// lane slice of the timing simulator's SoA register file — which is what
/// lets the µop execution engine keep the legacy path as a differential
/// oracle without duplicating instruction semantics.
pub trait LaneRegs {
    /// Reads a register.
    fn reg(&self, r: Reg) -> u64;
    /// Writes a register.
    fn set_reg(&mut self, r: Reg, v: u64);

    /// Evaluates an operand against this lane's registers.
    #[inline]
    fn operand(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v as u64,
            Operand::ImmF(v) => v.to_bits(),
        }
    }
}

/// Executes one instruction's non-memory effects on one lane.
///
/// Compute instructions mutate registers and return [`StepOutcome::Next`];
/// branches are evaluated (but the PC is owned by the caller); memory
/// instructions return their resolved byte address without touching memory
/// — the caller performs the access and, for loads, calls
/// [`LaneRegs::set_reg`] with the loaded value.
#[inline]
pub fn execute_lane<R: LaneRegs + ?Sized>(regs: &mut R, inst: &Inst) -> StepOutcome {
    match *inst {
        Inst::Alu { op, dst, a, b } => {
            let v = eval_alu(op, regs.operand(a), regs.operand(b));
            regs.set_reg(dst, v);
            StepOutcome::Next
        }
        Inst::Un { op, dst, a } => {
            let v = eval_un(op, regs.operand(a));
            regs.set_reg(dst, v);
            StepOutcome::Next
        }
        Inst::Set { cond, dst, a, b } => {
            let v = cond.eval(regs.operand(a), regs.operand(b)) as u64;
            regs.set_reg(dst, v);
            StepOutcome::Next
        }
        Inst::Load { dst, base, offset } => StepOutcome::Load {
            addr: regs.reg(base).wrapping_add(offset as u64),
            dst,
        },
        Inst::Store { src, base, offset } => StepOutcome::Store {
            addr: regs.reg(base).wrapping_add(offset as u64),
            value: regs.operand(src),
        },
        Inst::Branch { cond, a, b, target } => {
            if cond.eval(regs.operand(a), regs.operand(b)) {
                StepOutcome::Jump(target)
            } else {
                StepOutcome::Next
            }
        }
        Inst::Jump { target } => StepOutcome::Jump(target),
        Inst::Barrier => StepOutcome::Barrier,
        Inst::Halt => StepOutcome::Halt,
    }
}

/// The architectural state of one thread: its registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadState {
    regs: Vec<u64>,
}

impl LaneRegs for ThreadState {
    #[inline]
    fn reg(&self, r: Reg) -> u64 {
        self.regs[r.0 as usize]
    }
    #[inline]
    fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.0 as usize] = v;
    }
}

impl ThreadState {
    /// Creates a thread context for `program`, preloading `r0 = tid` and
    /// `r1 = nthreads`.
    pub fn new(program: &Program, tid: u64, nthreads: u64) -> Self {
        let mut regs = vec![0u64; program.num_regs() as usize];
        regs[0] = tid;
        if regs.len() > 1 {
            regs[1] = nthreads;
        }
        ThreadState { regs }
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.0 as usize]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.0 as usize] = v;
    }

    /// Evaluates an operand against this thread's registers.
    #[inline]
    pub fn operand(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v as u64,
            Operand::ImmF(v) => v.to_bits(),
        }
    }

    /// Executes one instruction's non-memory effects and classifies it.
    ///
    /// Delegates to [`execute_lane`]; see there for the contract.
    pub fn execute(&mut self, inst: &Inst) -> StepOutcome {
        execute_lane(self, inst)
    }
}

/// Classification of one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Fall through to `pc + 1`.
    Next,
    /// Control transfers to the given PC.
    Jump(usize),
    /// A load of the word at `addr` into `dst`; the caller performs it.
    Load {
        /// Byte address.
        addr: u64,
        /// Destination register.
        dst: Reg,
    },
    /// A store of `value` to `addr`; the caller performs it.
    Store {
        /// Byte address.
        addr: u64,
        /// Value to write.
        value: u64,
    },
    /// The thread reached a global barrier.
    Barrier,
    /// The thread terminated.
    Halt,
}

/// A timing-free reference executor.
///
/// Runs `nthreads` threads over a program with correct global-barrier
/// semantics: each thread runs until its next barrier (or halt), then the
/// whole gang advances. For data-race-free kernels — all eight benchmarks —
/// the final memory contents are uniquely defined, making this the oracle
/// against which every scheduling policy is validated.
#[derive(Debug)]
pub struct ReferenceRunner<'p> {
    program: &'p Program,
    nthreads: u64,
    max_steps_per_thread: u64,
}

impl<'p> ReferenceRunner<'p> {
    /// Creates a runner for `nthreads` threads.
    pub fn new(program: &'p Program, nthreads: u64) -> Self {
        ReferenceRunner {
            program,
            nthreads,
            max_steps_per_thread: 200_000_000,
        }
    }

    /// Overrides the per-thread dynamic instruction budget (default 2e8).
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.max_steps_per_thread = steps;
        self
    }

    /// Runs all threads to completion against `mem`.
    ///
    /// Returns the total number of dynamic instructions executed.
    ///
    /// # Errors
    ///
    /// Returns a message if any thread exceeds the step budget (runaway
    /// loop) — programs are expected to terminate.
    pub fn run<M: MemoryAccess>(&self, mem: &mut M) -> Result<u64, String> {
        let n = self.nthreads as usize;
        let mut states: Vec<ThreadState> = (0..n)
            .map(|t| ThreadState::new(self.program, t as u64, self.nthreads))
            .collect();
        let mut pcs = vec![0usize; n];
        let mut done = vec![false; n];
        let mut steps_left = vec![self.max_steps_per_thread; n];
        let mut total_steps: u64 = 0;

        loop {
            let mut any_running = false;
            // Run every unfinished thread to its next barrier or halt.
            for t in 0..n {
                if done[t] {
                    continue;
                }
                any_running = true;
                loop {
                    let inst = self.program.inst(pcs[t]);
                    if steps_left[t] == 0 {
                        return Err(format!("thread {t} exceeded step budget at pc {}", pcs[t]));
                    }
                    steps_left[t] -= 1;
                    total_steps += 1;
                    match states[t].execute(inst) {
                        StepOutcome::Next => pcs[t] += 1,
                        StepOutcome::Jump(target) => pcs[t] = target,
                        StepOutcome::Load { addr, dst } => {
                            let v = mem.load_word(addr);
                            states[t].set_reg(dst, v);
                            pcs[t] += 1;
                        }
                        StepOutcome::Store { addr, value } => {
                            mem.store_word(addr, value);
                            pcs[t] += 1;
                        }
                        StepOutcome::Barrier => {
                            pcs[t] += 1;
                            break; // wait for the gang
                        }
                        StepOutcome::Halt => {
                            done[t] = true;
                            break;
                        }
                    }
                }
            }
            if !any_running {
                return Ok(total_steps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn alu_semantics() {
        assert_eq!(eval_alu(AluOp::Add, 3, (-5i64) as u64) as i64, -2);
        assert_eq!(eval_alu(AluOp::Div, 7, 2) as i64, 3);
        assert_eq!(eval_alu(AluOp::Div, 7, 0), 0);
        assert_eq!(eval_alu(AluOp::Rem, 7, 0), 0);
        assert_eq!(eval_alu(AluOp::Rem, (-7i64) as u64, 4) as i64, -3);
        assert_eq!(eval_alu(AluOp::Shl, 1, 65) as i64, 2, "shift masked to 63");
        assert_eq!(eval_alu(AluOp::Shr, (-8i64) as u64, 1) as i64, -4);
        assert_eq!(eval_alu(AluOp::Min, (-2i64) as u64, 1) as i64, -2);
        assert_eq!(eval_alu(AluOp::Max, (-2i64) as u64, 1) as i64, 1);
        let f = |x: f64| x.to_bits();
        assert_eq!(eval_alu(AluOp::FAdd, f(1.5), f(2.0)), f(3.5));
        assert_eq!(eval_alu(AluOp::FMin, f(1.5), f(2.0)), f(1.5));
        assert_eq!(eval_alu(AluOp::FMax, f(1.5), f(2.0)), f(2.0));
        assert_eq!(eval_alu(AluOp::FDiv, f(1.0), f(4.0)), f(0.25));
    }

    #[test]
    fn un_semantics() {
        let f = |x: f64| x.to_bits();
        assert_eq!(eval_un(UnOp::Neg, 5) as i64, -5);
        assert_eq!(eval_un(UnOp::Not, 0), u64::MAX);
        assert_eq!(eval_un(UnOp::FNeg, f(2.0)), f(-2.0));
        assert_eq!(eval_un(UnOp::FAbs, f(-2.0)), f(2.0));
        assert_eq!(eval_un(UnOp::FSqrt, f(9.0)), f(3.0));
        assert_eq!(eval_un(UnOp::I2F, (-3i64) as u64), f(-3.0));
        assert_eq!(eval_un(UnOp::F2I, f(-3.9)) as i64, -3);
        assert_eq!(eval_un(UnOp::F2I, f64::NAN.to_bits()), 0);
    }

    #[test]
    fn vec_memory_word_aligns() {
        let mut m = VecMemory::new(17); // rounds to 24 bytes
        assert_eq!(m.size_bytes(), 24);
        m.store_word(9, 42);
        assert_eq!(m.load_word(8), 42);
        assert_eq!(m.read_i64(8), 42);
        assert_eq!(m.words()[1], 42);
    }

    #[test]
    fn thread_state_preloads_tid() {
        let mut b = KernelBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let t = ThreadState::new(&p, 3, 8);
        assert_eq!(t.reg(Reg(0)), 3);
        assert_eq!(t.reg(Reg(1)), 8);
    }

    #[test]
    fn reference_runner_detects_runaway() {
        let mut b = KernelBuilder::new();
        let head = b.label();
        b.bind(head);
        b.jmp(head);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = VecMemory::new(8);
        let err = ReferenceRunner::new(&p, 1)
            .with_step_budget(100)
            .run(&mut mem)
            .unwrap_err();
        assert!(err.contains("step budget"));
    }

    #[test]
    fn barrier_orders_phases() {
        // Phase 1: thread t writes a[t] = t + 1.
        // Phase 2: thread t reads a[(t+1) % n] — correct only if the barrier
        // really separated the phases — and writes b[t] = that value * 10.
        let n = 4i64;
        let mut b = KernelBuilder::new();
        let tid = b.tid();
        let a = b.reg();
        let v = b.reg();
        let idx = b.reg();
        b.addr(a, Operand::Imm(0), Operand::Reg(tid), 8);
        b.add(v, tid, Operand::Imm(1));
        b.store(Operand::Reg(v), a, 0);
        b.barrier();
        b.add(idx, tid, Operand::Imm(1));
        b.rem(idx, Operand::Reg(idx), Operand::Imm(n));
        b.addr(a, Operand::Imm(0), Operand::Reg(idx), 8);
        b.load(v, a, 0);
        b.mul(v, Operand::Reg(v), Operand::Imm(10));
        b.addr(a, Operand::Imm(n * 8), Operand::Reg(tid), 8);
        b.store(Operand::Reg(v), a, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut mem = VecMemory::new(2 * n as u64 * 8);
        ReferenceRunner::new(&p, n as u64).run(&mut mem).unwrap();
        for t in 0..n {
            let expect = (((t + 1) % n) + 1) * 10;
            assert_eq!(mem.read_i64((n + t) as u64 * 8), expect);
        }
    }
}
