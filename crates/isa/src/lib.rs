//! Kernel IR for the dynamic-warp-subdivision reproduction.
//!
//! The paper compiles C benchmarks to the Alpha ISA with manually-inserted
//! post-dominator annotations. This crate plays the role of that toolchain:
//!
//! * [`inst`] — a compact scalar RISC instruction set (`Inst`). All
//!   non-memory instructions execute in one cycle on a WPU lane, exactly as
//!   the paper models.
//! * [`builder`] — [`KernelBuilder`], a structured assembler DSL used by
//!   `dws-kernels` to express the eight data-parallel benchmarks.
//! * [`mod@cfg`] — control-flow analysis. Immediate post-dominators are computed
//!   automatically (the paper instruments them by hand) and each conditional
//!   branch is statically classified as *subdividable* using the paper's
//!   50-instruction heuristic (Section 4.3).
//! * [`interp`] — per-thread functional semantics, shared by the timing
//!   model and by a lockstep-free reference runner used to validate that
//!   every scheduling policy computes identical results.
//! * [`verify`] — a multi-pass static verifier and linter (CFG
//!   well-formedness, independent re-convergence re-computation, def-use
//!   dataflow, interval memory bounds, divergence/uniformity) producing
//!   structured [`Diagnostic`]s; error findings reject the program at
//!   [`Program::from_insts`] time.
//!
//! # Example
//!
//! ```
//! use dws_isa::{KernelBuilder, Operand, CondOp};
//!
//! // sum = 0; for (i = tid; i < 8; i += ntid) sum += i; out[tid] = sum;
//! let mut b = KernelBuilder::new();
//! let (tid, ntid) = (b.tid(), b.ntid());
//! let i = b.reg();
//! let sum = b.reg();
//! b.li(sum, 0);
//! b.mov(i, Operand::Reg(tid));
//! b.while_loop(CondOp::Lt, Operand::Reg(i), Operand::Imm(8), |b| {
//!     b.add(sum, Operand::Reg(sum), Operand::Reg(i));
//!     b.add(i, Operand::Reg(i), Operand::Reg(ntid));
//! });
//! let addr = b.reg();
//! b.mul(addr, Operand::Reg(tid), Operand::Imm(8));
//! b.store(Operand::Reg(sum), addr, 0);
//! b.halt();
//! let program = b.build().expect("valid program");
//! assert!(program.len() > 0);
//! ```

pub mod analysis;
pub mod asm;
pub mod builder;
pub mod cfg;
pub mod gen;
pub mod inst;
pub mod interp;
pub mod meld;
pub mod predecode;
pub mod program;
pub mod verify;

pub use analysis::{
    solve, solve_flow, BlockFacts, BlockProblem, Direction, FlowProblem, Liveness, ReachingDefs,
    RegSet,
};
pub use asm::{parse_asm, render_asm, AsmError};
pub use builder::{BuildError, KernelBuilder, Label};
pub use cfg::{BranchInfo, Cfg};
pub use gen::{generate, GenConfig, GenOp, GenStmt, GenVal, KernelAst};
pub use inst::{AluOp, CondOp, Inst, Operand, Reg, UnOp};
pub use interp::{
    eval_alu, eval_un, execute_lane, LaneRegs, MemoryAccess, ReferenceRunner, StepOutcome,
    ThreadState, VecMemory,
};
pub use meld::{find_candidates, meld, MeldApplied, MeldCandidate, MeldOutcome, MeldVerdict};
pub use predecode::{ExecOp, Src};
pub use program::Program;
pub use verify::{
    branch_uniformity, uniform_branches, BranchUniformity, Diagnostic, DwsLintCode, Severity,
    VerifyOptions, VerifyReport, VerifyStats,
};
