//! DARM-style control-flow melding: static branch-divergence elimination.
//!
//! The paper tolerates branch divergence *dynamically* — warp subdivision
//! lets diverged slices slip past each other. Melding is the complementary
//! *static* attack (Saumya et al.'s DARM): when a divergent branch guards a
//! single-entry/single-exit diamond whose arms are instruction-similar,
//! rewrite the diamond into predicated straight-line code so the divergence
//! never reaches the hardware. This module has two halves:
//!
//! * **Analysis** ([`find_candidates`]) — walks the verifier's CFG/ipdom
//!   results for proper divergent diamonds, scores arm similarity by
//!   sequence alignment over opcode classes (the same op/class granularity
//!   the predecoder distinguishes), and renders a verdict per diamond:
//!   meldable with an estimated divergent-issue saving, or rejected with a
//!   reason. The verifier surfaces these as `DWS06xx` advisory notes.
//! * **Transform** ([`meld`]) — rewrites every profitable diamond into
//!   select/masked form and re-runs the full verifier on the output. The
//!   rewrite is *per-lane semantics preserving*: each thread executes the
//!   same memory operations with the same addresses, values, and relative
//!   order as before, so the final memory image is bit-identical under
//!   every scheduling policy (pinned by the `meld_differential` oracle in
//!   `dws-sim`).
//!
//! # The select idiom
//!
//! The IR has no predicated instructions, so the transform materializes the
//! branch condition as a full-width mask and blends with bitwise ops:
//!
//! ```text
//! p  = Set(cond, a, b)        ; 1 when the branch would be taken
//! m  = 0 - p                  ; all-ones taken mask
//! nm = ~m                     ; all-ones fall-through mask
//! ...                         ; both arms, renamed into fresh temps
//! r  = (vT & m) | (vF & nm)   ; per join-live register
//! ```
//!
//! Blending is bit-exact for every 64-bit value, integer or float.
//!
//! # Legality
//!
//! A diamond melds only when all of the following hold (each failure is a
//! distinct rejection reason in the `DWS0602` note):
//!
//! * both arms are single blocks whose only predecessor is the branch and
//!   only successor is the join (`ipdom` of the branch block), physically
//!   tiling the range between branch and join;
//! * arm bodies contain only ALU/unary/set/load/store instructions — no
//!   barriers (a melded barrier would change arrival semantics) and no
//!   nested control flow (meld innermost-first; [`meld`] iterates);
//! * memory operations pair positionally across the arms with matching
//!   kind and offset, so every lane performs exactly its own arm's
//!   accesses through a blended base register — no access is added or
//!   dropped, which is what makes the rewrite image-preserving even for
//!   gather/scatter patterns;
//! * every register live at the join and defined by only one arm has a
//!   definition reaching the branch on all paths (otherwise the blend
//!   would read an undefined register on the untaken side).
//!
//! Non-memory instructions the alignment cannot pair are executed by both
//! sides unconditionally into dead-on-the-other-side temporaries; the IR's
//! ALU is total (division by zero yields 0), so this is always safe.

use crate::analysis::{inst_def, inst_uses, max_reg, solve, Liveness, ReachingDefs};
use crate::cfg::Cfg;
use crate::inst::{AluOp, CondOp, Inst, Operand, Reg, UnOp};
use crate::verify::{verify, VerifyOptions, VerifyReport};

/// Upper bound on melding rounds: each round rewrites one diamond and
/// re-analyzes, so nested diamonds meld inside-out. Programs are small;
/// this is a runaway guard, not a tuning knob.
const MAX_ROUNDS: usize = 64;

/// Analysis verdict for one divergent diamond.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeldVerdict {
    /// The diamond melds profitably.
    Meldable {
        /// Instruction pairs the sequence alignment merged (memory pairs
        /// included).
        aligned: usize,
        /// Original instruction count of the region `[branch, join)` — what
        /// a fully diverged warp issues today.
        region_len: usize,
        /// Instruction count of the melded replacement.
        melded_len: usize,
        /// `region_len - melded_len`: divergent issue slots saved per
        /// diverged warp execution.
        est_saved: usize,
    },
    /// A proper divergent diamond that must not (or should not) be melded.
    Rejected {
        /// Human-readable reason, surfaced in the `DWS0602` note.
        reason: String,
    },
}

/// One divergent diamond the analysis inspected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeldCandidate {
    /// PC of the guarding conditional branch.
    pub branch_pc: usize,
    /// Basic block of the branch.
    pub block: usize,
    /// PC where the arms re-converge (start of the join block).
    pub join_pc: usize,
    /// What the analysis concluded.
    pub verdict: MeldVerdict,
}

/// One diamond the transform actually rewrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeldApplied {
    /// Branch PC *at the time of the rewrite* (earlier rounds may have
    /// shifted it relative to the input program).
    pub branch_pc: usize,
    /// Join PC at the time of the rewrite.
    pub join_pc: usize,
    /// Divergent issue slots saved.
    pub saved: usize,
}

/// Result of [`meld`]: the rewritten program plus provenance.
#[derive(Debug, Clone)]
pub struct MeldOutcome {
    /// The melded instruction stream (identical to the input when nothing
    /// qualified).
    pub insts: Vec<Inst>,
    /// Every rewrite performed, in application order.
    pub applied: Vec<MeldApplied>,
    /// Verifier report for the *output* program (never contains errors —
    /// the transform fails instead).
    pub report: VerifyReport,
}

impl MeldOutcome {
    /// Whether any diamond was rewritten.
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Diamond shape recognition.
// ---------------------------------------------------------------------------

/// A proper two-armed diamond: branch block `B`, arm blocks whose only
/// predecessor is `B` and only successor is the join, tiling
/// `[branch_pc + 1, join_pc)` contiguously.
struct Shape {
    block: usize,
    branch_pc: usize,
    join_pc: usize,
    /// Taken-arm body `[lo, hi)` with any trailing `Jump join` stripped.
    taken: (usize, usize),
    /// Fall-through-arm body, likewise stripped.
    fall: (usize, usize),
}

fn diamond_shape(insts: &[Inst], cfg: &Cfg, pred_count: &[usize], pc: usize) -> Option<Shape> {
    let block = cfg.block_of(pc);
    let blocks = cfg.blocks();
    let succs = &blocks[block].succs;
    if succs.len() != 2 || succs[0] == succs[1] {
        return None;
    }
    let (t_blk, f_blk) = (succs[0], succs[1]); // taken target first (Cfg::build)
    let jb = cfg.ipdom_of_block(block)?;
    if t_blk == jb || f_blk == jb {
        return None; // one-armed if: nothing to merge against
    }
    for &arm in &[t_blk, f_blk] {
        if pred_count[arm] != 1 || blocks[arm].succs != [jb] {
            return None;
        }
    }
    let join_pc = blocks[jb].start;
    // The two arms must tile [pc+1, join_pc) in program order.
    let (first, second) = if blocks[t_blk].start < blocks[f_blk].start {
        (t_blk, f_blk)
    } else {
        (f_blk, t_blk)
    };
    if blocks[first].start != pc + 1
        || blocks[first].end != blocks[second].start
        || blocks[second].end != join_pc
    {
        return None;
    }
    // Strip the trailing `Jump join` each arm may end with (the physically
    // first arm always has one; the second usually falls through).
    let body = |b: usize| {
        let (lo, mut hi) = (blocks[b].start, blocks[b].end);
        if hi > lo && matches!(insts[hi - 1], Inst::Jump { target } if target == join_pc) {
            hi -= 1;
        }
        (lo, hi)
    };
    Some(Shape {
        block,
        branch_pc: pc,
        join_pc,
        taken: body(t_blk),
        fall: body(f_blk),
    })
}

// ---------------------------------------------------------------------------
// Arm similarity: sequence alignment over opcode classes.
// ---------------------------------------------------------------------------

/// Opcode class used as the alignment alphabet: two instructions merge only
/// when they perform the identical operation (operands may differ — those
/// are blended).
#[derive(Clone, Copy, PartialEq, Eq)]
enum OpKey {
    Alu(AluOp),
    Un(UnOp),
    Set(CondOp),
}

fn op_key(inst: &Inst) -> Option<OpKey> {
    match *inst {
        Inst::Alu { op, .. } => Some(OpKey::Alu(op)),
        Inst::Un { op, .. } => Some(OpKey::Un(op)),
        Inst::Set { cond, .. } => Some(OpKey::Set(cond)),
        _ => None,
    }
}

/// One step of the merged emission order.
enum Pair {
    /// Arm instructions `(taken_idx, fall_idx)` merge into one.
    Both(usize, usize),
    /// Taken-arm instruction executed standalone (into a temp).
    T(usize),
    /// Fall-arm instruction executed standalone.
    F(usize),
}

/// Longest-common-subsequence alignment of two non-memory segments; matched
/// pairs are emitted as [`Pair::Both`], the rest interleaved gap-first from
/// the taken arm. Order within each arm is preserved.
fn lcs_align(
    t: &[Inst],
    f: &[Inst],
    tr: std::ops::Range<usize>,
    fr: std::ops::Range<usize>,
    out: &mut Vec<Pair>,
) {
    let (tn, fn_) = (tr.len(), fr.len());
    // dp[i][j] = LCS length of t[tr.start+i..] vs f[fr.start+j..].
    let mut dp = vec![0u32; (tn + 1) * (fn_ + 1)];
    let idx = |i: usize, j: usize| i * (fn_ + 1) + j;
    for i in (0..tn).rev() {
        for j in (0..fn_).rev() {
            let m = if op_key(&t[tr.start + i]) == op_key(&f[fr.start + j]) {
                dp[idx(i + 1, j + 1)] + 1
            } else {
                0
            };
            dp[idx(i, j)] = m.max(dp[idx(i + 1, j)]).max(dp[idx(i, j + 1)]);
        }
    }
    let (mut i, mut j) = (0, 0);
    while i < tn && j < fn_ {
        if op_key(&t[tr.start + i]) == op_key(&f[fr.start + j])
            && dp[idx(i, j)] == dp[idx(i + 1, j + 1)] + 1
        {
            out.push(Pair::Both(tr.start + i, fr.start + j));
            i += 1;
            j += 1;
        } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
            out.push(Pair::T(tr.start + i));
            i += 1;
        } else {
            out.push(Pair::F(fr.start + j));
            j += 1;
        }
    }
    for k in i..tn {
        out.push(Pair::T(tr.start + k));
    }
    for k in j..fn_ {
        out.push(Pair::F(fr.start + k));
    }
}

// ---------------------------------------------------------------------------
// Melded-body construction.
// ---------------------------------------------------------------------------

struct Melded {
    /// Replacement for `[branch_pc, join_pc)`.
    body: Vec<Inst>,
    region_len: usize,
    aligned: usize,
    /// `region_len as i64 - body.len() as i64`.
    saved: i64,
}

/// Incremental emission state: fresh-temp allocator, per-arm rename maps
/// (original register -> temp, built in emission order so reads before an
/// arm's definition still see the pre-branch value), and the lazily
/// materialized mask preamble.
struct Emitter {
    body: Vec<Inst>,
    pre: Vec<Inst>,
    next: u16,
    map_t: Vec<Option<Reg>>,
    map_f: Vec<Option<Reg>>,
    /// `(taken_mask, fall_mask)` once any blend needed them.
    masks: Option<(Reg, Reg)>,
    cond: (CondOp, Operand, Operand),
}

impl Emitter {
    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next);
        self.next += 1;
        r
    }

    /// The all-ones taken/fall masks, materializing the preamble
    /// (`Set`/`Sub`/`Not` on the branch condition) on first use. The
    /// preamble is *prepended* to the final body, so it always reads the
    /// pre-branch register values regardless of when the first blend
    /// happens.
    fn masks(&mut self) -> (Reg, Reg) {
        if let Some(m) = self.masks {
            return m;
        }
        let p = self.fresh();
        let m = self.fresh();
        let nm = self.fresh();
        let (cond, a, b) = self.cond;
        self.pre.push(Inst::Set { cond, dst: p, a, b });
        self.pre.push(Inst::Alu {
            op: AluOp::Sub,
            dst: m,
            a: Operand::Imm(0),
            b: Operand::Reg(p),
        });
        self.pre.push(Inst::Un {
            op: UnOp::Not,
            dst: nm,
            a: Operand::Reg(m),
        });
        self.masks = Some((m, nm));
        (m, nm)
    }

    fn map_op(map: &[Option<Reg>], o: Operand) -> Operand {
        match o {
            Operand::Reg(r) => match map.get(r.0 as usize).copied().flatten() {
                Some(t) => Operand::Reg(t),
                None => o,
            },
            _ => o,
        }
    }

    /// `(x & m) | (y & nm)` into a fresh temp, or `x` directly when the
    /// operands are identical.
    fn blend(&mut self, x: Operand, y: Operand) -> Operand {
        if x == y {
            return x;
        }
        let (m, nm) = self.masks();
        let tx = self.fresh();
        self.body.push(Inst::Alu {
            op: AluOp::And,
            dst: tx,
            a: x,
            b: Operand::Reg(m),
        });
        let ty = self.fresh();
        self.body.push(Inst::Alu {
            op: AluOp::And,
            dst: ty,
            a: y,
            b: Operand::Reg(nm),
        });
        let t = self.fresh();
        self.body.push(Inst::Alu {
            op: AluOp::Or,
            dst: t,
            a: Operand::Reg(tx),
            b: Operand::Reg(ty),
        });
        Operand::Reg(t)
    }

    /// Like [`Emitter::blend`] but writing an existing register (the join
    /// selects).
    fn blend_into(&mut self, dst: Reg, x: Operand, y: Operand) {
        if x == y {
            self.body.push(Inst::Un {
                op: UnOp::Mov,
                dst,
                a: x,
            });
            return;
        }
        let (m, nm) = self.masks();
        let tx = self.fresh();
        self.body.push(Inst::Alu {
            op: AluOp::And,
            dst: tx,
            a: x,
            b: Operand::Reg(m),
        });
        let ty = self.fresh();
        self.body.push(Inst::Alu {
            op: AluOp::And,
            dst: ty,
            a: y,
            b: Operand::Reg(nm),
        });
        self.body.push(Inst::Alu {
            op: AluOp::Or,
            dst,
            a: Operand::Reg(tx),
            b: Operand::Reg(ty),
        });
    }

    /// A blended operand as a base register (blend always yields a register
    /// when both inputs are registers).
    fn blend_base(&mut self, x: Reg, y: Reg) -> Reg {
        match self.blend(Operand::Reg(x), Operand::Reg(y)) {
            Operand::Reg(r) => r,
            _ => unreachable!("blend of two registers is a register"),
        }
    }

    /// Emits one arm instruction standalone: operands renamed through that
    /// arm's map, destination redirected to a fresh temp.
    fn emit_gap(&mut self, inst: &Inst, taken_arm: bool) {
        let map = if taken_arm { &self.map_t } else { &self.map_f };
        let rewritten = match *inst {
            Inst::Alu { op, dst, a, b } => {
                let (a, b) = (Self::map_op(map, a), Self::map_op(map, b));
                let t = self.fresh();
                self.record(dst, t, taken_arm);
                Inst::Alu { op, dst: t, a, b }
            }
            Inst::Un { op, dst, a } => {
                let a = Self::map_op(map, a);
                let t = self.fresh();
                self.record(dst, t, taken_arm);
                Inst::Un { op, dst: t, a }
            }
            Inst::Set { cond, dst, a, b } => {
                let (a, b) = (Self::map_op(map, a), Self::map_op(map, b));
                let t = self.fresh();
                self.record(dst, t, taken_arm);
                Inst::Set { cond, dst: t, a, b }
            }
            // Memory ops always pair (legality), branches/jumps/barriers
            // were rejected before emission.
            _ => unreachable!("gap instructions are ALU-class only"),
        };
        self.body.push(rewritten);
    }

    fn record(&mut self, orig: Reg, temp: Reg, taken_arm: bool) {
        let map = if taken_arm {
            &mut self.map_t
        } else {
            &mut self.map_f
        };
        if let Some(slot) = map.get_mut(orig.0 as usize) {
            *slot = Some(temp);
        }
    }

    fn record_both(&mut self, orig_t: Reg, orig_f: Reg, temp: Reg) {
        self.record(orig_t, temp, true);
        self.record(orig_f, temp, false);
    }
}

/// Builds the melded replacement for a recognized diamond, or explains why
/// it cannot (the `DWS0602` reason).
fn try_meld(
    insts: &[Inst],
    live_in_join: &crate::analysis::RegSet,
    must_at_branch: &crate::analysis::RegSet,
    nregs: u16,
    shape: &Shape,
) -> Result<Melded, String> {
    let t_body = &insts[shape.taken.0..shape.taken.1];
    let f_body = &insts[shape.fall.0..shape.fall.1];
    // Content: straight-line ALU/memory only.
    for (arm, body) in [("taken", t_body), ("fall-through", f_body)] {
        for inst in body {
            match inst {
                Inst::Alu { .. }
                | Inst::Un { .. }
                | Inst::Set { .. }
                | Inst::Load { .. }
                | Inst::Store { .. } => {}
                Inst::Barrier => {
                    return Err(format!("{arm} arm contains a barrier"));
                }
                other => {
                    return Err(format!(
                        "{arm} arm contains non-meldable instruction {other}"
                    ));
                }
            }
        }
    }
    // Memory pairing: k-th memory op of each arm must agree on kind and
    // offset so each lane keeps exactly its own access stream.
    let mem_positions = |body: &[Inst]| -> Vec<usize> {
        body.iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Inst::Load { .. } | Inst::Store { .. }))
            .map(|(k, _)| k)
            .collect()
    };
    let (mems_t, mems_f) = (mem_positions(t_body), mem_positions(f_body));
    if mems_t.len() != mems_f.len() {
        return Err(format!(
            "memory operations do not pair: {} on the taken arm vs {} on the fall-through arm",
            mems_t.len(),
            mems_f.len()
        ));
    }
    for (k, (&ti, &fi)) in mems_t.iter().zip(&mems_f).enumerate() {
        let ok = match (&t_body[ti], &f_body[fi]) {
            (Inst::Load { offset: a, .. }, Inst::Load { offset: b, .. }) => a == b,
            (Inst::Store { offset: a, .. }, Inst::Store { offset: b, .. }) => a == b,
            _ => false,
        };
        if !ok {
            return Err(format!(
                "memory pair {k} mismatches in kind or offset ({} vs {})",
                t_body[ti], f_body[fi]
            ));
        }
    }
    // One-armed definitions of join-live registers need a dominating def:
    // the blend's untaken side reads the pre-branch value.
    let arm_defs = |body: &[Inst]| {
        let mut s = crate::analysis::RegSet::empty(nregs as usize);
        for inst in body {
            if let Some(r) = inst_def(inst) {
                s.set(r.0);
            }
        }
        s
    };
    let (defs_t, defs_f) = (arm_defs(t_body), arm_defs(f_body));
    for r in 0..nregs {
        if live_in_join.has(r) && defs_t.has(r) != defs_f.has(r) && !must_at_branch.has(r) {
            return Err(format!(
                "r{r} is live at the join but defined on only one arm with no dominating definition"
            ));
        }
    }
    // Alignment: memory pairs are anchors; LCS aligns the segments between.
    let mut pairs = Vec::new();
    let (mut ti, mut fi) = (0usize, 0usize);
    for k in 0..=mems_t.len() {
        let (te, fe) = if k < mems_t.len() {
            (mems_t[k], mems_f[k])
        } else {
            (t_body.len(), f_body.len())
        };
        lcs_align(t_body, f_body, ti..te, fi..fe, &mut pairs);
        if k < mems_t.len() {
            pairs.push(Pair::Both(te, fe));
        }
        ti = te + 1;
        fi = fe + 1;
    }
    let aligned = pairs.iter().filter(|p| matches!(p, Pair::Both(..))).count();
    // Emission.
    let Inst::Branch { cond, a, b, .. } = insts[shape.branch_pc] else {
        unreachable!("shape anchors a conditional branch");
    };
    let mut e = Emitter {
        body: Vec::new(),
        pre: Vec::new(),
        next: nregs,
        map_t: vec![None; nregs as usize],
        map_f: vec![None; nregs as usize],
        masks: None,
        cond: (cond, a, b),
    };
    for pair in &pairs {
        match *pair {
            Pair::T(i) => e.emit_gap(&t_body[i], true),
            Pair::F(i) => e.emit_gap(&f_body[i], false),
            Pair::Both(i, j) => {
                let (t, f) = (&t_body[i], &f_body[j]);
                match (*t, *f) {
                    (
                        Inst::Alu {
                            op,
                            dst: dt,
                            a: ta,
                            b: tb,
                        },
                        Inst::Alu {
                            dst: df,
                            a: fa,
                            b: fb,
                            ..
                        },
                    ) => {
                        let a =
                            e.blend(Emitter::map_op(&e.map_t, ta), Emitter::map_op(&e.map_f, fa));
                        let b =
                            e.blend(Emitter::map_op(&e.map_t, tb), Emitter::map_op(&e.map_f, fb));
                        let dst = e.fresh();
                        e.body.push(Inst::Alu { op, dst, a, b });
                        e.record_both(dt, df, dst);
                    }
                    (
                        Inst::Set {
                            cond,
                            dst: dt,
                            a: ta,
                            b: tb,
                        },
                        Inst::Set {
                            dst: df,
                            a: fa,
                            b: fb,
                            ..
                        },
                    ) => {
                        let a =
                            e.blend(Emitter::map_op(&e.map_t, ta), Emitter::map_op(&e.map_f, fa));
                        let b =
                            e.blend(Emitter::map_op(&e.map_t, tb), Emitter::map_op(&e.map_f, fb));
                        let dst = e.fresh();
                        e.body.push(Inst::Set { cond, dst, a, b });
                        e.record_both(dt, df, dst);
                    }
                    (Inst::Un { op, dst: dt, a: ta }, Inst::Un { dst: df, a: fa, .. }) => {
                        let a =
                            e.blend(Emitter::map_op(&e.map_t, ta), Emitter::map_op(&e.map_f, fa));
                        let dst = e.fresh();
                        e.body.push(Inst::Un { op, dst, a });
                        e.record_both(dt, df, dst);
                    }
                    (
                        Inst::Load {
                            dst: dt,
                            base: bt,
                            offset,
                        },
                        Inst::Load {
                            dst: df, base: bf, ..
                        },
                    ) => {
                        let Operand::Reg(bt) = Emitter::map_op(&e.map_t, Operand::Reg(bt)) else {
                            unreachable!()
                        };
                        let Operand::Reg(bf) = Emitter::map_op(&e.map_f, Operand::Reg(bf)) else {
                            unreachable!()
                        };
                        let base = e.blend_base(bt, bf);
                        let dst = e.fresh();
                        e.body.push(Inst::Load { dst, base, offset });
                        e.record_both(dt, df, dst);
                    }
                    (
                        Inst::Store {
                            src: st,
                            base: bt,
                            offset,
                        },
                        Inst::Store {
                            src: sf, base: bf, ..
                        },
                    ) => {
                        let src =
                            e.blend(Emitter::map_op(&e.map_t, st), Emitter::map_op(&e.map_f, sf));
                        let Operand::Reg(bt) = Emitter::map_op(&e.map_t, Operand::Reg(bt)) else {
                            unreachable!()
                        };
                        let Operand::Reg(bf) = Emitter::map_op(&e.map_f, Operand::Reg(bf)) else {
                            unreachable!()
                        };
                        let base = e.blend_base(bt, bf);
                        e.body.push(Inst::Store { src, base, offset });
                    }
                    _ => unreachable!("aligned pairs share an opcode class"),
                }
            }
        }
    }
    // Join selects, ascending register order: only registers the join
    // actually reads, so no dead writes are introduced.
    for r in 0..nregs {
        let (mt, mf) = (e.map_t[r as usize], e.map_f[r as usize]);
        if !live_in_join.has(r) || (mt.is_none() && mf.is_none()) {
            continue;
        }
        let x = Operand::Reg(mt.unwrap_or(Reg(r)));
        let y = Operand::Reg(mf.unwrap_or(Reg(r)));
        e.blend_into(Reg(r), x, y);
    }
    let Emitter { mut pre, body, .. } = e;
    pre.extend(body);
    let region_len = shape.join_pc - shape.branch_pc;
    let saved = region_len as i64 - pre.len() as i64;
    Ok(Melded {
        body: pre,
        region_len,
        aligned,
        saved,
    })
}

// ---------------------------------------------------------------------------
// Public analysis entry.
// ---------------------------------------------------------------------------

fn candidates_impl(
    insts: &[Inst],
    cfg: &Cfg,
    varying: &[bool],
) -> Vec<(MeldCandidate, Option<Melded>)> {
    let nregs = max_reg(insts);
    let live = solve(cfg, &Liveness::new(insts, cfg, nregs));
    let must = solve(cfg, &ReachingDefs::must(insts, cfg, nregs));
    let mut pred_count = vec![0usize; cfg.blocks().len()];
    for b in cfg.blocks() {
        for &s in &b.succs {
            pred_count[s] += 1;
        }
    }
    let mut out = Vec::new();
    let mut uses = Vec::new();
    for (pc, inst) in insts.iter().enumerate() {
        if !matches!(inst, Inst::Branch { .. }) {
            continue;
        }
        inst_uses(inst, &mut uses);
        let divergent = uses
            .iter()
            .any(|r| varying.get(r.0 as usize).copied().unwrap_or(true));
        if !divergent {
            continue; // a uniform branch never diverges a warp: nothing to save
        }
        let Some(shape) = diamond_shape(insts, cfg, &pred_count, pc) else {
            continue;
        };
        let jb = cfg.block_of(shape.join_pc);
        let (verdict, melded) = match try_meld(
            insts,
            &live.on_exit[jb],
            &must.on_exit[shape.block],
            nregs,
            &shape,
        ) {
            Ok(m) if m.saved > 0 => (
                MeldVerdict::Meldable {
                    aligned: m.aligned,
                    region_len: m.region_len,
                    melded_len: m.body.len(),
                    est_saved: m.saved as usize,
                },
                Some(m),
            ),
            Ok(m) => (
                MeldVerdict::Rejected {
                    reason: format!(
                        "unprofitable: melded form is {} insts vs {} divergent (arms too dissimilar)",
                        m.body.len(),
                        m.region_len
                    ),
                },
                None,
            ),
            Err(reason) => (MeldVerdict::Rejected { reason }, None),
        };
        out.push((
            MeldCandidate {
                branch_pc: pc,
                block: shape.block,
                join_pc: shape.join_pc,
                verdict,
            },
            melded,
        ));
    }
    out
}

/// Finds every proper *divergent* diamond and renders a meld verdict for
/// it. `varying` is the verifier's lane-varying register classification
/// (a branch on uniform operands never diverges, so it is skipped
/// entirely). The verifier's advisory pass 6 turns these into `DWS0601`
/// and `DWS0602` notes.
pub fn find_candidates(insts: &[Inst], cfg: &Cfg, varying: &[bool]) -> Vec<MeldCandidate> {
    candidates_impl(insts, cfg, varying)
        .into_iter()
        .map(|(c, _)| c)
        .collect()
}

// ---------------------------------------------------------------------------
// The transform.
// ---------------------------------------------------------------------------

/// Splices `body` over `[lo, hi)`, retargeting every branch/jump outside
/// the region. No target may point *into* the region interior: the arms'
/// only predecessor is the branch being removed (diamond legality).
fn splice(insts: &[Inst], lo: usize, hi: usize, body: Vec<Inst>) -> Vec<Inst> {
    let delta = body.len() as i64 - (hi - lo) as i64;
    let retarget = |t: usize| -> usize {
        if t <= lo {
            t
        } else {
            assert!(t >= hi, "no external control transfer into a meld region");
            (t as i64 + delta) as usize
        }
    };
    let fix = |inst: &Inst| -> Inst {
        match *inst {
            Inst::Branch { cond, a, b, target } => Inst::Branch {
                cond,
                a,
                b,
                target: retarget(target),
            },
            Inst::Jump { target } => Inst::Jump {
                target: retarget(target),
            },
            other => other,
        }
    };
    let mut out = Vec::with_capacity((insts.len() as i64 + delta) as usize);
    out.extend(insts[..lo].iter().map(&fix));
    out.extend(body);
    out.extend(insts[hi..].iter().map(&fix));
    out
}

/// Renumbers registers densely after melding: arm definitions whose every
/// occurrence was renamed into temporaries leave their original index
/// unreferenced, which the verifier would flag as `DWS0304` (register file
/// looser than the kernel needs). `r0`/`r1` stay pinned (preloaded).
fn compact_regs(insts: &mut [Inst]) {
    let top = max_reg(insts) as usize;
    let mut used = vec![false; top];
    used[0] = true;
    if top > 1 {
        used[1] = true;
    }
    let mut uses = Vec::new();
    for inst in insts.iter() {
        inst_uses(inst, &mut uses);
        for r in uses.iter().copied().chain(inst_def(inst)) {
            used[r.0 as usize] = true;
        }
    }
    if used.iter().all(|&u| u) {
        return;
    }
    let mut remap = vec![Reg(0); top];
    let mut next = 0u16;
    for (r, &u) in used.iter().enumerate() {
        if u {
            remap[r] = Reg(next);
            next += 1;
        }
    }
    let map_o = |o: &mut Operand| {
        if let Operand::Reg(r) = o {
            *r = remap[r.0 as usize];
        }
    };
    for inst in insts.iter_mut() {
        match inst {
            Inst::Alu { dst, a, b, .. } | Inst::Set { dst, a, b, .. } => {
                *dst = remap[dst.0 as usize];
                map_o(a);
                map_o(b);
            }
            Inst::Un { dst, a, .. } => {
                *dst = remap[dst.0 as usize];
                map_o(a);
            }
            Inst::Load { dst, base, .. } => {
                *dst = remap[dst.0 as usize];
                *base = remap[base.0 as usize];
            }
            Inst::Store { src, base, .. } => {
                map_o(src);
                *base = remap[base.0 as usize];
            }
            Inst::Branch { a, b, .. } => {
                map_o(a);
                map_o(b);
            }
            Inst::Jump { .. } | Inst::Barrier | Inst::Halt => {}
        }
    }
}

/// Rewrites every profitable meldable diamond into predicated straight-line
/// code, innermost-first, and verifies the result.
///
/// # Errors
///
/// Returns the verifier report when the *input* fails verification (the
/// transform only operates on well-formed programs), or — which would be a
/// transform bug, and is what the fuzzer's meld axis hunts — when the
/// *output* does.
pub fn meld(insts: &[Inst]) -> Result<MeldOutcome, Box<VerifyReport>> {
    let opts = VerifyOptions::default();
    let (report, built) = verify(insts, &opts);
    if report.has_errors() || built.is_none() {
        return Err(Box::new(report));
    }
    let mut cur = insts.to_vec();
    let mut applied = Vec::new();
    for _ in 0..MAX_ROUNDS {
        let cfg = Cfg::build(&cur);
        let varying = crate::verify::compute_varying(&cur, max_reg(&cur));
        let next = candidates_impl(&cur, &cfg, &varying)
            .into_iter()
            .find_map(|(c, m)| m.map(|m| (c, m)));
        let Some((cand, melded)) = next else { break };
        applied.push(MeldApplied {
            branch_pc: cand.branch_pc,
            join_pc: cand.join_pc,
            saved: melded.saved as usize,
        });
        cur = splice(&cur, cand.branch_pc, cand.join_pc, melded.body);
    }
    if !applied.is_empty() {
        compact_regs(&mut cur);
    }
    let (out_report, _) = verify(&cur, &opts);
    if out_report.has_errors() {
        return Err(Box::new(out_report));
    }
    Ok(MeldOutcome {
        insts: cur,
        applied,
        report: out_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{MemoryAccess, ReferenceRunner, VecMemory};
    use crate::program::Program;

    fn rr(r: u16) -> Operand {
        Operand::Reg(Reg(r))
    }

    fn im(v: i64) -> Operand {
        Operand::Imm(v)
    }

    fn alu(op: AluOp, dst: u16, a: Operand, b: Operand) -> Inst {
        Inst::Alu {
            op,
            dst: Reg(dst),
            a,
            b,
        }
    }

    fn load(dst: u16, base: u16, offset: i64) -> Inst {
        Inst::Load {
            dst: Reg(dst),
            base: Reg(base),
            offset,
        }
    }

    fn store(src: Operand, base: u16, offset: i64) -> Inst {
        Inst::Store {
            src,
            base: Reg(base),
            offset,
        }
    }

    fn br(cond: CondOp, a: Operand, b: Operand, target: usize) -> Inst {
        Inst::Branch { cond, a, b, target }
    }

    fn jmp(target: usize) -> Inst {
        Inst::Jump { target }
    }

    /// A 6-instruction polynomial arm on `r3` into `r4`, differing between
    /// the arms only in the first multiplier — the minimal profitable
    /// shape (one blended operand costs 3 mask ops).
    fn poly_arm(k: i64) -> Vec<Inst> {
        vec![
            alu(AluOp::Mul, 4, rr(3), im(k)),
            alu(AluOp::Add, 4, rr(4), im(1)),
            alu(AluOp::Xor, 4, rr(4), rr(3)),
            alu(AluOp::Shr, 4, rr(4), im(1)),
            alu(AluOp::Add, 4, rr(4), rr(3)),
            alu(AluOp::Mul, 4, rr(4), rr(4)),
        ]
    }

    /// `out[tid] = data[tid] < 0 ? poly3(data[tid]) : poly5(data[tid])` —
    /// a divergent diamond whose 6-instruction arms differ in one
    /// immediate.
    fn blend_kernel() -> Vec<Inst> {
        let mut insts = vec![
            alu(AluOp::Mul, 2, rr(0), im(8)),
            load(3, 2, 0),
            br(CondOp::Lt, rr(3), im(0), 10),
        ];
        insts.extend(poly_arm(5)); // pc 3..9, fall-through arm
        insts.push(jmp(16)); // pc 9
        insts.extend(poly_arm(3)); // pc 10..16, taken arm
        insts.extend([
            alu(AluOp::Add, 5, rr(2), im(256)), // pc 16, join
            store(rr(4), 5, 0),
            Inst::Halt,
        ]);
        insts
    }

    fn run_image(insts: &[Inst], nthreads: u64, seed_mem: &[(u64, u64)]) -> Vec<u64> {
        let program = Program::from_insts(insts.to_vec()).expect("verifies");
        let mut mem = VecMemory::new(1024);
        for &(addr, val) in seed_mem {
            mem.store_word(addr, val);
        }
        ReferenceRunner::new(&program, nthreads)
            .run(&mut mem)
            .expect("terminates");
        mem.words().to_vec()
    }

    /// Sign-mixed data so some lanes take each arm.
    fn signed_seed(n: u64) -> Vec<(u64, u64)> {
        (0..n)
            .map(|t| (t * 8, (t as i64 * 7 - 37) as u64))
            .collect()
    }

    #[test]
    fn blend_diamond_melds_and_preserves_semantics() {
        let insts = blend_kernel();
        let out = meld(&insts).expect("transform succeeds");
        assert_eq!(out.applied.len(), 1, "one diamond rewritten");
        assert!(out.applied[0].saved > 0);
        // Straight-line: no control flow left.
        assert!(!out
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Branch { .. } | Inst::Jump { .. })));
        assert!(out.insts.len() < insts.len());
        let seed = signed_seed(16);
        assert_eq!(
            run_image(&insts, 16, &seed),
            run_image(&out.insts, 16, &seed),
            "melded memory image must be bit-identical"
        );
    }

    #[test]
    fn analysis_reports_the_blend_diamond_meldable() {
        let insts = blend_kernel();
        let cfg = Cfg::build(&insts);
        let varying = crate::verify::compute_varying(&insts, max_reg(&insts));
        let cands = find_candidates(&insts, &cfg, &varying);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].branch_pc, 2);
        assert_eq!(cands[0].join_pc, 16);
        match &cands[0].verdict {
            MeldVerdict::Meldable {
                aligned,
                region_len,
                melded_len,
                est_saved,
            } => {
                assert_eq!(*aligned, 6, "all six arm instructions align");
                assert_eq!(*region_len, 14);
                assert_eq!(*melded_len, 13, "3 masks + 3 blend + 6 ops + 1 select");
                assert_eq!(*est_saved, 1);
            }
            v => panic!("expected meldable, got {v:?}"),
        }
    }

    #[test]
    fn barrier_in_arm_is_rejected() {
        let mut insts = blend_kernel();
        insts.insert(4, Inst::Barrier); // into the fall-through arm
        for inst in &mut insts {
            match inst {
                Inst::Branch { target, .. } | Inst::Jump { target } if *target >= 4 => {
                    *target += 1;
                }
                _ => {}
            }
        }
        let cfg = Cfg::build(&insts);
        let varying = crate::verify::compute_varying(&insts, max_reg(&insts));
        let cands = find_candidates(&insts, &cfg, &varying);
        assert_eq!(cands.len(), 1);
        match &cands[0].verdict {
            MeldVerdict::Rejected { reason } => assert!(reason.contains("barrier"), "{reason}"),
            v => panic!("expected rejection, got {v:?}"),
        }
        let out = meld(&insts).expect("input verifies");
        assert!(!out.changed(), "rejected diamond must not be rewritten");
    }

    #[test]
    fn uniform_branch_is_not_a_candidate() {
        // Same diamond shape, but branching on ntid (warp-uniform): it can
        // never diverge, so melding has nothing to save.
        let mut insts = blend_kernel();
        insts[2] = br(CondOp::Lt, rr(1), im(0), 10);
        let cfg = Cfg::build(&insts);
        let varying = crate::verify::compute_varying(&insts, max_reg(&insts));
        assert!(find_candidates(&insts, &cfg, &varying).is_empty());
    }

    #[test]
    fn mismatched_memory_ops_are_rejected() {
        // Taken arm stores, fall-through arm does not: lanes would gain or
        // lose an access if merged.
        let insts = vec![
            alu(AluOp::Mul, 2, rr(0), im(8)),
            load(3, 2, 0),
            br(CondOp::Lt, rr(3), im(0), 5),
            alu(AluOp::Add, 4, rr(3), im(1)), // fall arm
            jmp(7),
            store(im(0), 2, 256), // taken arm
            alu(AluOp::Add, 4, rr(3), im(2)),
            store(rr(4), 2, 512), // join
            Inst::Halt,
        ];
        let cfg = Cfg::build(&insts);
        let varying = crate::verify::compute_varying(&insts, max_reg(&insts));
        let cands = find_candidates(&insts, &cfg, &varying);
        assert_eq!(cands.len(), 1);
        match &cands[0].verdict {
            MeldVerdict::Rejected { reason } => {
                assert!(reason.contains("memory operations do not pair"), "{reason}");
            }
            v => panic!("expected rejection, got {v:?}"),
        }
    }

    #[test]
    fn nested_diamond_melds_inside_out() {
        // Outer diamond whose fall-through arm is itself a meldable
        // diamond. Round 1 melds the inner; the outer arm then becomes a
        // single straight-line block — a proper diamond, but far too
        // dissimilar from the 1-instruction taken arm to be profitable, so
        // exactly one rewrite happens and the outer branch survives.
        let mut insts = vec![
            alu(AluOp::Mul, 2, rr(0), im(8)),
            load(3, 2, 0),
            br(CondOp::Lt, rr(3), im(-5), 19), // outer
            br(CondOp::Lt, rr(3), im(4), 11),  // inner
        ];
        insts.extend(poly_arm(5)); // pc 4..10
        insts.push(jmp(17)); // pc 10
        insts.extend(poly_arm(3)); // pc 11..17
        insts.extend([
            alu(AluOp::Add, 4, rr(4), im(9)), // pc 17, inner join / outer fall tail
            jmp(20),
            alu(AluOp::Add, 4, rr(3), im(2)), // pc 19, outer taken arm
            alu(AluOp::Add, 5, rr(2), im(256)), // pc 20, outer join
            store(rr(4), 5, 0),
            Inst::Halt,
        ]);
        let out = meld(&insts).expect("verifies");
        assert_eq!(out.applied.len(), 1, "only the inner diamond is profitable");
        assert_eq!(
            out.insts
                .iter()
                .filter(|i| matches!(i, Inst::Branch { .. }))
                .count(),
            1,
            "outer branch survives"
        );
        let seed = signed_seed(16);
        assert_eq!(
            run_image(&insts, 16, &seed),
            run_image(&out.insts, 16, &seed)
        );
        // Pre-meld, the outer diamond is not even a candidate (its arm
        // contains control flow); post-inner-meld it gets an explicit
        // unprofitability rejection.
        let cfg = Cfg::build(&out.insts);
        let varying = crate::verify::compute_varying(&out.insts, max_reg(&out.insts));
        let cands = find_candidates(&out.insts, &cfg, &varying);
        assert_eq!(cands.len(), 1);
        assert!(matches!(cands[0].verdict, MeldVerdict::Rejected { .. }));
    }

    #[test]
    fn sequential_diamonds_both_meld() {
        let mut insts = vec![
            alu(AluOp::Mul, 2, rr(0), im(8)),
            load(3, 2, 0),
            br(CondOp::Lt, rr(3), im(0), 10),
        ];
        insts.extend(poly_arm(5)); // pc 3..9
        insts.push(jmp(16));
        insts.extend(poly_arm(3)); // pc 10..16
        insts.push(alu(AluOp::And, 4, rr(4), im(1023))); // pc 16, first join
        insts.push(br(CondOp::Lt, rr(4), im(8), 25)); // pc 17, second diamond
        let poly2 = |k: i64| {
            vec![
                alu(AluOp::Mul, 6, rr(4), im(k)),
                alu(AluOp::Add, 6, rr(6), im(2)),
                alu(AluOp::Xor, 6, rr(6), rr(4)),
                alu(AluOp::Shr, 6, rr(6), im(1)),
                alu(AluOp::Add, 6, rr(6), rr(4)),
                alu(AluOp::Mul, 6, rr(6), rr(6)),
            ]
        };
        insts.extend(poly2(7)); // pc 18..24
        insts.push(jmp(31));
        insts.extend(poly2(11)); // pc 25..31
        insts.extend([
            alu(AluOp::Add, 5, rr(2), im(256)), // pc 31, second join
            store(rr(6), 5, 0),
            Inst::Halt,
        ]);
        let out = meld(&insts).expect("verifies");
        assert_eq!(out.applied.len(), 2, "both diamonds rewritten");
        assert!(!out
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Branch { .. } | Inst::Jump { .. })));
        let seed = signed_seed(16);
        assert_eq!(
            run_image(&insts, 16, &seed),
            run_image(&out.insts, 16, &seed)
        );
    }

    #[test]
    fn meld_is_idempotent() {
        let insts = blend_kernel();
        let once = meld(&insts).expect("melds");
        let twice = meld(&once.insts).expect("still verifies");
        assert!(!twice.changed());
        assert_eq!(once.insts, twice.insts);
    }

    #[test]
    fn melded_output_is_lint_clean() {
        let insts = blend_kernel();
        let out = meld(&insts).expect("melds");
        assert!(out.changed());
        assert_eq!(
            out.report.count(crate::verify::Severity::Error)
                + out.report.count(crate::verify::Severity::Warning),
            0,
            "melded output must carry no errors or warnings:\n{}",
            out.report
        );
    }
}
