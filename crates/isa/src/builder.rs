//! A structured assembler for the kernel IR.
//!
//! [`KernelBuilder`] plays the role of the paper's C-to-Alpha toolchain: the
//! eight benchmarks in `dws-kernels` are written against it. Besides raw
//! instruction emitters it offers structured control flow (`if_then`,
//! `if_then_else`, `while_loop`, `for_range`) which keeps kernels readable
//! and guarantees reducible control flow, so the post-dominator analysis
//! always finds the re-convergence points the hardware needs.

use crate::inst::{AluOp, CondOp, Inst, Operand, Reg, UnOp};
use crate::program::Program;
use crate::verify::{VerifyOptions, VerifyReport};
use std::fmt;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Error returned by [`KernelBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was created but never bound to a position.
    UnboundLabel(usize),
    /// The program failed static verification; carries the structured
    /// [`VerifyReport`] (per-diagnostic `DwsLintCode`, pc, and block).
    Invalid(VerifyReport),
}

impl BuildError {
    /// The verifier's report, when the failure was a verification one.
    pub fn report(&self) -> Option<&VerifyReport> {
        match self {
            BuildError::UnboundLabel(_) => None,
            BuildError::Invalid(report) => Some(report),
        }
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(i) => write!(f, "label {i} was never bound"),
            BuildError::Invalid(report) => {
                write!(f, "invalid program: {}", report.rendered().trim_end())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Unresolved instruction: like [`Inst`] but with labels for targets.
#[derive(Debug, Clone, Copy)]
enum Tpl {
    Done(Inst),
    Branch {
        cond: CondOp,
        a: Operand,
        b: Operand,
        target: Label,
    },
    Jump {
        target: Label,
    },
}

/// Builds a [`Program`] instruction by instruction.
///
/// Register `r0` is the thread id and `r1` the total thread count; fresh
/// registers are allocated by [`KernelBuilder::reg`]. See the crate-level
/// example for a complete kernel.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    insts: Vec<Tpl>,
    labels: Vec<Option<usize>>,
    next_reg: u16,
}

impl KernelBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        KernelBuilder {
            insts: Vec::new(),
            labels: Vec::new(),
            next_reg: 2,
        }
    }

    /// The thread-id register (`r0`), preloaded at thread start.
    pub fn tid(&self) -> Reg {
        Reg(0)
    }

    /// The thread-count register (`r1`), preloaded at thread start.
    pub fn ntid(&self) -> Reg {
        Reg(1)
    }

    /// Allocates a fresh virtual register.
    ///
    /// # Panics
    ///
    /// Panics after 65,534 allocations (far beyond any real kernel).
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register space exhausted");
        r
    }

    /// Creates an unbound label for forward references.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice at {}",
            self.insts.len()
        );
        self.labels[label.0] = Some(self.insts.len());
    }

    /// Current instruction count (the PC the next emitted instruction gets).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    // ---- raw emitters -----------------------------------------------------

    /// Emits a binary ALU instruction.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.insts.push(Tpl::Done(Inst::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        }));
    }

    /// Emits a unary instruction.
    pub fn un(&mut self, op: UnOp, dst: Reg, a: impl Into<Operand>) {
        self.insts.push(Tpl::Done(Inst::Un {
            op,
            dst,
            a: a.into(),
        }));
    }

    /// `dst = a + b` (integer).
    pub fn add(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Add, dst, a, b);
    }

    /// `dst = a - b` (integer).
    pub fn sub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Sub, dst, a, b);
    }

    /// `dst = a * b` (integer).
    pub fn mul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Mul, dst, a, b);
    }

    /// `dst = a / b` (integer; 0 when b is 0).
    pub fn div(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Div, dst, a, b);
    }

    /// `dst = a % b` (integer; 0 when b is 0).
    pub fn rem(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Rem, dst, a, b);
    }

    /// `dst = a & b`.
    pub fn and(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::And, dst, a, b);
    }

    /// `dst = a | b`.
    pub fn or(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Or, dst, a, b);
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Xor, dst, a, b);
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Shl, dst, a, b);
    }

    /// `dst = a >> b` (arithmetic).
    pub fn shr(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Shr, dst, a, b);
    }

    /// `dst = min(a, b)` (signed).
    pub fn imin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Min, dst, a, b);
    }

    /// `dst = max(a, b)` (signed).
    pub fn imax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::Max, dst, a, b);
    }

    /// `dst = a + b` (float).
    pub fn fadd(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::FAdd, dst, a, b);
    }

    /// `dst = a - b` (float).
    pub fn fsub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::FSub, dst, a, b);
    }

    /// `dst = a * b` (float).
    pub fn fmul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::FMul, dst, a, b);
    }

    /// `dst = a / b` (float).
    pub fn fdiv(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::FDiv, dst, a, b);
    }

    /// `dst = min(a, b)` (float).
    pub fn fmin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::FMin, dst, a, b);
    }

    /// `dst = max(a, b)` (float).
    pub fn fmax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::FMax, dst, a, b);
    }

    /// `dst = v` (integer immediate).
    pub fn li(&mut self, dst: Reg, v: i64) {
        self.un(UnOp::Mov, dst, Operand::Imm(v));
    }

    /// `dst = v` (float immediate).
    pub fn lif(&mut self, dst: Reg, v: f64) {
        self.un(UnOp::Mov, dst, Operand::ImmF(v));
    }

    /// `dst = a` (copy).
    pub fn mov(&mut self, dst: Reg, a: impl Into<Operand>) {
        self.un(UnOp::Mov, dst, a);
    }

    /// `dst = sqrt(a)` (float).
    pub fn fsqrt(&mut self, dst: Reg, a: impl Into<Operand>) {
        self.un(UnOp::FSqrt, dst, a);
    }

    /// `dst = |a|` (float).
    pub fn fabs(&mut self, dst: Reg, a: impl Into<Operand>) {
        self.un(UnOp::FAbs, dst, a);
    }

    /// `dst = (f64) a`.
    pub fn i2f(&mut self, dst: Reg, a: impl Into<Operand>) {
        self.un(UnOp::I2F, dst, a);
    }

    /// `dst = (i64) a` (truncating).
    pub fn f2i(&mut self, dst: Reg, a: impl Into<Operand>) {
        self.un(UnOp::F2I, dst, a);
    }

    /// `dst = (a cond b) ? 1 : 0`.
    pub fn set(&mut self, cond: CondOp, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.insts.push(Tpl::Done(Inst::Set {
            cond,
            dst,
            a: a.into(),
            b: b.into(),
        }));
    }

    /// `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.insts.push(Tpl::Done(Inst::Load { dst, base, offset }));
    }

    /// `mem[base + offset] = src`.
    pub fn store(&mut self, src: impl Into<Operand>, base: Reg, offset: i64) {
        self.insts.push(Tpl::Done(Inst::Store {
            src: src.into(),
            base,
            offset,
        }));
    }

    /// Conditional branch to `target` when `a cond b`.
    pub fn br(
        &mut self,
        cond: CondOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        target: Label,
    ) {
        self.insts.push(Tpl::Branch {
            cond,
            a: a.into(),
            b: b.into(),
            target,
        });
    }

    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: Label) {
        self.insts.push(Tpl::Jump { target });
    }

    /// Global barrier across all live threads.
    pub fn barrier(&mut self) {
        self.insts.push(Tpl::Done(Inst::Barrier));
    }

    /// Thread termination.
    pub fn halt(&mut self) {
        self.insts.push(Tpl::Done(Inst::Halt));
    }

    // ---- structured control flow -------------------------------------------

    /// `if (a cond b) { then }` — executes `then` when the condition holds.
    pub fn if_then(
        &mut self,
        cond: CondOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        then: impl FnOnce(&mut Self),
    ) {
        let skip = self.label();
        self.br(cond.negate(), a, b, skip);
        then(self);
        self.bind(skip);
    }

    /// `if (a cond b) { then } else { otherwise }`.
    pub fn if_then_else(
        &mut self,
        cond: CondOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        let else_l = self.label();
        let end = self.label();
        self.br(cond.negate(), a, b, else_l);
        then(self);
        self.jmp(end);
        self.bind(else_l);
        otherwise(self);
        self.bind(end);
    }

    /// `while (a cond b) { body }`. Operands are re-evaluated each iteration.
    pub fn while_loop(
        &mut self,
        cond: CondOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.label();
        let exit = self.label();
        self.bind(head);
        self.br(cond.negate(), a, b, exit);
        body(self);
        self.jmp(head);
        self.bind(exit);
    }

    /// `for (i = start; i < bound; i += step) { body }` over register `i`.
    ///
    /// The canonical grid-stride loop used by every kernel is
    /// `for_range(i, tid, n, ntid, ...)`.
    pub fn for_range(
        &mut self,
        i: Reg,
        start: impl Into<Operand>,
        bound: impl Into<Operand>,
        step: impl Into<Operand>,
        body: impl FnOnce(&mut Self),
    ) {
        let bound = bound.into();
        let step = step.into();
        self.mov(i, start);
        self.while_loop(CondOp::Lt, Operand::Reg(i), bound, |k| {
            body(k);
            k.add(i, Operand::Reg(i), step);
        });
    }

    /// Computes `dst = base + index * scale` (address arithmetic; two ALU
    /// instructions, matching what a compiler would emit).
    pub fn addr(
        &mut self,
        dst: Reg,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        scale: i64,
    ) {
        self.mul(dst, index, Operand::Imm(scale));
        self.add(dst, Operand::Reg(dst), base);
    }

    /// Resolves labels, validates, and runs control-flow analysis.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if any referenced label was never
    /// bound, or [`BuildError::Invalid`] if program validation fails.
    pub fn build(self) -> Result<Program, BuildError> {
        let resolve = |l: Label| -> Result<usize, BuildError> {
            self.labels[l.0].ok_or(BuildError::UnboundLabel(l.0))
        };
        let mut insts = Vec::with_capacity(self.insts.len());
        for tpl in &self.insts {
            let inst = match *tpl {
                Tpl::Done(i) => i,
                Tpl::Branch { cond, a, b, target } => Inst::Branch {
                    cond,
                    a,
                    b,
                    target: resolve(target)?,
                },
                Tpl::Jump { target } => Inst::Jump {
                    target: resolve(target)?,
                },
            };
            insts.push(inst);
        }
        // Labels may be bound at the very end (== insts.len()); that is only
        // valid if nothing branches there, which resolution above catches by
        // producing an out-of-range target that validation rejects.
        Program::from_insts_verified(insts, &VerifyOptions::default()).map_err(BuildError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ReferenceRunner, VecMemory};

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = KernelBuilder::new();
        let l = b.label();
        b.jmp(l);
        b.halt();
        assert_eq!(b.build().unwrap_err(), BuildError::UnboundLabel(0));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = KernelBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn error_display() {
        assert!(BuildError::UnboundLabel(3).to_string().contains('3'));
        assert!(BuildError::UnboundLabel(3).report().is_none());
        // A fall-off-the-end program produces a structured report whose
        // rendering (and code) survive into the Display output.
        let b = KernelBuilder::new();
        let e = {
            let mut b = b;
            b.li(Reg(2), 1);
            b.build().unwrap_err()
        };
        let report = e.report().expect("verification failure");
        assert!(report
            .find(crate::verify::DwsLintCode::FallthroughOffEnd)
            .is_some());
        assert!(e.to_string().contains("DWS0103"));
    }

    #[test]
    fn structured_if_else_works() {
        // out[tid] = tid % 2 == 0 ? 100 : 200
        let mut b = KernelBuilder::new();
        let tid = b.tid();
        let parity = b.reg();
        let val = b.reg();
        let a = b.reg();
        b.rem(parity, tid, Operand::Imm(2));
        b.if_then_else(
            CondOp::Eq,
            Operand::Reg(parity),
            Operand::Imm(0),
            |k| k.li(val, 100),
            |k| k.li(val, 200),
        );
        b.mul(a, tid, Operand::Imm(8));
        b.store(Operand::Reg(val), a, 0);
        b.halt();
        let p = b.build().unwrap();

        let mut mem = VecMemory::new(4 * 8);
        ReferenceRunner::new(&p, 4).run(&mut mem).unwrap();
        assert_eq!(mem.read_i64(0), 100);
        assert_eq!(mem.read_i64(8), 200);
        assert_eq!(mem.read_i64(16), 100);
        assert_eq!(mem.read_i64(24), 200);
    }

    #[test]
    fn for_range_grid_stride() {
        // Each thread doubles elements i = tid, tid + ntid, ... of a 10-array.
        let mut b = KernelBuilder::new();
        let (tid, ntid) = (b.tid(), b.ntid());
        let i = b.reg();
        let a = b.reg();
        let v = b.reg();
        b.for_range(i, tid, Operand::Imm(10), ntid, |k| {
            k.addr(a, Operand::Imm(0), Operand::Reg(i), 8);
            k.load(v, a, 0);
            k.add(v, Operand::Reg(v), Operand::Reg(v));
            k.store(Operand::Reg(v), a, 0);
        });
        b.halt();
        let p = b.build().unwrap();

        let mut mem = VecMemory::new(10 * 8);
        for i in 0..10 {
            mem.write_i64(i * 8, i as i64 + 1);
        }
        ReferenceRunner::new(&p, 3).run(&mut mem).unwrap();
        for i in 0..10 {
            assert_eq!(mem.read_i64(i * 8), 2 * (i as i64 + 1));
        }
    }

    #[test]
    fn loop_branch_has_ipdom_at_exit() {
        let mut b = KernelBuilder::new();
        let i = b.reg();
        b.for_range(i, Operand::Imm(0), Operand::Imm(4), Operand::Imm(1), |k| {
            k.add(i, Operand::Reg(i), Operand::Imm(0));
        });
        b.halt();
        let p = b.build().unwrap();
        let branches: Vec<_> = p.branches().collect();
        assert_eq!(branches.len(), 1);
        let (_pc, info) = branches[0];
        // The loop-exit branch re-converges at the halt block.
        assert_eq!(p.inst(info.ipdom), &Inst::Halt);
    }
}
