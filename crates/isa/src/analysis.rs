//! Reusable dataflow framework for the kernel IR.
//!
//! The verifier ([`crate::verify`]) grew four ad-hoc fixpoint loops —
//! must/may reaching-definitions, liveness, uniformity tainting, and the
//! interval abstract interpretation. This module extracts the machinery
//! those loops share so each analysis states only its *domain* (the fact
//! lattice) and *transfer* (how a block changes facts), and new analyses —
//! the control-flow melding pass in [`crate::meld`] needs liveness at join
//! points, for one — reuse a solver that is tested once.
//!
//! Three solvers cover the shapes that actually occur:
//!
//! * [`solve`] — classic round-robin iteration of a [`BlockProblem`]
//!   (forward or backward) to its maximal fixpoint. Reaching-definitions
//!   and liveness are instances ([`ReachingDefs`], [`Liveness`]).
//! * [`solve_flow`] — a LIFO-worklist solver for forward analyses that
//!   need *per-edge* transfer (branch-condition narrowing) and custom join
//!   logic (widening): the interval bounds pass is the instance.
//! * [`fixpoint`] — the degenerate driver for flow-insensitive analyses
//!   (the uniformity taint) that iterate one global fact to stability.
//!
//! The iteration disciplines deliberately mirror the loops they replaced
//! instruction-for-instruction — `solve` visits blocks in index order
//! (reverse for backward problems), `solve_flow` pushes edges in the order
//! the problem emits them — so the framework-based verifier passes produce
//! *identical* diagnostics to the legacy fixpoints they superseded (pinned
//! by the `dataflow_differential` test against the retained reference
//! implementation).

use crate::cfg::Cfg;
use crate::inst::{Inst, Operand, Reg};

// ---------------------------------------------------------------------------
// Use/def utilities shared by every register-level analysis.
// ---------------------------------------------------------------------------

/// Collects the registers `inst` reads into `out` (cleared first).
pub fn inst_uses(inst: &Inst, out: &mut Vec<Reg>) {
    out.clear();
    let mut op = |o: &Operand| {
        if let Operand::Reg(r) = o {
            out.push(*r);
        }
    };
    match inst {
        Inst::Alu { a, b, .. } | Inst::Set { a, b, .. } | Inst::Branch { a, b, .. } => {
            op(a);
            op(b);
        }
        Inst::Un { a, .. } => op(a),
        Inst::Load { base, .. } => out.push(*base),
        Inst::Store { src, base, .. } => {
            op(src);
            out.push(*base);
        }
        Inst::Jump { .. } | Inst::Barrier | Inst::Halt => {}
    }
}

/// The register `inst` writes, if any.
pub fn inst_def(inst: &Inst) -> Option<Reg> {
    match inst {
        Inst::Alu { dst, .. }
        | Inst::Un { dst, .. }
        | Inst::Set { dst, .. }
        | Inst::Load { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// One past the highest register index referenced anywhere (min 2: the
/// preloaded `r0`/`r1`).
pub fn max_reg(insts: &[Inst]) -> u16 {
    let mut hi = 1u16;
    let mut uses = Vec::new();
    for inst in insts {
        inst_uses(inst, &mut uses);
        for r in uses.iter().copied().chain(inst_def(inst)) {
            hi = hi.max(r.0);
        }
    }
    hi + 1
}

// ---------------------------------------------------------------------------
// Dense register bitsets: the fact domain of the def-use analyses.
// ---------------------------------------------------------------------------

/// Small dense register bitset used as the fact type of the register-level
/// dataflow problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet(Vec<u64>);

impl RegSet {
    /// The empty set over a universe of `nregs` registers.
    pub fn empty(nregs: usize) -> RegSet {
        RegSet(vec![0u64; nregs.div_ceil(64).max(1)])
    }

    /// The full set (⊤ of intersection-meet problems).
    pub fn full(nregs: usize) -> RegSet {
        RegSet(vec![!0u64; nregs.div_ceil(64).max(1)])
    }

    /// Inserts register `r`.
    pub fn set(&mut self, r: u16) {
        self.0[r as usize / 64] |= 1 << (r as usize % 64);
    }

    /// Removes register `r`.
    pub fn clear(&mut self, r: u16) {
        self.0[r as usize / 64] &= !(1 << (r as usize % 64));
    }

    /// Whether register `r` is in the set.
    pub fn has(&self, r: u16) -> bool {
        self.0[r as usize / 64] >> (r as usize % 64) & 1 == 1
    }

    /// `self ∪= o`; reports whether `self` changed.
    pub fn union_with(&mut self, o: &RegSet) -> bool {
        let mut changed = false;
        for (w, x) in self.0.iter_mut().zip(&o.0) {
            let n = *w | x;
            changed |= n != *w;
            *w = n;
        }
        changed
    }

    /// `self ∩= o`.
    pub fn intersect_with(&mut self, o: &RegSet) {
        for (w, x) in self.0.iter_mut().zip(&o.0) {
            *w &= x;
        }
    }
}

// ---------------------------------------------------------------------------
// Round-robin block dataflow.
// ---------------------------------------------------------------------------

/// Which way facts propagate through the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry block toward the exits.
    Forward,
    /// Facts flow from the exits toward the entry.
    Backward,
}

/// A monotone block-level dataflow problem on a finite lattice.
///
/// Conventions (matching the legacy verifier fixpoints exactly):
///
/// * `Forward` — the entry block's input is [`BlockProblem::boundary`]
///   unconditionally; its predecessors (back edges into block 0) are *not*
///   met in. Every other block's input is the meet over its predecessors'
///   outputs, starting from [`BlockProblem::top`].
/// * `Backward` — every block's input (its out-fact) is the meet over its
///   successors' results starting from `top`; exit blocks (no successors)
///   therefore sit at `top`, which doubles as the boundary.
pub trait BlockProblem {
    /// The fact lattice element attached to each block.
    type Fact: Clone + PartialEq;

    /// Which way this problem propagates.
    fn direction(&self) -> Direction;

    /// The fact at the CFG boundary (entry block input, forward only).
    fn boundary(&self) -> Self::Fact;

    /// The most optimistic fact: the identity of [`BlockProblem::meet`].
    fn top(&self) -> Self::Fact;

    /// Combines a neighbor's fact into the accumulating input.
    fn meet(&self, acc: &mut Self::Fact, other: &Self::Fact);

    /// Pushes an input fact through block `b`, producing its output.
    fn transfer(&self, b: usize, fact: &mut Self::Fact);
}

/// Fixpoint facts per block, both before and after the block's transfer.
///
/// For forward problems `on_entry` is the fact at the block's first
/// instruction and `on_exit` after its last; for backward problems
/// `on_entry` is the fact *after* the block (its live-out–style input) and
/// `on_exit` the fact before it.
#[derive(Debug, Clone)]
pub struct BlockFacts<F> {
    /// Fact on the input side of each block's transfer.
    pub on_entry: Vec<F>,
    /// Fact on the output side of each block's transfer.
    pub on_exit: Vec<F>,
}

/// Round-robin iteration of `p` over `cfg` to its maximal fixpoint.
pub fn solve<P: BlockProblem>(cfg: &Cfg, p: &P) -> BlockFacts<P::Fact> {
    let nb = cfg.blocks().len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (bi, b) in cfg.blocks().iter().enumerate() {
        for &s in &b.succs {
            preds[s].push(bi);
        }
    }
    let mut on_entry: Vec<P::Fact> = vec![p.top(); nb];
    let mut on_exit: Vec<P::Fact> = vec![p.top(); nb];
    let forward = p.direction() == Direction::Forward;
    let mut changed = true;
    while changed {
        changed = false;
        let order: Box<dyn Iterator<Item = usize>> = if forward {
            Box::new(0..nb)
        } else {
            Box::new((0..nb).rev())
        };
        for bi in order {
            let mut acc = if forward && bi == 0 {
                p.boundary()
            } else {
                let mut acc = p.top();
                let neighbors: &[usize] = if forward {
                    &preds[bi]
                } else {
                    &cfg.blocks()[bi].succs
                };
                for &nb in neighbors {
                    p.meet(&mut acc, &on_exit[nb]);
                }
                acc
            };
            if acc != on_entry[bi] {
                on_entry[bi] = acc.clone();
            }
            p.transfer(bi, &mut acc);
            if acc != on_exit[bi] {
                on_exit[bi] = acc;
                changed = true;
            }
        }
    }
    BlockFacts { on_entry, on_exit }
}

// ---------------------------------------------------------------------------
// Instances: reaching definitions and liveness.
// ---------------------------------------------------------------------------

/// Reaching-definitions over register bitsets: which registers have a
/// definition reaching a point. `must` variant intersects over paths
/// (definite assignment), `may` variant unions (possible assignment).
pub struct ReachingDefs {
    defs: Vec<RegSet>,
    entry: RegSet,
    nregs: usize,
    must: bool,
}

impl ReachingDefs {
    fn new(insts: &[Inst], cfg: &Cfg, num_regs: u16, must: bool) -> Self {
        let nr = num_regs as usize;
        let mut entry = RegSet::empty(nr);
        entry.set(0);
        if num_regs > 1 {
            entry.set(1);
        }
        let mut defs: Vec<RegSet> = vec![RegSet::empty(nr); cfg.blocks().len()];
        for (bi, b) in cfg.blocks().iter().enumerate() {
            for inst in &insts[b.start..b.end] {
                if let Some(r) = inst_def(inst) {
                    defs[bi].set(r.0);
                }
            }
        }
        ReachingDefs {
            defs,
            entry,
            nregs: nr,
            must,
        }
    }

    /// Definite assignment: a register reaches only if *every* path
    /// defines it. Entry state is `{r0, r1}` (the preloaded thread id and
    /// thread count).
    pub fn must(insts: &[Inst], cfg: &Cfg, num_regs: u16) -> Self {
        ReachingDefs::new(insts, cfg, num_regs, true)
    }

    /// Possible assignment: a register reaches if *some* path defines it.
    pub fn may(insts: &[Inst], cfg: &Cfg, num_regs: u16) -> Self {
        ReachingDefs::new(insts, cfg, num_regs, false)
    }
}

impl BlockProblem for ReachingDefs {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> RegSet {
        self.entry.clone()
    }

    fn top(&self) -> RegSet {
        if self.must {
            RegSet::full(self.nregs)
        } else {
            RegSet::empty(self.nregs)
        }
    }

    fn meet(&self, acc: &mut RegSet, other: &RegSet) {
        if self.must {
            acc.intersect_with(other);
        } else {
            acc.union_with(other);
        }
    }

    fn transfer(&self, b: usize, fact: &mut RegSet) {
        fact.union_with(&self.defs[b]);
    }
}

/// Classic backward liveness over register bitsets:
/// `live_in = gen ∪ (live_out ∖ kill)` with `gen` the upward-exposed uses
/// and `kill` the registers defined without a prior use.
pub struct Liveness {
    gen_set: Vec<RegSet>,
    kill: Vec<RegSet>,
    nregs: usize,
}

impl Liveness {
    /// Builds the per-block gen/kill summaries.
    pub fn new(insts: &[Inst], cfg: &Cfg, num_regs: u16) -> Self {
        let nr = num_regs as usize;
        let nb = cfg.blocks().len();
        let mut gen_set: Vec<RegSet> = vec![RegSet::empty(nr); nb];
        let mut kill: Vec<RegSet> = vec![RegSet::empty(nr); nb];
        let mut uses = Vec::new();
        for (bi, b) in cfg.blocks().iter().enumerate() {
            let mut defined = RegSet::empty(nr);
            for inst in &insts[b.start..b.end] {
                inst_uses(inst, &mut uses);
                for &r in &uses {
                    if !defined.has(r.0) {
                        gen_set[bi].set(r.0);
                    }
                }
                if let Some(r) = inst_def(inst) {
                    defined.set(r.0);
                    if !gen_set[bi].has(r.0) {
                        kill[bi].set(r.0);
                    }
                }
            }
        }
        Liveness {
            gen_set,
            kill,
            nregs: nr,
        }
    }
}

impl BlockProblem for Liveness {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> RegSet {
        RegSet::empty(self.nregs)
    }

    fn top(&self) -> RegSet {
        RegSet::empty(self.nregs)
    }

    fn meet(&self, acc: &mut RegSet, other: &RegSet) {
        acc.union_with(other);
    }

    fn transfer(&self, b: usize, fact: &mut RegSet) {
        for r in 0..self.nregs as u16 {
            if self.kill[b].has(r) {
                fact.clear(r);
            }
        }
        fact.union_with(&self.gen_set[b]);
    }
}

// ---------------------------------------------------------------------------
// Worklist edge-flow solver (the interval pass's skeleton).
// ---------------------------------------------------------------------------

/// A forward analysis whose transfer acts *per edge* — the out-state of a
/// block can differ per successor (branch-condition narrowing can even
/// prove an edge infeasible) — and whose join may widen.
///
/// The solver owns only the worklist discipline: a LIFO stack seeded with
/// the entry block, re-queuing a successor whenever its joined input
/// changes. Edge emission order is the problem's, preserved exactly, so an
/// instance restructured out of a hand-written loop (the verifier's bounds
/// pass) keeps its iteration order — and therefore its widening decisions —
/// bit-for-bit.
pub trait FlowProblem {
    /// The abstract state attached to block inputs.
    type State: Clone;

    /// State on entry to block 0.
    fn entry(&self) -> Self::State;

    /// Transfers `st` through block `block` and emits one narrowed state
    /// per feasible out-edge via `emit(successor, state)`.
    fn flow(&mut self, block: usize, st: Self::State, emit: &mut dyn FnMut(usize, Self::State));

    /// Joins `new` into the successor's pending input; returns whether the
    /// input changed (the successor is then re-queued). Widening lives
    /// here.
    fn join(&mut self, succ: usize, cur: &mut Self::State, new: Self::State) -> bool;
}

/// Runs `p` to fixpoint over a CFG of `nb` blocks; returns each block's
/// final input state (`None` for blocks no feasible path reaches).
pub fn solve_flow<P: FlowProblem>(nb: usize, p: &mut P) -> Vec<Option<P::State>> {
    let mut in_state: Vec<Option<P::State>> = vec![None; nb];
    if nb == 0 {
        return in_state;
    }
    in_state[0] = Some(p.entry());
    let mut work = vec![0usize];
    let mut outs: Vec<(usize, P::State)> = Vec::new();
    while let Some(bi) = work.pop() {
        let Some(st0) = in_state[bi].clone() else {
            continue;
        };
        outs.clear();
        p.flow(bi, st0, &mut |succ, st| outs.push((succ, st)));
        for (succ, st) in outs.drain(..) {
            match &mut in_state[succ] {
                None => {
                    in_state[succ] = Some(st);
                    work.push(succ);
                }
                Some(cur) => {
                    if p.join(succ, cur, st) {
                        work.push(succ);
                    }
                }
            }
        }
    }
    in_state
}

/// Iterates `step` until it reports no change: the driver for
/// flow-insensitive fixpoints (the uniformity taint) whose whole state
/// lives in the closure's captures.
pub fn fixpoint(mut step: impl FnMut() -> bool) {
    while step() {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, CondOp};

    fn add(dst: u16, a: Operand, b: Operand) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            a,
            b,
        }
    }

    /// A diamond: block 0 branches, arms define r2 (both) and r3 (one),
    /// join reads both.
    fn diamond() -> Vec<Inst> {
        vec![
            Inst::Branch {
                cond: CondOp::Eq,
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(0),
                target: 4,
            },
            add(2, Operand::Reg(Reg(0)), Operand::Imm(1)),
            add(3, Operand::Reg(Reg(0)), Operand::Imm(2)),
            Inst::Jump { target: 5 },
            add(2, Operand::Reg(Reg(0)), Operand::Imm(3)),
            Inst::Store {
                src: Operand::Reg(Reg(2)),
                base: Reg(0),
                offset: 0,
            },
            Inst::Store {
                src: Operand::Reg(Reg(3)),
                base: Reg(0),
                offset: 8,
            },
            Inst::Halt,
        ]
    }

    #[test]
    fn regset_ops() {
        let mut s = RegSet::empty(70);
        s.set(0);
        s.set(69);
        assert!(s.has(0) && s.has(69) && !s.has(3));
        let mut t = RegSet::full(70);
        t.intersect_with(&s);
        assert!(t.has(69) && !t.has(5));
        s.clear(69);
        assert!(!s.has(69));
        assert!(t.union_with(&RegSet::full(70)));
    }

    #[test]
    fn must_and_may_reaching_disagree_on_one_armed_defs() {
        let insts = diamond();
        let cfg = Cfg::build(&insts);
        let nr = max_reg(&insts);
        let must = solve(&cfg, &ReachingDefs::must(&insts, &cfg, nr));
        let may = solve(&cfg, &ReachingDefs::may(&insts, &cfg, nr));
        let join = cfg.block_of(5);
        // r2 is defined on both arms: definitely assigned at the join.
        assert!(must.on_entry[join].has(2));
        // r3 only on one arm: possibly but not definitely assigned.
        assert!(!must.on_entry[join].has(3));
        assert!(may.on_entry[join].has(3));
        // The preloaded registers reach everywhere.
        assert!(must.on_entry[join].has(0) && must.on_entry[join].has(1));
    }

    #[test]
    fn liveness_sees_join_reads_from_arms() {
        let insts = diamond();
        let cfg = Cfg::build(&insts);
        let nr = max_reg(&insts);
        let live = solve(&cfg, &Liveness::new(&insts, &cfg, nr));
        // At the end of each arm, r2 and r3 are live (the join stores them).
        let arm = cfg.block_of(1);
        assert!(live.on_entry[arm].has(2), "live-out of the fall arm");
        assert!(live.on_entry[arm].has(3));
        // The join block ends in Halt: its live-out (backward boundary) is
        // empty, even though r2/r3 are live on entry for the stores.
        let join = cfg.block_of(5);
        assert!(!live.on_entry[join].has(2) && !live.on_entry[join].has(3));
        assert!(live.on_exit[join].has(2) && live.on_exit[join].has(3));
    }

    #[test]
    fn solve_flow_reaches_fixpoint_on_a_loop() {
        // Count reachable visits: state = (), join never changes, so the
        // solver terminates even with a back edge.
        let insts = vec![
            add(2, Operand::Reg(Reg(0)), Operand::Imm(1)),
            Inst::Branch {
                cond: CondOp::Lt,
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(10),
                target: 0,
            },
            Inst::Halt,
        ];
        let cfg = Cfg::build(&insts);
        struct Count {
            cfg: Cfg,
            flows: usize,
        }
        impl FlowProblem for Count {
            type State = u32;
            fn entry(&self) -> u32 {
                0
            }
            fn flow(&mut self, block: usize, st: u32, emit: &mut dyn FnMut(usize, u32)) {
                self.flows += 1;
                for &s in &self.cfg.blocks()[block].succs {
                    emit(s, st.saturating_add(1));
                }
            }
            fn join(&mut self, _succ: usize, cur: &mut u32, new: u32) -> bool {
                // Join = max with saturation at 3 (a tiny widening).
                let j = (*cur).max(new).min(3);
                let changed = j != *cur;
                *cur = j;
                changed
            }
        }
        let nb = cfg.blocks().len();
        let mut p = Count { cfg, flows: 0 };
        let states = solve_flow(nb, &mut p);
        assert!(states.iter().all(Option::is_some));
        assert!(p.flows >= nb, "every block flowed at least once");
    }

    #[test]
    fn fixpoint_runs_until_stable() {
        let mut x = 0u32;
        fixpoint(|| {
            if x < 5 {
                x += 1;
                true
            } else {
                false
            }
        });
        assert_eq!(x, 5);
    }
}
