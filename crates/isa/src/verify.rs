//! Multi-pass static verification and lint framework for the kernel IR.
//!
//! DWS correctness hinges on static properties of the program: every
//! potentially-divergent branch must carry a valid immediate post-dominator
//! (the hardware re-convergence point), the re-convergence stack must be
//! statically bounded, and the paper's Section 4.3 subdivision-eligibility
//! marking must be consistent with the CFG. The paper instrumented these
//! properties by hand; this module *checks* them mechanically, so a
//! malformed kernel is rejected at [`Program`](crate::Program) build time
//! instead of surfacing as a runtime panic, a ShadowLane oracle mismatch,
//! or a watchdog abort deep inside a sweep.
//!
//! Five analysis passes run over the instruction stream:
//!
//! 1. **CFG well-formedness** (`DWS01xx`) — branch/jump targets in range, no
//!    fall-through off the end, block partition consistent with
//!    [`Cfg::build`], unreachable code.
//! 2. **Re-convergence verification** (`DWS02xx`) — immediate post-dominators
//!    are recomputed *independently* (set-based dataflow on the reverse CFG,
//!    a different algorithm from the Cooper–Harvey–Kennedy walk in
//!    [`crate::cfg`]) and diffed against the [`BranchInfo`] annotations; the
//!    static nesting depth of divergent branches bounds the re-convergence
//!    stack, checked against the warp-split-table capacity when known.
//! 3. **Def-use dataflow** (`DWS03xx`) — definite-assignment and
//!    reaching-definition analysis flags use-before-def (error when no
//!    definition reaches on *any* path, warning when only *some* paths
//!    define), dead register writes, and register-file tightness.
//! 4. **Static memory bounds** (`DWS04xx`) — interval analysis over the
//!    address arithmetic (with branch-condition narrowing and widening on
//!    loops) proves accesses inside the kernel's buffer layout where it can,
//!    reports proven violations as errors and unprovable accesses as notes.
//! 5. **Divergence / uniformity** (`DWS05xx`) — registers are classified as
//!    warp-uniform or lane-varying by operand provenance (thread-id–derived
//!    values and loads vary; immediates and the thread count are uniform);
//!    branches on varying operands are the potentially-divergent ones. The
//!    pass re-derives the Section 4.3 subdividable marking and flags
//!    barriers reachable under divergence (a deadlock risk: only a subset
//!    of live threads may arrive).
//! 6. **Melding advisory** (`DWS06xx`) — the [`crate::meld`] analysis
//!    inspects every proper divergent diamond and notes whether rewriting
//!    it into predicated straight-line code (`dws-cli opt --meld`) would
//!    save divergent issue slots, or why not.
//!
//! Diagnostics are structured ([`Diagnostic`]), collected rather than
//! fail-fast, and severity-gated: errors reject the program, warnings and
//! notes are reported by the linter (`dws-cli lint`). Rendering follows the
//! rustc style, quoting the offending instruction:
//!
//! ```text
//! error[DWS0301]: r5 is read at pc 2 but no definition reaches it
//!   --> pc 2 (block 0): r6 = Add(r5, 1)
//! ```

use crate::analysis::{
    fixpoint, inst_def, inst_uses, max_reg, solve, solve_flow, BlockFacts, FlowProblem, Liveness,
    ReachingDefs, RegSet,
};
use crate::cfg::{BranchInfo, Cfg, RECONV_NONE, SUBDIV_MAX_BLOCK};
use crate::inst::{AluOp, CondOp, Inst, Operand, Reg, UnOp};
use std::fmt;

/// Per-pc branch annotations as produced by [`Cfg::analyze_branches`]:
/// `None` for non-branch instructions.
pub type Annotations = Vec<Option<BranchInfo>>;

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: the analysis could not prove a property (it may still
    /// hold at runtime). Never gates anything.
    Note,
    /// Suspicious but not definitely wrong; gates only under
    /// `--deny-warnings`.
    Warning,
    /// The program is definitely malformed; rejected at build time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Every lint the verifier can raise, one code per defect kind.
///
/// The numeric space mirrors the pass pipeline: `DWS01xx` CFG
/// well-formedness, `DWS02xx` re-convergence, `DWS03xx` def-use dataflow,
/// `DWS04xx` memory bounds, `DWS05xx` divergence/uniformity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DwsLintCode {
    /// The program has no instructions.
    EmptyProgram,
    /// A branch or jump target is outside the program.
    TargetOutOfRange,
    /// Control can fall off the end (last instruction is no terminator).
    FallthroughOffEnd,
    /// The independently recomputed basic-block partition disagrees with
    /// [`Cfg::build`] (an internal consistency failure).
    BlockPartitionMismatch,
    /// A basic block can never execute.
    UnreachableCode,
    /// A branch annotation's immediate post-dominator disagrees with the
    /// independently recomputed one.
    IpdomMismatch,
    /// A conditional branch lacks its [`BranchInfo`] annotation, a
    /// non-branch carries one, or the taken/fall-through fields are wrong.
    BadBranchAnnotation,
    /// The static re-convergence-stack bound exceeds the warp-split-table
    /// capacity: a fully nested warp cannot express all its splits and
    /// subdivision will throttle.
    ReconvDepthExceedsWst,
    /// Divergent-branch regions nest cyclically (irreducible control flow);
    /// the static stack bound is a conservative cap.
    IrreducibleNesting,
    /// A register is read but no definition reaches the read on any path.
    UseBeforeDef,
    /// A register is read but only some paths to the read define it.
    MaybeUseBeforeDef,
    /// A register write is never read afterwards.
    DeadWrite,
    /// A register index below `num_regs` is never referenced: the register
    /// file is allocated looser than the kernel needs.
    UnusedReg,
    /// A memory access is provably outside the kernel's buffer space.
    OobAccess,
    /// A memory access has a *bounded* address interval that straddles the
    /// end (or start) of the buffer space.
    OobAccessPossible,
    /// The address interval is unbounded; in-bounds could not be proven.
    UnprovenBounds,
    /// The declared buffer layout is inconsistent with the functional
    /// memory (overlapping regions or extent beyond the allocation).
    LayoutMismatch,
    /// A branch's subdividable marking disagrees with the recomputed
    /// Section 4.3 heuristic (post-dominator block length vs threshold).
    SubdivMarkMismatch,
    /// A barrier is reachable while a potentially-divergent branch has not
    /// re-converged: only a subset of live threads may arrive (deadlock
    /// risk, see the divergent-barrier golden test in `dws-sim`).
    BarrierUnderDivergence,
    /// A divergent diamond whose arms are similar enough that melding them
    /// into predicated straight-line code (`dws-cli opt --meld`) would
    /// save divergent issue slots. Advisory.
    MeldableRegion,
    /// A proper divergent diamond the melding analysis inspected and
    /// declined (illegal content, unpairable memory ops, or unprofitable
    /// arms). Advisory; the reason is in the message.
    MeldRejected,
}

impl DwsLintCode {
    /// The stable `DWSnnnn` code string used in rendered diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            DwsLintCode::EmptyProgram => "DWS0101",
            DwsLintCode::TargetOutOfRange => "DWS0102",
            DwsLintCode::FallthroughOffEnd => "DWS0103",
            DwsLintCode::BlockPartitionMismatch => "DWS0104",
            DwsLintCode::UnreachableCode => "DWS0105",
            DwsLintCode::IpdomMismatch => "DWS0201",
            DwsLintCode::BadBranchAnnotation => "DWS0202",
            DwsLintCode::ReconvDepthExceedsWst => "DWS0203",
            DwsLintCode::IrreducibleNesting => "DWS0204",
            DwsLintCode::UseBeforeDef => "DWS0301",
            DwsLintCode::MaybeUseBeforeDef => "DWS0302",
            DwsLintCode::DeadWrite => "DWS0303",
            DwsLintCode::UnusedReg => "DWS0304",
            DwsLintCode::OobAccess => "DWS0401",
            DwsLintCode::OobAccessPossible => "DWS0402",
            DwsLintCode::UnprovenBounds => "DWS0403",
            DwsLintCode::LayoutMismatch => "DWS0404",
            DwsLintCode::SubdivMarkMismatch => "DWS0501",
            DwsLintCode::BarrierUnderDivergence => "DWS0502",
            DwsLintCode::MeldableRegion => "DWS0601",
            DwsLintCode::MeldRejected => "DWS0602",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        use DwsLintCode::*;
        match self {
            EmptyProgram
            | TargetOutOfRange
            | FallthroughOffEnd
            | BlockPartitionMismatch
            | IpdomMismatch
            | BadBranchAnnotation
            | UseBeforeDef
            | OobAccess
            | LayoutMismatch
            | SubdivMarkMismatch => Severity::Error,
            UnreachableCode
            | ReconvDepthExceedsWst
            | IrreducibleNesting
            | MaybeUseBeforeDef
            | DeadWrite
            | UnusedReg
            | OobAccessPossible
            | BarrierUnderDivergence => Severity::Warning,
            UnprovenBounds | MeldableRegion | MeldRejected => Severity::Note,
        }
    }
}

impl fmt::Display for DwsLintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured finding, anchored to a PC and basic block where the
/// defect has a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: DwsLintCode,
    /// Reported severity (always `code.severity()` for verifier-raised
    /// diagnostics; kept explicit so external producers can downgrade).
    pub severity: Severity,
    /// Offending instruction, when the defect has one.
    pub pc: Option<usize>,
    /// Basic block containing `pc`, when known.
    pub block: Option<usize>,
    /// One-line description of the defect.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at `code`'s default severity.
    pub fn new(
        code: DwsLintCode,
        pc: Option<usize>,
        block: Option<usize>,
        message: String,
    ) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            pc,
            block,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(pc) = self.pc {
            write!(f, " (pc {pc}")?;
            if let Some(b) = self.block {
                write!(f, ", block {b}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Aggregate facts the verifier derives; kept on the built
/// [`Program`](crate::Program) for downstream cross-checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Basic blocks in the CFG.
    pub blocks: usize,
    /// Conditional branches.
    pub branches: usize,
    /// Branches whose operands are lane-varying (may diverge a warp).
    pub divergent_branches: usize,
    /// Branches provably warp-uniform (never diverge; a scheduler fast path
    /// could skip the re-convergence machinery for these).
    pub uniform_branches: usize,
    /// Branches marked subdividable under the Section 4.3 heuristic.
    pub subdividable_branches: usize,
    /// Longest chain of simultaneously-open *distinct* re-convergence
    /// points reachable by nested divergent branches (0 when no branch can
    /// diverge). Same-PC re-convergence frames merge in hardware (the
    /// core's `pc_merges`/`stack_merges`), so distinct PCs are what bound
    /// the stack.
    pub max_divergent_nesting: usize,
}

impl VerifyStats {
    /// Static bound on the per-warp re-convergence stack depth: the root
    /// frame plus one frame per simultaneously-open re-convergence point.
    pub fn reconv_stack_bound(&self) -> usize {
        self.max_divergent_nesting + 1
    }
}

/// Context the verifier cannot derive from the instruction stream alone.
///
/// [`Program::from_insts`](crate::Program::from_insts) verifies with the
/// defaults (no machine or workload context); the linter supplies the full
/// picture via [`crate::Program::lint`].
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Section 4.3 subdivision threshold the annotations were computed
    /// with (default [`SUBDIV_MAX_BLOCK`]).
    pub subdiv_threshold: usize,
    /// Warp-split-table capacity to check the static re-convergence-stack
    /// bound against, when known.
    pub wst_capacity: Option<usize>,
    /// Thread count of the launch, when known: pins `r0 = tid` to
    /// `[0, n-1]` and `r1 = ntid` to `[n, n]` for the bounds pass.
    pub nthreads: Option<u64>,
    /// Functional-memory size in bytes, when known: enables the
    /// out-of-bounds checks of the interval pass.
    pub mem_bytes: Option<u64>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            subdiv_threshold: SUBDIV_MAX_BLOCK,
            wst_capacity: None,
            nthreads: None,
            mem_bytes: None,
        }
    }
}

impl VerifyOptions {
    /// Sets the warp-split-table capacity.
    pub fn with_wst_capacity(mut self, cap: usize) -> Self {
        self.wst_capacity = Some(cap);
        self
    }

    /// Sets the launch thread count.
    pub fn with_nthreads(mut self, n: u64) -> Self {
        self.nthreads = Some(n);
        self
    }

    /// Sets the functional-memory size in bytes.
    pub fn with_mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes = Some(bytes);
        self
    }
}

/// Everything one verification run produced: the structured diagnostics,
/// derived statistics, and a rustc-style rendering (with the offending
/// instructions quoted) built while the instruction stream was in scope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All findings, in pass order (deterministic).
    pub diagnostics: Vec<Diagnostic>,
    /// Derived aggregate facts (meaningful when no structural error).
    pub stats: VerifyStats,
    rendered: String,
}

impl VerifyReport {
    /// Whether any diagnostic is an error (the program must be rejected).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The first diagnostic with the given code, if any (test helper and
    /// triage convenience).
    pub fn find(&self, code: DwsLintCode) -> Option<&Diagnostic> {
        self.diagnostics.iter().find(|d| d.code == code)
    }

    /// One-line `"E errors, W warnings, N notes"` summary.
    pub fn summary(&self) -> String {
        format!(
            "{} errors, {} warnings, {} notes",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note)
        )
    }

    /// Appends an externally produced diagnostic (e.g. the simulator's
    /// configuration cross-checks), keeping the rendering in sync.
    pub fn push(&mut self, diag: Diagnostic) {
        self.rendered.push_str(&format!("{diag}\n"));
        self.diagnostics.push(diag);
    }

    /// The full rustc-style rendering.
    pub fn rendered(&self) -> &str {
        &self.rendered
    }

    fn record(&mut self, insts: &[Inst], diag: Diagnostic) {
        self.rendered.push_str(&format!(
            "{}[{}]: {}\n",
            diag.severity, diag.code, diag.message
        ));
        if let Some(pc) = diag.pc {
            if let Some(inst) = insts.get(pc) {
                match diag.block {
                    Some(b) => self
                        .rendered
                        .push_str(&format!("  --> pc {pc} (block {b}): {inst}\n")),
                    None => self.rendered.push_str(&format!("  --> pc {pc}: {inst}\n")),
                }
            }
        }
        self.diagnostics.push(diag);
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

// ---------------------------------------------------------------------------
// Pass 1: CFG well-formedness (structural prerequisites).
// ---------------------------------------------------------------------------

/// Structural checks that must hold before a CFG can even be built: a
/// non-empty program, every branch/jump target inside it, and a terminator
/// at the end (otherwise execution falls off the instruction stream).
fn pass_structural(insts: &[Inst], report: &mut VerifyReport) {
    let n = insts.len();
    if n == 0 {
        report.record(
            insts,
            Diagnostic::new(
                DwsLintCode::EmptyProgram,
                None,
                None,
                "program has no instructions".into(),
            ),
        );
        return;
    }
    for (pc, inst) in insts.iter().enumerate() {
        if let Inst::Branch { target, .. } | Inst::Jump { target } = *inst {
            if target >= n {
                report.record(
                    insts,
                    Diagnostic::new(
                        DwsLintCode::TargetOutOfRange,
                        Some(pc),
                        None,
                        format!("target @{target} is outside the {n}-instruction program"),
                    ),
                );
            }
        }
    }
    let last = n - 1;
    if !insts[last].is_terminator() {
        report.record(
            insts,
            Diagnostic::new(
                DwsLintCode::FallthroughOffEnd,
                Some(last),
                None,
                "control can fall through past the last instruction (it is not \
                 `jmp`/`halt`)"
                    .into(),
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Pass 1b: block partition consistency and reachability.
// ---------------------------------------------------------------------------

/// Recomputes the basic-block leaders independently of [`Cfg::build`] and
/// diffs the partition; then marks unreachable blocks. Returns the
/// per-block reachability map for the later passes.
fn pass_partition(insts: &[Inst], cfg: &Cfg, report: &mut VerifyReport) -> Vec<bool> {
    let n = insts.len();
    let mut leader = vec![false; n];
    leader[0] = true;
    for (pc, inst) in insts.iter().enumerate() {
        match *inst {
            Inst::Branch { target, .. } | Inst::Jump { target } => {
                leader[target] = true;
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            Inst::Halt if pc + 1 < n => leader[pc + 1] = true,
            _ => {}
        }
    }
    let expected: Vec<usize> = (0..n).filter(|&pc| leader[pc]).collect();
    let actual: Vec<usize> = cfg.blocks().iter().map(|b| b.start).collect();
    if expected != actual {
        report.record(
            insts,
            Diagnostic::new(
                DwsLintCode::BlockPartitionMismatch,
                None,
                None,
                format!(
                    "recomputed block leaders {expected:?} disagree with the CFG \
                     partition {actual:?}"
                ),
            ),
        );
    } else {
        'scan: for (bi, b) in cfg.blocks().iter().enumerate() {
            for pc in b.start..b.end {
                if cfg.block_of(pc) != bi {
                    report.record(
                        insts,
                        Diagnostic::new(
                            DwsLintCode::BlockPartitionMismatch,
                            Some(pc),
                            Some(bi),
                            format!(
                                "instruction maps to block {} but lies in block {bi}'s \
                                 range",
                                cfg.block_of(pc)
                            ),
                        ),
                    );
                    break 'scan;
                }
            }
        }
    }
    let reach = reachable_blocks(cfg);
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !reach[bi] {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::UnreachableCode,
                    Some(b.start),
                    Some(bi),
                    format!("block {bi} (pc {}..{}) can never execute", b.start, b.end),
                ),
            );
        }
    }
    reach
}

// ---------------------------------------------------------------------------
// Pass 5 support: uniformity (which registers vary across the lanes of a
// warp). Needed before the re-convergence pass so the nesting bound only
// counts branches that can actually diverge.
// ---------------------------------------------------------------------------

/// Flow-insensitive provenance analysis: `r0` (the thread id) varies per
/// lane, loads are conservatively lane-varying (data-dependent), and
/// varying-ness propagates through every computation that consumes a
/// varying register. Everything else — immediates and `r1` (the thread
/// count) — is warp-uniform.
pub(crate) fn compute_varying(insts: &[Inst], num_regs: u16) -> Vec<bool> {
    let mut varying = vec![false; num_regs as usize];
    if !varying.is_empty() {
        varying[0] = true; // r0 = tid
    }
    let mut uses = Vec::new();
    fixpoint(|| {
        let mut changed = false;
        for inst in insts {
            let Some(dst) = inst_def(inst) else { continue };
            let v = if matches!(inst, Inst::Load { .. }) {
                true
            } else {
                inst_uses(inst, &mut uses);
                uses.iter().any(|r| varying[r.0 as usize])
            };
            if v && !varying[dst.0 as usize] {
                varying[dst.0 as usize] = true;
                changed = true;
            }
        }
        changed
    });
    varying
}

/// Per-PC branch uniformity classification consumed by the WPU scheduler
/// (see [`branch_uniformity`]).
#[derive(Debug, Clone)]
pub struct BranchUniformity {
    /// `uniform[pc]` — `insts[pc]` is a conditional branch whose condition
    /// is provably warp-uniform: lanes that share the same *uniform-spine
    /// position* always agree on its outcome, so one representative lane
    /// may decide for a whole group (subject to the scheduler's dynamic
    /// spine-sync tracking; see `spine`).
    pub uniform: Vec<bool>,
    /// `spine[pc]` — the branch is uniform *and* sits outside every
    /// divergent branch's open re-convergence region, i.e. on the
    /// uniform spine all lanes execute in lockstep order. The count of
    /// retired spine branches, together with the PC, identifies a lane's
    /// spine position: two group fragments that merge with equal counts
    /// provably agree on every non-varying register (all such registers
    /// are defined on the spine), while a mismatch (e.g. a memory-split
    /// run-ahead lapping a uniform loop before a PC merge) means uniform
    /// registers may differ per lane and the fast path must be disabled.
    pub spine: Vec<bool>,
}

/// Classifies every conditional branch as provably-uniform (and
/// spine-resident) or potentially divergent.
///
/// This must be sound against execution, so it strengthens
/// [`compute_varying`]'s operand-provenance rule with *control
/// dependence*: a register defined anywhere inside the open
/// re-convergence region of a divergent branch is lane-varying even when
/// its operands are uniform (lanes that took different paths — or
/// different trip counts — through that region hold different values at
/// the merge point). The two rules feed each other, so they iterate to a
/// joint fixpoint: newly-varying registers can make more branches
/// divergent, whose regions taint more definitions.
pub fn branch_uniformity(insts: &[Inst]) -> BranchUniformity {
    let num_regs = max_reg(insts);
    let mut varying = vec![false; num_regs as usize];
    if !varying.is_empty() {
        varying[0] = true; // r0 = tid
    }
    let cfg = Cfg::build(insts);
    let nb = cfg.blocks().len();
    // Blocks executable while `pc`'s re-convergence frame is open: flood
    // from both successors without crossing the immediate post-dominator
    // (same region the re-convergence pass uses for its stack bound).
    let region_of = |pc: usize| -> Vec<bool> {
        let cut = cfg.ipdom_of_block(cfg.block_of(pc)).unwrap_or(usize::MAX);
        let mut in_region = vec![false; nb];
        let mut stack = Vec::new();
        for &s in &cfg.blocks()[cfg.block_of(pc)].succs {
            if s != cut && !in_region[s] {
                in_region[s] = true;
                stack.push(s);
            }
        }
        while let Some(u) = stack.pop() {
            for &v in &cfg.blocks()[u].succs {
                if v != cut && !in_region[v] {
                    in_region[v] = true;
                    stack.push(v);
                }
            }
        }
        in_region
    };
    let mut uses = Vec::new();
    fixpoint(|| {
        let mut changed = false;
        // Data dependence: loads and varying operands taint definitions.
        for inst in insts {
            let Some(dst) = inst_def(inst) else { continue };
            let v = if matches!(inst, Inst::Load { .. }) {
                true
            } else {
                inst_uses(inst, &mut uses);
                uses.iter().any(|r| varying[r.0 as usize])
            };
            if v && !varying[dst.0 as usize] {
                varying[dst.0 as usize] = true;
                changed = true;
            }
        }
        // Control dependence: definitions inside a divergent branch's
        // open region taint their destination.
        for (pc, inst) in insts.iter().enumerate() {
            if !matches!(inst, Inst::Branch { .. }) {
                continue;
            }
            inst_uses(inst, &mut uses);
            if !uses.iter().any(|r| varying[r.0 as usize]) {
                continue;
            }
            let region = region_of(pc);
            for (b, blk) in cfg.blocks().iter().enumerate() {
                if !region[b] {
                    continue;
                }
                for binst in &insts[blk.start..blk.start + blk.len()] {
                    if let Some(dst) = inst_def(binst) {
                        if !varying[dst.0 as usize] {
                            varying[dst.0 as usize] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        changed
    });
    let uniform: Vec<bool> = insts
        .iter()
        .map(|inst| {
            if !matches!(inst, Inst::Branch { .. }) {
                return false;
            }
            inst_uses(inst, &mut uses);
            !uses
                .iter()
                .any(|r| varying.get(r.0 as usize).copied().unwrap_or(true))
        })
        .collect();
    // Union of every divergent branch's region: a uniform branch inside
    // one executes under a divergent mask and must not advance the spine
    // counter (only one path's lanes would count it).
    let mut divergent_region = vec![false; nb];
    for (pc, &u) in uniform.iter().enumerate() {
        if !matches!(insts[pc], Inst::Branch { .. }) || u {
            continue;
        }
        for (d, r) in divergent_region.iter_mut().zip(region_of(pc)) {
            *d |= r;
        }
    }
    let spine: Vec<bool> = uniform
        .iter()
        .enumerate()
        .map(|(pc, &u)| u && !divergent_region[cfg.block_of(pc)])
        .collect();
    BranchUniformity { uniform, spine }
}

/// The `uniform` half of [`branch_uniformity`] (kept for callers that only
/// need fast-path eligibility).
pub fn uniform_branches(insts: &[Inst]) -> Vec<bool> {
    branch_uniformity(insts).uniform
}

// ---------------------------------------------------------------------------
// Pass 2: re-convergence verification.
// ---------------------------------------------------------------------------

/// Recomputes each block's immediate post-dominator with a set-based
/// greatest-fixpoint dataflow — deliberately a *different* algorithm from
/// the Cooper–Harvey–Kennedy walk in [`crate::cfg`], so the two implementations
/// cross-check each other.
///
/// `pdom(b) = {b} ∪ ⋂_{s ∈ succs(b)} pdom(s)` over the CFG extended with a
/// virtual exit that every `Halt` block feeds. Strict post-dominators of a
/// block are totally ordered by set inclusion, so the immediate one is the
/// strict post-dominator with the *largest* set. Blocks that cannot reach
/// the exit (infinite loops) have no post-dominator (`None`), matching the
/// CHK convention of only walking nodes that reach the exit.
fn recompute_ipdom_blocks(cfg: &Cfg) -> Vec<Option<usize>> {
    let blocks = cfg.blocks();
    let n = blocks.len();
    let exit = n;
    let words = (n + 1).div_ceil(64);
    let set = |bits: &mut [u64], i: usize| bits[i / 64] |= 1 << (i % 64);
    let has = |bits: &[u64], i: usize| bits[i / 64] >> (i % 64) & 1 == 1;
    let succs: Vec<Vec<usize>> = blocks
        .iter()
        .map(|b| {
            if b.succs.is_empty() {
                vec![exit]
            } else {
                b.succs.clone()
            }
        })
        .collect();
    let mut pdom: Vec<Vec<u64>> = vec![vec![!0u64; words]; n + 1];
    pdom[exit] = vec![0u64; words];
    set(&mut pdom[exit], exit);
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut new = vec![!0u64; words];
            for &s in &succs[b] {
                for (w, x) in new.iter_mut().zip(&pdom[s]) {
                    *w &= x;
                }
            }
            set(&mut new, b);
            if new != pdom[b] {
                pdom[b] = new;
                changed = true;
            }
        }
    }
    // Blocks that cannot reach the exit keep their (meaningless) full sets;
    // find them by reverse reachability from the exit.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            preds[v].push(u);
        }
    }
    let mut reaches_exit = vec![false; n + 1];
    reaches_exit[exit] = true;
    let mut stack = vec![exit];
    while let Some(v) = stack.pop() {
        for &p in &preds[v] {
            if !reaches_exit[p] {
                reaches_exit[p] = true;
                stack.push(p);
            }
        }
    }
    let size = |c: usize| -> usize { pdom[c].iter().map(|w| w.count_ones() as usize).sum() };
    (0..n)
        .map(|b| {
            if !reaches_exit[b] {
                return None;
            }
            let mut best: Option<(usize, usize)> = None; // (set size, node)
            for c in (0..=n).filter(|&c| c != b && has(&pdom[b], c)) {
                let sz = size(c);
                if best.is_none_or(|(bs, _)| sz > bs) {
                    best = Some((sz, c));
                }
            }
            match best {
                Some((_, c)) if c != exit => Some(c),
                _ => None,
            }
        })
        .collect()
}

/// Renders a re-convergence pc, mapping [`RECONV_NONE`] to prose.
fn fmt_reconv(pc: usize) -> String {
    if pc == RECONV_NONE {
        "none (paths meet only at halt)".into()
    } else {
        format!("@{pc}")
    }
}

/// Diffs the [`BranchInfo`] annotations against the independently
/// recomputed post-dominators, re-derives the Section 4.3 subdividable
/// marking, bounds the re-convergence stack by the nesting of divergent
/// branches, and flags barriers inside divergent regions.
fn pass_reconv(
    insts: &[Inst],
    cfg: &Cfg,
    annotations: &[Option<BranchInfo>],
    varying: &[bool],
    opts: &VerifyOptions,
    report: &mut VerifyReport,
    stats: &mut VerifyStats,
) {
    let recomputed = recompute_ipdom_blocks(cfg);
    let mut uses = Vec::new();
    let mut divergent: Vec<(usize, usize)> = Vec::new(); // (branch pc, reconv pc)
    for (pc, inst) in insts.iter().enumerate() {
        let ann = annotations.get(pc).copied().flatten();
        let Inst::Branch { target, .. } = *inst else {
            if ann.is_some() {
                report.record(
                    insts,
                    Diagnostic::new(
                        DwsLintCode::BadBranchAnnotation,
                        Some(pc),
                        Some(cfg.block_of(pc)),
                        "non-branch instruction carries a BranchInfo annotation".into(),
                    ),
                );
            }
            continue;
        };
        stats.branches += 1;
        let b = cfg.block_of(pc);
        let Some(ann) = ann else {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::BadBranchAnnotation,
                    Some(pc),
                    Some(b),
                    "conditional branch has no BranchInfo annotation".into(),
                ),
            );
            continue;
        };
        if ann.taken != target || ann.fallthrough != pc + 1 {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::BadBranchAnnotation,
                    Some(pc),
                    Some(b),
                    format!(
                        "annotation records taken @{} / fall-through @{} but the \
                         instruction implies @{target} / @{}",
                        ann.taken,
                        ann.fallthrough,
                        pc + 1
                    ),
                ),
            );
        }
        let expected = match recomputed[b] {
            Some(pb) => cfg.blocks()[pb].start,
            None => RECONV_NONE,
        };
        if ann.ipdom != expected {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::IpdomMismatch,
                    Some(pc),
                    Some(b),
                    format!(
                        "annotated re-convergence {} but the recomputed immediate \
                         post-dominator is {}",
                        fmt_reconv(ann.ipdom),
                        fmt_reconv(expected)
                    ),
                ),
            );
        }
        let expect_subdiv = match recomputed[b] {
            Some(pb) => cfg.blocks()[pb].len() <= opts.subdiv_threshold,
            None => false,
        };
        if ann.subdividable != expect_subdiv {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::SubdivMarkMismatch,
                    Some(pc),
                    Some(b),
                    format!(
                        "branch is marked {} but the Section 4.3 heuristic \
                         (post-dominator block length vs threshold {}) says {}",
                        if ann.subdividable {
                            "subdividable"
                        } else {
                            "non-subdividable"
                        },
                        opts.subdiv_threshold,
                        if expect_subdiv {
                            "subdividable"
                        } else {
                            "non-subdividable"
                        }
                    ),
                ),
            );
        }
        if ann.subdividable {
            stats.subdividable_branches += 1;
        }
        inst_uses(inst, &mut uses);
        if uses
            .iter()
            .any(|r| varying.get(r.0 as usize).copied().unwrap_or(true))
        {
            stats.divergent_branches += 1;
            divergent.push((pc, ann.ipdom));
        } else {
            stats.uniform_branches += 1;
        }
    }

    // Region of a divergent branch: blocks executable while its
    // re-convergence frame is open (reachable from either successor without
    // crossing the re-convergence block).
    let nb = cfg.blocks().len();
    let region_of = |pc: usize, reconv: usize| -> Vec<bool> {
        let cut = if reconv == RECONV_NONE {
            usize::MAX
        } else {
            cfg.block_of(reconv)
        };
        let mut in_region = vec![false; nb];
        let mut stack = Vec::new();
        for &s in &cfg.blocks()[cfg.block_of(pc)].succs {
            if s != cut && !in_region[s] {
                in_region[s] = true;
                stack.push(s);
            }
        }
        while let Some(u) = stack.pop() {
            for &v in &cfg.blocks()[u].succs {
                if v != cut && !in_region[v] {
                    in_region[v] = true;
                    stack.push(v);
                }
            }
        }
        in_region
    };

    // Same-pc re-convergence frames merge in hardware (the core's pc_merges
    // path), so the stack bound is over *distinct* re-convergence pcs:
    // group divergent branches by reconv pc, union their regions, and take
    // the longest containment chain.
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for &(pc, reconv) in &divergent {
        groups.entry(reconv).or_default().push(pc);
    }
    let group_pcs: Vec<&Vec<usize>> = groups.values().collect();
    let k = groups.len();
    let mut gregion: Vec<Vec<bool>> = Vec::with_capacity(k);
    for (&reconv, pcs) in &groups {
        let mut r = vec![false; nb];
        for &pc in pcs {
            for (ri, v) in r.iter_mut().zip(region_of(pc, reconv)) {
                *ri |= v;
            }
        }
        gregion.push(r);
    }
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); k];
    for gi in 0..k {
        for (hi, pcs) in group_pcs.iter().enumerate() {
            if hi != gi && pcs.iter().any(|&pc| gregion[gi][cfg.block_of(pc)]) {
                edges[gi].push(hi);
            }
        }
    }
    // Longest chain of nested re-convergence points (node count); a cycle
    // means irreducible nesting and we cap at the group count.
    let mut depth = vec![0usize; k];
    let mut state = vec![0u8; k]; // 0 unvisited, 1 on stack, 2 done
    let mut cyclic = false;
    for start in 0..k {
        if state[start] != 0 {
            continue;
        }
        state[start] = 1;
        let mut stack = vec![(start, 0usize)];
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < edges[u].len() {
                let v = edges[u][*i];
                *i += 1;
                match state[v] {
                    0 => {
                        state[v] = 1;
                        stack.push((v, 0));
                    }
                    1 => cyclic = true,
                    _ => {}
                }
            } else {
                depth[u] = 1 + edges[u].iter().map(|&v| depth[v]).max().unwrap_or(0);
                state[u] = 2;
                stack.pop();
            }
        }
    }
    stats.max_divergent_nesting = if cyclic {
        k
    } else {
        depth.iter().copied().max().unwrap_or(0)
    };
    if cyclic {
        report.record(
            insts,
            Diagnostic::new(
                DwsLintCode::IrreducibleNesting,
                None,
                None,
                format!(
                    "divergent-branch regions nest cyclically; static stack bound \
                     capped at {k} distinct re-convergence points"
                ),
            ),
        );
    }
    if let Some(cap) = opts.wst_capacity {
        let bound = stats.reconv_stack_bound();
        if bound > cap {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::ReconvDepthExceedsWst,
                    None,
                    None,
                    format!(
                        "static re-convergence stack bound {bound} (nesting {} + root) \
                         exceeds the warp-split table capacity {cap}",
                        stats.max_divergent_nesting
                    ),
                ),
            );
        }
    }
    for (pc, inst) in insts.iter().enumerate() {
        if !matches!(inst, Inst::Barrier) {
            continue;
        }
        let bb = cfg.block_of(pc);
        if let Some(gi) = (0..k).find(|&gi| gregion[gi][bb]) {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::BarrierUnderDivergence,
                    Some(pc),
                    Some(bb),
                    format!(
                        "barrier is reachable while the divergent branch at pc {} has \
                         not re-converged; only a subset of live threads may arrive",
                        group_pcs[gi][0]
                    ),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: def-use dataflow.
// ---------------------------------------------------------------------------

/// Definite-assignment ("must" reach), maybe-assignment ("may" reach),
/// liveness for dead writes, and register-file tightness — expressed as
/// instances of the [`crate::analysis`] framework ([`ReachingDefs`],
/// [`Liveness`]) with the diagnostic walks on top.
///
/// A read of a register with no reaching definition on *any* path is a
/// hard error (the lanes would consume whatever the register file was
/// reset to); a read where only *some* paths define is a warning. Entry
/// state is `{r0, r1}`, the preloaded thread id and thread count.
///
/// The retained legacy fixpoint ([`defuse_diagnostics_reference`]) is the
/// differential oracle: both implementations must emit identical
/// diagnostics (pinned on every benchmark kernel and 200 generated seeds
/// by `tests/dataflow_differential.rs`).
fn pass_defuse(
    insts: &[Inst],
    cfg: &Cfg,
    reach: &[bool],
    num_regs: u16,
    report: &mut VerifyReport,
) {
    let nr = num_regs as usize;
    let must: BlockFacts<RegSet> = solve(cfg, &ReachingDefs::must(insts, cfg, num_regs));
    let may: BlockFacts<RegSet> = solve(cfg, &ReachingDefs::may(insts, cfg, num_regs));
    // Walk each reachable block flagging reads of unassigned registers.
    let mut uses = Vec::new();
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let mut must_here = must.on_entry[bi].clone();
        let mut may_here = may.on_entry[bi].clone();
        for pc in b.start..b.end {
            inst_uses(&insts[pc], &mut uses);
            for &r in &uses {
                if must_here.has(r.0) {
                    continue;
                }
                if may_here.has(r.0) {
                    report.record(
                        insts,
                        Diagnostic::new(
                            DwsLintCode::MaybeUseBeforeDef,
                            Some(pc),
                            Some(bi),
                            format!("{r} is read but only some paths define it first"),
                        ),
                    );
                } else {
                    report.record(
                        insts,
                        Diagnostic::new(
                            DwsLintCode::UseBeforeDef,
                            Some(pc),
                            Some(bi),
                            format!("{r} is read but no definition reaches this point"),
                        ),
                    );
                }
            }
            if let Some(r) = inst_def(&insts[pc]) {
                must_here.set(r.0);
                may_here.set(r.0);
            }
        }
    }
    // Backward liveness for dead writes: `on_entry` of a backward problem
    // is the block's live-out set.
    let live: BlockFacts<RegSet> = solve(cfg, &Liveness::new(insts, cfg, num_regs));
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let mut live_here = live.on_entry[bi].clone();
        for pc in (b.start..b.end).rev() {
            if let Some(r) = inst_def(&insts[pc]) {
                if !live_here.has(r.0) {
                    report.record(
                        insts,
                        Diagnostic::new(
                            DwsLintCode::DeadWrite,
                            Some(pc),
                            Some(bi),
                            format!("{r} is written here but never read afterwards"),
                        ),
                    );
                }
                live_here.clear(r.0);
            }
            inst_uses(&insts[pc], &mut uses);
            for &r in &uses {
                live_here.set(r.0);
            }
        }
    }
    // Register-file tightness: allocated indices that are never referenced.
    let mut referenced = RegSet::empty(nr);
    referenced.set(0);
    if num_regs > 1 {
        referenced.set(1);
    }
    for inst in insts {
        inst_uses(inst, &mut uses);
        for &r in &uses {
            referenced.set(r.0);
        }
        if let Some(r) = inst_def(inst) {
            referenced.set(r.0);
        }
    }
    for r in 2..num_regs {
        if !referenced.has(r) {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::UnusedReg,
                    None,
                    None,
                    format!(
                        "r{r} is never referenced but the register file is sized for \
                         {num_regs} registers"
                    ),
                ),
            );
        }
    }
}

/// The pre-framework hand-written fixpoint implementation of pass 3, kept
/// verbatim as the differential oracle for [`pass_defuse`].
fn defuse_reference(
    insts: &[Inst],
    cfg: &Cfg,
    reach: &[bool],
    num_regs: u16,
    report: &mut VerifyReport,
) {
    let nr = num_regs as usize;
    let nb = cfg.blocks().len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (bi, b) in cfg.blocks().iter().enumerate() {
        for &s in &b.succs {
            preds[s].push(bi);
        }
    }
    let mut entry = RegSet::empty(nr);
    entry.set(0);
    if num_regs > 1 {
        entry.set(1);
    }
    let mut defs: Vec<RegSet> = vec![RegSet::empty(nr); nb];
    for (bi, b) in cfg.blocks().iter().enumerate() {
        for inst in &insts[b.start..b.end] {
            if let Some(r) = inst_def(inst) {
                defs[bi].set(r.0);
            }
        }
    }
    // Forward fixpoints. `must` starts ⊤ so unreachable/unvisited preds are
    // neutral under intersection; `may` starts ∅.
    let mut must_out: Vec<RegSet> = vec![RegSet::full(nr); nb];
    let mut may_out: Vec<RegSet> = vec![RegSet::empty(nr); nb];
    let mut must_in: Vec<RegSet> = vec![RegSet::full(nr); nb];
    let mut may_in: Vec<RegSet> = vec![RegSet::empty(nr); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nb {
            let mut m_in = if bi == 0 {
                entry.clone()
            } else {
                let mut s = RegSet::full(nr);
                for &p in &preds[bi] {
                    s.intersect_with(&must_out[p]);
                }
                s
            };
            let mut y_in = if bi == 0 {
                entry.clone()
            } else {
                let mut s = RegSet::empty(nr);
                for &p in &preds[bi] {
                    s.union_with(&may_out[p]);
                }
                s
            };
            must_in[bi] = m_in.clone();
            may_in[bi] = y_in.clone();
            m_in.union_with(&defs[bi]);
            y_in.union_with(&defs[bi]);
            if m_in != must_out[bi] {
                must_out[bi] = m_in;
                changed = true;
            }
            if y_in != may_out[bi] {
                may_out[bi] = y_in;
                changed = true;
            }
        }
    }
    // Walk each reachable block flagging reads of unassigned registers.
    let mut uses = Vec::new();
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let mut must = must_in[bi].clone();
        let mut may = may_in[bi].clone();
        for pc in b.start..b.end {
            inst_uses(&insts[pc], &mut uses);
            for &r in &uses {
                if must.has(r.0) {
                    continue;
                }
                if may.has(r.0) {
                    report.record(
                        insts,
                        Diagnostic::new(
                            DwsLintCode::MaybeUseBeforeDef,
                            Some(pc),
                            Some(bi),
                            format!("{r} is read but only some paths define it first"),
                        ),
                    );
                } else {
                    report.record(
                        insts,
                        Diagnostic::new(
                            DwsLintCode::UseBeforeDef,
                            Some(pc),
                            Some(bi),
                            format!("{r} is read but no definition reaches this point"),
                        ),
                    );
                }
            }
            if let Some(r) = inst_def(&insts[pc]) {
                must.set(r.0);
                may.set(r.0);
            }
        }
    }
    // Backward liveness for dead writes.
    let mut gen_set: Vec<RegSet> = vec![RegSet::empty(nr); nb];
    for (bi, b) in cfg.blocks().iter().enumerate() {
        let mut defined = RegSet::empty(nr);
        for inst in &insts[b.start..b.end] {
            inst_uses(inst, &mut uses);
            for &r in &uses {
                if !defined.has(r.0) {
                    gen_set[bi].set(r.0);
                }
            }
            if let Some(r) = inst_def(inst) {
                defined.set(r.0);
            }
        }
    }
    let mut live_in: Vec<RegSet> = vec![RegSet::empty(nr); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for (bi, b) in cfg.blocks().iter().enumerate().rev() {
            let mut out = RegSet::empty(nr);
            for &s in &b.succs {
                out.union_with(&live_in[s]);
            }
            // live_in = gen_set ∪ (out ∖ defs)
            let mut inn = out;
            for r in 0..num_regs {
                if defs[bi].has(r) && !gen_set[bi].has(r) {
                    inn.clear(r);
                }
            }
            inn.union_with(&gen_set[bi]);
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
        }
    }
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let mut live = RegSet::empty(nr);
        for &s in &b.succs {
            live.union_with(&live_in[s]);
        }
        for pc in (b.start..b.end).rev() {
            if let Some(r) = inst_def(&insts[pc]) {
                if !live.has(r.0) {
                    report.record(
                        insts,
                        Diagnostic::new(
                            DwsLintCode::DeadWrite,
                            Some(pc),
                            Some(bi),
                            format!("{r} is written here but never read afterwards"),
                        ),
                    );
                }
                live.clear(r.0);
            }
            inst_uses(&insts[pc], &mut uses);
            for &r in &uses {
                live.set(r.0);
            }
        }
    }
    // Register-file tightness: allocated indices that are never referenced.
    let mut referenced = RegSet::empty(nr);
    referenced.set(0);
    if num_regs > 1 {
        referenced.set(1);
    }
    for inst in insts {
        inst_uses(inst, &mut uses);
        for &r in &uses {
            referenced.set(r.0);
        }
        if let Some(r) = inst_def(inst) {
            referenced.set(r.0);
        }
    }
    for r in 2..num_regs {
        if !referenced.has(r) {
            report.record(
                insts,
                Diagnostic::new(
                    DwsLintCode::UnusedReg,
                    None,
                    None,
                    format!(
                        "r{r} is never referenced but the register file is sized for \
                         {num_regs} registers"
                    ),
                ),
            );
        }
    }
}

/// Block reachability from the entry (shared by the partition pass and the
/// differential wrappers).
fn reachable_blocks(cfg: &Cfg) -> Vec<bool> {
    let nb = cfg.blocks().len();
    let mut reach = vec![false; nb];
    if nb == 0 {
        return reach;
    }
    reach[0] = true;
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        for &s in &cfg.blocks()[b].succs {
            if !reach[s] {
                reach[s] = true;
                stack.push(s);
            }
        }
    }
    reach
}

/// Pass-3 diagnostics of the framework-based implementation, for a raw
/// (structurally valid) instruction stream. Differential-test entry point.
#[doc(hidden)]
pub fn defuse_diagnostics(insts: &[Inst]) -> Vec<Diagnostic> {
    let cfg = Cfg::build(insts);
    let reach = reachable_blocks(&cfg);
    let mut report = VerifyReport::default();
    pass_defuse(insts, &cfg, &reach, max_reg(insts), &mut report);
    report.diagnostics
}

/// Pass-3 diagnostics of the retained legacy fixpoint implementation.
/// Differential-test entry point.
#[doc(hidden)]
pub fn defuse_diagnostics_reference(insts: &[Inst]) -> Vec<Diagnostic> {
    let cfg = Cfg::build(insts);
    let reach = reachable_blocks(&cfg);
    let mut report = VerifyReport::default();
    defuse_reference(insts, &cfg, &reach, max_reg(insts), &mut report);
    report.diagnostics
}

// ---------------------------------------------------------------------------
// Pass 4: static memory bounds (interval analysis).
// ---------------------------------------------------------------------------

/// Interval lower/upper sentinels. They sit far outside the `i64` range the
/// machine can actually compute, so a bound at (or beyond) a sentinel means
/// "unbounded" while ordinary interval arithmetic on them stays sound.
const INF_NEG: i128 = i128::MIN / 4;
/// See [`INF_NEG`].
const INF_POS: i128 = i128::MAX / 4;

/// Bounds past this magnitude are treated as "unbounded" when classifying
/// accesses: genuine `i64` arithmetic stays below it, widened values don't.
const BOUNDED_LIMIT: i128 = 1 << 70;

/// A signed interval `[lo, hi]`; empty when `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Itv {
    lo: i128,
    hi: i128,
}

impl Itv {
    const TOP: Itv = Itv {
        lo: INF_NEG,
        hi: INF_POS,
    };
    fn exact(v: i128) -> Itv {
        Itv { lo: v, hi: v }
    }
    fn new(lo: i128, hi: i128) -> Itv {
        Itv {
            lo: lo.clamp(INF_NEG, INF_POS),
            hi: hi.clamp(INF_NEG, INF_POS),
        }
    }
    fn is_empty(self) -> bool {
        self.lo > self.hi
    }
    fn join(self, o: Itv) -> Itv {
        Itv {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
    fn meet(self, o: Itv) -> Itv {
        Itv {
            lo: self.lo.max(o.lo),
            hi: self.hi.min(o.hi),
        }
    }
    fn add(self, o: Itv) -> Itv {
        Itv::new(self.lo + o.lo, self.hi + o.hi)
    }
    fn sub(self, o: Itv) -> Itv {
        Itv::new(self.lo - o.hi, self.hi - o.lo)
    }
    fn neg(self) -> Itv {
        Itv::new(-self.hi, -self.lo)
    }
    fn mul(self, o: Itv) -> Itv {
        let c = |x: i128, y: i128| {
            x.checked_mul(y)
                .map_or(if (x < 0) != (y < 0) { INF_NEG } else { INF_POS }, |v| {
                    v.clamp(INF_NEG, INF_POS)
                })
        };
        let corners = [
            c(self.lo, o.lo),
            c(self.lo, o.hi),
            c(self.hi, o.lo),
            c(self.hi, o.hi),
        ];
        Itv {
            lo: corners.iter().copied().min().unwrap(),
            hi: corners.iter().copied().max().unwrap(),
        }
    }
    /// Whether both bounds are small enough to be trusted as real limits.
    fn is_bounded(self) -> bool {
        self.lo > -BOUNDED_LIMIT && self.hi < BOUNDED_LIMIT
    }
    fn render(self) -> String {
        let b = |v: i128, inf: &str| {
            if (-BOUNDED_LIMIT..BOUNDED_LIMIT).contains(&v) {
                v.to_string()
            } else {
                inf.into()
            }
        };
        format!("[{}, {}]", b(self.lo, "-inf"), b(self.hi, "+inf"))
    }
}

/// A symbolic fact about a register's *current* value in terms of another
/// register's current value: `dst = scale*src + offset`, `dst = src / d`,
/// or `dst = src % d` (both with a positive constant `d`).
///
/// Facts are flow-sensitive and killed the moment either side is
/// redefined, so holding one at a program point is a genuine equality
/// there. They are what lets branch narrowing act *relationally*: a guard
/// on `r = i / n` narrows `i` too, and a guard on `i` re-narrows values
/// derived from it (`a = i*8 + base`) that were computed before the
/// branch. Constant operands are resolved through write-once immediate
/// registers ([`write_once_imm_consts`]), so `li rk, 8; mul a, i, rk`
/// carries the same fact as `mul a, i, 8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SymExpr {
    /// `dst = scale*src + offset` with `scale != 0`.
    Affine { src: Reg, scale: i128, offset: i128 },
    /// `dst = src / d` (truncating), `d > 0`.
    DivBy { src: Reg, d: i128 },
    /// `dst = src % d` (sign follows `src`), `d > 0`.
    RemBy { src: Reg, d: i128 },
}

impl SymExpr {
    fn src(self) -> Reg {
        match self {
            SymExpr::Affine { src, .. }
            | SymExpr::DivBy { src, .. }
            | SymExpr::RemBy { src, .. } => src,
        }
    }
}

/// The bounds pass's per-point abstract state: an interval per register
/// plus at most one symbolic fact per register.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BState {
    itv: Vec<Itv>,
    sym: Vec<Option<SymExpr>>,
}

/// Constant propagation through write-once immediate registers: a register
/// (other than the preloaded `r0`/`r1`) whose *only* static definition in
/// the whole program is `mov rK, imm` can be treated as that constant
/// wherever it is read after the definition. This is what lets kernels
/// hold scales, masks, and divisors in registers without the bounds pass
/// losing the exactness it needs for [`SymExpr`] extraction.
fn write_once_imm_consts(insts: &[Inst], num_regs: u16) -> Vec<Option<i128>> {
    let nr = num_regs as usize;
    let mut defs = vec![0u32; nr];
    let mut value: Vec<Option<i128>> = vec![None; nr];
    for inst in insts {
        if let Some(r) = inst_def(inst) {
            let r = r.0 as usize;
            defs[r] += 1;
            value[r] = match inst {
                Inst::Un {
                    op: UnOp::Mov,
                    a: Operand::Imm(v),
                    ..
                } => Some(*v as i128),
                _ => None,
            };
        }
    }
    for r in 0..nr {
        if r < 2 || defs[r] != 1 {
            value[r] = None;
        }
    }
    value
}

/// Symbolic-fact transfer for one instruction: establishes, composes, or
/// kills [`SymExpr`] facts. Must be applied in instruction order alongside
/// [`itv_transfer`].
fn sym_transfer(sym: &mut [Option<SymExpr>], inst: &Inst, consts: &[Option<i128>]) {
    let cval = |o: &Operand| -> Option<i128> {
        match o {
            Operand::Imm(v) => Some(*v as i128),
            Operand::Reg(r) => consts.get(r.0 as usize).copied().flatten(),
            Operand::ImmF(_) => None,
        }
    };
    let Some(dst) = inst_def(inst) else { return };
    let d = dst.0 as usize;
    // The affine fact for `s op k` (register `s`, constant `k`), composed
    // with the existing fact of `s` when `s` is the destination itself
    // (e.g. `add a, a, 4` extends `a = 8*i` to `a = 8*i + 4`).
    let compose = |sym: &[Option<SymExpr>], s: Reg, scale: i128, offset: i128| {
        if s == dst {
            match sym[d] {
                Some(SymExpr::Affine {
                    src,
                    scale: s0,
                    offset: o0,
                }) => {
                    let sc = s0.checked_mul(scale)?;
                    let of = o0.checked_mul(scale)?.checked_add(offset)?;
                    (sc != 0).then_some(SymExpr::Affine {
                        src,
                        scale: sc,
                        offset: of,
                    })
                }
                _ => None,
            }
        } else {
            (scale != 0).then_some(SymExpr::Affine {
                src: s,
                scale,
                offset,
            })
        }
    };
    let new: Option<SymExpr> = match inst {
        Inst::Un {
            op: UnOp::Mov,
            a: Operand::Reg(s),
            ..
        } => {
            if *s == dst {
                sym[d] // `mov r, r` is the identity
            } else {
                compose(sym, *s, 1, 0)
            }
        }
        Inst::Un {
            op: UnOp::Neg,
            a: Operand::Reg(s),
            ..
        } => compose(sym, *s, -1, 0),
        Inst::Alu { op, a, b, .. } => {
            let (ca, cb) = (cval(a), cval(b));
            match (op, a, b) {
                (AluOp::Add, Operand::Reg(s), _) if cb.is_some() => {
                    compose(sym, *s, 1, cb.unwrap())
                }
                (AluOp::Add, _, Operand::Reg(s)) if ca.is_some() => {
                    compose(sym, *s, 1, ca.unwrap())
                }
                (AluOp::Sub, Operand::Reg(s), _) if cb.is_some() => {
                    compose(sym, *s, 1, -cb.unwrap())
                }
                (AluOp::Sub, _, Operand::Reg(s)) if ca.is_some() => {
                    compose(sym, *s, -1, ca.unwrap())
                }
                (AluOp::Mul, Operand::Reg(s), _) if cb.is_some() => {
                    compose(sym, *s, cb.unwrap(), 0)
                }
                (AluOp::Mul, _, Operand::Reg(s)) if ca.is_some() => {
                    compose(sym, *s, ca.unwrap(), 0)
                }
                (AluOp::Shl, Operand::Reg(s), _) if matches!(cb, Some(k) if (0..64).contains(&k)) => {
                    compose(sym, *s, 1i128 << cb.unwrap(), 0)
                }
                (AluOp::Div, Operand::Reg(s), _) if *s != dst && matches!(cb, Some(k) if k > 0) => {
                    Some(SymExpr::DivBy {
                        src: *s,
                        d: cb.unwrap(),
                    })
                }
                (AluOp::Rem, Operand::Reg(s), _) if *s != dst && matches!(cb, Some(k) if k > 0) => {
                    Some(SymExpr::RemBy {
                        src: *s,
                        d: cb.unwrap(),
                    })
                }
                _ => None,
            }
        }
        _ => None,
    };
    sym[d] = new;
    // Every other fact that read the destination referred to its *old*
    // value; those equalities no longer hold.
    for (q, f) in sym.iter_mut().enumerate() {
        if q != d && f.is_some_and(|f| f.src() == dst) {
            *f = None;
        }
    }
}

/// `floor(a / b)` for any nonzero `b`.
fn dfloor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// `ceil(a / b)` for any nonzero `b`.
fn dceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Interval of `f(src)` given an interval for `src` (forward evaluation of
/// a symbolic fact).
fn fact_forward(f: SymExpr, src: Itv) -> Itv {
    match f {
        SymExpr::Affine { scale, offset, .. } => src.mul(Itv::exact(scale)).add(Itv::exact(offset)),
        // Truncating division by a positive constant is monotone.
        SymExpr::DivBy { d, .. } => Itv::new(src.lo / d, src.hi / d),
        SymExpr::RemBy { d, .. } => {
            if src.lo >= 0 {
                Itv::new(0, src.hi.min(d - 1))
            } else {
                Itv::new(1 - d, d - 1)
            }
        }
    }
}

/// The constraint a fact's *source* must satisfy for `f(src)` to land in
/// `dst` — the backward direction of [`fact_forward`]. `src_cur` is the
/// source's current interval (the `Rem` rule is only sound for
/// known-non-negative sources). Returns `Itv::TOP` when nothing can be
/// inferred.
fn fact_backward(f: SymExpr, dst: Itv, src_cur: Itv) -> Itv {
    match f {
        SymExpr::Affine {
            scale: s,
            offset: o,
            ..
        } => {
            // s*src + o in [lo, hi]  =>  src in the integer solutions.
            let (lo, hi) = (dst.lo.saturating_sub(o), dst.hi.saturating_sub(o));
            if s > 0 {
                Itv::new(dceil(lo, s), dfloor(hi, s))
            } else {
                Itv::new(dceil(hi, s), dfloor(lo, s))
            }
        }
        SymExpr::DivBy { d, .. } => {
            // Truncating `src / d` in [lo, hi] with d > 0.
            let (lo, hi) = (dst.lo, dst.hi);
            let slo = if lo > 0 {
                lo.saturating_mul(d)
            } else {
                lo.saturating_mul(d).saturating_sub(d - 1)
            };
            let shi = if hi >= 0 {
                hi.saturating_mul(d).saturating_add(d - 1)
            } else {
                hi.saturating_mul(d)
            };
            Itv::new(slo, shi)
        }
        SymExpr::RemBy { .. } => {
            // For src >= 0: src % d >= L >= 1 implies src >= L (a smaller
            // non-negative src has src % d = src < L).
            if dst.lo >= 1 && src_cur.lo >= 0 {
                Itv::new(dst.lo, INF_POS)
            } else {
                Itv::TOP
            }
        }
    }
}

/// Relational propagation after register `r`'s interval was narrowed:
/// tightens the fact source `r` was computed from (backward) and
/// re-derives every register whose fact reads `r` (forward), recursing a
/// few levels so chains like `guard on i/n` → `i` → `a = 8*i` resolve.
/// Returns `false` when a propagated interval became empty (the edge is
/// infeasible).
fn relate(st: &mut BState, r: usize, depth: u8) -> bool {
    if depth == 0 {
        return true;
    }
    if let Some(f) = st.sym[r] {
        let s = f.src().0 as usize;
        let met = st.itv[s].meet(fact_backward(f, st.itv[r], st.itv[s]));
        if met != st.itv[s] {
            st.itv[s] = met;
            if met.is_empty() {
                return false;
            }
            if !relate(st, s, depth - 1) {
                return false;
            }
        }
    }
    for q in 0..st.sym.len() {
        if q == r {
            continue;
        }
        let Some(f) = st.sym[q] else { continue };
        if f.src().0 as usize != r {
            continue;
        }
        let met = st.itv[q].meet(fact_forward(f, st.itv[r]));
        if met != st.itv[q] {
            st.itv[q] = met;
            if met.is_empty() {
                return false;
            }
            if !relate(st, q, depth - 1) {
                return false;
            }
        }
    }
    true
}

/// Abstract transfer for one instruction over a register state.
fn itv_transfer(st: &mut [Itv], inst: &Inst) {
    let op_itv = |st: &[Itv], o: &Operand| match o {
        Operand::Reg(r) => st[r.0 as usize],
        Operand::Imm(v) => Itv::exact(*v as i128),
        Operand::ImmF(_) => Itv::TOP,
    };
    let Some(dst) = inst_def(inst) else { return };
    let out = match inst {
        Inst::Alu { op, a, b, .. } => {
            let (a, b) = (op_itv(st, a), op_itv(st, b));
            match op {
                AluOp::Add => a.add(b),
                AluOp::Sub => a.sub(b),
                AluOp::Mul => a.mul(b),
                AluOp::Min => Itv {
                    lo: a.lo.min(b.lo),
                    hi: a.hi.min(b.hi),
                },
                AluOp::Max => Itv {
                    lo: a.lo.max(b.lo),
                    hi: a.hi.max(b.hi),
                },
                // Truncating division by a positive constant is monotone.
                AluOp::Div if b.lo == b.hi && b.lo > 0 => Itv::new(a.lo / b.lo, a.hi / b.lo),
                AluOp::Rem if b.lo == b.hi && b.lo > 0 => {
                    if a.lo >= 0 {
                        Itv::new(0, a.hi.min(b.lo - 1))
                    } else {
                        Itv::new(1 - b.lo, b.lo - 1)
                    }
                }
                AluOp::Shl if b.lo == b.hi && (0..64).contains(&b.lo) => {
                    a.mul(Itv::exact(1i128 << b.lo))
                }
                AluOp::Shr if b.lo == b.hi && (0..64).contains(&b.lo) => {
                    Itv::new(a.lo >> b.lo, a.hi >> b.lo)
                }
                // x & m with a non-negative mask lands in [0, m].
                AluOp::And if b.lo == b.hi && b.lo >= 0 => Itv::new(0, b.lo),
                AluOp::And if a.lo == a.hi && a.lo >= 0 => Itv::new(0, a.lo),
                _ => Itv::TOP,
            }
        }
        Inst::Un { op, a, .. } => {
            let a = op_itv(st, a);
            match op {
                UnOp::Mov => a,
                UnOp::Neg => a.neg(),
                _ => Itv::TOP,
            }
        }
        Inst::Set { .. } => Itv::new(0, 1),
        Inst::Load { .. } => Itv::TOP,
        _ => return,
    };
    st[dst.0 as usize] = out;
}

/// Narrows `st` under the assumption "`a cond b` holds", for integer
/// conditions where one side is a register. After a register tightens, the
/// constraint is propagated relationally through any live [`SymExpr`]
/// facts (see [`relate`]). Returns `false` when the narrowed state is
/// infeasible (the edge is dead).
fn itv_narrow(st: &mut BState, cond: CondOp, a: &Operand, b: &Operand) -> bool {
    use CondOp::*;
    if matches!(cond, FEq | FNe | FLt | FLe | FGt | FGe) {
        return true;
    }
    let val = |st: &BState, o: &Operand| match o {
        Operand::Reg(r) => st.itv[r.0 as usize],
        Operand::Imm(v) => Itv::exact(*v as i128),
        Operand::ImmF(_) => Itv::TOP,
    };
    // Narrow a register `r` under "r cond rhs".
    let narrow_one = |st: &mut BState, r: Reg, cond: CondOp, rhs: Itv| {
        let cur = st.itv[r.0 as usize];
        let new = match cond {
            Eq => cur.meet(rhs),
            Ne if rhs.lo == rhs.hi && cur.lo == cur.hi && cur.lo == rhs.lo => {
                Itv { lo: 1, hi: 0 } // definitely equal: contradiction
            }
            Ne if rhs.lo == rhs.hi && cur.lo == rhs.lo => Itv {
                lo: cur.lo + 1,
                hi: cur.hi,
            },
            Ne if rhs.lo == rhs.hi && cur.hi == rhs.lo => Itv {
                lo: cur.lo,
                hi: cur.hi - 1,
            },
            Lt => cur.meet(Itv::new(INF_NEG, rhs.hi - 1)),
            Le => cur.meet(Itv::new(INF_NEG, rhs.hi)),
            Gt => cur.meet(Itv::new(rhs.lo + 1, INF_POS)),
            Ge => cur.meet(Itv::new(rhs.lo, INF_POS)),
            _ => cur,
        };
        st.itv[r.0 as usize] = new;
        if new.is_empty() {
            return false;
        }
        new == cur || relate(st, r.0 as usize, 4)
    };
    // "a cond b" seen from b's side: swap the comparison.
    let swapped = match cond {
        Lt => Gt,
        Le => Ge,
        Gt => Lt,
        Ge => Le,
        c => c,
    };
    let mut feasible = true;
    if let Operand::Reg(r) = a {
        feasible &= narrow_one(st, *r, cond, val(st, b));
    }
    if let Operand::Reg(r) = b {
        feasible &= narrow_one(st, *r, swapped, val(st, a));
    }
    feasible
}

/// After a register's bounds have changed this many times at a loop head,
/// further changes are widened straight to the sentinels so loop-carried
/// arithmetic terminates quickly.
const WIDEN_AFTER: u32 = 3;

/// The bounds pass as a [`FlowProblem`] instance: per-edge transfer is
/// branch-condition narrowing (infeasible edges are simply not emitted),
/// and the join widens loop-head registers once their own bounds have
/// churned [`WIDEN_AFTER`] times. The solver's LIFO discipline matches the
/// hand-written worklist this replaced, so widening decisions — and
/// therefore diagnostics — are unchanged.
struct BoundsFlow<'a> {
    insts: &'a [Inst],
    cfg: &'a Cfg,
    consts: &'a [Option<i128>],
    entry: BState,
    /// Back-edge targets: the only blocks where widening applies.
    loop_head: Vec<bool>,
    /// Per-block, per-register join-change counters: a register is widened
    /// (at a loop head) only once ITS OWN bounds have changed WIDEN_AFTER
    /// times there. A per-block counter would let one churning induction
    /// variable trigger widening of an unrelated register that changed
    /// once (e.g. ping-pong buffer bases swapped by an outer loop).
    chg: Vec<Vec<u32>>,
}

impl FlowProblem for BoundsFlow<'_> {
    type State = BState;

    fn entry(&self) -> BState {
        self.entry.clone()
    }

    fn flow(&mut self, block: usize, mut st: BState, emit: &mut dyn FnMut(usize, BState)) {
        let b = &self.cfg.blocks()[block];
        for inst in &self.insts[b.start..b.end] {
            itv_transfer(&mut st.itv, inst);
            sym_transfer(&mut st.sym, inst, self.consts);
        }
        // Propagate along each out-edge, narrowing on branch conditions.
        let last = b.end - 1;
        if let Inst::Branch {
            cond,
            a,
            b: rhs,
            target,
        } = &self.insts[last]
        {
            let taken_blk = self.cfg.block_of(*target);
            let mut taken = st.clone();
            if itv_narrow(&mut taken, *cond, a, rhs) {
                emit(taken_blk, taken);
            }
            if last + 1 < self.insts.len() {
                let fall_blk = self.cfg.block_of(last + 1);
                let mut fall = st;
                if itv_narrow(&mut fall, cond.negate(), a, rhs) {
                    emit(fall_blk, fall);
                }
            }
        } else {
            for &s in &b.succs {
                emit(s, st.clone());
            }
        }
    }

    fn join(&mut self, succ: usize, cur: &mut BState, new: BState) -> bool {
        let mut itv_changed = false;
        for (ri, (c, n)) in cur.itv.iter_mut().zip(&new.itv).enumerate() {
            let mut j = c.join(*n);
            if j != *c && self.loop_head[succ] && self.chg[succ][ri] >= WIDEN_AFTER {
                if j.lo < c.lo {
                    j.lo = INF_NEG;
                }
                if j.hi > c.hi {
                    j.hi = INF_POS;
                }
            }
            if j != *c {
                *c = j;
                self.chg[succ][ri] += 1;
                itv_changed = true;
            }
        }
        // A fact survives a join only if both paths agree on it. Dropped
        // facts re-queue the block but do not feed the widening counters
        // (facts only ever disappear, so this terminates on its own).
        let mut sym_changed = false;
        for (c, n) in cur.sym.iter_mut().zip(&new.sym) {
            if c.is_some() && *c != *n {
                *c = None;
                sym_changed = true;
            }
        }
        itv_changed || sym_changed
    }
}

/// Interval analysis over the address arithmetic, with per-edge
/// branch-condition narrowing. Proves accesses inside `[0, mem_bytes)`
/// where it can; a proven violation is an error, a bounded straddle is a
/// warning, an unbounded address is a note. With no `mem_bytes` in the
/// options (the build-time path, where the functional memory is not yet
/// attached) only provably-negative addresses are reported.
///
/// The interval domain is augmented with per-register [`SymExpr`] facts
/// (with constant operands resolved through write-once immediate
/// registers), so a guard on a derived value — `i % n != 0`, `i / n > 0` —
/// narrows the value it was derived from and everything recomputed from
/// it. This is what lets kernels index `buf[i - n]` under an `i / n > 0`
/// guard without a runtime clamp purely for the prover's benefit.
fn pass_bounds(
    insts: &[Inst],
    cfg: &Cfg,
    num_regs: u16,
    opts: &VerifyOptions,
    report: &mut VerifyReport,
) {
    let nr = num_regs as usize;
    let nb = cfg.blocks().len();
    let consts = write_once_imm_consts(insts, num_regs);
    let mut entry = vec![Itv::TOP; nr];
    entry[0] = match opts.nthreads {
        Some(n) => Itv::new(0, n as i128 - 1),
        None => Itv::new(0, INF_POS),
    };
    if nr > 1 {
        entry[1] = match opts.nthreads {
            Some(n) => Itv::exact(n as i128),
            None => Itv::new(1, INF_POS),
        };
    }
    let entry = BState {
        itv: entry,
        sym: vec![None; nr],
    };
    // Widening is only ever needed where a cycle can feed a value back
    // into itself — the targets of back edges. Widening anywhere else
    // (straight-line blocks, diamond reconvergence joins) would throw
    // away edge-narrowed bounds (the loop guard's `i < n`, a relational
    // narrow from a divergent arm) for no termination benefit: with loop
    // heads capped, every other block's inputs eventually stabilize.
    let mut loop_head = vec![false; nb];
    {
        let (white, grey, black) = (0u8, 1u8, 2u8);
        let mut color = vec![white; nb];
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = grey;
        while let Some(top) = stack.last_mut() {
            let (u, ei) = *top;
            if ei < cfg.blocks()[u].succs.len() {
                top.1 += 1;
                let v = cfg.blocks()[u].succs[ei];
                if color[v] == white {
                    color[v] = grey;
                    stack.push((v, 0));
                } else if color[v] == grey {
                    loop_head[v] = true;
                }
            } else {
                color[u] = black;
                stack.pop();
            }
        }
    }
    let mut flow = BoundsFlow {
        insts,
        cfg,
        consts: &consts,
        entry,
        loop_head,
        chg: vec![vec![0; nr]; nb],
    };
    let in_state = solve_flow(nb, &mut flow);
    // Classify every memory access against the buffer space.
    for (bi, b) in cfg.blocks().iter().enumerate() {
        let Some(st0) = &in_state[bi] else { continue };
        let mut st = st0.itv.clone();
        for pc in b.start..b.end {
            let inst = &insts[pc];
            if let Inst::Load { base, offset, .. } | Inst::Store { base, offset, .. } = inst {
                let addr = st[base.0 as usize].add(Itv::exact(*offset as i128));
                classify_access(insts, pc, bi, addr, opts.mem_bytes, report);
            }
            itv_transfer(&mut st, inst);
        }
    }
}

/// Emits the bounds diagnostic (if any) for one access with address
/// interval `addr` against a buffer of `mem_bytes` bytes.
fn classify_access(
    insts: &[Inst],
    pc: usize,
    block: usize,
    addr: Itv,
    mem_bytes: Option<u64>,
    report: &mut VerifyReport,
) {
    if addr.hi < 0 {
        report.record(
            insts,
            Diagnostic::new(
                DwsLintCode::OobAccess,
                Some(pc),
                Some(block),
                format!("address {} is provably negative", addr.render()),
            ),
        );
        return;
    }
    let Some(m) = mem_bytes else { return };
    let m = m as i128;
    if addr.lo >= m {
        report.record(
            insts,
            Diagnostic::new(
                DwsLintCode::OobAccess,
                Some(pc),
                Some(block),
                format!(
                    "address {} is provably past the {m}-byte buffer space",
                    addr.render()
                ),
            ),
        );
    } else if addr.lo >= 0 && addr.hi < m {
        // Provably in bounds.
    } else if addr.is_bounded() {
        report.record(
            insts,
            Diagnostic::new(
                DwsLintCode::OobAccessPossible,
                Some(pc),
                Some(block),
                format!(
                    "address {} straddles the {m}-byte buffer space",
                    addr.render()
                ),
            ),
        );
    } else {
        report.record(
            insts,
            Diagnostic::new(
                DwsLintCode::UnprovenBounds,
                Some(pc),
                Some(block),
                format!(
                    "address {} is unbounded; in-bounds could not be proven against \
                     the {m}-byte buffer space",
                    addr.render()
                ),
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Runs the annotated passes (everything after the structural gate) into
/// `report`.
fn run_annotated(
    insts: &[Inst],
    cfg: &Cfg,
    annotations: &[Option<BranchInfo>],
    opts: &VerifyOptions,
    report: &mut VerifyReport,
) {
    let num_regs = max_reg(insts);
    report.stats.blocks = cfg.blocks().len();
    let reach = pass_partition(insts, cfg, report);
    let varying = compute_varying(insts, num_regs);
    let mut stats = report.stats;
    pass_reconv(insts, cfg, annotations, &varying, opts, report, &mut stats);
    report.stats = stats;
    pass_defuse(insts, cfg, &reach, num_regs, report);
    pass_bounds(insts, cfg, num_regs, opts, report);
    pass_meld(insts, cfg, &varying, report);
}

// ---------------------------------------------------------------------------
// Pass 6: control-flow melding advisory (DWS06xx).
// ---------------------------------------------------------------------------

/// Advisory pass: runs the meldable-region analysis ([`crate::meld`]) over
/// every proper divergent diamond and reports each verdict as a note —
/// `DWS0601` for regions `dws-cli opt --meld` would rewrite, `DWS0602` for
/// diamonds it inspected and declined (with the reason).
fn pass_meld(insts: &[Inst], cfg: &Cfg, varying: &[bool], report: &mut VerifyReport) {
    for cand in crate::meld::find_candidates(insts, cfg, varying) {
        let diag = match &cand.verdict {
            crate::meld::MeldVerdict::Meldable {
                aligned,
                region_len,
                melded_len,
                est_saved,
            } => Diagnostic::new(
                DwsLintCode::MeldableRegion,
                Some(cand.branch_pc),
                Some(cand.block),
                format!(
                    "meldable region at pc {}: {aligned} aligned ops, melding replaces \
                     {region_len} divergent insts with {melded_len} (est. {est_saved} saved; \
                     join at pc {})",
                    cand.branch_pc, cand.join_pc
                ),
            ),
            crate::meld::MeldVerdict::Rejected { reason } => Diagnostic::new(
                DwsLintCode::MeldRejected,
                Some(cand.branch_pc),
                Some(cand.block),
                format!(
                    "divergent diamond at pc {} (join at pc {}) not melded: {reason}",
                    cand.branch_pc, cand.join_pc
                ),
            ),
        };
        report.record(insts, diag);
    }
}

/// Verifies a raw instruction stream: the structural pass first, then — if
/// the structure permits building a CFG at all — the full pipeline against
/// freshly computed annotations. Returns the report together with the CFG
/// and [`BranchInfo`] annotations (so [`Program::from_insts`]
/// (crate::Program::from_insts) does not analyze twice), or `None` for them
/// when the structure was too broken to build a CFG.
pub fn verify(insts: &[Inst], opts: &VerifyOptions) -> (VerifyReport, Option<(Cfg, Annotations)>) {
    let mut report = VerifyReport::default();
    pass_structural(insts, &mut report);
    if report.has_errors() {
        return (report, None);
    }
    let cfg = Cfg::build(insts);
    let annotations = cfg.analyze_branches_with(insts, opts.subdiv_threshold);
    run_annotated(insts, &cfg, &annotations, opts, &mut report);
    (report, Some((cfg, annotations)))
}

/// Verifies an already-annotated program: the linter path, where a
/// [`Program`](crate::Program) exists and its `BranchInfo` annotations are
/// themselves on trial.
pub fn verify_annotated(
    insts: &[Inst],
    cfg: &Cfg,
    annotations: &[Option<BranchInfo>],
    opts: &VerifyOptions,
) -> VerifyReport {
    let mut report = VerifyReport::default();
    pass_structural(insts, &mut report);
    if !report.has_errors() {
        run_annotated(insts, cfg, annotations, opts, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(dst: u16, a: Operand, b: Operand) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            a,
            b,
        }
    }

    #[test]
    fn codes_round_trip_severities() {
        use DwsLintCode::*;
        for (code, sev) in [
            (EmptyProgram, Severity::Error),
            (UnreachableCode, Severity::Warning),
            (UnprovenBounds, Severity::Note),
            (SubdivMarkMismatch, Severity::Error),
        ] {
            assert_eq!(code.severity(), sev);
            assert!(code.as_str().starts_with("DWS0"));
        }
    }

    #[test]
    fn interval_arithmetic() {
        let a = Itv::new(2, 5);
        let b = Itv::new(-1, 3);
        assert_eq!(a.add(b), Itv::new(1, 8));
        assert_eq!(a.sub(b), Itv::new(-1, 6));
        assert_eq!(a.mul(b), Itv::new(-5, 15));
        assert_eq!(a.neg(), Itv::new(-5, -2));
        assert!(Itv::new(3, 2).is_empty());
        assert!(a.is_bounded());
        assert!(!Itv::TOP.is_bounded());
        assert_eq!(a.meet(b), Itv::new(2, 3));
        assert_eq!(a.join(b), Itv::new(-1, 5));
        // Overflowing products saturate instead of wrapping.
        let big = Itv::exact(i64::MAX as i128);
        assert!(!big.mul(big).is_bounded());
    }

    #[test]
    fn recomputed_ipdoms_match_chk_on_nested_diamond() {
        // Same shape as the cfg.rs nested_diamond test.
        let tid = Operand::Reg(Reg(0));
        let br = |t: usize| Inst::Branch {
            cond: CondOp::Eq,
            a: tid,
            b: Operand::Imm(0),
            target: t,
        };
        let insts = vec![
            br(6),
            br(4),
            add(2, tid, Operand::Imm(1)),
            Inst::Jump { target: 5 },
            add(2, tid, Operand::Imm(2)),
            Inst::Jump { target: 7 },
            add(2, tid, Operand::Imm(3)),
            Inst::Store {
                src: Operand::Reg(Reg(2)),
                base: Reg(0),
                offset: 0,
            },
            Inst::Halt,
        ];
        let cfg = Cfg::build(&insts);
        let recomputed = recompute_ipdom_blocks(&cfg);
        for (b, &r) in recomputed.iter().enumerate() {
            assert_eq!(r, cfg.ipdom_of_block(b), "block {b}");
        }
        let (report, built) = verify(&insts, &VerifyOptions::default());
        assert!(!report.has_errors(), "{report}");
        assert!(built.is_some());
        assert_eq!(report.stats.branches, 2);
        assert_eq!(report.stats.divergent_branches, 2);
        assert_eq!(report.stats.max_divergent_nesting, 2);
        assert_eq!(report.stats.reconv_stack_bound(), 3);
    }

    #[test]
    fn uniform_branch_does_not_count_toward_nesting() {
        let ntid = Operand::Reg(Reg(1));
        let insts = vec![
            Inst::Branch {
                cond: CondOp::Gt,
                a: ntid,
                b: Operand::Imm(4),
                target: 2,
            },
            add(2, ntid, Operand::Imm(1)),
            Inst::Halt,
        ];
        let (report, _) = verify(&insts, &VerifyOptions::default());
        assert_eq!(report.stats.uniform_branches, 1);
        assert_eq!(report.stats.divergent_branches, 0);
        assert_eq!(report.stats.max_divergent_nesting, 0);
    }

    #[test]
    fn narrowing_kills_dead_edges_and_proves_bounds() {
        // if tid < 4 { store [tid*8] } ; buffer is 32 bytes, so the access
        // is provably in bounds only thanks to the branch narrowing.
        let tid = Operand::Reg(Reg(0));
        let insts = vec![
            Inst::Branch {
                cond: CondOp::Ge,
                a: tid,
                b: Operand::Imm(4),
                target: 4,
            },
            add(2, tid, Operand::Imm(0)), // r2 = tid
            Inst::Alu {
                op: AluOp::Mul,
                dst: Reg(2),
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(8),
            },
            Inst::Store {
                src: tid,
                base: Reg(2),
                offset: 0,
            },
            Inst::Halt,
        ];
        let opts = VerifyOptions::default()
            .with_mem_bytes(32)
            .with_nthreads(256);
        let (report, _) = verify(&insts, &opts);
        assert!(
            report.find(DwsLintCode::OobAccess).is_none()
                && report.find(DwsLintCode::OobAccessPossible).is_none()
                && report.find(DwsLintCode::UnprovenBounds).is_none(),
            "{report}"
        );
    }

    #[test]
    fn directed_rounding_division() {
        assert_eq!(dfloor(7, 2), 3);
        assert_eq!(dfloor(-7, 2), -4);
        assert_eq!(dfloor(7, -2), -4);
        assert_eq!(dceil(7, 2), 4);
        assert_eq!(dceil(-7, 2), -3);
        assert_eq!(dceil(-7, -2), 4);
    }

    #[test]
    fn fact_backward_inverts_transfers() {
        let r = Reg(0);
        // -src in [2, 5]  =>  src in [-5, -2]
        let f = SymExpr::Affine {
            src: r,
            scale: -1,
            offset: 0,
        };
        assert_eq!(fact_backward(f, Itv::new(2, 5), Itv::TOP), Itv::new(-5, -2));
        // trunc(src/4) in [1, 3]  =>  src in [4, 15]
        let f = SymExpr::DivBy { src: r, d: 4 };
        assert_eq!(fact_backward(f, Itv::new(1, 3), Itv::TOP), Itv::new(4, 15));
        // trunc(src/4) in [-2, -1]  =>  src in [-11, -4]
        assert_eq!(
            fact_backward(f, Itv::new(-2, -1), Itv::TOP),
            Itv::new(-11, -4)
        );
        // src % 8 >= 2 with src >= 0  =>  src >= 2
        let f = SymExpr::RemBy { src: r, d: 8 };
        assert_eq!(fact_backward(f, Itv::new(2, 7), Itv::new(0, 100)).lo, 2);
        // ... but nothing without the sign premise.
        assert_eq!(fact_backward(f, Itv::new(2, 7), Itv::TOP), Itv::TOP);
    }

    #[test]
    fn write_once_const_table() {
        let insts = vec![
            Inst::Un {
                op: UnOp::Mov,
                dst: Reg(2),
                a: Operand::Imm(8),
            },
            Inst::Un {
                op: UnOp::Mov,
                dst: Reg(3),
                a: Operand::Imm(1),
            },
            Inst::Un {
                op: UnOp::Mov,
                dst: Reg(3),
                a: Operand::Imm(2),
            },
            Inst::Halt,
        ];
        let consts = write_once_imm_consts(&insts, 4);
        assert_eq!(consts[0], None, "tid is preloaded, never a constant");
        assert_eq!(consts[2], Some(8));
        assert_eq!(consts[3], None, "multiply-defined");
    }

    /// A guard on `tid / 4` must narrow `tid` itself, so an address
    /// recomputed from `tid` inside the branch proves in-bounds with no
    /// runtime clamp (the HotSpot "up neighbor" shape).
    #[test]
    fn div_guard_narrows_source_relationally() {
        let tid = Operand::Reg(Reg(0));
        let insts = vec![
            Inst::Alu {
                op: AluOp::Div,
                dst: Reg(2),
                a: tid,
                b: Operand::Imm(4),
            },
            Inst::Branch {
                cond: CondOp::Le,
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(0),
                target: 5,
            },
            // r2 = tid/4 >= 1 here, so tid >= 4 and (tid-4)*8 in [0, 88].
            Inst::Alu {
                op: AluOp::Sub,
                dst: Reg(3),
                a: tid,
                b: Operand::Imm(4),
            },
            Inst::Alu {
                op: AluOp::Mul,
                dst: Reg(3),
                a: Operand::Reg(Reg(3)),
                b: Operand::Imm(8),
            },
            Inst::Store {
                src: tid,
                base: Reg(3),
                offset: 0,
            },
            Inst::Halt,
        ];
        let opts = VerifyOptions::default()
            .with_mem_bytes(128)
            .with_nthreads(16);
        let (report, _) = verify(&insts, &opts);
        assert!(
            report.find(DwsLintCode::OobAccess).is_none()
                && report.find(DwsLintCode::OobAccessPossible).is_none()
                && report.find(DwsLintCode::UnprovenBounds).is_none(),
            "{report}"
        );
    }

    /// A guard on `tid % 4` proves `tid >= 1` (the HotSpot "left
    /// neighbor" shape).
    #[test]
    fn rem_guard_narrows_source_relationally() {
        let tid = Operand::Reg(Reg(0));
        let insts = vec![
            Inst::Alu {
                op: AluOp::Rem,
                dst: Reg(2),
                a: tid,
                b: Operand::Imm(4),
            },
            Inst::Branch {
                cond: CondOp::Le,
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(0),
                target: 5,
            },
            // tid % 4 >= 1 and tid >= 0, so tid >= 1 and (tid-1)*8 >= 0.
            Inst::Alu {
                op: AluOp::Sub,
                dst: Reg(3),
                a: tid,
                b: Operand::Imm(1),
            },
            Inst::Alu {
                op: AluOp::Mul,
                dst: Reg(3),
                a: Operand::Reg(Reg(3)),
                b: Operand::Imm(8),
            },
            Inst::Store {
                src: tid,
                base: Reg(3),
                offset: 0,
            },
            Inst::Halt,
        ];
        let opts = VerifyOptions::default()
            .with_mem_bytes(128)
            .with_nthreads(16);
        let (report, _) = verify(&insts, &opts);
        assert!(
            report.find(DwsLintCode::OobAccess).is_none()
                && report.find(DwsLintCode::OobAccessPossible).is_none()
                && report.find(DwsLintCode::UnprovenBounds).is_none(),
            "{report}"
        );
    }

    /// A scale held in a write-once immediate register carries the same
    /// affine fact as a literal, and a later guard on the *source*
    /// re-narrows the already-computed derived value (forward direction).
    #[test]
    fn write_once_scale_renarrowed_forward() {
        let tid = Operand::Reg(Reg(0));
        let insts = vec![
            Inst::Un {
                op: UnOp::Mov,
                dst: Reg(2),
                a: Operand::Imm(8),
            },
            Inst::Alu {
                op: AluOp::Mul,
                dst: Reg(3),
                a: tid,
                b: Operand::Reg(Reg(2)),
            },
            Inst::Branch {
                cond: CondOp::Ge,
                a: tid,
                b: Operand::Imm(4),
                target: 4,
            },
            // tid < 4 here, so r3 = 8*tid re-narrows to [0, 24].
            Inst::Store {
                src: tid,
                base: Reg(3),
                offset: 0,
            },
            Inst::Halt,
        ];
        let opts = VerifyOptions::default()
            .with_mem_bytes(32)
            .with_nthreads(16);
        let (report, _) = verify(&insts, &opts);
        assert!(
            report.find(DwsLintCode::OobAccess).is_none()
                && report.find(DwsLintCode::OobAccessPossible).is_none()
                && report.find(DwsLintCode::UnprovenBounds).is_none(),
            "{report}"
        );
    }

    /// Redefining a fact's source kills the fact: the guard must NOT
    /// narrow the stale source, so the straddling access stays reported.
    #[test]
    fn fact_killed_on_source_redefinition() {
        let tid = Operand::Reg(Reg(0));
        let insts = vec![
            // r4 = tid; r3 = r4/4; r4 = 99 (kills the DivBy fact).
            Inst::Un {
                op: UnOp::Mov,
                dst: Reg(4),
                a: tid,
            },
            Inst::Alu {
                op: AluOp::Div,
                dst: Reg(3),
                a: Operand::Reg(Reg(4)),
                b: Operand::Imm(4),
            },
            Inst::Un {
                op: UnOp::Mov,
                dst: Reg(4),
                a: Operand::Imm(99),
            },
            Inst::Branch {
                cond: CondOp::Le,
                a: Operand::Reg(Reg(3)),
                b: Operand::Imm(0),
                target: 7,
            },
            Inst::Alu {
                op: AluOp::Sub,
                dst: Reg(5),
                a: tid,
                b: Operand::Imm(4),
            },
            Inst::Alu {
                op: AluOp::Mul,
                dst: Reg(5),
                a: Operand::Reg(Reg(5)),
                b: Operand::Imm(8),
            },
            Inst::Store {
                src: tid,
                base: Reg(5),
                offset: 0,
            },
            Inst::Halt,
        ];
        let opts = VerifyOptions::default()
            .with_mem_bytes(128)
            .with_nthreads(16);
        let (report, _) = verify(&insts, &opts);
        assert!(
            report.find(DwsLintCode::OobAccessPossible).is_some(),
            "the stale fact must not prove this access: {report}"
        );
    }

    /// A fact only survives a CFG join when both incoming paths agree on
    /// it; mismatched facts must not narrow after the join.
    #[test]
    fn join_drops_mismatched_facts() {
        let tid = Operand::Reg(Reg(0));
        let insts = vec![
            Inst::Branch {
                cond: CondOp::Ge,
                a: tid,
                b: Operand::Imm(8),
                target: 3,
            },
            Inst::Alu {
                op: AluOp::Div,
                dst: Reg(2),
                a: tid,
                b: Operand::Imm(8),
            },
            Inst::Jump { target: 4 },
            Inst::Alu {
                op: AluOp::Div,
                dst: Reg(2),
                a: tid,
                b: Operand::Imm(2),
            },
            Inst::Branch {
                cond: CondOp::Le,
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(0),
                target: 8,
            },
            Inst::Alu {
                op: AluOp::Sub,
                dst: Reg(3),
                a: tid,
                b: Operand::Imm(2),
            },
            Inst::Alu {
                op: AluOp::Mul,
                dst: Reg(3),
                a: Operand::Reg(Reg(3)),
                b: Operand::Imm(8),
            },
            Inst::Store {
                src: tid,
                base: Reg(3),
                offset: 0,
            },
            Inst::Halt,
        ];
        let opts = VerifyOptions::default()
            .with_mem_bytes(128)
            .with_nthreads(16);
        let (report, _) = verify(&insts, &opts);
        assert!(
            report.find(DwsLintCode::OobAccessPossible).is_some(),
            "divergent facts must die at the join: {report}"
        );
    }

    #[test]
    fn rendered_report_quotes_instruction() {
        let insts = vec![add(2, Operand::Reg(Reg(5)), Operand::Imm(1)), Inst::Halt];
        let (report, _) = verify(&insts, &VerifyOptions::default());
        let d = report.find(DwsLintCode::UseBeforeDef).expect("finding");
        assert_eq!(d.pc, Some(0));
        assert!(report.rendered().contains("error[DWS0301]"));
        assert!(report.rendered().contains("r2 = Add(r5, 1)"));
        assert!(report.has_errors());
        assert_eq!(report.count(Severity::Error), 1);
        assert!(report.summary().starts_with("1 errors"));
    }
}
