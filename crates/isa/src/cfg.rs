//! Control-flow analysis: basic blocks, post-dominators, and the paper's
//! static subdivision heuristic.
//!
//! The paper relies on every conditional branch being annotated with its
//! *immediate post-dominator* — the PC where diverged paths re-converge —
//! and on a static marking of which branches are allowed to subdivide a warp
//! (Section 4.3: only branches whose post-dominator is followed by a basic
//! block of no more than [`SUBDIV_MAX_BLOCK`] instructions). The authors
//! instrumented their benchmarks by hand; here both properties are computed
//! automatically from the IR.

use crate::inst::Inst;

/// Sentinel post-dominator meaning "paths only meet at thread termination".
pub const RECONV_NONE: usize = usize::MAX;

/// The paper's subdivision heuristic threshold (Section 4.3): a branch may
/// subdivide a warp only if the basic block at its post-dominator is at most
/// this many instructions long (roughly the work of one L1 miss).
pub const SUBDIV_MAX_BLOCK: usize = 50;

/// Static metadata attached to every conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// PC of the immediate post-dominator (re-convergence point), or
    /// [`RECONV_NONE`] when the paths only meet at `Halt`.
    pub ipdom: usize,
    /// Whether dynamic warp subdivision is permitted at this branch.
    pub subdividable: bool,
    /// PC of the taken path.
    pub taken: usize,
    /// PC of the fall-through path.
    pub fallthrough: usize,
}

/// A basic block: instruction range `[start, end)` plus successor blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A control-flow graph over the instruction list.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// Block index of each instruction.
    block_of: Vec<usize>,
    /// Immediate post-dominator of each block (block index), or `None` for
    /// the virtual exit.
    ipdom_block: Vec<Option<usize>>,
}

impl Cfg {
    /// Builds the CFG and post-dominator tree for an instruction list.
    pub fn build(insts: &[Inst]) -> Cfg {
        let n = insts.len();
        // Leaders: entry, every branch/jump target, every fall-through point
        // after a branch/jump/halt.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, inst) in insts.iter().enumerate() {
            match *inst {
                Inst::Branch { target, .. } => {
                    leader[target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Inst::Jump { target } => {
                    leader[target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Inst::Halt if pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (pc, &is_leader) in leader.iter().enumerate() {
            if pc > start && is_leader {
                blocks.push(Block {
                    start,
                    end: pc,
                    succs: Vec::new(),
                });
                start = pc;
            }
        }
        blocks.push(Block {
            start,
            end: n,
            succs: Vec::new(),
        });
        for (bi, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(bi);
        }
        // Successors.
        let first_block_at = |pc: usize| block_of[pc];
        for b in &mut blocks {
            let last = b.end - 1;
            let succs: Vec<usize> = match insts[last] {
                Inst::Branch { target, .. } => {
                    let mut s = vec![first_block_at(target)];
                    if last + 1 < n {
                        s.push(first_block_at(last + 1));
                    }
                    s
                }
                Inst::Jump { target } => vec![first_block_at(target)],
                Inst::Halt => vec![],
                _ => {
                    if last + 1 < n {
                        vec![first_block_at(last + 1)]
                    } else {
                        vec![]
                    }
                }
            };
            b.succs = succs;
        }
        let ipdom_block = post_dominators(&blocks);
        Cfg {
            blocks,
            block_of,
            ipdom_block,
        }
    }

    /// The basic blocks in program order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Block index containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Immediate post-dominator block of block `b`, or `None` if control
    /// from `b` only reaches the virtual exit.
    pub fn ipdom_of_block(&self, b: usize) -> Option<usize> {
        self.ipdom_block[b]
    }

    /// Computes [`BranchInfo`] for every conditional branch in `insts`,
    /// with the paper's default subdivision threshold.
    pub fn analyze_branches(&self, insts: &[Inst]) -> Vec<Option<BranchInfo>> {
        self.analyze_branches_with(insts, SUBDIV_MAX_BLOCK)
    }

    /// Like [`Cfg::analyze_branches`], with an explicit threshold for the
    /// Section 4.3 heuristic (used by the subdivision-threshold ablation).
    pub fn analyze_branches_with(
        &self,
        insts: &[Inst],
        max_block: usize,
    ) -> Vec<Option<BranchInfo>> {
        let mut out = vec![None; insts.len()];
        for (pc, inst) in insts.iter().enumerate() {
            if let Inst::Branch { target, .. } = *inst {
                let b = self.block_of(pc);
                let (ipdom, subdividable) = match self.ipdom_of_block(b) {
                    Some(pb) => {
                        let blk = &self.blocks[pb];
                        (blk.start, blk.len() <= max_block)
                    }
                    None => (RECONV_NONE, false),
                };
                out[pc] = Some(BranchInfo {
                    ipdom,
                    subdividable,
                    taken: target,
                    fallthrough: pc + 1,
                });
            }
        }
        out
    }
}

/// Iterative immediate post-dominator computation (Cooper–Harvey–Kennedy on
/// the reverse CFG, with a virtual exit that every `Halt` block reaches).
///
/// Returns, per block, the immediate post-dominator block index, or `None`
/// when it is the virtual exit.
fn post_dominators(blocks: &[Block]) -> Vec<Option<usize>> {
    let n = blocks.len();
    let exit = n; // virtual exit node index
                  // Reverse-graph successors = CFG predecessors; we need, for each node,
                  // its successors in the *reverse* direction of the dataflow, i.e. the
                  // CFG successors (post-dominance runs backwards). Build CFG succ lists
                  // including the virtual exit.
    let mut succs: Vec<Vec<usize>> = blocks
        .iter()
        .map(|b| {
            if b.succs.is_empty() {
                vec![exit]
            } else {
                b.succs.clone()
            }
        })
        .collect();
    succs.push(vec![]); // exit has no successors

    // Postorder of the *reverse* CFG starting from exit == reverse DFS over
    // predecessor edges. Build predecessor lists of the extended graph.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            preds[v].push(u);
        }
    }
    // DFS from exit following preds to get a postorder of nodes that reach
    // exit (all terminating programs do).
    let mut order = Vec::with_capacity(n + 1);
    let mut visited = vec![false; n + 1];
    // Iterative DFS.
    let mut stack: Vec<(usize, usize)> = vec![(exit, 0)];
    visited[exit] = true;
    while let Some(&mut (u, ref mut i)) = stack.last_mut() {
        if *i < preds[u].len() {
            let v = preds[u][*i];
            *i += 1;
            if !visited[v] {
                visited[v] = true;
                stack.push((v, 0));
            }
        } else {
            order.push(u);
            stack.pop();
        }
    }
    // order is postorder (exit last). Map node -> postorder index.
    let mut po_idx = vec![usize::MAX; n + 1];
    for (i, &u) in order.iter().enumerate() {
        po_idx[u] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n + 1];
    idom[exit] = Some(exit);
    let mut changed = true;
    while changed {
        changed = false;
        // Process in reverse postorder (exit first).
        for &u in order.iter().rev() {
            if u == exit {
                continue;
            }
            // New idom = intersection over processed CFG successors.
            let mut new_idom: Option<usize> = None;
            for &s in &succs[u] {
                if idom[s].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => s,
                    Some(cur) => intersect(cur, s, &idom, &po_idx),
                });
            }
            if let Some(ni) = new_idom {
                if idom[u] != Some(ni) {
                    idom[u] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    (0..n)
        .map(|b| match idom[b] {
            Some(d) if d != exit => Some(d),
            _ => None,
        })
        .collect()
}

fn intersect(mut a: usize, mut b: usize, idom: &[Option<usize>], po_idx: &[usize]) -> usize {
    while a != b {
        while po_idx[a] < po_idx[b] {
            a = idom[a].expect("intersect walks processed nodes");
        }
        while po_idx[b] < po_idx[a] {
            b = idom[b].expect("intersect walks processed nodes");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, CondOp, Operand, Reg};

    fn add(dst: u16) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        }
    }

    fn br(target: usize) -> Inst {
        Inst::Branch {
            cond: CondOp::Eq,
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(0),
            target,
        }
    }

    #[test]
    fn diamond_reconverges_at_join() {
        // 0: br -> 3
        // 1: add          (fallthrough path)
        // 2: jmp 4
        // 3: add          (taken path)
        // 4: halt         (join)
        let insts = vec![br(3), add(2), Inst::Jump { target: 4 }, add(3), Inst::Halt];
        let cfg = Cfg::build(&insts);
        let info = cfg.analyze_branches(&insts);
        let bi = info[0].unwrap();
        assert_eq!(bi.ipdom, 4);
        assert!(bi.subdividable);
        assert_eq!(bi.taken, 3);
        assert_eq!(bi.fallthrough, 1);
    }

    #[test]
    fn nested_diamond() {
        // outer: 0 br->6 ; inner on fallthrough path: 1 br->4 ; 2 add; 3 jmp 5;
        // 4 add; 5 jmp 7; 6 add; 7 halt
        let insts = vec![
            br(6),
            br(4),
            add(2),
            Inst::Jump { target: 5 },
            add(3),
            Inst::Jump { target: 7 },
            add(4),
            Inst::Halt,
        ];
        let cfg = Cfg::build(&insts);
        let info = cfg.analyze_branches(&insts);
        assert_eq!(info[0].unwrap().ipdom, 7, "outer joins at halt block");
        assert_eq!(info[1].unwrap().ipdom, 5, "inner joins at jmp 7");
    }

    #[test]
    fn while_loop_reconverges_at_exit() {
        // 0: br Ge -> 3 (exit)
        // 1: add        (body)
        // 2: jmp 0
        // 3: halt
        let insts = vec![
            Inst::Branch {
                cond: CondOp::Ge,
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(10),
                target: 3,
            },
            add(2),
            Inst::Jump { target: 0 },
            Inst::Halt,
        ];
        let cfg = Cfg::build(&insts);
        let info = cfg.analyze_branches(&insts);
        assert_eq!(info[0].unwrap().ipdom, 3);
    }

    #[test]
    fn subdividable_respects_block_length() {
        // Branch joining into a long (>50 inst) block must not subdivide.
        let mut insts = vec![br(3), add(2), Inst::Jump { target: 3 }];
        for _ in 0..60 {
            insts.push(add(3));
        }
        insts.push(Inst::Halt);
        let cfg = Cfg::build(&insts);
        let info = cfg.analyze_branches(&insts);
        let bi = info[0].unwrap();
        assert_eq!(bi.ipdom, 3);
        assert!(!bi.subdividable, "61-instruction join block exceeds 50");
    }

    #[test]
    fn branch_to_distinct_halts_has_no_reconvergence() {
        // 0: br -> 2 ; 1: halt ; 2: halt
        let insts = vec![br(2), Inst::Halt, Inst::Halt];
        let cfg = Cfg::build(&insts);
        let info = cfg.analyze_branches(&insts);
        let bi = info[0].unwrap();
        assert_eq!(bi.ipdom, RECONV_NONE);
        assert!(!bi.subdividable);
    }

    #[test]
    fn block_partitioning() {
        let insts = vec![add(2), add(3), br(0), Inst::Halt];
        let cfg = Cfg::build(&insts);
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.block_of(0), 0);
        assert_eq!(cfg.block_of(2), 0);
        assert_eq!(cfg.block_of(3), 1);
        assert_eq!(cfg.blocks()[0].len(), 3);
        assert!(!cfg.blocks()[0].is_empty());
    }
}
