//! Instruction definitions for the kernel IR.
//!
//! Registers hold 64-bit raw values. Integer operations interpret them as
//! two's-complement `i64`; floating-point operations reinterpret the bits as
//! `f64`. Memory is byte-addressed; every access moves one 8-byte word, and
//! addresses are expected to be 8-byte aligned (the functional store rounds
//! down, matching a hardware word-select).

use std::fmt;

/// A virtual register index.
///
/// Registers `r0` and `r1` are preloaded with the thread id and thread count
/// respectively (see [`crate::ThreadState::new`]); the builder allocates
/// fresh registers from `r2` upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A source operand: a register or an integer/float immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Read a register.
    Reg(Reg),
    /// A signed integer immediate.
    Imm(i64),
    /// A floating-point immediate.
    ImmF(f64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::ImmF(v) => write!(f, "{v}f"),
        }
    }
}

/// Binary ALU operations. Integer ops wrap; division by zero yields 0
/// (kernels never rely on trapping semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (0 when the divisor is 0).
    Div,
    /// Integer remainder (0 when the divisor is 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 63).
    Shl,
    /// Arithmetic shift right (shift amount masked to 63).
    Shr,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Floating add.
    FAdd,
    /// Floating subtract.
    FSub,
    /// Floating multiply.
    FMul,
    /// Floating divide.
    FDiv,
    /// Floating minimum.
    FMin,
    /// Floating maximum.
    FMax,
}

impl AluOp {
    /// Whether the op counts as floating-point for the energy model.
    #[inline]
    pub fn is_fp(self) -> bool {
        use AluOp::*;
        matches!(self, FAdd | FSub | FMul | FDiv | FMin | FMax)
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Copy.
    Mov,
    /// Bitwise not.
    Not,
    /// Integer negate.
    Neg,
    /// Floating negate.
    FNeg,
    /// Floating absolute value.
    FAbs,
    /// Floating square root.
    FSqrt,
    /// Convert signed integer to float.
    I2F,
    /// Convert float to signed integer (truncating; saturates at i64 range).
    F2I,
}

impl UnOp {
    /// Whether the op counts as floating-point for the energy model
    /// (conversions exercise the FP datapath, so both count).
    #[inline]
    pub fn is_fp(self) -> bool {
        use UnOp::*;
        matches!(self, FNeg | FAbs | FSqrt | I2F | F2I)
    }
}

/// Comparison conditions used by branches and `Set`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// Signed integers equal.
    Eq,
    /// Signed integers not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Floats equal.
    FEq,
    /// Floats not equal.
    FNe,
    /// Float less-than.
    FLt,
    /// Float less-or-equal.
    FLe,
    /// Float greater-than.
    FGt,
    /// Float greater-or-equal.
    FGe,
}

impl CondOp {
    /// The condition that holds exactly when `self` does not.
    pub fn negate(self) -> CondOp {
        use CondOp::*;
        match self {
            Eq => Ne,
            Ne => Eq,
            Lt => Ge,
            Le => Gt,
            Gt => Le,
            Ge => Lt,
            FEq => FNe,
            FNe => FEq,
            FLt => FGe,
            FLe => FGt,
            FGt => FLe,
            FGe => FLt,
        }
    }

    /// Evaluates the condition on two raw 64-bit values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        use CondOp::*;
        let (ia, ib) = (a as i64, b as i64);
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        match self {
            Eq => ia == ib,
            Ne => ia != ib,
            Lt => ia < ib,
            Le => ia <= ib,
            Gt => ia > ib,
            Ge => ia >= ib,
            FEq => fa == fb,
            FNe => fa != fb,
            FLt => fa < fb,
            FLe => fa <= fb,
            FGt => fa > fb,
            FGe => fa >= fb,
        }
    }
}

/// One IR instruction. Branch targets are absolute instruction indices
/// (resolved by [`crate::KernelBuilder::build`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// `dst = a <op> b` — one cycle on a lane.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = <op> a` — one cycle on a lane.
    Un {
        /// The operation.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        a: Operand,
    },
    /// `dst = (a <cond> b) ? 1 : 0` — one cycle on a lane.
    Set {
        /// The comparison.
        cond: CondOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = mem[regs[base] + offset]` — timed through the cache hierarchy.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register (bytes).
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// `mem[regs[base] + offset] = src` — timed through the cache hierarchy.
    Store {
        /// Value to store.
        src: Operand,
        /// Base address register (bytes).
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Conditional branch: if `a <cond> b` jump to `target`, else fall
    /// through. Divergence-capable; carries static metadata in the program.
    Branch {
        /// The comparison.
        cond: CondOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Absolute instruction index of the taken path.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute instruction index.
        target: usize,
    },
    /// Global barrier across all live threads of the launch. Warp-splits
    /// re-converge here (paper Section 5.4).
    Barrier,
    /// Terminates the executing thread.
    Halt,
}

impl Inst {
    /// Whether the instruction accesses data memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Whether the instruction is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether control cannot fall through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jump { .. } | Inst::Halt)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, dst, a, b } => write!(f, "{dst} = {op:?}({a}, {b})"),
            Inst::Un { op, dst, a } => write!(f, "{dst} = {op:?}({a})"),
            Inst::Set { cond, dst, a, b } => write!(f, "{dst} = set{cond:?}({a}, {b})"),
            Inst::Load { dst, base, offset } => write!(f, "{dst} = load [{base}+{offset}]"),
            Inst::Store { src, base, offset } => write!(f, "store [{base}+{offset}] = {src}"),
            Inst::Branch { cond, a, b, target } => {
                write!(f, "br{cond:?} {a}, {b} -> @{target}")
            }
            Inst::Jump { target } => write!(f, "jmp @{target}"),
            Inst::Barrier => write!(f, "barrier"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negation_is_involutive() {
        use CondOp::*;
        for c in [Eq, Ne, Lt, Le, Gt, Ge, FEq, FNe, FLt, FLe, FGt, FGe] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn cond_negation_flips_outcome() {
        use CondOp::*;
        let int_samples: [(u64, u64); 3] = [(0, 0), (5, 3), ((-7i64) as u64, 2)];
        for c in [Eq, Ne, Lt, Le, Gt, Ge] {
            for &(a, b) in &int_samples {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c:?} {a} {b}");
            }
        }
        // Float negation flips for non-NaN values (NaN makes both sides
        // false, which is IEEE-correct and why kernels avoid NaN data).
        let float_samples = [(1.5f64, 2.5f64), (2.0, 2.0), (-3.0, 1.0)];
        for c in [FEq, FNe, FLt, FLe, FGt, FGe] {
            for &(a, b) in &float_samples {
                let (a, b) = (a.to_bits(), b.to_bits());
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c:?}");
            }
        }
    }

    #[test]
    fn int_conditions() {
        assert!(CondOp::Lt.eval((-1i64) as u64, 0));
        assert!(CondOp::Ge.eval(0, (-1i64) as u64));
        assert!(CondOp::Eq.eval(42, 42));
    }

    #[test]
    fn float_conditions() {
        let a = 1.25f64.to_bits();
        let b = 2.5f64.to_bits();
        assert!(CondOp::FLt.eval(a, b));
        assert!(CondOp::FNe.eval(a, b));
        assert!(!CondOp::FGe.eval(a, b));
        // NaN compares false with everything except FNe.
        let nan = f64::NAN.to_bits();
        assert!(!CondOp::FEq.eval(nan, nan));
        assert!(CondOp::FNe.eval(nan, nan));
    }

    #[test]
    fn classification_helpers() {
        let ld = Inst::Load {
            dst: Reg(2),
            base: Reg(3),
            offset: 0,
        };
        assert!(ld.is_memory());
        assert!(!ld.is_branch());
        assert!(!ld.is_terminator());
        assert!(Inst::Halt.is_terminator());
        assert!(Inst::Jump { target: 0 }.is_terminator());
        let br = Inst::Branch {
            cond: CondOp::Eq,
            a: Operand::Imm(0),
            b: Operand::Imm(0),
            target: 0,
        };
        assert!(br.is_branch());
        assert!(!br.is_terminator());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg(4).to_string(), "r4");
        assert_eq!(Operand::Imm(-3).to_string(), "-3");
        assert_eq!(Operand::from(Reg(1)).to_string(), "r1");
        assert!(Inst::Barrier.to_string().contains("barrier"));
    }
}
