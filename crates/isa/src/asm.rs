//! A textual assembly front-end for the kernel IR.
//!
//! Lets kernels be written as plain text instead of builder calls — handy
//! for experiments, tests, and teaching. One instruction per line;
//! `;` starts a comment; labels end with `:` and may share a line with an
//! instruction. Registers are `r0`..`rN` (`r0` = thread id, `r1` = thread
//! count). Memory operands are `[rB]` or `[rB+off]`/`[rB-off]` (bytes).
//! Float immediates need a decimal point or exponent: `1.0`, `2.5e-3`;
//! `inf`, `-inf` and `nan` are reserved words for the non-finite values.
//!
//! ```text
//! ; out[tid] = sum of 0..tid
//!         li   r2, 0        ; i
//!         li   r3, 0        ; sum
//! loop:   bge  r2, r0, end
//!         add  r3, r3, r2
//!         add  r2, r2, 1
//!         jmp  loop
//! end:    mul  r4, r0, 8
//!         st   r3, [r4]
//!         halt
//! ```
//!
//! # Example
//!
//! ```
//! use dws_isa::asm::parse_asm;
//! let program = parse_asm("
//!     mul r2, r0, 8
//!     li  r3, 7
//!     st  r3, [r2]
//!     halt
//! ")?;
//! assert_eq!(program.len(), 4);
//! # Ok::<(), dws_isa::asm::AsmError>(())
//! ```

use crate::inst::{AluOp, CondOp, Inst, Operand, Reg, UnOp};
use crate::program::Program;
use crate::verify::{Diagnostic, VerifyOptions};
use std::collections::HashMap;
use std::fmt;

/// An assembly-parsing error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number; `0` for program-level (whole-stream) failures.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// Structured verifier findings, when the failure was a program-level
    /// verification one (empty for pure syntax errors).
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
        diagnostics: Vec::new(),
    }
}

/// Parsed operand token.
enum Tok {
    Op(Operand),
    Mem(Reg, i64),
    Label(String),
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let rest = s
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got '{s}'")))?;
    let idx: u16 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register '{s}'")))?;
    Ok(Reg(idx))
}

fn parse_tok(s: &str, line: usize) -> Result<Tok, AsmError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        // [rB], [rB+off], [rB-off]
        let (reg_s, off) = if let Some(i) = inner.find(['+', '-']) {
            let (r, o) = inner.split_at(i);
            let off: i64 = o
                .parse()
                .map_err(|_| err(line, format!("bad offset '{o}'")))?;
            (r.trim(), off)
        } else {
            (inner.trim(), 0)
        };
        return Ok(Tok::Mem(parse_reg(reg_s, line)?, off));
    }
    if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) && s.len() > 1 {
        return Ok(Tok::Op(Operand::Reg(parse_reg(s, line)?)));
    }
    if s.contains('.') || s.contains('e') || s.contains('E') {
        if let Ok(f) = s.parse::<f64>() {
            return Ok(Tok::Op(Operand::ImmF(f)));
        }
    }
    // Non-finite float immediates (reduction seeds use them). These win
    // over label interpretation, so `inf`/`nan` are reserved words.
    match s.to_ascii_lowercase().as_str() {
        "inf" | "+inf" => return Ok(Tok::Op(Operand::ImmF(f64::INFINITY))),
        "-inf" => return Ok(Tok::Op(Operand::ImmF(f64::NEG_INFINITY))),
        "nan" => return Ok(Tok::Op(Operand::ImmF(f64::NAN))),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Tok::Op(Operand::Imm(i)));
    }
    if s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.is_empty()
    {
        return Ok(Tok::Label(s.to_string()));
    }
    Err(err(line, format!("cannot parse operand '{s}'")))
}

fn want_op(t: Tok, line: usize) -> Result<Operand, AsmError> {
    match t {
        Tok::Op(o) => Ok(o),
        Tok::Mem(..) => Err(err(line, "memory operand not allowed here")),
        Tok::Label(l) => Err(err(line, format!("label '{l}' not allowed here"))),
    }
}

fn want_reg(t: Tok, line: usize) -> Result<Reg, AsmError> {
    match want_op(t, line)? {
        Operand::Reg(r) => Ok(r),
        _ => Err(err(line, "expected a register destination")),
    }
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        "fadd" => AluOp::FAdd,
        "fsub" => AluOp::FSub,
        "fmul" => AluOp::FMul,
        "fdiv" => AluOp::FDiv,
        "fmin" => AluOp::FMin,
        "fmax" => AluOp::FMax,
        _ => return None,
    })
}

fn un_op(m: &str) -> Option<UnOp> {
    Some(match m {
        "mov" | "li" | "lif" => UnOp::Mov,
        "not" => UnOp::Not,
        "neg" => UnOp::Neg,
        "fneg" => UnOp::FNeg,
        "fabs" => UnOp::FAbs,
        "fsqrt" => UnOp::FSqrt,
        "i2f" => UnOp::I2F,
        "f2i" => UnOp::F2I,
        _ => return None,
    })
}

fn cond_op(m: &str) -> Option<CondOp> {
    Some(match m {
        "eq" => CondOp::Eq,
        "ne" => CondOp::Ne,
        "lt" => CondOp::Lt,
        "le" => CondOp::Le,
        "gt" => CondOp::Gt,
        "ge" => CondOp::Ge,
        "feq" => CondOp::FEq,
        "fne" => CondOp::FNe,
        "flt" => CondOp::FLt,
        "fle" => CondOp::FLe,
        "fgt" => CondOp::FGt,
        "fge" => CondOp::FGe,
        _ => return None,
    })
}

/// One unresolved instruction (branch targets still symbolic).
enum Pending {
    Done(Inst),
    Branch(CondOp, Operand, Operand, String, usize),
    Jump(String, usize),
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax errors,
/// unknown mnemonics, duplicate or undefined labels, or program-level
/// validation failures (e.g. control falling off the end).
pub fn parse_asm(text: &str) -> Result<Program, AsmError> {
    let mut pending: Vec<Pending> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut src = raw;
        if let Some(i) = src.find(';') {
            src = &src[..i];
        }
        let mut src = src.trim();
        // Labels (possibly several) before the instruction.
        while let Some(i) = src.find(':') {
            let (label, rest) = src.split_at(i);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(line, format!("bad label '{label}'")));
            }
            if labels.insert(label.to_string(), pending.len()).is_some() {
                return Err(err(line, format!("duplicate label '{label}'")));
            }
            src = rest[1..].trim();
        }
        if src.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match src.find(char::is_whitespace) {
            Some(i) => (&src[..i], src[i..].trim()),
            None => (src, ""),
        };
        let m = mnemonic.to_ascii_lowercase();
        let toks: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let n_args = toks.len();
        let tok = |i: usize| -> Result<Tok, AsmError> {
            parse_tok(
                toks.get(i)
                    .ok_or_else(|| err(line, format!("'{m}' needs more operands")))?,
                line,
            )
        };

        let inst = if let Some(op) = alu_op(&m) {
            let dst = want_reg(tok(0)?, line)?;
            let a = want_op(tok(1)?, line)?;
            let b = want_op(tok(2)?, line)?;
            Pending::Done(Inst::Alu { op, dst, a, b })
        } else if let Some(op) = un_op(&m) {
            let dst = want_reg(tok(0)?, line)?;
            let a = want_op(tok(1)?, line)?;
            Pending::Done(Inst::Un { op, dst, a })
        } else if let Some(cond) = m.strip_prefix("set").and_then(cond_op) {
            let dst = want_reg(tok(0)?, line)?;
            let a = want_op(tok(1)?, line)?;
            let b = want_op(tok(2)?, line)?;
            Pending::Done(Inst::Set { cond, dst, a, b })
        } else if let Some(cond) = m.strip_prefix('b').and_then(cond_op) {
            let a = want_op(tok(0)?, line)?;
            let b = want_op(tok(1)?, line)?;
            let Tok::Label(target) = tok(2)? else {
                return Err(err(line, "branch target must be a label"));
            };
            Pending::Branch(cond, a, b, target, line)
        } else {
            match m.as_str() {
                "ld" => {
                    let dst = want_reg(tok(0)?, line)?;
                    match tok(1)? {
                        Tok::Mem(base, offset) => Pending::Done(Inst::Load { dst, base, offset }),
                        _ => return Err(err(line, "ld needs a [reg+off] source")),
                    }
                }
                "st" => {
                    let src_op = want_op(tok(0)?, line)?;
                    match tok(1)? {
                        Tok::Mem(base, offset) => Pending::Done(Inst::Store {
                            src: src_op,
                            base,
                            offset,
                        }),
                        _ => return Err(err(line, "st needs a [reg+off] destination")),
                    }
                }
                "jmp" => {
                    if n_args != 1 {
                        return Err(err(line, "jmp takes one label"));
                    }
                    match tok(0)? {
                        Tok::Label(l) => Pending::Jump(l, line),
                        _ => return Err(err(line, "jmp target must be a label")),
                    }
                }
                "bar" | "barrier" => Pending::Done(Inst::Barrier),
                "halt" => Pending::Done(Inst::Halt),
                other => return Err(err(line, format!("unknown mnemonic '{other}'"))),
            }
        };
        pending.push(inst);
    }

    let resolve = |name: &str, line: usize| -> Result<usize, AsmError> {
        labels
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined label '{name}'")))
    };
    let mut insts = Vec::with_capacity(pending.len());
    for p in &pending {
        insts.push(match p {
            Pending::Done(i) => *i,
            Pending::Branch(cond, a, b, target, line) => Inst::Branch {
                cond: *cond,
                a: *a,
                b: *b,
                target: resolve(target, *line)?,
            },
            Pending::Jump(target, line) => Inst::Jump {
                target: resolve(target, *line)?,
            },
        });
    }
    Program::from_insts_verified(insts, &VerifyOptions::default()).map_err(|report| AsmError {
        line: 0,
        message: report.rendered().trim_end().to_string(),
        diagnostics: report.diagnostics,
    })
}

fn render_operand(o: Operand) -> String {
    match o {
        Operand::Reg(Reg(i)) => format!("r{i}"),
        Operand::Imm(v) => v.to_string(),
        Operand::ImmF(f) if f.is_nan() => "nan".to_string(),
        Operand::ImmF(f) if f == f64::INFINITY => "inf".to_string(),
        Operand::ImmF(f) if f == f64::NEG_INFINITY => "-inf".to_string(),
        Operand::ImmF(f) => {
            // parse_asm needs a '.' or exponent to classify the token as a
            // float; Rust's shortest-roundtrip Debug guarantees one for
            // every finite value ("4.0", "2.5e-3").
            format!("{f:?}")
        }
    }
}

fn render_mem(base: Reg, offset: i64) -> String {
    match offset {
        0 => format!("[r{}]", base.0),
        o if o > 0 => format!("[r{}+{o}]", base.0),
        o => format!("[r{}{o}]", base.0),
    }
}

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Min => "min",
        AluOp::Max => "max",
        AluOp::FAdd => "fadd",
        AluOp::FSub => "fsub",
        AluOp::FMul => "fmul",
        AluOp::FDiv => "fdiv",
        AluOp::FMin => "fmin",
        AluOp::FMax => "fmax",
    }
}

fn cond_mnemonic(cond: CondOp) -> &'static str {
    match cond {
        CondOp::Eq => "eq",
        CondOp::Ne => "ne",
        CondOp::Lt => "lt",
        CondOp::Le => "le",
        CondOp::Gt => "gt",
        CondOp::Ge => "ge",
        CondOp::FEq => "feq",
        CondOp::FNe => "fne",
        CondOp::FLt => "flt",
        CondOp::FLe => "fle",
        CondOp::FGt => "fgt",
        CondOp::FGe => "fge",
    }
}

fn un_mnemonic(op: UnOp, a: Operand) -> &'static str {
    match op {
        UnOp::Mov => match a {
            Operand::Imm(_) => "li",
            Operand::ImmF(_) => "lif",
            Operand::Reg(_) => "mov",
        },
        UnOp::Not => "not",
        UnOp::Neg => "neg",
        UnOp::FNeg => "fneg",
        UnOp::FAbs => "fabs",
        UnOp::FSqrt => "fsqrt",
        UnOp::I2F => "i2f",
        UnOp::F2I => "f2i",
    }
}

/// Renders a program back to [`parse_asm`]-compatible text.
///
/// Branch and jump targets become `L{pc}` labels; reparsing the output
/// yields the identical instruction stream (see the round-trip test), so
/// this is the canonical on-disk form for generated kernels — the fuzzer's
/// reproducer corpus is written with it.
///
/// `NaN` immediates render as `nan` and reparse to the canonical quiet
/// NaN; a program whose immediate is a different NaN bit pattern does not
/// round-trip bit-exactly (nothing in the builder DSL or generator can
/// produce one).
#[must_use]
pub fn render_asm(program: &Program) -> String {
    use std::collections::BTreeSet;
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for inst in program.insts() {
        match inst {
            Inst::Branch { target, .. } | Inst::Jump { target } => {
                targets.insert(*target);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (pc, inst) in program.insts().iter().enumerate() {
        if targets.contains(&pc) {
            out.push_str(&format!("L{pc}:"));
        }
        out.push('\t');
        let text = match *inst {
            Inst::Alu { op, dst, a, b } => format!(
                "{} r{}, {}, {}",
                alu_mnemonic(op),
                dst.0,
                render_operand(a),
                render_operand(b)
            ),
            Inst::Un { op, dst, a } => {
                format!("{} r{}, {}", un_mnemonic(op, a), dst.0, render_operand(a))
            }
            Inst::Set { cond, dst, a, b } => format!(
                "set{} r{}, {}, {}",
                cond_mnemonic(cond),
                dst.0,
                render_operand(a),
                render_operand(b)
            ),
            Inst::Branch { cond, a, b, target } => format!(
                "b{} {}, {}, L{target}",
                cond_mnemonic(cond),
                render_operand(a),
                render_operand(b)
            ),
            Inst::Jump { target } => format!("jmp L{target}"),
            Inst::Load { dst, base, offset } => {
                format!("ld r{}, {}", dst.0, render_mem(base, offset))
            }
            Inst::Store { src, base, offset } => {
                format!("st {}, {}", render_operand(src), render_mem(base, offset))
            }
            Inst::Barrier => "bar".to_string(),
            Inst::Halt => "halt".to_string(),
        };
        out.push_str(&text);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ReferenceRunner, VecMemory};

    #[test]
    fn parses_and_runs_a_loop() {
        let p = parse_asm(
            "
            ; out[tid] = sum of 0..tid
                    li   r2, 0
                    li   r3, 0
            loop:   bge  r2, r0, end
                    add  r3, r3, r2
                    add  r2, r2, 1
                    jmp  loop
            end:    mul  r4, r0, 8
                    st   r3, [r4]
                    halt
            ",
        )
        .unwrap();
        let mut mem = VecMemory::new(8 * 8);
        ReferenceRunner::new(&p, 8).run(&mut mem).unwrap();
        for t in 0..8i64 {
            assert_eq!(mem.read_i64((t * 8) as u64), t * (t - 1) / 2);
        }
    }

    #[test]
    fn float_and_memory_operands() {
        let p = parse_asm(
            "
            mul r2, r0, 8
            lif r3, 2.5
            fmul r3, r3, 4.0
            st  r3, [r2+0]
            halt
            ",
        )
        .unwrap();
        let mut mem = VecMemory::new(64);
        ReferenceRunner::new(&p, 2).run(&mut mem).unwrap();
        assert_eq!(mem.read_f64(0), 10.0);
        assert_eq!(mem.read_f64(8), 10.0);
    }

    #[test]
    fn negative_offsets_and_set() {
        let p = parse_asm(
            "
            li    r2, 16
            li    r3, 42
            st    r3, [r2-8]
            seteq r4, r3, 42
            st    r4, [r2]
            halt
            ",
        )
        .unwrap();
        let mut mem = VecMemory::new(64);
        ReferenceRunner::new(&p, 1).run(&mut mem).unwrap();
        assert_eq!(mem.read_i64(8), 42);
        assert_eq!(mem.read_i64(16), 1);
    }

    #[test]
    fn branch_metadata_is_computed() {
        let p = parse_asm(
            "
                    blt r0, 4, small
                    li  r2, 100
                    jmp join
            small:  li  r2, 1
            join:   halt
            ",
        )
        .unwrap();
        let (_, info) = p.branches().next().expect("one branch");
        assert_eq!(p.inst(info.ipdom), &Inst::Halt);
        assert!(info.subdividable);
    }

    #[test]
    fn error_reporting() {
        let e = parse_asm("bogus r1, r2").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bogus"));

        let e = parse_asm("jmp nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"));

        let e = parse_asm("x: halt\nx: halt").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = parse_asm("add r1, r2").unwrap_err();
        assert!(e.message.contains("more operands"));

        let e = parse_asm("ld r2, r3\nhalt").unwrap_err();
        assert!(e.message.contains("[reg+off]"));

        let e = parse_asm("add r1, r2, r3").unwrap_err();
        assert_eq!(e.line, 0, "program-level: falls off the end");
        assert!(
            e.diagnostics
                .iter()
                .any(|d| d.code == crate::verify::DwsLintCode::FallthroughOffEnd),
            "program-level errors carry structured diagnostics"
        );
        assert!(e.message.contains("DWS0103"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_asm("; nothing\n\n   halt   ; done\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn render_round_trips_handwritten_programs() {
        let src = "
                li   r2, 0
                lif  r5, 2.5
                fmul r5, r5, 4.0
        loop:   bge  r2, r0, end
                add  r2, r2, 1
                jmp  loop
        end:    mul  r4, r0, 8
                setge r3, r2, 1
                st   r3, [r4-0]
                ld   r3, [r4]
                bar
                halt
        ";
        let p = parse_asm(src).unwrap();
        let rendered = render_asm(&p);
        let p2 = parse_asm(&rendered).unwrap_or_else(|e| panic!("{e}\n{rendered}"));
        assert_eq!(p.insts(), p2.insts(), "\n{rendered}");
    }

    #[test]
    fn render_round_trips_generated_kernels() {
        let cfg = crate::gen::GenConfig::default();
        for seed in 0..32 {
            let p = crate::gen::generate(seed, &cfg).compile().unwrap();
            let rendered = render_asm(&p);
            let p2 =
                parse_asm(&rendered).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{rendered}"));
            assert_eq!(p.insts(), p2.insts(), "seed {seed}");
        }
    }
}
