//! The compiled kernel program: instructions plus static branch metadata.

use crate::cfg::{BranchInfo, Cfg};
use crate::inst::{Inst, Operand, Reg};
use crate::predecode::{predecode, ExecOp};
use crate::verify::{self, VerifyOptions, VerifyReport, VerifyStats};
use std::fmt;

/// A validated, analyzed kernel program.
///
/// Created by [`crate::KernelBuilder::build`]. Beyond the instruction list,
/// it carries per-branch static metadata: the immediate post-dominator PC
/// (the hardware re-convergence point) and whether the paper's heuristic
/// allows dynamic warp subdivision at that branch (Section 4.3: the basic
/// block at the post-dominator must be at most 50 instructions long).
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Inst>,
    /// Predecoded µop per pc (see [`crate::predecode`]) — the timing
    /// simulator's hot path dispatches on this instead of `insts`.
    decoded: Vec<ExecOp>,
    /// Indexed by pc; `None` for non-branch instructions.
    branch_info: Vec<Option<BranchInfo>>,
    num_regs: u16,
    /// Aggregate facts from the build-time verification run.
    stats: VerifyStats,
}

impl Program {
    /// Assembles a program from raw instructions, running the full
    /// [`crate::verify`] pipeline. Error-severity findings reject the
    /// program; the rendered diagnostic report becomes the error string.
    ///
    /// # Errors
    ///
    /// Returns the rendered [`VerifyReport`] if any pass found an
    /// error-severity defect (empty program, target out of range,
    /// fall-through off the end, use-before-def, provably out-of-bounds
    /// access, inconsistent annotations, ...).
    pub fn from_insts(insts: Vec<Inst>) -> Result<Program, String> {
        Self::from_insts_verified(insts, &VerifyOptions::default())
            .map_err(|report| report.rendered().trim_end().to_string())
    }

    /// Like [`Program::from_insts`] but with explicit verification context
    /// and the structured [`VerifyReport`] on rejection.
    ///
    /// # Errors
    ///
    /// Returns the full report when it contains error-severity diagnostics.
    pub fn from_insts_verified(
        insts: Vec<Inst>,
        opts: &VerifyOptions,
    ) -> Result<Program, VerifyReport> {
        let (report, built) = verify::verify(&insts, opts);
        if report.has_errors() {
            return Err(report);
        }
        let (_cfg, branch_info) = built.expect("error-free verification builds a CFG");
        let num_regs = max_reg(&insts) + 1;
        Ok(Program {
            decoded: predecode(&insts),
            insts,
            branch_info,
            num_regs,
            stats: report.stats,
        })
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn inst(&self, pc: usize) -> &Inst {
        &self.insts[pc]
    }

    /// The predecoded µop at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn exec_op(&self, pc: usize) -> &ExecOp {
        &self.decoded[pc]
    }

    /// All predecoded µops in order (one per instruction).
    pub fn decoded(&self) -> &[ExecOp] {
        &self.decoded
    }

    /// All instructions in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for a built program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Static metadata for the conditional branch at `pc`, if any.
    #[inline]
    pub fn branch_info(&self, pc: usize) -> Option<&BranchInfo> {
        self.branch_info.get(pc).and_then(|b| b.as_ref())
    }

    /// Number of architectural registers each thread context needs.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Returns a copy whose branches are re-classified with a different
    /// Section 4.3 subdivision threshold (`usize::MAX` allows every branch,
    /// `0` none). Used by the subdivision-threshold ablation bench.
    pub fn with_subdiv_threshold(&self, max_block: usize) -> Program {
        let opts = VerifyOptions {
            subdiv_threshold: max_block,
            ..VerifyOptions::default()
        };
        let (report, built) = verify::verify(&self.insts, &opts);
        let (_cfg, branch_info) = built.expect("an already-built program stays structurally valid");
        Program {
            insts: self.insts.clone(),
            decoded: self.decoded.clone(),
            branch_info,
            num_regs: self.num_regs,
            stats: report.stats,
        }
    }

    /// The per-pc [`BranchInfo`] annotation table (`None` for non-branches).
    pub fn branch_annotations(&self) -> &[Option<BranchInfo>] {
        &self.branch_info
    }

    /// Aggregate facts derived by the build-time verification run.
    pub fn verify_stats(&self) -> &VerifyStats {
        &self.stats
    }

    /// Re-runs the full verification pipeline against this program's own
    /// annotations under explicit context (thread count, memory size,
    /// warp-split-table capacity) — the `dws-cli lint` path. Unlike
    /// [`Program::from_insts_verified`] the annotations on trial are the
    /// stored ones, so a forged or stale table is caught too.
    pub fn lint(&self, opts: &VerifyOptions) -> VerifyReport {
        let cfg = Cfg::build(&self.insts);
        verify::verify_annotated(&self.insts, &cfg, &self.branch_info, opts)
    }

    /// Iterator over `(pc, info)` for every conditional branch.
    pub fn branches(&self) -> impl Iterator<Item = (usize, &BranchInfo)> + '_ {
        self.branch_info
            .iter()
            .enumerate()
            .filter_map(|(pc, b)| b.as_ref().map(|info| (pc, info)))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, inst) in self.insts.iter().enumerate() {
            write!(f, "{pc:4}: {inst}")?;
            if let Some(info) = self.branch_info(pc) {
                write!(
                    f,
                    "   ; ipdom=@{} {}",
                    info.ipdom,
                    if info.subdividable {
                        "subdiv"
                    } else {
                        "no-subdiv"
                    }
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn op_reg(op: &Operand) -> Option<Reg> {
    match op {
        Operand::Reg(r) => Some(*r),
        _ => None,
    }
}

fn max_reg(insts: &[Inst]) -> u16 {
    let mut m = 1; // r0/r1 always exist (tid, ntid)
    let mut see = |r: Option<Reg>| {
        if let Some(Reg(i)) = r {
            if i > m {
                m = i;
            }
        }
    };
    for inst in insts {
        match inst {
            Inst::Alu { dst, a, b, .. } | Inst::Set { dst, a, b, .. } => {
                see(Some(*dst));
                see(op_reg(a));
                see(op_reg(b));
            }
            Inst::Un { dst, a, .. } => {
                see(Some(*dst));
                see(op_reg(a));
            }
            Inst::Load { dst, base, .. } => {
                see(Some(*dst));
                see(Some(*base));
            }
            Inst::Store { src, base, .. } => {
                see(op_reg(src));
                see(Some(*base));
            }
            Inst::Branch { a, b, .. } => {
                see(op_reg(a));
                see(op_reg(b));
            }
            Inst::Jump { .. } | Inst::Barrier | Inst::Halt => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, CondOp};

    #[test]
    fn rejects_empty() {
        assert!(Program::from_insts(vec![]).is_err());
    }

    #[test]
    fn rejects_fallthrough_end() {
        let insts = vec![Inst::Alu {
            op: AluOp::Add,
            dst: Reg(2),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        }];
        assert!(Program::from_insts(insts).is_err());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let insts = vec![Inst::Jump { target: 5 }, Inst::Halt];
        assert!(Program::from_insts(insts).is_err());
    }

    #[test]
    fn computes_reg_count() {
        let insts = vec![
            Inst::Alu {
                op: AluOp::Add,
                dst: Reg(7),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
            Inst::Halt,
        ];
        let p = Program::from_insts(insts).unwrap();
        assert_eq!(p.num_regs(), 8);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn branch_metadata_exposed() {
        // 0: br -> 2 ; 1: add ; 2: halt — diamond degenerate
        let insts = vec![
            Inst::Branch {
                cond: CondOp::Eq,
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(0),
                target: 2,
            },
            Inst::Alu {
                op: AluOp::Add,
                dst: Reg(2),
                a: Operand::Imm(1),
                b: Operand::Imm(2),
            },
            Inst::Halt,
        ];
        let p = Program::from_insts(insts).unwrap();
        let info = p.branch_info(0).expect("branch info");
        assert_eq!(info.ipdom, 2);
        assert_eq!(p.branches().count(), 1);
        assert!(p.branch_info(1).is_none());
        let text = p.to_string();
        assert!(text.contains("ipdom=@2"));
    }
}
