//! Predecode: lowering [`Inst`] into a flat, cache-dense µop table.
//!
//! The timing simulator interprets every dynamic instruction; with the
//! scheduling side event-driven, that interpret loop dominates host time.
//! [`predecode`] resolves once, at program build, everything the per-lane
//! hot path used to re-derive on every executed lane:
//!
//! * operands become [`Src`] — a raw register *index* or the immediate's
//!   64-bit raw value (`ImmF` is pre-converted to bits, `Imm` pre-cast),
//! * load/store offsets are pre-wrapped into the `u64` address arithmetic,
//! * branch/jump targets are narrowed to `u32`,
//! * the FP/INT classification the energy model needs is a precomputed
//!   flag instead of a per-issue opcode match.
//!
//! The result is one [`ExecOp`] per PC, stored in the
//! [`Program`](crate::Program) and therefore shared by every machine that
//! clones the program's `Arc` — warp-wide execution kernels dispatch on it
//! once per *instruction* rather than once per lane.

use crate::inst::{AluOp, CondOp, Inst, Operand, UnOp};

/// A pre-resolved source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Read the register with this index.
    Reg(u16),
    /// An immediate, already converted to its raw 64-bit form.
    Imm(u64),
}

impl Src {
    /// Lowers an [`Operand`], folding both immediate kinds to raw bits.
    #[inline]
    pub fn from_operand(op: Operand) -> Src {
        match op {
            Operand::Reg(r) => Src::Reg(r.0),
            Operand::Imm(v) => Src::Imm(v as u64),
            Operand::ImmF(v) => Src::Imm(v.to_bits()),
        }
    }
}

/// One predecoded µop. Mirrors [`Inst`] with all operand resolution,
/// immediate conversion and classification done ahead of time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecOp {
    /// `dst = a <op> b`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Whether the op counts as floating-point (energy model).
        fp: bool,
        /// Destination register index.
        dst: u16,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// `dst = <op> a`.
    Un {
        /// The operation.
        op: UnOp,
        /// Whether the op counts as floating-point (energy model).
        fp: bool,
        /// Destination register index.
        dst: u16,
        /// Operand.
        a: Src,
    },
    /// `dst = (a <cond> b) ? 1 : 0`.
    Set {
        /// The comparison.
        cond: CondOp,
        /// Destination register index.
        dst: u16,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// `dst = mem[regs[base] + offset]`.
    Load {
        /// Destination register index.
        dst: u16,
        /// Base address register index.
        base: u16,
        /// Byte offset, pre-wrapped for `u64` address arithmetic.
        offset: u64,
    },
    /// `mem[regs[base] + offset] = src`.
    Store {
        /// Value to store.
        src: Src,
        /// Base address register index.
        base: u16,
        /// Byte offset, pre-wrapped for `u64` address arithmetic.
        offset: u64,
    },
    /// Conditional branch to `target`.
    Branch {
        /// The comparison.
        cond: CondOp,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
        /// Absolute instruction index of the taken path.
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute instruction index.
        target: u32,
    },
    /// Global barrier.
    Barrier,
    /// Thread termination.
    Halt,
}

impl ExecOp {
    /// Whether the µop accesses data memory.
    #[inline]
    pub fn is_memory(&self) -> bool {
        matches!(self, ExecOp::Load { .. } | ExecOp::Store { .. })
    }

    /// Whether the µop is a conditional branch.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self, ExecOp::Branch { .. })
    }

    /// Whether the µop counts as floating-point for the energy model
    /// (`Set` is always integer, matching the historical classification).
    #[inline]
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            ExecOp::Alu { fp: true, .. } | ExecOp::Un { fp: true, .. }
        )
    }
}

/// Lowers every instruction into its µop.
///
/// # Panics
///
/// Panics if a branch target exceeds `u32` range (programs are validated
/// to at most `u32::MAX` instructions long before this runs).
pub fn predecode(insts: &[Inst]) -> Vec<ExecOp> {
    insts.iter().map(predecode_one).collect()
}

fn predecode_one(inst: &Inst) -> ExecOp {
    let narrow = |target: usize| u32::try_from(target).expect("program fits u32 PCs");
    match *inst {
        Inst::Alu { op, dst, a, b } => ExecOp::Alu {
            op,
            fp: op.is_fp(),
            dst: dst.0,
            a: Src::from_operand(a),
            b: Src::from_operand(b),
        },
        Inst::Un { op, dst, a } => ExecOp::Un {
            op,
            fp: op.is_fp(),
            dst: dst.0,
            a: Src::from_operand(a),
        },
        Inst::Set { cond, dst, a, b } => ExecOp::Set {
            cond,
            dst: dst.0,
            a: Src::from_operand(a),
            b: Src::from_operand(b),
        },
        Inst::Load { dst, base, offset } => ExecOp::Load {
            dst: dst.0,
            base: base.0,
            offset: offset as u64,
        },
        Inst::Store { src, base, offset } => ExecOp::Store {
            src: Src::from_operand(src),
            base: base.0,
            offset: offset as u64,
        },
        Inst::Branch { cond, a, b, target } => ExecOp::Branch {
            cond,
            a: Src::from_operand(a),
            b: Src::from_operand(b),
            target: narrow(target),
        },
        Inst::Jump { target } => ExecOp::Jump {
            target: narrow(target),
        },
        Inst::Barrier => ExecOp::Barrier,
        Inst::Halt => ExecOp::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    #[test]
    fn operands_fold_to_raw_bits() {
        assert_eq!(Src::from_operand(Operand::Reg(Reg(7))), Src::Reg(7));
        assert_eq!(Src::from_operand(Operand::Imm(-1)), Src::Imm(u64::MAX));
        assert_eq!(
            Src::from_operand(Operand::ImmF(2.5)),
            Src::Imm(2.5f64.to_bits())
        );
    }

    #[test]
    fn classification_and_offsets() {
        let ops = predecode(&[
            Inst::Alu {
                op: AluOp::FMul,
                dst: Reg(2),
                a: Operand::Reg(Reg(0)),
                b: Operand::ImmF(0.5),
            },
            Inst::Un {
                op: UnOp::Neg,
                dst: Reg(3),
                a: Operand::Reg(Reg(2)),
            },
            Inst::Load {
                dst: Reg(4),
                base: Reg(3),
                offset: -8,
            },
            Inst::Branch {
                cond: CondOp::Lt,
                a: Operand::Reg(Reg(4)),
                b: Operand::Imm(0),
                target: 4,
            },
            Inst::Halt,
        ]);
        assert!(ops[0].is_fp());
        assert!(!ops[1].is_fp());
        assert!(ops[2].is_memory());
        match ops[2] {
            ExecOp::Load { offset, .. } => {
                assert_eq!(offset, (-8i64) as u64, "offset pre-wrapped");
            }
            ref other => panic!("expected load, got {other:?}"),
        }
        assert!(ops[3].is_branch());
        match ops[3] {
            ExecOp::Branch { target, .. } => assert_eq!(target, 4),
            ref other => panic!("expected branch, got {other:?}"),
        }
        assert!(!ops[4].is_memory() && !ops[4].is_branch() && !ops[4].is_fp());
    }

    #[test]
    fn set_is_integer_classified() {
        let ops = predecode(&[
            Inst::Set {
                cond: CondOp::FLt,
                dst: Reg(2),
                a: Operand::ImmF(1.0),
                b: Operand::ImmF(2.0),
            },
            Inst::Halt,
        ]);
        assert!(!ops[0].is_fp(), "Set counts as integer, even on floats");
    }
}
