//! Verifier-guided random kernel generation for differential fuzzing.
//!
//! The simulator's input space was eight hand-written kernels; this module
//! turns [`crate::verify`] from a gate into a generator. A seeded
//! [`generate`] call grows a structured program AST ([`KernelAst`]) —
//! divergent diamonds, uniform counted loops, nested combinations,
//! barriers in provably-uniform context — over a fixed three-region
//! memory layout, then compiles it through [`KernelBuilder`], whose
//! [`build`](KernelBuilder::build) step runs the five-pass verifier.
//! Anything the verifier rejects is discarded and regenerated from a
//! derived seed, so every emitted kernel is safe to execute by
//! construction.
//!
//! Memory layout (8-byte words), shared with the differential harness in
//! `dws-sim` via [`layout`]:
//!
//! | region  | words                                  | access pattern   |
//! |---------|----------------------------------------|------------------|
//! | `input` | `[0, IN_WORDS)`                        | shared, read-only gathers masked to the region |
//! | `priv`  | `[IN_WORDS, IN_WORDS + n*PRIV_WORDS)`  | per-thread window, data-dependent slot |
//! | `out`   | one word per thread after `priv`       | epilogue result store |
//!
//! Races are impossible by construction (threads write only their own
//! `priv` window and `out` word), so a generated kernel's final memory is
//! a pure function of the program and input — exactly the property the
//! differential oracle needs.
//!
//! Determinism contract: `generate(seed, cfg)` is a pure function of its
//! arguments. All randomness comes from one [`Rng64`] stream.

use crate::builder::{BuildError, KernelBuilder};
use crate::inst::{AluOp, CondOp, Operand, Reg};
use crate::program::Program;
use dws_engine::rng::Rng64;

/// Words in the shared read-only input region (power of two so gathers
/// can be masked into range with a single `and`).
pub const IN_WORDS: i64 = 64;

/// Private scratch words per thread.
pub const PRIV_WORDS: i64 = 4;

/// Value slots the generated program computes in (registers `r2..`).
pub const SLOTS: usize = 6;

/// Knobs for one generation run.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Thread count the kernel will be launched with (sizes the private
    /// and output regions).
    pub nthreads: u64,
    /// Maximum nesting depth of diamonds/loops.
    pub max_depth: u32,
    /// Soft cap on total generated statements.
    pub max_stmts: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            nthreads: 32,
            max_depth: 3,
            max_stmts: 24,
        }
    }
}

/// Total memory words a generated kernel addresses for `nthreads`.
#[must_use]
pub fn mem_words(nthreads: u64) -> u64 {
    IN_WORDS as u64 + nthreads * (PRIV_WORDS as u64 + 1)
}

/// The declared memory map as `(name, word_offset, words)` triples —
/// the same shape `dws_kernels::BufferLayout::of` consumes, kept as plain
/// tuples here so the ISA crate stays free of a kernels dependency.
#[must_use]
pub fn layout(nthreads: u64) -> [(&'static str, u64, u64); 3] {
    let in_w = IN_WORDS as u64;
    let priv_w = nthreads * PRIV_WORDS as u64;
    [
        ("input", 0, in_w),
        ("priv", in_w, priv_w),
        ("out", in_w + priv_w, nthreads),
    ]
}

/// Integer ALU operations the generator draws from (all total: wrapping
/// semantics, no traps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Bitwise xor.
    Xor,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl GenOp {
    fn alu(self) -> AluOp {
        match self {
            GenOp::Add => AluOp::Add,
            GenOp::Sub => AluOp::Sub,
            GenOp::Mul => AluOp::Mul,
            GenOp::Xor => AluOp::Xor,
            GenOp::And => AluOp::And,
            GenOp::Or => AluOp::Or,
            GenOp::Min => AluOp::Min,
            GenOp::Max => AluOp::Max,
        }
    }

    const ALL: [GenOp; 8] = [
        GenOp::Add,
        GenOp::Sub,
        GenOp::Mul,
        GenOp::Xor,
        GenOp::And,
        GenOp::Or,
        GenOp::Min,
        GenOp::Max,
    ];
}

/// A value operand: one of the [`SLOTS`] slots or a small immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenVal {
    /// Read value slot `i % SLOTS`.
    Slot(u8),
    /// A signed immediate.
    Imm(i64),
}

/// One statement of the generated structured program.
#[derive(Debug, Clone, PartialEq)]
pub enum GenStmt {
    /// `slot[dst] = a <op> b`.
    Arith {
        /// Destination slot.
        dst: u8,
        /// Operation.
        op: GenOp,
        /// Left operand.
        a: GenVal,
        /// Right operand.
        b: GenVal,
    },
    /// `slot[dst] = input[slot[idx] & (IN_WORDS-1)]` — a data-dependent
    /// gather masked into the shared input region.
    Gather {
        /// Destination slot.
        dst: u8,
        /// Slot providing the (pre-mask) index.
        idx: u8,
    },
    /// `slot[dst] = priv[tid][word]` from the thread's private window.
    LoadPriv {
        /// Destination slot.
        dst: u8,
        /// Window word, `0..PRIV_WORDS`.
        word: u8,
    },
    /// `priv[tid][word] = slot[src]` into the thread's private window.
    StorePriv {
        /// Source slot.
        src: u8,
        /// Window word, `0..PRIV_WORDS`.
        word: u8,
    },
    /// `if (slot[lhs] cond rhs) { then_b } else { else_b }` — divergent,
    /// because slots are seeded from the thread id.
    Diamond {
        /// Comparison (integer conditions only).
        cond: CondOp,
        /// Slot on the left of the comparison.
        lhs: u8,
        /// Immediate on the right.
        rhs: i64,
        /// Taken body.
        then_b: Vec<GenStmt>,
        /// Fall-through body.
        else_b: Vec<GenStmt>,
    },
    /// A counted loop with a uniform (compile-time) trip count, so
    /// barriers inside it stay collective.
    Loop {
        /// Trip count, `1..=4`.
        trips: u8,
        /// Loop body.
        body: Vec<GenStmt>,
    },
    /// Global barrier. Generated only in provably-uniform context (never
    /// under a diamond), so every live thread reaches it.
    Barrier,
}

/// A generated kernel: the structured AST plus the launch geometry it was
/// generated for. The delta-debugging minimizer edits `stmts` and
/// recompiles; [`compile`](KernelAst::compile) re-verifies every time.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAst {
    /// Thread count the memory layout is sized for.
    pub nthreads: u64,
    /// Top-level statements.
    pub stmts: Vec<GenStmt>,
}

impl KernelAst {
    /// Total statement count, including nested bodies.
    #[must_use]
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[GenStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    GenStmt::Diamond { then_b, else_b, .. } => 1 + count(then_b) + count(else_b),
                    GenStmt::Loop { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Compiles the AST to a verified [`Program`].
    ///
    /// # Errors
    ///
    /// Returns the builder's [`BuildError`] when the five-pass verifier
    /// rejects the program (minimizer candidates re-verify through here;
    /// generator output is retried on a derived seed until accepted).
    pub fn compile(&self) -> Result<Program, BuildError> {
        let in_base = 0i64;
        let priv_base = IN_WORDS;
        let out_base = IN_WORDS + self.nthreads as i64 * PRIV_WORDS;

        let mut b = KernelBuilder::new();
        let tid = b.tid();
        let slots: Vec<Reg> = (0..SLOTS).map(|_| b.reg()).collect();
        let addr = b.reg();
        let tmp = b.reg();
        // Write-once immediate registers for the region geometry: the
        // bounds pass resolves them through its write-once constant table,
        // so masked gathers stay provable without immediate operands.
        let rmask = b.reg();
        b.li(rmask, IN_WORDS - 1);

        // Seed the slots from the thread id so control and data diverge
        // per-thread, with one initial gather for input dependence.
        for (i, &s) in slots.iter().enumerate() {
            let i = i as i64;
            b.mul(tmp, tid, Operand::Imm(2 * i + 1));
            b.add(s, Operand::Reg(tmp), Operand::Imm(i * 7 + 1));
        }
        b.and(addr, Operand::Reg(slots[0]), Operand::Reg(rmask));
        b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
        b.load(slots[1], addr, in_base * 8);

        emit(&mut b, &self.stmts, &slots, addr, rmask, tid, priv_base);

        // Epilogue: fold every slot into out[tid] so any computational
        // divergence is visible in the final memory image.
        b.mov(tmp, Operand::Reg(slots[0]));
        for &s in &slots[1..] {
            b.xor(tmp, Operand::Reg(tmp), Operand::Reg(s));
        }
        b.add(addr, Operand::Reg(tid), Operand::Imm(out_base));
        b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
        b.store(Operand::Reg(tmp), addr, 0);
        b.halt();
        b.build()
    }
}

#[allow(clippy::too_many_arguments)]
fn emit(
    b: &mut KernelBuilder,
    stmts: &[GenStmt],
    slots: &[Reg],
    addr: Reg,
    rmask: Reg,
    tid: Reg,
    priv_base: i64,
) {
    let slot = |i: u8| slots[i as usize % slots.len()];
    let val = |v: GenVal| match v {
        GenVal::Slot(i) => Operand::Reg(slot(i)),
        GenVal::Imm(x) => Operand::Imm(x),
    };
    for s in stmts {
        match s {
            GenStmt::Arith { dst, op, a, b: rhs } => {
                b.alu(op.alu(), slot(*dst), val(*a), val(*rhs));
            }
            GenStmt::Gather { dst, idx } => {
                b.and(addr, Operand::Reg(slot(*idx)), Operand::Reg(rmask));
                b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
                b.load(slot(*dst), addr, 0);
            }
            GenStmt::LoadPriv { dst, word } => {
                let w = i64::from(*word) % PRIV_WORDS;
                b.mul(addr, tid, Operand::Imm(PRIV_WORDS));
                b.add(addr, Operand::Reg(addr), Operand::Imm(priv_base + w));
                b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
                b.load(slot(*dst), addr, 0);
            }
            GenStmt::StorePriv { src, word } => {
                let w = i64::from(*word) % PRIV_WORDS;
                b.mul(addr, tid, Operand::Imm(PRIV_WORDS));
                b.add(addr, Operand::Reg(addr), Operand::Imm(priv_base + w));
                b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
                b.store(Operand::Reg(slot(*src)), addr, 0);
            }
            GenStmt::Diamond {
                cond,
                lhs,
                rhs,
                then_b,
                else_b,
            } => {
                b.if_then_else(
                    *cond,
                    Operand::Reg(slot(*lhs)),
                    Operand::Imm(*rhs),
                    |b| emit(b, then_b, slots, addr, rmask, tid, priv_base),
                    |b| emit(b, else_b, slots, addr, rmask, tid, priv_base),
                );
            }
            GenStmt::Loop { trips, body } => {
                let i = b.reg();
                b.for_range(
                    i,
                    Operand::Imm(0),
                    Operand::Imm(i64::from(*trips)),
                    Operand::Imm(1),
                    |b| emit(b, body, slots, addr, rmask, tid, priv_base),
                );
            }
            GenStmt::Barrier => b.barrier(),
        }
    }
}

const INT_CONDS: [CondOp; 6] = [
    CondOp::Eq,
    CondOp::Ne,
    CondOp::Lt,
    CondOp::Le,
    CondOp::Gt,
    CondOp::Ge,
];

/// Generates one random statement. `uniform` tracks whether every thread
/// is guaranteed to execute this context (false under a diamond), which
/// gates barrier emission.
fn gen_stmt(rng: &mut Rng64, depth: u32, budget: &mut usize, uniform: bool) -> GenStmt {
    *budget = budget.saturating_sub(1);
    if depth > 0 && *budget > 0 && rng.chance(0.35) {
        if rng.chance(0.5) {
            let cond = INT_CONDS[rng.range_usize(INT_CONDS.len())];
            let lhs = rng.range_i64(0, SLOTS as i64 - 1) as u8;
            let rhs = rng.range_i64(-8, 64);
            let then_len = 1 + rng.range_usize(3);
            let then_b = gen_block(rng, depth - 1, then_len, budget, false);
            let else_len = rng.range_usize(3);
            let else_b = gen_block(rng, depth - 1, else_len, budget, false);
            return GenStmt::Diamond {
                cond,
                lhs,
                rhs,
                then_b,
                else_b,
            };
        }
        let trips = rng.range_i64(1, 4) as u8;
        let body_len = 1 + rng.range_usize(3);
        let body = gen_block(rng, depth - 1, body_len, budget, uniform);
        return GenStmt::Loop { trips, body };
    }
    let pick = rng.range_usize(8);
    match pick {
        0..=2 => GenStmt::Arith {
            dst: rng.range_i64(0, SLOTS as i64 - 1) as u8,
            op: GenOp::ALL[rng.range_usize(GenOp::ALL.len())],
            a: GenVal::Slot(rng.range_i64(0, SLOTS as i64 - 1) as u8),
            b: if rng.chance(0.5) {
                GenVal::Slot(rng.range_i64(0, SLOTS as i64 - 1) as u8)
            } else {
                GenVal::Imm(rng.range_i64(-17, 17))
            },
        },
        3 | 4 => GenStmt::Gather {
            dst: rng.range_i64(0, SLOTS as i64 - 1) as u8,
            idx: rng.range_i64(0, SLOTS as i64 - 1) as u8,
        },
        5 => GenStmt::LoadPriv {
            dst: rng.range_i64(0, SLOTS as i64 - 1) as u8,
            word: rng.range_i64(0, PRIV_WORDS - 1) as u8,
        },
        6 => GenStmt::StorePriv {
            src: rng.range_i64(0, SLOTS as i64 - 1) as u8,
            word: rng.range_i64(0, PRIV_WORDS - 1) as u8,
        },
        _ if uniform => GenStmt::Barrier,
        _ => GenStmt::Arith {
            dst: rng.range_i64(0, SLOTS as i64 - 1) as u8,
            op: GenOp::Xor,
            a: GenVal::Slot(0),
            b: GenVal::Imm(rng.range_i64(-17, 17)),
        },
    }
}

fn gen_block(
    rng: &mut Rng64,
    depth: u32,
    len: usize,
    budget: &mut usize,
    uniform: bool,
) -> Vec<GenStmt> {
    (0..len)
        .map_while(|_| {
            if *budget == 0 {
                None
            } else {
                Some(gen_stmt(rng, depth, budget, uniform))
            }
        })
        .collect()
}

/// Generates a verifier-accepted kernel for `seed`.
///
/// Deterministic: the same `(seed, cfg)` always yields the same AST. If a
/// draw produces a program the five-pass verifier rejects (not observed
/// in practice — the AST is safe by construction — but the contract does
/// not rely on that), the draw is retried on a seed derived from the
/// attempt number, keeping the result a pure function of the inputs.
///
/// # Panics
///
/// Panics if 16 consecutive attempts are rejected, which would indicate a
/// generator/verifier contract bug rather than bad luck.
#[must_use]
pub fn generate(seed: u64, cfg: &GenConfig) -> KernelAst {
    for attempt in 0..16u64 {
        let mut rng = Rng64::new(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut budget = cfg.max_stmts;
        let top_len = 2 + rng.range_usize(6);
        let stmts = gen_block(&mut rng, cfg.max_depth, top_len, &mut budget, true);
        let ast = KernelAst {
            nthreads: cfg.nthreads,
            stmts,
        };
        if ast.compile().is_ok() {
            return ast;
        }
    }
    unreachable!("generator emitted 16 consecutive verifier-rejected kernels for seed {seed}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ReferenceRunner, VecMemory};
    use crate::verify::{DwsLintCode, VerifyOptions};

    fn full_opts(nthreads: u64) -> VerifyOptions {
        VerifyOptions::default()
            .with_nthreads(nthreads)
            .with_mem_bytes(mem_words(nthreads) * 8)
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed}");
            let pa = a.compile().unwrap();
            let pb = b.compile().unwrap();
            assert_eq!(pa.insts(), pb.insts(), "seed {seed}");
        }
    }

    #[test]
    fn every_seed_passes_the_verifier_in_context() {
        let cfg = GenConfig::default();
        for seed in 0..64 {
            let ast = generate(seed, &cfg);
            let p = ast.compile().unwrap();
            let report = p.lint(&full_opts(cfg.nthreads));
            assert!(!report.has_errors(), "seed {seed}: {}", report.rendered());
            // Dead-write warnings (DWS0303) are inevitable in random
            // straight-line code and harmless; a barrier under divergence
            // would deadlock the simulator and must never be generated.
            assert!(
                report
                    .diagnostics
                    .iter()
                    .all(|d| d.code != DwsLintCode::BarrierUnderDivergence),
                "seed {seed}: {}",
                report.rendered()
            );
        }
    }

    #[test]
    fn generated_kernels_run_on_the_reference_interpreter() {
        let cfg = GenConfig::default();
        for seed in 0..16 {
            let ast = generate(seed, &cfg);
            let p = ast.compile().unwrap();
            let mut mem = VecMemory::new(mem_words(cfg.nthreads) * 8);
            ReferenceRunner::new(&p, cfg.nthreads)
                .run(&mut mem)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn layout_covers_the_allocation_exactly() {
        let n = 32;
        let l = layout(n);
        assert_eq!(l[0].1, 0);
        assert_eq!(l[1].1, l[0].1 + l[0].2);
        assert_eq!(l[2].1, l[1].1 + l[1].2);
        assert_eq!(l[2].1 + l[2].2, mem_words(n));
    }

    #[test]
    fn diverse_seeds_cover_every_statement_kind() {
        let cfg = GenConfig::default();
        let (mut diamonds, mut loops, mut barriers, mut gathers, mut privs) = (0, 0, 0, 0, 0);
        fn walk(stmts: &[GenStmt], f: &mut impl FnMut(&GenStmt)) {
            for s in stmts {
                f(s);
                match s {
                    GenStmt::Diamond { then_b, else_b, .. } => {
                        walk(then_b, f);
                        walk(else_b, f);
                    }
                    GenStmt::Loop { body, .. } => walk(body, f),
                    _ => {}
                }
            }
        }
        for seed in 0..200 {
            let ast = generate(seed, &cfg);
            walk(&ast.stmts, &mut |s| match s {
                GenStmt::Diamond { .. } => diamonds += 1,
                GenStmt::Loop { .. } => loops += 1,
                GenStmt::Barrier => barriers += 1,
                GenStmt::Gather { .. } => gathers += 1,
                GenStmt::LoadPriv { .. } | GenStmt::StorePriv { .. } => privs += 1,
                GenStmt::Arith { .. } => {}
            });
        }
        assert!(diamonds > 0, "no divergent diamonds generated");
        assert!(loops > 0, "no loops generated");
        assert!(barriers > 0, "no barriers generated");
        assert!(gathers > 0, "no gathers generated");
        assert!(privs > 0, "no private-window traffic generated");
    }

    #[test]
    fn barriers_never_appear_under_divergence() {
        // Structural check on the AST (the verifier's DWS0502 would also
        // catch it, but this pins the generator-side invariant directly).
        fn no_barrier(stmts: &[GenStmt]) -> bool {
            stmts.iter().all(|s| match s {
                GenStmt::Barrier => false,
                GenStmt::Diamond { then_b, else_b, .. } => no_barrier(then_b) && no_barrier(else_b),
                GenStmt::Loop { body, .. } => no_barrier(body),
                _ => true,
            })
        }
        fn check(stmts: &[GenStmt]) {
            for s in stmts {
                match s {
                    GenStmt::Diamond { then_b, else_b, .. } => {
                        assert!(no_barrier(then_b) && no_barrier(else_b));
                        check(then_b);
                        check(else_b);
                    }
                    GenStmt::Loop { body, .. } => check(body),
                    _ => {}
                }
            }
        }
        let cfg = GenConfig::default();
        for seed in 0..200 {
            check(&generate(seed, &cfg).stmts);
        }
    }

    #[test]
    fn stmt_count_counts_nested_bodies() {
        let ast = KernelAst {
            nthreads: 4,
            stmts: vec![
                GenStmt::Barrier,
                GenStmt::Loop {
                    trips: 2,
                    body: vec![GenStmt::Diamond {
                        cond: CondOp::Gt,
                        lhs: 0,
                        rhs: 1,
                        then_b: vec![GenStmt::Barrier],
                        else_b: vec![],
                    }],
                },
            ],
        };
        assert_eq!(ast.stmt_count(), 4);
    }
}
