//! Event-count energy model in the style the paper uses (Section 3.3):
//! Cacti 4.2 for cache read/write and leakage, Wattch for the pipeline
//! (fetch/decode, integer ALUs, FP ALUs, register files, result bus, clock,
//! leakage), Pullini et al. for the crossbar, and 220 nJ per physical
//! memory access.
//!
//! Dynamic energy accrues per event; static energy (clock + leakage) grows
//! linearly with runtime — which is why, at 65 nm, DWS's speedups turn
//! into the paper's ~30% energy savings (Figure 19). Coefficients are
//! order-of-magnitude 65 nm values; EXPERIMENTS.md reports shapes, not
//! absolute joules.

use dws_core::WpuStats;
use dws_mem::MemStats;

/// Per-event energy coefficients (joules) and static power (watts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Fetch + decode per warp instruction.
    pub fetch_decode_j: f64,
    /// Integer ALU op, per lane.
    pub int_op_j: f64,
    /// Floating-point op, per lane.
    pub fp_op_j: f64,
    /// Register-file energy per lane-instruction (2 reads + 1 write).
    pub rf_j: f64,
    /// Result-bus drive per lane-instruction.
    pub result_bus_j: f64,
    /// L1 I-cache fetch.
    pub l1i_j: f64,
    /// L1 D-cache line access.
    pub l1d_j: f64,
    /// L2 access.
    pub l2_j: f64,
    /// Crossbar energy per byte.
    pub crossbar_per_byte_j: f64,
    /// Physical memory access (the paper assumes 220 nJ).
    pub dram_j: f64,
    /// Clock distribution power per WPU (W).
    pub clock_w: f64,
    /// Leakage power per WPU including its L1s (W).
    pub wpu_leak_w: f64,
    /// Leakage power of the shared L2 (W).
    pub l2_leak_w: f64,
    /// Clock frequency (Hz) used to convert cycles to seconds.
    pub freq_hz: f64,
}

impl EnergyModel {
    /// 65 nm coefficients in the ballpark of Cacti 4.2 / Wattch at 1 GHz,
    /// 0.9 V (Table 3).
    pub fn paper_65nm() -> Self {
        EnergyModel {
            fetch_decode_j: 60e-12,
            int_op_j: 25e-12,
            fp_op_j: 80e-12,
            rf_j: 15e-12,
            result_bus_j: 8e-12,
            l1i_j: 40e-12,
            l1d_j: 90e-12,
            l2_j: 1.2e-9,
            crossbar_per_byte_j: 6e-12,
            dram_j: 220e-9,
            clock_w: 0.25,
            wpu_leak_w: 0.45,
            l2_leak_w: 1.6,
            freq_hz: 1e9,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper_65nm()
    }
}

/// Energy of one run, broken into the paper's seven pipeline parts plus
/// the memory hierarchy (joules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Fetch and decode.
    pub fetch_decode: f64,
    /// Integer ALUs.
    pub int_alu: f64,
    /// Floating-point ALUs.
    pub fp_alu: f64,
    /// Register files.
    pub register_file: f64,
    /// Result bus.
    pub result_bus: f64,
    /// Clock distribution.
    pub clock: f64,
    /// Leakage (WPUs + L1s + L2).
    pub leakage: f64,
    /// L1 instruction caches.
    pub l1i: f64,
    /// L1 data caches.
    pub l1d: f64,
    /// Shared L2.
    pub l2: f64,
    /// Crossbar switches and links.
    pub crossbar: f64,
    /// Off-chip DRAM.
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.dynamic() + self.static_energy()
    }

    /// Dynamic (event-driven) energy.
    pub fn dynamic(&self) -> f64 {
        self.fetch_decode
            + self.int_alu
            + self.fp_alu
            + self.register_file
            + self.result_bus
            + self.l1i
            + self.l1d
            + self.l2
            + self.crossbar
            + self.dram
    }

    /// Static energy (clock + leakage), linear in runtime.
    pub fn static_energy(&self) -> f64 {
        self.clock + self.leakage
    }
}

/// Computes the energy of a run.
///
/// `wpu` is the machine-wide aggregate of per-WPU statistics, `mem` the
/// memory-system counters, `cycles` the run length, and `n_wpus` the WPU
/// count (for clock/leakage scaling).
pub fn compute(
    model: &EnergyModel,
    wpu: &WpuStats,
    mem: &MemStats,
    cycles: u64,
    n_wpus: usize,
) -> EnergyBreakdown {
    let lane_insts = wpu.thread_insts.get() as f64;
    let seconds = cycles as f64 / model.freq_hz;
    EnergyBreakdown {
        fetch_decode: wpu.warp_insts.get() as f64 * model.fetch_decode_j,
        int_alu: wpu.int_ops.get() as f64 * model.int_op_j,
        fp_alu: wpu.fp_ops.get() as f64 * model.fp_op_j,
        register_file: lane_insts * model.rf_j,
        result_bus: lane_insts * model.result_bus_j,
        clock: model.clock_w * n_wpus as f64 * seconds,
        leakage: (model.wpu_leak_w * n_wpus as f64 + model.l2_leak_w) * seconds,
        l1i: mem.l1i_fetches.get() as f64 * model.l1i_j,
        l1d: mem.l1d_line_accesses.get() as f64 * model.l1d_j,
        l2: mem.l2_accesses.get() as f64 * model.l2_j,
        crossbar: mem.crossbar_bytes.get() as f64 * model.crossbar_per_byte_j,
        dram: mem.dram_accesses.get() as f64 * model.dram_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> (WpuStats, MemStats) {
        let mut w = WpuStats::default();
        w.warp_insts.add(1000);
        w.thread_insts.add(16_000);
        w.int_ops.add(12_000);
        w.fp_ops.add(4_000);
        let mut m = MemStats::default();
        m.l1d_line_accesses.add(2_000);
        m.l1i_fetches.add(1_000);
        m.l2_accesses.add(300);
        m.dram_accesses.add(50);
        m.crossbar_bytes.add(300 * 136);
        (w, m)
    }

    #[test]
    fn totals_add_up() {
        let (w, m) = sample_stats();
        let e = compute(&EnergyModel::paper_65nm(), &w, &m, 100_000, 4);
        assert!(e.total() > 0.0);
        let parts = e.fetch_decode
            + e.int_alu
            + e.fp_alu
            + e.register_file
            + e.result_bus
            + e.l1i
            + e.l1d
            + e.l2
            + e.crossbar
            + e.dram
            + e.clock
            + e.leakage;
        assert!((e.total() - parts).abs() < 1e-15);
        assert!((e.dynamic() + e.static_energy() - e.total()).abs() < 1e-15);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let (w, m) = sample_stats();
        let model = EnergyModel::paper_65nm();
        let fast = compute(&model, &w, &m, 100_000, 4);
        let slow = compute(&model, &w, &m, 200_000, 4);
        assert_eq!(fast.dynamic(), slow.dynamic());
        assert!((slow.static_energy() / fast.static_energy() - 2.0).abs() < 1e-12);
        assert!(slow.total() > fast.total());
    }

    #[test]
    fn leakage_is_significant_at_65nm() {
        // The paper's energy argument: at 65 nm, static energy is a large
        // slice, so a 1.7X speedup yields ~30% energy savings. Check that
        // static is at least a third of total for a memory-bound profile.
        let (w, m) = sample_stats();
        let e = compute(&EnergyModel::paper_65nm(), &w, &m, 500_000, 4);
        assert!(
            e.static_energy() / e.total() > 0.33,
            "static fraction = {}",
            e.static_energy() / e.total()
        );
    }

    #[test]
    fn dram_dominates_per_event_costs() {
        let model = EnergyModel::paper_65nm();
        assert!(model.dram_j > 100.0 * model.l2_j);
        assert!(model.l2_j > model.l1d_j);
    }
}
