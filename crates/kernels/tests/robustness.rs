//! Robustness tests across all eight benchmarks: every kernel must be
//! correct for arbitrary thread counts (the grid-stride launch contract),
//! and every scale must construct without panicking.

use dws_isa::ReferenceRunner;
use dws_kernels::{Benchmark, Scale};

/// The grid-stride contract: correctness must not depend on how many
/// hardware threads execute the kernel.
#[test]
fn every_benchmark_is_thread_count_invariant() {
    for bench in Benchmark::ALL {
        let spec = bench.build(Scale::Test, 123);
        for nthreads in [1u64, 3, 16, 61, 128] {
            let mut mem = spec.memory.clone();
            ReferenceRunner::new(&spec.program, nthreads)
                .run(&mut mem)
                .unwrap_or_else(|e| panic!("{bench} with {nthreads} threads: {e}"));
            spec.verify(&mem)
                .unwrap_or_else(|e| panic!("{bench} wrong with {nthreads} threads: {e}"));
        }
    }
}

/// More threads than work items: surplus threads must fall through their
/// grid-stride loops and halt cleanly.
#[test]
fn surplus_threads_are_harmless() {
    for bench in [Benchmark::Filter, Benchmark::Merge, Benchmark::KMeans] {
        let spec = bench.build(Scale::Test, 9);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 4096)
            .run(&mut mem)
            .unwrap_or_else(|e| panic!("{bench}: {e}"));
        spec.verify(&mem).unwrap_or_else(|e| panic!("{bench}: {e}"));
    }
}

/// All scales (including Table 2 paper sizes) must construct: programs
/// build, post-dominators resolve, memory images allocate.
#[test]
fn all_scales_construct() {
    for bench in Benchmark::ALL {
        for scale in [Scale::Test, Scale::Bench, Scale::Paper] {
            let spec = bench.build(scale, 1);
            assert!(!spec.program.is_empty(), "{bench} {scale:?}");
            assert!(spec.memory.size_bytes() > 0, "{bench} {scale:?}");
            // Every conditional branch in structured kernels re-converges.
            for (pc, info) in spec.program.branches() {
                assert_ne!(
                    info.ipdom,
                    usize::MAX,
                    "{bench} {scale:?}: branch at {pc} has no post-dominator"
                );
            }
        }
    }
}

/// Two different seeds produce different data but equally correct runs.
#[test]
fn seeds_vary_data_not_correctness() {
    for bench in [Benchmark::Fft, Benchmark::Short] {
        let a = bench.build(Scale::Test, 1);
        let b = bench.build(Scale::Test, 2);
        assert_ne!(
            a.memory.words(),
            b.memory.words(),
            "{bench}: seeds must change inputs"
        );
        for spec in [a, b] {
            let mut mem = spec.memory.clone();
            ReferenceRunner::new(&spec.program, 24)
                .run(&mut mem)
                .unwrap();
            spec.verify(&mem).unwrap();
        }
    }
}

/// The programs are deterministic functions of their parameters.
#[test]
fn program_construction_is_deterministic() {
    for bench in Benchmark::ALL {
        let a = bench.build(Scale::Test, 7);
        let b = bench.build(Scale::Test, 7);
        assert_eq!(a.program.len(), b.program.len());
        assert_eq!(a.memory.words(), b.memory.words(), "{bench}");
    }
}
