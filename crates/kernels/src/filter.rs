//! Filter: edge detection of an input image by 3x3 convolution.
//!
//! Each thread computes output pixels in a grid-stride loop, gathering the
//! 3x3 neighborhood (three image rows — three widely separated cache
//! lines, hence memory divergence) and applying a Laplacian edge-detection
//! stencil. Border pixels take a short divergent branch and write zero.
//!
//! Layout: input image `W*H` f64 at word 0; output at word `W*H`.

use crate::spec::{close, BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, VecMemory};

/// Image dimensions per scale.
pub fn size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (32, 24),
        Scale::Bench => (256, 192),
        Scale::Paper => (500, 500), // Table 2
    }
}

/// The Laplacian stencil applied to the 3x3 neighborhood.
const STENCIL: [[f64; 3]; 3] = [[-1.0, -1.0, -1.0], [-1.0, 8.0, -1.0], [-1.0, -1.0, -1.0]];

/// Builds the Filter benchmark.
pub fn build(scale: Scale, seed: u64) -> KernelSpec {
    let (w, h) = size(scale);
    let program = program(w, h);
    let memory = init_memory(w, h, seed);
    let img: Vec<f64> = (0..w * h)
        .map(|i| memory.read_f64((i * 8) as u64))
        .collect();
    let expect = host_filter(&img, w, h);
    KernelSpec::new("Filter", program, memory, move |mem| {
        for (p, &e) in expect.iter().enumerate() {
            let got = mem.read_f64(((w * h + p) * 8) as u64);
            if !close(got, e, 1e-9) {
                return Err(format!("Filter out[{p}] = {got}, expected {e}"));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("input image", 0, (w * h) as u64),
        ("output image", (w * h) as u64, (w * h) as u64),
    ]))
}

fn init_memory(w: usize, h: usize, seed: u64) -> VecMemory {
    let mut m = VecMemory::new((2 * w * h * 8) as u64);
    let mut rng = Rng64::new(seed);
    for i in 0..w * h {
        m.write_f64((i * 8) as u64, rng.range_f64(0.0, 255.0));
    }
    m
}

/// Host reference convolution.
pub fn host_filter(img: &[f64], w: usize, h: usize) -> Vec<f64> {
    let mut out = vec![0.0; w * h];
    for r in 1..h - 1 {
        for c in 1..w - 1 {
            let mut acc = 0.0;
            for (dr, row) in STENCIL.iter().enumerate() {
                for (dc, &coef) in row.iter().enumerate() {
                    acc += coef * img[(r + dr - 1) * w + (c + dc - 1)];
                }
            }
            out[r * w + c] = acc;
        }
    }
    out
}

/// Emits the Filter kernel for a `w x h` image.
///
/// The border test is an `r == 0` / `r == h-1` / `c == 0` / `c == w-1`
/// elif chain rather than an or-reduced flag: each "not equal to the
/// endpoint" fall-through narrows `r`/`c` by one in the verifier's bounds
/// pass, so the interior arm reaches the gathers with `r in [1, h-2]`,
/// `c in [1, w-2]` and the 3x3 indices prove in-bounds with no runtime
/// clamps.
pub fn program(w: usize, h: usize) -> Program {
    let (wi, hi) = (w as i64, h as i64);
    let out_base = wi * hi * 8;
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let p = b.reg();
    let r = b.reg();
    let c = b.reg();
    let acc = b.reg();
    let v = b.reg();
    let idx = b.reg();
    let a = b.reg();
    b.for_range(p, tid, Operand::Imm(wi * hi), ntid, |b| {
        b.div(r, Operand::Reg(p), Operand::Imm(wi));
        b.rem(c, Operand::Reg(p), Operand::Imm(wi));
        let zero = |b: &mut KernelBuilder| b.lif(acc, 0.0);
        b.if_then_else(CondOp::Eq, Operand::Reg(r), Operand::Imm(0), zero, |b| {
            b.if_then_else(
                CondOp::Eq,
                Operand::Reg(r),
                Operand::Imm(hi - 1),
                zero,
                |b| {
                    b.if_then_else(CondOp::Eq, Operand::Reg(c), Operand::Imm(0), zero, |b| {
                        b.if_then_else(
                            CondOp::Eq,
                            Operand::Reg(c),
                            Operand::Imm(wi - 1),
                            zero,
                            |b| {
                                b.lif(acc, 0.0);
                                for (dr, row) in STENCIL.iter().enumerate() {
                                    for (dc, &coef) in row.iter().enumerate() {
                                        // idx = (r + dr - 1) * w + (c + dc - 1)
                                        b.add(idx, Operand::Reg(r), Operand::Imm(dr as i64 - 1));
                                        b.mul(idx, Operand::Reg(idx), Operand::Imm(wi));
                                        b.add(idx, Operand::Reg(idx), Operand::Reg(c));
                                        b.add(idx, Operand::Reg(idx), Operand::Imm(dc as i64 - 1));
                                        b.addr(a, Operand::Imm(0), Operand::Reg(idx), 8);
                                        b.load(v, a, 0);
                                        b.fmul(v, Operand::Reg(v), Operand::ImmF(coef));
                                        b.fadd(acc, Operand::Reg(acc), Operand::Reg(v));
                                    }
                                }
                            },
                        );
                    });
                },
            );
        });
        b.addr(a, Operand::Imm(out_base), Operand::Reg(p), 8);
        b.store(Operand::Reg(acc), a, 0);
    });
    b.halt();
    b.build().expect("Filter kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::ReferenceRunner;

    #[test]
    fn kernel_matches_host_filter() {
        let spec = build(Scale::Test, 11);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 24)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }

    #[test]
    fn uniform_image_has_zero_interior_response() {
        // The Laplacian of a constant image is zero everywhere.
        let (w, h) = (16, 12);
        let img = vec![7.5; w * h];
        let out = host_filter(&img, w, h);
        assert!(out.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn single_bright_pixel_responds() {
        let (w, h) = (8, 8);
        let mut img = vec![0.0; w * h];
        img[3 * w + 3] = 1.0;
        let out = host_filter(&img, w, h);
        assert!((out[3 * w + 3] - 8.0).abs() < 1e-12);
        assert!((out[3 * w + 4] + 1.0).abs() < 1e-12);
        assert_eq!(out[0], 0.0, "border stays zero");
    }

    #[test]
    fn verify_rejects_bad_borders() {
        let spec = build(Scale::Test, 11);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 8)
            .run(&mut mem)
            .unwrap();
        let (w, h) = size(Scale::Test);
        mem.write_f64(((w * h) * 8) as u64, 123.0); // corrupt out[0]
        assert!(spec.verify(&mem).is_err());
        let _ = h;
    }
}
