//! Meldable benchmark variants: divergent diamonds the control-flow
//! melding pass (`dws_isa::meld`) can rewrite into predicated
//! straight-line code.
//!
//! The Table 2 benchmarks keep their divergent branches *asymmetric* (a
//! cheap border arm vs. an expensive interior arm), which is exactly the
//! shape melding cannot help. These two variants instead model the other
//! common case — near-identical arms selected by a data-dependent sign
//! test — so the static transform has something real to chew on:
//!
//! * [`MeldKernel::Poly`] — `out[i] = poly_k(data[i])` where the two arms
//!   are the same 6-instruction integer polynomial differing in one
//!   multiplier immediate. Melding blends the immediate under the branch
//!   masks and deletes the diamond.
//! * [`MeldKernel::Gather`] — `out[i] = f(tbl[i])` where the arms load
//!   from two different tables (positive vs. negative coefficients) at the
//!   same index. Melding blends the *base addresses*, exercising the
//!   masked-gather path of the emitter.
//!
//! Both kernels draw sign-mixed inputs, so roughly half the lanes of every
//! warp take each arm — maximal branch divergence for the dynamic
//! policies, and maximal savings for the static meld. They ship as
//! [`KernelSpec`]s like the paper benchmarks (host-reference verifier,
//! declared memory map) but live outside [`crate::Benchmark::ALL`]: the
//! Table 2 set stays exactly the paper's.

use crate::spec::{BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{CondOp, KernelBuilder, MemoryAccess, Operand, Program, Reg, VecMemory};
use std::fmt;

/// Elements per scale (each kernel's buffers are `n` words long).
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 64,
        Scale::Bench => 2048,
        Scale::Paper => 65536,
    }
}

/// The meldable kernel variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeldKernel {
    /// Sign-selected polynomial, arms differ in one immediate.
    Poly,
    /// Sign-selected table gather, arms differ in the load base.
    Gather,
}

impl MeldKernel {
    /// Both variants.
    pub const ALL: [MeldKernel; 2] = [MeldKernel::Poly, MeldKernel::Gather];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MeldKernel::Poly => "MeldPoly",
            MeldKernel::Gather => "MeldGather",
        }
    }

    /// Builds the variant at the given scale with a deterministic seed.
    pub fn build(self, scale: Scale, seed: u64) -> KernelSpec {
        match self {
            MeldKernel::Poly => build_poly(scale, seed),
            MeldKernel::Gather => build_gather(scale, seed),
        }
    }

    /// Builds the variant with its diamond already melded away
    /// ([`dws_isa::meld`]): same inputs, layout, and verifier, but the
    /// predicated straight-line program. Panics if the transform does not
    /// fire — these kernels exist to be melded, so a refusal is a bug.
    pub fn build_melded(self, scale: Scale, seed: u64) -> KernelSpec {
        let spec = self.build(scale, seed);
        let out = dws_isa::meld(spec.program.insts())
            .unwrap_or_else(|e| panic!("{self}: meld refused the kernel:\n{e}"));
        assert!(out.changed(), "{self}: meld left the kernel unchanged");
        let program = Program::from_insts(out.insts)
            .unwrap_or_else(|e| panic!("{self}: melded output rejected: {e}"));
        spec.with_program(program)
    }
}

impl fmt::Display for MeldKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The shared 6-step integer polynomial (wrapping, like `eval_alu`).
fn host_poly(x: i64, k: i64) -> i64 {
    let mut t = x.wrapping_mul(k);
    t = t.wrapping_add(1);
    t ^= x;
    t = t.wrapping_shr(1);
    t = t.wrapping_add(x);
    t.wrapping_mul(t)
}

/// Emits the 6-instruction polynomial arm `acc = poly_k(x)`.
fn emit_poly(b: &mut KernelBuilder, acc: Reg, x: Reg, k: i64) {
    b.mul(acc, Operand::Reg(x), Operand::Imm(k));
    b.add(acc, Operand::Reg(acc), Operand::Imm(1));
    b.xor(acc, Operand::Reg(acc), Operand::Reg(x));
    b.shr(acc, Operand::Reg(acc), Operand::Imm(1));
    b.add(acc, Operand::Reg(acc), Operand::Reg(x));
    b.mul(acc, Operand::Reg(acc), Operand::Reg(acc));
}

/// `out[i] = data[i] < 0 ? poly_3(data[i]) : poly_5(data[i])` over a
/// grid-stride loop. Layout: `data` at word 0, `out` at word `n`.
pub fn poly_program(n: usize) -> Program {
    let ni = n as i64;
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let i = b.reg();
    let a = b.reg();
    let x = b.reg();
    let acc = b.reg();
    b.for_range(i, tid, Operand::Imm(ni), ntid, |b| {
        b.addr(a, Operand::Imm(0), Operand::Reg(i), 8);
        b.load(x, a, 0);
        b.if_then_else(
            CondOp::Lt,
            Operand::Reg(x),
            Operand::Imm(0),
            |b| emit_poly(b, acc, x, 3),
            |b| emit_poly(b, acc, x, 5),
        );
        b.addr(a, Operand::Imm(ni * 8), Operand::Reg(i), 8);
        b.store(Operand::Reg(acc), a, 0);
    });
    b.halt();
    b.build().expect("MeldPoly kernel is well-formed")
}

fn build_poly(scale: Scale, seed: u64) -> KernelSpec {
    let n = size(scale);
    let program = poly_program(n);
    let mut memory = VecMemory::new((2 * n * 8) as u64);
    let mut rng = Rng64::new(seed);
    let data: Vec<i64> = (0..n).map(|_| rng.range_i64(-1000, 1000)).collect();
    for (i, &v) in data.iter().enumerate() {
        memory.store_word((i * 8) as u64, v as u64);
    }
    let expect: Vec<i64> = data
        .iter()
        .map(|&x| host_poly(x, if x < 0 { 3 } else { 5 }))
        .collect();
    KernelSpec::new("MeldPoly", program, memory, move |mem| {
        for (i, &e) in expect.iter().enumerate() {
            let got = mem.words()[n + i] as i64;
            if got != e {
                return Err(format!("MeldPoly out[{i}] = {got}, expected {e}"));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("signed data", 0, n as u64),
        ("out", n as u64, n as u64),
    ]))
}

/// The shared 6-step mix applied to a gathered table word.
fn host_mix(v: i64) -> i64 {
    let mut t = v.wrapping_add(1);
    t ^= v;
    t = t.wrapping_shr(1);
    t = t.wrapping_add(v);
    t.wrapping_mul(t)
}

/// Emits the 6-instruction gather arm `acc = mix(load [addr])`.
fn emit_gather(b: &mut KernelBuilder, acc: Reg, v: Reg, addr: Reg) {
    b.load(v, addr, 0);
    b.add(acc, Operand::Reg(v), Operand::Imm(1));
    b.xor(acc, Operand::Reg(acc), Operand::Reg(v));
    b.shr(acc, Operand::Reg(acc), Operand::Imm(1));
    b.add(acc, Operand::Reg(acc), Operand::Reg(v));
    b.mul(acc, Operand::Reg(acc), Operand::Reg(acc));
}

/// `out[i] = mix(sel[i] < 0 ? neg[i] : pos[i])` over a grid-stride loop.
/// Layout: `pos` at word 0, `neg` at `n`, `sel` at `2n`, `out` at `3n`.
pub fn gather_program(n: usize) -> Program {
    let ni = n as i64;
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let i = b.reg();
    let a = b.reg();
    let ap = b.reg();
    let an = b.reg();
    let s = b.reg();
    let v = b.reg();
    let acc = b.reg();
    b.for_range(i, tid, Operand::Imm(ni), ntid, |b| {
        b.addr(a, Operand::Imm(2 * ni * 8), Operand::Reg(i), 8);
        b.load(s, a, 0);
        // Both table addresses are computed before the branch so the arms
        // differ only in which base register the load reads — the meld
        // emitter must blend the bases, not the loaded values.
        b.addr(ap, Operand::Imm(0), Operand::Reg(i), 8);
        b.addr(an, Operand::Imm(ni * 8), Operand::Reg(i), 8);
        b.if_then_else(
            CondOp::Lt,
            Operand::Reg(s),
            Operand::Imm(0),
            |b| emit_gather(b, acc, v, an),
            |b| emit_gather(b, acc, v, ap),
        );
        b.addr(a, Operand::Imm(3 * ni * 8), Operand::Reg(i), 8);
        b.store(Operand::Reg(acc), a, 0);
    });
    b.halt();
    b.build().expect("MeldGather kernel is well-formed")
}

fn build_gather(scale: Scale, seed: u64) -> KernelSpec {
    let n = size(scale);
    let program = gather_program(n);
    let mut memory = VecMemory::new((4 * n * 8) as u64);
    let mut rng = Rng64::new(seed);
    let pos: Vec<i64> = (0..n).map(|_| rng.range_i64(0, 4096)).collect();
    let neg: Vec<i64> = (0..n).map(|_| rng.range_i64(-4096, 0)).collect();
    let sel: Vec<i64> = (0..n).map(|_| rng.range_i64(-8, 8)).collect();
    for i in 0..n {
        memory.store_word((i * 8) as u64, pos[i] as u64);
        memory.store_word(((n + i) * 8) as u64, neg[i] as u64);
        memory.store_word(((2 * n + i) * 8) as u64, sel[i] as u64);
    }
    let expect: Vec<i64> = (0..n)
        .map(|i| host_mix(if sel[i] < 0 { neg[i] } else { pos[i] }))
        .collect();
    KernelSpec::new("MeldGather", program, memory, move |mem| {
        for (i, &e) in expect.iter().enumerate() {
            let got = mem.words()[3 * n + i] as i64;
            if got != e {
                return Err(format!("MeldGather out[{i}] = {got}, expected {e}"));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("pos table", 0, n as u64),
        ("neg table", n as u64, n as u64),
        ("sel", 2 * n as u64, n as u64),
        ("out", 3 * n as u64, n as u64),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::{meld, ReferenceRunner, Severity, VerifyOptions};

    #[test]
    fn both_variants_match_their_host_reference() {
        for kernel in MeldKernel::ALL {
            let spec = kernel.build(Scale::Test, 13);
            let mut mem = spec.memory.clone();
            ReferenceRunner::new(&spec.program, 16)
                .run(&mut mem)
                .unwrap();
            spec.verify(&mem)
                .unwrap_or_else(|e| panic!("{kernel}: {e}"));
        }
    }

    #[test]
    fn both_variants_lint_clean() {
        for kernel in MeldKernel::ALL {
            let spec = kernel.build(Scale::Test, 13);
            let opts = VerifyOptions::default()
                .with_mem_bytes(spec.memory.size_bytes())
                .with_wst_capacity(16);
            let report = spec.program.lint(&opts);
            assert_eq!(report.count(Severity::Error), 0, "{kernel}:\n{report}");
            assert_eq!(report.count(Severity::Warning), 0, "{kernel}:\n{report}");
            assert!(spec.layout.check(spec.memory.size_bytes()).is_empty());
        }
    }

    #[test]
    fn both_variants_meld_and_stay_correct() {
        for kernel in MeldKernel::ALL {
            let spec = kernel.build(Scale::Test, 29);
            let out = meld(spec.program.insts()).unwrap_or_else(|e| panic!("{kernel}: {e}"));
            assert_eq!(out.applied.len(), 1, "{kernel}: one diamond rewritten");
            assert!(out.applied[0].saved > 0, "{kernel}");
            let melded = dws_isa::Program::from_insts(out.insts).unwrap();
            let mut mem = spec.memory.clone();
            ReferenceRunner::new(&melded, 16).run(&mut mem).unwrap();
            spec.verify(&mem)
                .unwrap_or_else(|e| panic!("{kernel} melded: {e}"));
        }
    }

    #[test]
    fn analysis_flags_both_variants_meldable() {
        for kernel in MeldKernel::ALL {
            let spec = kernel.build(Scale::Test, 3);
            let opts = VerifyOptions::default().with_mem_bytes(spec.memory.size_bytes());
            let report = spec.program.lint(&opts);
            let d = report
                .find(dws_isa::DwsLintCode::MeldableRegion)
                .unwrap_or_else(|| panic!("{kernel}: no DWS0601 in\n{report}"));
            assert!(d.message.contains("meldable region"), "{}", d.message);
        }
    }
}
