//! Short: winning-path search for chess by dynamic programming.
//!
//! Each step computes, for every choice `i`, the cheapest extension of the
//! previous step's paths within a neighborhood window:
//! `next[i] = min_{j in [i-W, i+W]} (prev[j] + cost(j, i))`. The min-update
//! comparison is data-dependent (divergent: Table 1 reports 22% divergent
//! branches for Short), the window gathers run over the previous row, and
//! a barrier separates steps.
//!
//! Layout (i64 words): `prev` row at 0, `next` row at `c`. The final row
//! is at 0 if `steps` is even, else at `c`.

use crate::spec::{BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, VecMemory};

/// Half-width of the predecessor window.
pub const WINDOW: i64 = 3;

/// Entries in the transition-cost table (gathered pseudo-randomly, making
/// Short memory-divergent as well as branch-divergent, per Table 1).
pub const COST_TABLE: i64 = 16_384; // 128 KB of i64

/// (choices per step, steps) per scale.
pub fn size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (256, 4),
        Scale::Bench => (24_576, 6),
        Scale::Paper => (150_000, 6), // Table 2
    }
}

/// Index into the cost table for the transition `j -> i` (a cheap integer
/// hash computed identically in kernel and host; the scatter across the
/// 128 KB table is what generates divergent misses).
pub fn cost_index(j: i64, i: i64) -> i64 {
    (((j * 131 + i * 7919) % COST_TABLE) + COST_TABLE) % COST_TABLE
}

/// The table value stored at `idx` (filled deterministically).
pub fn cost_value(idx: i64) -> i64 {
    (idx * 2654435761i64 % 97 + 97) % 97
}

/// Builds the Short benchmark.
pub fn build(scale: Scale, seed: u64) -> KernelSpec {
    let (c, steps) = size(scale);
    let program = program(c, steps);
    let memory = init_memory(c, seed);
    let row0: Vec<i64> = (0..c).map(|i| memory.read_i64((i * 8) as u64)).collect();
    let expect = host_short(&row0, steps);
    let out_word = if steps % 2 == 0 { 0 } else { c };
    KernelSpec::new("Short", program, memory, move |mem| {
        for (i, &e) in expect.iter().enumerate() {
            let got = mem.read_i64(((out_word + i) * 8) as u64);
            if got != e {
                return Err(format!("Short cost[{i}] = {got}, expected {e}"));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("prev row", 0, c as u64),
        ("next row", c as u64, c as u64),
        ("cost table", 2 * c as u64, COST_TABLE as u64),
    ]))
}

fn init_memory(c: usize, seed: u64) -> VecMemory {
    // Layout: prev row, next row, then the cost table.
    let mut m = VecMemory::new(((2 * c) as u64 + COST_TABLE as u64) * 8);
    let mut rng = Rng64::new(seed);
    for i in 0..c {
        m.write_i64((i * 8) as u64, rng.range_i64(0, 1000));
    }
    for idx in 0..COST_TABLE {
        m.write_i64(((2 * c) as u64 + idx as u64) * 8, cost_value(idx));
    }
    m
}

/// Host reference DP.
pub fn host_short(row0: &[i64], steps: usize) -> Vec<i64> {
    let c = row0.len() as i64;
    let mut prev = row0.to_vec();
    let mut next = vec![0i64; row0.len()];
    for _ in 0..steps {
        for i in 0..c {
            let lo = (i - WINDOW).max(0);
            let hi = (i + WINDOW).min(c - 1);
            let mut best = i64::MAX;
            for j in lo..=hi {
                let cand = prev[j as usize] + cost_value(cost_index(j, i));
                if cand < best {
                    best = cand;
                }
            }
            next[i as usize] = best;
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev
}

/// Emits the Short kernel for `c` choices and `steps` steps.
pub fn program(c: usize, steps: usize) -> Program {
    let ci = c as i64;
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let s = b.reg();
    let src = b.reg();
    let dst = b.reg();
    let tmp = b.reg();
    let i = b.reg();
    let j = b.reg();
    let lo = b.reg();
    let hi = b.reg();
    let best = b.reg();
    let cand = b.reg();
    let w = b.reg();
    let a = b.reg();

    b.li(src, 0);
    b.li(dst, ci * 8);
    b.for_range(
        s,
        Operand::Imm(0),
        Operand::Imm(steps as i64),
        Operand::Imm(1),
        |b| {
            b.for_range(i, tid, Operand::Imm(ci), ntid, |b| {
                b.sub(lo, Operand::Reg(i), Operand::Imm(WINDOW));
                b.imax(lo, Operand::Reg(lo), Operand::Imm(0));
                b.add(hi, Operand::Reg(i), Operand::Imm(WINDOW));
                b.imin(hi, Operand::Reg(hi), Operand::Imm(ci - 1));
                b.li(best, i64::MAX);
                b.mov(j, Operand::Reg(lo));
                b.while_loop(CondOp::Le, Operand::Reg(j), Operand::Reg(hi), |b| {
                    // w = table[cost_index(j, i)] — a scattered gather
                    b.mul(w, Operand::Reg(j), Operand::Imm(131));
                    b.mul(cand, Operand::Reg(i), Operand::Imm(7919));
                    b.add(w, Operand::Reg(w), Operand::Reg(cand));
                    b.rem(w, Operand::Reg(w), Operand::Imm(COST_TABLE));
                    b.add(w, Operand::Reg(w), Operand::Imm(COST_TABLE));
                    b.rem(w, Operand::Reg(w), Operand::Imm(COST_TABLE));
                    b.addr(a, Operand::Imm((2 * ci) * 8), Operand::Reg(w), 8);
                    b.load(w, a, 0);
                    b.addr(a, Operand::Reg(src), Operand::Reg(j), 8);
                    b.load(cand, a, 0);
                    b.add(cand, Operand::Reg(cand), Operand::Reg(w));
                    // data-dependent min update (divergent branch)
                    b.if_then(CondOp::Lt, Operand::Reg(cand), Operand::Reg(best), |b| {
                        b.mov(best, Operand::Reg(cand));
                    });
                    b.add(j, Operand::Reg(j), Operand::Imm(1));
                });
                b.addr(a, Operand::Reg(dst), Operand::Reg(i), 8);
                b.store(Operand::Reg(best), a, 0);
            });
            b.barrier();
            b.mov(tmp, Operand::Reg(src));
            b.mov(src, Operand::Reg(dst));
            b.mov(dst, Operand::Reg(tmp));
        },
    );
    b.halt();
    b.build().expect("Short kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::ReferenceRunner;

    #[test]
    fn kernel_matches_host_dp() {
        let spec = build(Scale::Test, 17);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 24)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }

    #[test]
    fn cost_is_nonnegative_and_bounded() {
        for j in -5..50 {
            for i in 0..50 {
                let idx = cost_index(j, i);
                assert!((0..COST_TABLE).contains(&idx), "index({j},{i}) = {idx}");
                let c = cost_value(idx);
                assert!((0..97).contains(&c), "cost({j},{i}) = {c}");
            }
        }
    }

    #[test]
    fn dp_costs_never_decrease_below_min_input() {
        let row0 = vec![100; 64];
        let out = host_short(&row0, 3);
        assert!(out.iter().all(|&v| v >= 100), "costs accumulate");
    }

    #[test]
    fn single_step_window_respected() {
        // With a single choice, the window collapses to j == i == 0.
        let row0 = vec![5];
        let out = host_short(&row0, 1);
        assert_eq!(out, vec![5 + cost_value(cost_index(0, 0))]);
    }
}
