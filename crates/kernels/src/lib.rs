//! The eight data-parallel benchmarks the paper evaluates (Table 2),
//! re-expressed in the DWS kernel IR.
//!
//! | Benchmark | Domain | Source suite |
//! |---|---|---|
//! | [`fft`] | spectral methods, butterfly computation | Splash2 |
//! | [`filter`] | edge detection, 3x3 convolution | — |
//! | [`hotspot`] | thermal simulation, iterative PDE solver | Rodinia |
//! | [`lu`] | dense linear algebra, LU decomposition | Splash2 |
//! | [`merge`] | merge sort | — |
//! | [`short`] | dynamic programming, winning path search | — |
//! | [`kmeans`] | unsupervised classification, map-reduce | MineBench |
//! | [`svm`] | supervised learning, kernel computation | MineBench |
//!
//! The original C sources were cross-compiled to Alpha; here each kernel is
//! built with [`dws_isa::KernelBuilder`] as a grid-stride data-parallel
//! program (mirroring the paper's OpenMP-style `parallel for`), with
//! barrier-separated phases where the algorithms require them. Every
//! benchmark ships an input generator and a host-reference verifier, so
//! simulation results are checked for *functional correctness* under every
//! scheduling policy — not just timed.
//!
//! Input sizes come in three scales: [`Scale::Test`] for unit tests,
//! [`Scale::Bench`] for the figure-regeneration harness (minutes per
//! sweep), and [`Scale::Paper`] matching Table 2 (hours, like the
//! original's six-hour MV5 runs).
//!
//! # Example
//!
//! ```
//! use dws_kernels::{Benchmark, Scale};
//! use dws_isa::ReferenceRunner;
//!
//! let spec = Benchmark::Merge.build(Scale::Test, 7);
//! let mut mem = spec.memory.clone();
//! ReferenceRunner::new(&spec.program, 16).run(&mut mem).unwrap();
//! spec.verify(&mem).expect("sorted output");
//! ```

pub mod fft;
pub mod filter;
pub mod hotspot;
pub mod kmeans;
pub mod lu;
pub mod meldable;
pub mod merge;
pub mod short;
pub mod spec;
pub mod svm;

pub use meldable::MeldKernel;
pub use spec::{Benchmark, BufferDesc, BufferLayout, KernelSpec, Scale};
