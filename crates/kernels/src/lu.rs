//! LU (Splash2): dense LU decomposition without pivoting.
//!
//! The factorization loop runs inside the kernel: for each pivot `k`,
//! threads first scale column `k` below the pivot (a strided, column-major
//! walk — the paper's "alternating row-major and column-major computation"),
//! barrier, then update the trailing submatrix, barrier. The input is made
//! diagonally dominant so no pivoting is needed.
//!
//! Layout: the `n x n` matrix `A` (f64, row-major) at word 0; it is
//! factored in place into `L\U` (unit lower triangle implicit).

use crate::spec::{close, BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{KernelBuilder, Operand, Program, VecMemory};

/// Matrix edge per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 24,
        Scale::Bench => 96,
        Scale::Paper => 300, // Table 2
    }
}

/// Builds the LU benchmark.
pub fn build(scale: Scale, seed: u64) -> KernelSpec {
    let n = size(scale);
    let program = program(n);
    let memory = init_memory(n, seed);
    let a: Vec<f64> = (0..n * n)
        .map(|i| memory.read_f64((i * 8) as u64))
        .collect();
    let expect = host_lu(&a, n);
    KernelSpec::new("LU", program, memory, move |mem| {
        for (i, &e) in expect.iter().enumerate() {
            let got = mem.read_f64((i * 8) as u64);
            if !close(got, e, 1e-6) {
                return Err(format!("LU A[{},{}] = {got}, expected {e}", i / n, i % n));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[(
        "A matrix (in-place L\\U)",
        0,
        (n * n) as u64,
    )]))
}

fn init_memory(n: usize, seed: u64) -> VecMemory {
    let mut m = VecMemory::new((n * n * 8) as u64);
    let mut rng = Rng64::new(seed);
    for r in 0..n {
        for c in 0..n {
            let v = if r == c {
                // Diagonal dominance keeps the factorization stable.
                n as f64 + rng.range_f64(1.0, 2.0)
            } else {
                rng.range_f64(-1.0, 1.0)
            };
            m.write_f64(((r * n + c) * 8) as u64, v);
        }
    }
    m
}

/// Host reference factorization (same loop order as the kernel).
pub fn host_lu(a: &[f64], n: usize) -> Vec<f64> {
    let mut m = a.to_vec();
    for k in 0..n - 1 {
        let piv = m[k * n + k];
        for i in k + 1..n {
            m[i * n + k] /= piv;
        }
        for i in k + 1..n {
            let lik = m[i * n + k];
            for j in k + 1..n {
                m[i * n + j] -= lik * m[k * n + j];
            }
        }
    }
    m
}

/// Reconstructs `L * U` from a packed factorization (test helper).
pub fn reconstruct(lu: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            let mut acc = 0.0;
            for k in 0..=r.min(c) {
                let l = if k == r { 1.0 } else { lu[r * n + k] };
                let u = lu[k * n + c];
                acc += l * u;
            }
            out[r * n + c] = acc;
        }
    }
    out
}

/// Emits the LU kernel for an `n x n` matrix.
pub fn program(n: usize) -> Program {
    let ni = n as i64;
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let k = b.reg();
    let i = b.reg();
    let j = b.reg();
    let t = b.reg();
    let start = b.reg();
    let a = b.reg();
    let piv = b.reg();
    let v = b.reg();
    let lik = b.reg();
    let ukj = b.reg();
    let rem = b.reg();
    let count = b.reg();
    let kp1 = b.reg();

    b.for_range(
        k,
        Operand::Imm(0),
        Operand::Imm(ni - 1),
        Operand::Imm(1),
        |b| {
            b.add(kp1, Operand::Reg(k), Operand::Imm(1));
            // Phase A: scale column k below the pivot.
            b.mul(a, Operand::Reg(k), Operand::Imm(ni));
            b.add(a, Operand::Reg(a), Operand::Reg(k));
            b.mul(a, Operand::Reg(a), Operand::Imm(8));
            b.load(piv, a, 0);
            b.add(start, Operand::Reg(kp1), Operand::Reg(tid));
            b.for_range(i, Operand::Reg(start), Operand::Imm(ni), ntid, |b| {
                b.mul(a, Operand::Reg(i), Operand::Imm(ni));
                b.add(a, Operand::Reg(a), Operand::Reg(k));
                b.mul(a, Operand::Reg(a), Operand::Imm(8));
                b.load(v, a, 0);
                b.fdiv(v, Operand::Reg(v), Operand::Reg(piv));
                b.store(Operand::Reg(v), a, 0);
            });
            b.barrier();
            // Phase B: trailing submatrix update over rem*rem tasks.
            b.sub(rem, Operand::Imm(ni), Operand::Reg(kp1));
            b.mul(count, Operand::Reg(rem), Operand::Reg(rem));
            b.for_range(t, tid, Operand::Reg(count), ntid, |b| {
                b.div(i, Operand::Reg(t), Operand::Reg(rem));
                b.rem(j, Operand::Reg(t), Operand::Reg(rem));
                b.add(i, Operand::Reg(i), Operand::Reg(kp1));
                b.add(j, Operand::Reg(j), Operand::Reg(kp1));
                // lik = A[i,k]
                b.mul(a, Operand::Reg(i), Operand::Imm(ni));
                b.add(a, Operand::Reg(a), Operand::Reg(k));
                b.mul(a, Operand::Reg(a), Operand::Imm(8));
                b.load(lik, a, 0);
                // ukj = A[k,j]
                b.mul(a, Operand::Reg(k), Operand::Imm(ni));
                b.add(a, Operand::Reg(a), Operand::Reg(j));
                b.mul(a, Operand::Reg(a), Operand::Imm(8));
                b.load(ukj, a, 0);
                // A[i,j] -= lik * ukj
                b.mul(a, Operand::Reg(i), Operand::Imm(ni));
                b.add(a, Operand::Reg(a), Operand::Reg(j));
                b.mul(a, Operand::Reg(a), Operand::Imm(8));
                b.load(v, a, 0);
                b.fmul(ukj, Operand::Reg(lik), Operand::Reg(ukj));
                b.fsub(v, Operand::Reg(v), Operand::Reg(ukj));
                b.store(Operand::Reg(v), a, 0);
            });
            b.barrier();
        },
    );
    b.halt();
    b.build().expect("LU kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::ReferenceRunner;

    #[test]
    fn kernel_matches_host_lu() {
        let spec = build(Scale::Test, 21);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 24)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }

    #[test]
    fn factorization_reconstructs_input() {
        let n = 16;
        let mem = init_memory(n, 4);
        let a: Vec<f64> = (0..n * n).map(|i| mem.read_f64((i * 8) as u64)).collect();
        let lu = host_lu(&a, n);
        let back = reconstruct(&lu, n);
        for i in 0..n * n {
            assert!(
                close(back[i], a[i], 1e-8),
                "A[{i}]: {} vs {}",
                back[i],
                a[i]
            );
        }
    }

    #[test]
    fn identity_factors_to_itself() {
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        assert_eq!(host_lu(&a, n), a);
    }

    #[test]
    fn works_with_single_thread() {
        let n = 12;
        let program = program(n);
        let mut mem = init_memory(n, 8);
        let a: Vec<f64> = (0..n * n).map(|i| mem.read_f64((i * 8) as u64)).collect();
        ReferenceRunner::new(&program, 1).run(&mut mem).unwrap();
        let expect = host_lu(&a, n);
        for (i, &e) in expect.iter().enumerate() {
            assert!(close(mem.read_f64((i * 8) as u64), e, 1e-9));
        }
    }
}
