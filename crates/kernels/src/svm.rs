//! SVM (MineBench): support-vector-machine kernel computation.
//!
//! Computes the polynomial kernel `K(x_i, s_j) = (dot(x_i, s_j)/d + 1)^2`
//! between every input vector and a small set of support vectors, with a
//! data-dependent sparsification branch (small responses are clamped to
//! zero), mirroring the kernel-matrix block computation at the heart of
//! MineBench's SVM-RFE.
//!
//! Layout (f64 words):
//!
//! ```text
//! X   [0,        n*d)       input vectors, row-major
//! SV  [n*d,      n*d+m*d)   support vectors
//! OUT [n*d+m*d,  ...+n*m)   kernel values, row-major
//! ```

use crate::spec::{close, BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, VecMemory};

/// Responses below this threshold are clamped to zero.
pub const THRESHOLD: f64 = 1.10;

/// (vectors, dims, support vectors) per scale.
pub fn size(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Test => (128, 8, 8),
        Scale::Bench => (4096, 16, 16),
        Scale::Paper => (100_000, 20, 16), // Table 2: 100,000 x 20-D
    }
}

/// Builds the SVM benchmark.
pub fn build(scale: Scale, seed: u64) -> KernelSpec {
    let (n, d, m) = size(scale);
    let program = program(n, d, m);
    let memory = init_memory(n, d, m, seed);
    let x: Vec<f64> = (0..n * d)
        .map(|i| memory.read_f64((i * 8) as u64))
        .collect();
    let sv: Vec<f64> = (0..m * d)
        .map(|i| memory.read_f64(((n * d + i) * 8) as u64))
        .collect();
    let expect = host_svm(&x, &sv, n, d, m);
    let out_base = n * d + m * d;
    KernelSpec::new("SVM", program, memory, move |mem| {
        for (i, &e) in expect.iter().enumerate() {
            let got = mem.read_f64(((out_base + i) * 8) as u64);
            if !close(got, e, 1e-9) {
                return Err(format!("SVM K[{i}] = {got}, expected {e}"));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("X input vectors", 0, (n * d) as u64),
        ("SV support vectors", (n * d) as u64, (m * d) as u64),
        ("OUT kernel values", (n * d + m * d) as u64, (n * m) as u64),
    ]))
}

fn init_memory(n: usize, d: usize, m: usize, seed: u64) -> VecMemory {
    let mut mem = VecMemory::new(((n * d + m * d + n * m) * 8) as u64);
    let mut rng = Rng64::new(seed);
    for i in 0..n * d {
        mem.write_f64((i * 8) as u64, rng.range_f64(-1.0, 1.0));
    }
    for i in 0..m * d {
        mem.write_f64(((n * d + i) * 8) as u64, rng.range_f64(-1.0, 1.0));
    }
    mem
}

/// Host reference kernel computation.
pub fn host_svm(x: &[f64], sv: &[f64], n: usize, d: usize, m: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * m];
    for i in 0..n {
        for j in 0..m {
            let mut dot = 0.0;
            for dim in 0..d {
                dot += x[i * d + dim] * sv[j * d + dim];
            }
            let v = dot / d as f64 + 1.0;
            let v = v * v;
            out[i * m + j] = if v < THRESHOLD { 0.0 } else { v };
        }
    }
    out
}

/// Emits the SVM kernel.
pub fn program(n: usize, d: usize, m: usize) -> Program {
    let (ni, di, mi) = (n as i64, d as i64, m as i64);
    let sv_base = ni * di * 8;
    let out_base = (ni * di + mi * di) * 8;

    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let task = b.reg();
    let i = b.reg();
    let j = b.reg();
    let dim = b.reg();
    let dot = b.reg();
    let xv = b.reg();
    let sv = b.reg();
    let a = b.reg();
    let t = b.reg();

    // Support-vector-major sweep: for each sv j, the whole X matrix is
    // re-streamed (as MineBench's column-wise kernel computation does),
    // so X never stays resident and warp gathers span one line per lane.
    b.for_range(task, tid, Operand::Imm(ni * mi), ntid, |b| {
        {
            b.div(j, Operand::Reg(task), Operand::Imm(ni));
            b.rem(i, Operand::Reg(task), Operand::Imm(ni));
            b.lif(dot, 0.0);
            b.for_range(
                dim,
                Operand::Imm(0),
                Operand::Imm(di),
                Operand::Imm(1),
                |b| {
                    b.mul(t, Operand::Reg(i), Operand::Imm(di));
                    b.add(t, Operand::Reg(t), Operand::Reg(dim));
                    b.addr(a, Operand::Imm(0), Operand::Reg(t), 8);
                    b.load(xv, a, 0);
                    b.mul(t, Operand::Reg(j), Operand::Imm(di));
                    b.add(t, Operand::Reg(t), Operand::Reg(dim));
                    b.addr(a, Operand::Imm(sv_base), Operand::Reg(t), 8);
                    b.load(sv, a, 0);
                    b.fmul(xv, Operand::Reg(xv), Operand::Reg(sv));
                    b.fadd(dot, Operand::Reg(dot), Operand::Reg(xv));
                },
            );
            b.fdiv(dot, Operand::Reg(dot), Operand::ImmF(di as f64));
            b.fadd(dot, Operand::Reg(dot), Operand::ImmF(1.0));
            b.fmul(dot, Operand::Reg(dot), Operand::Reg(dot));
            // Sparsification — data-dependent divergence.
            b.if_then(
                CondOp::FLt,
                Operand::Reg(dot),
                Operand::ImmF(THRESHOLD),
                |b| {
                    b.lif(dot, 0.0);
                },
            );
            b.mul(t, Operand::Reg(i), Operand::Imm(mi));
            b.add(t, Operand::Reg(t), Operand::Reg(j));
            b.addr(a, Operand::Imm(out_base), Operand::Reg(t), 8);
            b.store(Operand::Reg(dot), a, 0);
        }
    });
    b.halt();
    b.build().expect("SVM kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::ReferenceRunner;

    #[test]
    fn kernel_matches_host_svm() {
        let spec = build(Scale::Test, 55);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 24)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }

    #[test]
    fn orthogonal_vectors_give_baseline_response() {
        // dot = 0 -> v = 1.0 < THRESHOLD -> clamped to 0.
        let x = vec![1.0, 0.0];
        let sv = vec![0.0, 1.0];
        let out = host_svm(&x, &sv, 1, 2, 1);
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn aligned_vectors_pass_threshold() {
        let x = vec![1.0, 1.0];
        let sv = vec![1.0, 1.0];
        let out = host_svm(&x, &sv, 1, 2, 1);
        // dot/d + 1 = 2 -> 4.0
        assert!((out[0] - 4.0).abs() < 1e-12);
    }
}
