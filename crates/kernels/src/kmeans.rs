//! KMeans (MineBench): unsupervised classification by iterative
//! assignment/update, map-reduce style.
//!
//! Each iteration has two barrier-separated phases: *assign* (every point
//! computes its squared distance to each centroid and keeps the argmin —
//! the data-dependent min-update branch diverges) and *update* (one task
//! per (cluster, dimension) scans all points, accumulating members — the
//! `assignment == cluster` test diverges heavily).
//!
//! Layout (f64 unless noted):
//!
//! ```text
//! PTS    [0,        n*d)      point coordinates, row-major
//! CENT   [n*d,      n*d+k*d)  centroids (updated in place)
//! ASSIGN [n*d+k*d,  ...+n)    per-point cluster index (i64)
//! ```

use crate::spec::{close, BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, VecMemory};

/// (points, dims, clusters, iterations) per scale.
pub fn size(scale: Scale) -> (usize, usize, usize, usize) {
    match scale {
        Scale::Test => (192, 4, 4, 2),
        Scale::Bench => (8192, 8, 8, 2),
        Scale::Paper => (10_000, 20, 16, 5), // Table 2: 10,000 points, 20-D
    }
}

/// Builds the KMeans benchmark.
pub fn build(scale: Scale, seed: u64) -> KernelSpec {
    let (n, d, k, iters) = size(scale);
    let program = program(n, d, k, iters);
    let memory = init_memory(n, d, k, seed);
    let pts: Vec<f64> = (0..n * d)
        .map(|i| memory.read_f64((i * 8) as u64))
        .collect();
    let cent0: Vec<f64> = (0..k * d)
        .map(|i| memory.read_f64(((n * d + i) * 8) as u64))
        .collect();
    let (expect_cent, expect_assign) = host_kmeans(&pts, &cent0, n, d, k, iters);
    KernelSpec::new("KMeans", program, memory, move |mem| {
        for (i, &e) in expect_cent.iter().enumerate() {
            let got = mem.read_f64(((n * d + i) * 8) as u64);
            if !close(got, e, 1e-9) {
                return Err(format!("KMeans centroid[{i}] = {got}, expected {e}"));
            }
        }
        for (p, &ea) in expect_assign.iter().enumerate() {
            let got = mem.read_i64(((n * d + k * d + p) * 8) as u64);
            if got != ea {
                return Err(format!("KMeans assign[{p}] = {got}, expected {ea}"));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("PTS point coords", 0, (n * d) as u64),
        ("CENT centroids", (n * d) as u64, (k * d) as u64),
        ("ASSIGN cluster index", (n * d + k * d) as u64, n as u64),
    ]))
}

fn init_memory(n: usize, d: usize, k: usize, seed: u64) -> VecMemory {
    let mut m = VecMemory::new(((n * d + k * d + n) * 8) as u64);
    let mut rng = Rng64::new(seed);
    // Clustered blobs so iterations actually move the centroids.
    for p in 0..n {
        let blob = p % k;
        for dim in 0..d {
            let center = (blob * 7 + dim) as f64;
            m.write_f64(
                ((p * d + dim) * 8) as u64,
                center + rng.range_f64(-1.5, 1.5),
            );
        }
    }
    for c in 0..k {
        for dim in 0..d {
            // Seed centroids from the first points of each blob, perturbed.
            let v = m.read_f64(((c * d + dim) * 8) as u64);
            m.write_f64(
                ((n * d + c * d + dim) * 8) as u64,
                v + rng.range_f64(-0.5, 0.5),
            );
        }
    }
    m
}

/// Host reference with identical accumulation order.
pub fn host_kmeans(
    pts: &[f64],
    cent0: &[f64],
    n: usize,
    d: usize,
    k: usize,
    iters: usize,
) -> (Vec<f64>, Vec<i64>) {
    let mut cent = cent0.to_vec();
    let mut assign = vec![0i64; n];
    for _ in 0..iters {
        for p in 0..n {
            let mut best = f64::INFINITY;
            let mut best_c = 0i64;
            for c in 0..k {
                let mut dist = 0.0;
                for dim in 0..d {
                    let diff = pts[p * d + dim] - cent[c * d + dim];
                    dist += diff * diff;
                }
                if dist < best {
                    best = dist;
                    best_c = c as i64;
                }
            }
            assign[p] = best_c;
        }
        let prev = cent.clone();
        for c in 0..k {
            for dim in 0..d {
                let mut sum = 0.0;
                let mut count = 0i64;
                for p in 0..n {
                    if assign[p] == c as i64 {
                        sum += pts[p * d + dim];
                        count += 1;
                    }
                }
                cent[c * d + dim] = if count > 0 {
                    sum / count as f64
                } else {
                    prev[c * d + dim]
                };
            }
        }
    }
    (cent, assign)
}

/// Emits the KMeans kernel.
pub fn program(n: usize, d: usize, k: usize, iters: usize) -> Program {
    let (ni, di, ki) = (n as i64, d as i64, k as i64);
    let cent_base = ni * di * 8;
    let assign_base = (ni * di + ki * di) * 8;

    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let it = b.reg();
    let p = b.reg();
    let c = b.reg();
    let dim = b.reg();
    let dist = b.reg();
    let best = b.reg();
    let best_c = b.reg();
    let diff = b.reg();
    let x = b.reg();
    let y = b.reg();
    let a = b.reg();
    let t = b.reg();
    let sum = b.reg();
    let count = b.reg();
    let asn = b.reg();

    b.for_range(
        it,
        Operand::Imm(0),
        Operand::Imm(iters as i64),
        Operand::Imm(1),
        |b| {
            // Phase 1: assignment.
            b.for_range(p, tid, Operand::Imm(ni), ntid, |b| {
                b.lif(best, f64::INFINITY);
                b.li(best_c, 0);
                b.for_range(c, Operand::Imm(0), Operand::Imm(ki), Operand::Imm(1), |b| {
                    b.lif(dist, 0.0);
                    b.for_range(
                        dim,
                        Operand::Imm(0),
                        Operand::Imm(di),
                        Operand::Imm(1),
                        |b| {
                            b.mul(t, Operand::Reg(p), Operand::Imm(di));
                            b.add(t, Operand::Reg(t), Operand::Reg(dim));
                            b.addr(a, Operand::Imm(0), Operand::Reg(t), 8);
                            b.load(x, a, 0);
                            b.mul(t, Operand::Reg(c), Operand::Imm(di));
                            b.add(t, Operand::Reg(t), Operand::Reg(dim));
                            b.addr(a, Operand::Imm(cent_base), Operand::Reg(t), 8);
                            b.load(y, a, 0);
                            b.fsub(diff, Operand::Reg(x), Operand::Reg(y));
                            b.fmul(diff, Operand::Reg(diff), Operand::Reg(diff));
                            b.fadd(dist, Operand::Reg(dist), Operand::Reg(diff));
                        },
                    );
                    // argmin update — data-dependent divergence
                    b.if_then(CondOp::FLt, Operand::Reg(dist), Operand::Reg(best), |b| {
                        b.mov(best, Operand::Reg(dist));
                        b.mov(best_c, Operand::Reg(c));
                    });
                });
                b.addr(a, Operand::Imm(assign_base), Operand::Reg(p), 8);
                b.store(Operand::Reg(best_c), a, 0);
            });
            b.barrier();
            // Phase 2: centroid update, one task per (cluster, dim).
            b.for_range(t, tid, Operand::Imm(ki * di), ntid, |b| {
                b.div(c, Operand::Reg(t), Operand::Imm(di));
                b.rem(dim, Operand::Reg(t), Operand::Imm(di));
                b.lif(sum, 0.0);
                b.li(count, 0);
                b.for_range(p, Operand::Imm(0), Operand::Imm(ni), Operand::Imm(1), |b| {
                    b.addr(a, Operand::Imm(assign_base), Operand::Reg(p), 8);
                    b.load(asn, a, 0);
                    // membership test — heavily divergent
                    b.if_then(CondOp::Eq, Operand::Reg(asn), Operand::Reg(c), |b| {
                        b.mul(x, Operand::Reg(p), Operand::Imm(di));
                        b.add(x, Operand::Reg(x), Operand::Reg(dim));
                        b.addr(a, Operand::Imm(0), Operand::Reg(x), 8);
                        b.load(x, a, 0);
                        b.fadd(sum, Operand::Reg(sum), Operand::Reg(x));
                        b.add(count, Operand::Reg(count), Operand::Imm(1));
                    });
                });
                b.if_then(CondOp::Gt, Operand::Reg(count), Operand::Imm(0), |b| {
                    b.i2f(x, Operand::Reg(count));
                    b.fdiv(sum, Operand::Reg(sum), Operand::Reg(x));
                    b.mul(x, Operand::Reg(c), Operand::Imm(di));
                    b.add(x, Operand::Reg(x), Operand::Reg(dim));
                    b.addr(a, Operand::Imm(cent_base), Operand::Reg(x), 8);
                    b.store(Operand::Reg(sum), a, 0);
                });
            });
            b.barrier();
        },
    );
    b.halt();
    b.build().expect("KMeans kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::ReferenceRunner;

    #[test]
    fn kernel_matches_host_kmeans() {
        let spec = build(Scale::Test, 77);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 24)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }

    #[test]
    fn host_kmeans_separates_obvious_blobs() {
        // Two well-separated 1-D blobs, centroids seeded one in each.
        let pts = vec![0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let cent0 = vec![0.05, 10.05];
        let (cent, assign) = host_kmeans(&pts, &cent0, 6, 1, 2, 3);
        assert_eq!(assign, vec![0, 0, 0, 1, 1, 1]);
        assert!((cent[0] - 0.1).abs() < 1e-9);
        assert!((cent[1] - 10.1).abs() < 1e-9);
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        // A centroid far from every point attracts nothing and stays put.
        let pts = vec![0.0, 0.1];
        let cent0 = vec![0.05, 100.0];
        let (cent, assign) = host_kmeans(&pts, &cent0, 2, 1, 2, 2);
        assert_eq!(assign, vec![0, 0]);
        assert_eq!(cent[1], 100.0);
    }
}
