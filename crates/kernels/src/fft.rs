//! FFT (Splash2): radix-2 iterative Cooley–Tukey over complex doubles.
//!
//! Phase 1 bit-reverses the input into a working buffer; then `log2(n)`
//! barrier-separated butterfly stages run in place. Twiddle factors are a
//! precomputed table (as in the Splash2 code), gathered with a
//! stage-dependent stride — the butterfly's strided gathers are what makes
//! FFT memory-divergent on a SIMD machine (Table 1: 92% of its miss-bearing
//! accesses are divergent).
//!
//! Memory layout (all f64 words):
//!
//! ```text
//! RE  [0,      n)   input real
//! IM  [n,     2n)   input imaginary
//! BRE [2n,    3n)   working/output real
//! BIM [3n,    4n)   working/output imaginary
//! WRE [4n, 4n+n/2)  twiddle real
//! WIM [5n, 5n+n/2)  twiddle imaginary
//! ```

use crate::spec::{close, BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{KernelBuilder, Operand, Program, VecMemory};
use std::f64::consts::PI;

/// Problem size per scale (must be a power of two).
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 256,
        Scale::Bench => 8192,
        Scale::Paper => 65536, // Table 2: 2^16 points
    }
}

/// Builds the FFT benchmark.
///
/// # Panics
///
/// Panics if the scale's size is not a power of two (it always is).
pub fn build(scale: Scale, seed: u64) -> KernelSpec {
    let n = size(scale);
    assert!(n.is_power_of_two());
    let program = program(n);
    let memory = init_memory(n, seed);

    let mut expect_re: Vec<f64> = (0..n).map(|i| memory.read_f64((i * 8) as u64)).collect();
    let mut expect_im: Vec<f64> = (0..n)
        .map(|i| memory.read_f64(((n + i) * 8) as u64))
        .collect();
    host_fft(&mut expect_re, &mut expect_im);

    KernelSpec::new("FFT", program, memory, move |mem| {
        for i in 0..n {
            let re = mem.read_f64(((2 * n + i) * 8) as u64);
            let im = mem.read_f64(((3 * n + i) * 8) as u64);
            if !close(re, expect_re[i], 1e-9) || !close(im, expect_im[i], 1e-9) {
                return Err(format!(
                    "FFT[{i}] = ({re}, {im}), expected ({}, {})",
                    expect_re[i], expect_im[i]
                ));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("RE input real", 0, n as u64),
        ("IM input imag", n as u64, n as u64),
        ("BRE work/output real", 2 * n as u64, n as u64),
        ("BIM work/output imag", 3 * n as u64, n as u64),
        ("WRE twiddle real", 4 * n as u64, n as u64 / 2),
        ("WIM twiddle imag", 5 * n as u64, n as u64 / 2),
    ]))
}

fn init_memory(n: usize, seed: u64) -> VecMemory {
    let mut m = VecMemory::new((6 * n * 8) as u64);
    let mut rng = Rng64::new(seed);
    for i in 0..n {
        m.write_f64((i * 8) as u64, rng.range_f64(-1.0, 1.0));
        m.write_f64(((n + i) * 8) as u64, rng.range_f64(-1.0, 1.0));
    }
    for k in 0..n / 2 {
        let ang = -2.0 * PI * k as f64 / n as f64;
        m.write_f64(((4 * n + k) * 8) as u64, ang.cos());
        m.write_f64(((5 * n + k) * 8) as u64, ang.sin());
    }
    m
}

/// The same algorithm on the host, for verification.
pub fn host_fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    let logn = n.trailing_zeros();
    let mut bre = vec![0.0; n];
    let mut bim = vec![0.0; n];
    for i in 0..n {
        let mut j = 0usize;
        let mut x = i;
        for _ in 0..logn {
            j = (j << 1) | (x & 1);
            x >>= 1;
        }
        bre[j] = re[i];
        bim[j] = im[i];
    }
    for s in 1..=logn {
        let m = 1usize << s;
        let half = m >> 1;
        let step = n >> s;
        for q in 0..n / 2 {
            let blk = q >> (s - 1);
            let j = q & (half - 1);
            let i1 = blk * m + j;
            let i2 = i1 + half;
            let widx = j * step;
            let ang = -2.0 * PI * widx as f64 / n as f64;
            let (wr, wi) = (ang.cos(), ang.sin());
            let tr = wr * bre[i2] - wi * bim[i2];
            let ti = wr * bim[i2] + wi * bre[i2];
            let (r1, i1v) = (bre[i1], bim[i1]);
            bre[i2] = r1 - tr;
            bim[i2] = i1v - ti;
            bre[i1] = r1 + tr;
            bim[i1] = i1v + ti;
        }
    }
    re.copy_from_slice(&bre);
    im.copy_from_slice(&bim);
}

/// Emits the FFT kernel program for `n` points.
pub fn program(n: usize) -> Program {
    let ni = n as i64;
    let logn = n.trailing_zeros() as i64;
    let re = 0i64;
    let im = ni * 8;
    let bre = 2 * ni * 8;
    let bim = 3 * ni * 8;
    let wre = 4 * ni * 8;
    let wim = 5 * ni * 8;

    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let i = b.reg();
    let j = b.reg();
    let x = b.reg();
    let bc = b.reg();
    let t = b.reg();
    let a1 = b.reg();
    let a2 = b.reg();
    let v1 = b.reg();
    let v2 = b.reg();

    // Phase 1: bit-reverse scatter RE/IM -> BRE/BIM.
    b.for_range(i, tid, Operand::Imm(ni), ntid, |b| {
        b.li(j, 0);
        b.mov(x, Operand::Reg(i));
        b.for_range(
            bc,
            Operand::Imm(0),
            Operand::Imm(logn),
            Operand::Imm(1),
            |b| {
                b.shl(j, Operand::Reg(j), Operand::Imm(1));
                b.and(t, Operand::Reg(x), Operand::Imm(1));
                b.or(j, Operand::Reg(j), Operand::Reg(t));
                b.shr(x, Operand::Reg(x), Operand::Imm(1));
            },
        );
        b.addr(a1, Operand::Imm(re), Operand::Reg(i), 8);
        b.load(v1, a1, 0);
        b.addr(a1, Operand::Imm(im), Operand::Reg(i), 8);
        b.load(v2, a1, 0);
        b.addr(a2, Operand::Imm(bre), Operand::Reg(j), 8);
        b.store(Operand::Reg(v1), a2, 0);
        b.addr(a2, Operand::Imm(bim), Operand::Reg(j), 8);
        b.store(Operand::Reg(v2), a2, 0);
    });
    b.barrier();

    // Butterfly stages.
    let s = b.reg();
    let m = b.reg();
    let half = b.reg();
    let sm1 = b.reg();
    let hm1 = b.reg();
    let step = b.reg();
    let q = b.reg();
    let blk = b.reg();
    let i1 = b.reg();
    let i2 = b.reg();
    let widx = b.reg();
    let wr = b.reg();
    let wi = b.reg();
    let br2 = b.reg();
    let bi2 = b.reg();
    let tr = b.reg();
    let ti = b.reg();
    let br1 = b.reg();
    let bi1 = b.reg();
    let tmp = b.reg();
    let ad1r = b.reg();
    let ad1i = b.reg();
    let ad2r = b.reg();
    let ad2i = b.reg();

    b.for_range(
        s,
        Operand::Imm(1),
        Operand::Imm(logn + 1),
        Operand::Imm(1),
        |b| {
            b.shl(m, Operand::Imm(1), Operand::Reg(s));
            b.shr(half, Operand::Reg(m), Operand::Imm(1));
            b.sub(sm1, Operand::Reg(s), Operand::Imm(1));
            b.sub(hm1, Operand::Reg(half), Operand::Imm(1));
            b.shr(step, Operand::Imm(ni), Operand::Reg(s));
            b.for_range(q, tid, Operand::Imm(ni / 2), ntid, |b| {
                b.shr(blk, Operand::Reg(q), Operand::Reg(sm1));
                b.and(j, Operand::Reg(q), Operand::Reg(hm1));
                b.mul(i1, Operand::Reg(blk), Operand::Reg(m));
                b.add(i1, Operand::Reg(i1), Operand::Reg(j));
                b.add(i2, Operand::Reg(i1), Operand::Reg(half));
                b.mul(widx, Operand::Reg(j), Operand::Reg(step));
                // twiddle
                b.addr(a1, Operand::Imm(wre), Operand::Reg(widx), 8);
                b.load(wr, a1, 0);
                b.addr(a1, Operand::Imm(wim), Operand::Reg(widx), 8);
                b.load(wi, a1, 0);
                // operand addresses
                b.addr(ad1r, Operand::Imm(bre), Operand::Reg(i1), 8);
                b.addr(ad1i, Operand::Imm(bim), Operand::Reg(i1), 8);
                b.addr(ad2r, Operand::Imm(bre), Operand::Reg(i2), 8);
                b.addr(ad2i, Operand::Imm(bim), Operand::Reg(i2), 8);
                b.load(br2, ad2r, 0);
                b.load(bi2, ad2i, 0);
                // t = w * b[i2]
                b.fmul(tr, Operand::Reg(wr), Operand::Reg(br2));
                b.fmul(tmp, Operand::Reg(wi), Operand::Reg(bi2));
                b.fsub(tr, Operand::Reg(tr), Operand::Reg(tmp));
                b.fmul(ti, Operand::Reg(wr), Operand::Reg(bi2));
                b.fmul(tmp, Operand::Reg(wi), Operand::Reg(br2));
                b.fadd(ti, Operand::Reg(ti), Operand::Reg(tmp));
                // butterfly
                b.load(br1, ad1r, 0);
                b.load(bi1, ad1i, 0);
                b.fsub(tmp, Operand::Reg(br1), Operand::Reg(tr));
                b.store(Operand::Reg(tmp), ad2r, 0);
                b.fsub(tmp, Operand::Reg(bi1), Operand::Reg(ti));
                b.store(Operand::Reg(tmp), ad2i, 0);
                b.fadd(tmp, Operand::Reg(br1), Operand::Reg(tr));
                b.store(Operand::Reg(tmp), ad1r, 0);
                b.fadd(tmp, Operand::Reg(bi1), Operand::Reg(ti));
                b.store(Operand::Reg(tmp), ad1i, 0);
            });
            b.barrier();
        },
    );
    b.halt();
    b.build().expect("FFT kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::ReferenceRunner;

    #[test]
    fn kernel_matches_host_fft() {
        let spec = build(Scale::Test, 42);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 32)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }

    #[test]
    fn verify_rejects_corrupted_output() {
        let spec = build(Scale::Test, 42);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 8)
            .run(&mut mem)
            .unwrap();
        let n = size(Scale::Test);
        mem.write_f64((2 * n * 8) as u64, 1e9);
        assert!(spec.verify(&mem).is_err());
    }

    #[test]
    fn host_fft_of_impulse_is_flat() {
        // FFT of a unit impulse is all-ones.
        let n = 64;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        host_fft(&mut re, &mut im);
        for i in 0..n {
            assert!((re[i] - 1.0).abs() < 1e-12, "re[{i}] = {}", re[i]);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn host_fft_parseval() {
        // Energy is preserved up to the scale factor n.
        let n = 128;
        let mut rng = Rng64::new(1);
        let orig: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; n];
        host_fft(&mut re, &mut im);
        let time: f64 = orig.iter().map(|x| x * x).sum();
        let freq: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        assert!(
            (freq - time * n as f64).abs() < 1e-6 * freq.abs(),
            "parseval: {freq} vs {}",
            time * n as f64
        );
    }

    #[test]
    fn works_with_odd_thread_counts() {
        let spec = build(Scale::Test, 3);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 13)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }
}
