//! HotSpot (Rodinia): thermal simulation by an iterative PDE solver.
//!
//! A 5-point stencil over the chip temperature grid plus a per-cell power
//! term, iterated with a global barrier per step and ping-pong buffers.
//! Boundary cells clamp their missing neighbors (short divergent
//! branches); each interior update gathers three grid rows.
//!
//! Layout (f64 words): `T0` at 0, `T1` at `n*n`, power `P` at `2*n*n`.
//! After `iters` steps the result lives in `T0` if `iters` is even, else
//! `T1`.

use crate::spec::{close, BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, VecMemory};

/// Grid edge and iteration count per scale.
pub fn size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (16, 4),
        Scale::Bench => (128, 8),
        Scale::Paper => (300, 100), // Table 2
    }
}

/// Diffusion coefficient of the explicit update.
const ALPHA: f64 = 0.1;
/// Power coupling coefficient.
const BETA: f64 = 0.05;

/// Builds the HotSpot benchmark.
pub fn build(scale: Scale, seed: u64) -> KernelSpec {
    let (n, iters) = size(scale);
    let program = program(n, iters);
    let memory = init_memory(n, seed);
    let t0: Vec<f64> = (0..n * n)
        .map(|i| memory.read_f64((i * 8) as u64))
        .collect();
    let p: Vec<f64> = (0..n * n)
        .map(|i| memory.read_f64(((2 * n * n + i) * 8) as u64))
        .collect();
    let expect = host_hotspot(&t0, &p, n, iters);
    let out_words = if iters % 2 == 0 { 0 } else { n * n };
    KernelSpec::new("HotSpot", program, memory, move |mem| {
        for (i, &e) in expect.iter().enumerate() {
            let got = mem.read_f64(((out_words + i) * 8) as u64);
            if !close(got, e, 1e-9) {
                return Err(format!("HotSpot T[{i}] = {got}, expected {e}"));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("T0 temperature", 0, (n * n) as u64),
        ("T1 temperature", (n * n) as u64, (n * n) as u64),
        ("P power", (2 * n * n) as u64, (n * n) as u64),
    ]))
}

fn init_memory(n: usize, seed: u64) -> VecMemory {
    let mut m = VecMemory::new((3 * n * n * 8) as u64);
    let mut rng = Rng64::new(seed);
    for i in 0..n * n {
        m.write_f64((i * 8) as u64, rng.range_f64(40.0, 90.0));
        m.write_f64(((2 * n * n + i) * 8) as u64, rng.range_f64(0.0, 2.0));
    }
    m
}

/// Host reference solver (identical operation order per cell).
pub fn host_hotspot(t0: &[f64], p: &[f64], n: usize, iters: usize) -> Vec<f64> {
    let mut src = t0.to_vec();
    let mut dst = vec![0.0; n * n];
    for _ in 0..iters {
        for r in 0..n {
            for c in 0..n {
                let i = r * n + c;
                let t = src[i];
                let up = if r > 0 { src[i - n] } else { t };
                let down = if r + 1 < n { src[i + n] } else { t };
                let left = if c > 0 { src[i - 1] } else { t };
                let right = if c + 1 < n { src[i + 1] } else { t };
                let lap = up + down + left + right - 4.0 * t;
                dst[i] = t + ALPHA * lap + BETA * p[i];
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

/// Emits the HotSpot kernel for an `n x n` grid and `iters` steps.
pub fn program(n: usize, iters: usize) -> Program {
    let ni = n as i64;
    let cells = ni * ni;
    let t1 = cells * 8;
    let pw = 2 * cells * 8;

    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let it = b.reg();
    let src = b.reg();
    let dst = b.reg();
    let tmp = b.reg();
    let i = b.reg();
    let r = b.reg();
    let c = b.reg();
    let a = b.reg();
    let t = b.reg();
    let nb = b.reg();
    let lap = b.reg();
    let out = b.reg();
    let na = b.reg();

    b.li(src, 0);
    b.li(dst, t1);
    b.for_range(
        it,
        Operand::Imm(0),
        Operand::Imm(iters as i64),
        Operand::Imm(1),
        |b| {
            b.for_range(i, tid, Operand::Imm(cells), ntid, |b| {
                b.div(r, Operand::Reg(i), Operand::Imm(ni));
                b.rem(c, Operand::Reg(i), Operand::Imm(ni));
                b.addr(a, Operand::Reg(src), Operand::Reg(i), 8);
                b.load(t, a, 0);
                b.lif(lap, 0.0);
                // up
                b.if_then_else(
                    CondOp::Gt,
                    Operand::Reg(r),
                    Operand::Imm(0),
                    |b| {
                        // r = i/n > 0 narrows i >= n relationally, so the
                        // address recomputed from i proves in-bounds with
                        // no clamp.
                        b.sub(na, Operand::Reg(i), Operand::Imm(ni));
                        b.mul(na, Operand::Reg(na), Operand::Imm(8));
                        b.add(na, Operand::Reg(na), Operand::Reg(src));
                        b.load(nb, na, 0);
                    },
                    |b| {
                        b.mov(nb, Operand::Reg(t));
                    },
                );
                b.fadd(lap, Operand::Reg(lap), Operand::Reg(nb));
                // down
                b.if_then_else(
                    CondOp::Lt,
                    Operand::Reg(r),
                    Operand::Imm(ni - 1),
                    |b| {
                        b.load(nb, a, ni * 8);
                    },
                    |b| {
                        b.mov(nb, Operand::Reg(t));
                    },
                );
                b.fadd(lap, Operand::Reg(lap), Operand::Reg(nb));
                // left
                b.if_then_else(
                    CondOp::Gt,
                    Operand::Reg(c),
                    Operand::Imm(0),
                    |b| {
                        // c = i%n > 0 plus i >= 0 narrows i >= 1.
                        b.sub(na, Operand::Reg(i), Operand::Imm(1));
                        b.mul(na, Operand::Reg(na), Operand::Imm(8));
                        b.add(na, Operand::Reg(na), Operand::Reg(src));
                        b.load(nb, na, 0);
                    },
                    |b| {
                        b.mov(nb, Operand::Reg(t));
                    },
                );
                b.fadd(lap, Operand::Reg(lap), Operand::Reg(nb));
                // right
                b.if_then_else(
                    CondOp::Lt,
                    Operand::Reg(c),
                    Operand::Imm(ni - 1),
                    |b| {
                        b.load(nb, a, 8);
                    },
                    |b| {
                        b.mov(nb, Operand::Reg(t));
                    },
                );
                b.fadd(lap, Operand::Reg(lap), Operand::Reg(nb));
                // lap -= 4t ; out = t + ALPHA*lap + BETA*p[i]
                b.fmul(nb, Operand::Reg(t), Operand::ImmF(4.0));
                b.fsub(lap, Operand::Reg(lap), Operand::Reg(nb));
                b.fmul(lap, Operand::Reg(lap), Operand::ImmF(ALPHA));
                b.fadd(out, Operand::Reg(t), Operand::Reg(lap));
                b.addr(a, Operand::Imm(pw), Operand::Reg(i), 8);
                b.load(nb, a, 0);
                b.fmul(nb, Operand::Reg(nb), Operand::ImmF(BETA));
                b.fadd(out, Operand::Reg(out), Operand::Reg(nb));
                b.addr(a, Operand::Reg(dst), Operand::Reg(i), 8);
                b.store(Operand::Reg(out), a, 0);
            });
            b.barrier();
            // swap src/dst
            b.mov(tmp, Operand::Reg(src));
            b.mov(src, Operand::Reg(dst));
            b.mov(dst, Operand::Reg(tmp));
        },
    );
    b.halt();
    b.build().expect("HotSpot kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::ReferenceRunner;

    #[test]
    fn kernel_matches_host_hotspot() {
        let spec = build(Scale::Test, 5);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 24)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }

    #[test]
    fn zero_power_uniform_grid_is_steady() {
        let n = 8;
        let t0 = vec![50.0; n * n];
        let p = vec![0.0; n * n];
        let out = host_hotspot(&t0, &p, n, 10);
        assert!(out.iter().all(|&v| (v - 50.0).abs() < 1e-12));
    }

    #[test]
    fn power_heats_the_grid() {
        let n = 8;
        let t0 = vec![50.0; n * n];
        let p = vec![1.0; n * n];
        let out = host_hotspot(&t0, &p, n, 4);
        assert!(out.iter().all(|&v| v > 50.0));
    }

    #[test]
    fn odd_iteration_count_lands_in_t1() {
        let n = 16;
        let iters = 3; // odd
        let program = program(n, iters);
        let mut mem = init_memory(n, 9);
        let t0: Vec<f64> = (0..n * n).map(|i| mem.read_f64((i * 8) as u64)).collect();
        let p: Vec<f64> = (0..n * n)
            .map(|i| mem.read_f64(((2 * n * n + i) * 8) as u64))
            .collect();
        ReferenceRunner::new(&program, 16).run(&mut mem).unwrap();
        let expect = host_hotspot(&t0, &p, n, iters);
        for (i, &e) in expect.iter().enumerate() {
            let got = mem.read_f64(((n * n + i) * 8) as u64);
            assert!(close(got, e, 1e-9), "cell {i}: {got} vs {e}");
        }
    }
}
