//! Merge: bottom-up (iterative) merge sort of 64-bit integers.
//!
//! Each pass merges runs of width `w` into runs of width `2w`, ping-ponging
//! between two buffers with a barrier per pass. The inner merge loop's
//! key comparison is data-dependent, making Merge the most
//! branch-divergent benchmark in the suite (Table 1: 13.1% divergent
//! branches, one branch every ~9 instructions).
//!
//! Layout (i64 words): buffer `A` at 0, buffer `B` at `n`. The sorted
//! result lands in `A` when the number of passes is even, `B` otherwise.

use crate::spec::{BufferLayout, KernelSpec, Scale};
use dws_engine::rng::Rng64;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, VecMemory};

/// Element count per scale (deliberately not a power of two, to exercise
/// ragged final runs).
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 500,
        Scale::Bench => 20_000,
        Scale::Paper => 300_000, // Table 2
    }
}

/// Number of merge passes for `n` elements.
pub fn passes(n: usize) -> usize {
    let mut p = 0;
    let mut w = 1;
    while w < n {
        p += 1;
        w *= 2;
    }
    p
}

/// Builds the Merge benchmark.
pub fn build(scale: Scale, seed: u64) -> KernelSpec {
    let n = size(scale);
    let program = program(n);
    let memory = init_memory(n, seed);
    let mut expect: Vec<i64> = (0..n).map(|i| memory.read_i64((i * 8) as u64)).collect();
    expect.sort_unstable();
    let out_word = if passes(n).is_multiple_of(2) { 0 } else { n };
    KernelSpec::new("Merge", program, memory, move |mem| {
        for (i, &e) in expect.iter().enumerate() {
            let got = mem.read_i64(((out_word + i) * 8) as u64);
            if got != e {
                return Err(format!("Merge out[{i}] = {got}, expected {e}"));
            }
        }
        Ok(())
    })
    .with_layout(BufferLayout::of(&[
        ("A ping buffer", 0, n as u64),
        ("B pong buffer", n as u64, n as u64),
    ]))
}

fn init_memory(n: usize, seed: u64) -> VecMemory {
    let mut m = VecMemory::new((2 * n * 8) as u64);
    let mut rng = Rng64::new(seed);
    for i in 0..n {
        m.write_i64((i * 8) as u64, rng.range_i64(-1_000_000, 1_000_000));
    }
    m
}

/// Emits the merge-sort kernel for `n` elements.
pub fn program(n: usize) -> Program {
    let ni = n as i64;
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let width = b.reg();
    let src = b.reg();
    let dst = b.reg();
    let tmp = b.reg();
    let nruns = b.reg();
    let p = b.reg();
    let left = b.reg();
    let mid = b.reg();
    let right = b.reg();
    let ia = b.reg();
    let ib = b.reg();
    let k = b.reg();
    let va = b.reg();
    let vb = b.reg();
    let aa = b.reg();
    let ab = b.reg();
    let ak = b.reg();
    let two_w = b.reg();

    b.li(width, 1);
    b.li(src, 0);
    b.li(dst, ni * 8);
    b.while_loop(CondOp::Lt, Operand::Reg(width), Operand::Imm(ni), |b| {
        b.mul(two_w, Operand::Reg(width), Operand::Imm(2));
        // nruns = ceil(n / (2*width))
        b.add(nruns, Operand::Imm(ni - 1), Operand::Reg(two_w));
        b.div(nruns, Operand::Reg(nruns), Operand::Reg(two_w));
        b.for_range(p, tid, Operand::Reg(nruns), ntid, |b| {
            b.mul(left, Operand::Reg(p), Operand::Reg(two_w));
            b.add(mid, Operand::Reg(left), Operand::Reg(width));
            b.imin(mid, Operand::Reg(mid), Operand::Imm(ni));
            b.add(right, Operand::Reg(left), Operand::Reg(two_w));
            b.imin(right, Operand::Reg(right), Operand::Imm(ni));
            b.mov(ia, Operand::Reg(left));
            b.mov(ib, Operand::Reg(mid));
            b.mov(k, Operand::Reg(left));
            // main merge loop: while ia < mid && ib < right
            let head = b.label();
            let done = b.label();
            b.bind(head);
            b.br(CondOp::Ge, Operand::Reg(ia), Operand::Reg(mid), done);
            b.br(CondOp::Ge, Operand::Reg(ib), Operand::Reg(right), done);
            b.addr(aa, Operand::Reg(src), Operand::Reg(ia), 8);
            b.load(va, aa, 0);
            b.addr(ab, Operand::Reg(src), Operand::Reg(ib), 8);
            b.load(vb, ab, 0);
            b.addr(ak, Operand::Reg(dst), Operand::Reg(k), 8);
            b.if_then_else(
                CondOp::Le,
                Operand::Reg(va),
                Operand::Reg(vb),
                |b| {
                    b.store(Operand::Reg(va), ak, 0);
                    b.add(ia, Operand::Reg(ia), Operand::Imm(1));
                },
                |b| {
                    b.store(Operand::Reg(vb), ak, 0);
                    b.add(ib, Operand::Reg(ib), Operand::Imm(1));
                },
            );
            b.add(k, Operand::Reg(k), Operand::Imm(1));
            b.jmp(head);
            b.bind(done);
            // drain the left run
            b.while_loop(CondOp::Lt, Operand::Reg(ia), Operand::Reg(mid), |b| {
                b.addr(aa, Operand::Reg(src), Operand::Reg(ia), 8);
                b.load(va, aa, 0);
                b.addr(ak, Operand::Reg(dst), Operand::Reg(k), 8);
                b.store(Operand::Reg(va), ak, 0);
                b.add(ia, Operand::Reg(ia), Operand::Imm(1));
                b.add(k, Operand::Reg(k), Operand::Imm(1));
            });
            // drain the right run
            b.while_loop(CondOp::Lt, Operand::Reg(ib), Operand::Reg(right), |b| {
                b.addr(ab, Operand::Reg(src), Operand::Reg(ib), 8);
                b.load(vb, ab, 0);
                b.addr(ak, Operand::Reg(dst), Operand::Reg(k), 8);
                b.store(Operand::Reg(vb), ak, 0);
                b.add(ib, Operand::Reg(ib), Operand::Imm(1));
                b.add(k, Operand::Reg(k), Operand::Imm(1));
            });
        });
        b.barrier();
        b.mul(width, Operand::Reg(width), Operand::Imm(2));
        b.mov(tmp, Operand::Reg(src));
        b.mov(src, Operand::Reg(dst));
        b.mov(dst, Operand::Reg(tmp));
    });
    b.halt();
    b.build().expect("Merge kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::ReferenceRunner;

    #[test]
    fn kernel_sorts() {
        let spec = build(Scale::Test, 33);
        let mut mem = spec.memory.clone();
        ReferenceRunner::new(&spec.program, 24)
            .run(&mut mem)
            .unwrap();
        spec.verify(&mem).unwrap();
    }

    #[test]
    fn passes_counts() {
        assert_eq!(passes(1), 0);
        assert_eq!(passes(2), 1);
        assert_eq!(passes(500), 9);
        assert_eq!(passes(512), 9);
        assert_eq!(passes(513), 10);
    }

    #[test]
    fn sorts_with_duplicates_and_single_thread() {
        let n = 64;
        let program = program(n);
        let mut mem = VecMemory::new((2 * n * 8) as u64);
        for i in 0..n {
            mem.write_i64((i * 8) as u64, ((i * 7919) % 10) as i64);
        }
        let mut expect: Vec<i64> = (0..n).map(|i| mem.read_i64((i * 8) as u64)).collect();
        expect.sort_unstable();
        ReferenceRunner::new(&program, 1).run(&mut mem).unwrap();
        let out = if passes(n).is_multiple_of(2) { 0 } else { n };
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(mem.read_i64(((out + i) * 8) as u64), e);
        }
    }

    #[test]
    fn sorts_already_sorted_input() {
        let n = 100;
        let program = program(n);
        let mut mem = VecMemory::new((2 * n * 8) as u64);
        for i in 0..n {
            mem.write_i64((i * 8) as u64, i as i64);
        }
        ReferenceRunner::new(&program, 7).run(&mut mem).unwrap();
        let out = if passes(n).is_multiple_of(2) { 0 } else { n };
        for i in 0..n {
            assert_eq!(mem.read_i64(((out + i) * 8) as u64), i as i64);
        }
    }
}
