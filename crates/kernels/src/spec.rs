//! Benchmark registry: programs, inputs, verifiers, and input scales.

use dws_isa::{Program, VecMemory};
use std::fmt;
use std::sync::Arc;

/// Input-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit tests (sub-second simulations).
    Test,
    /// Reduced inputs for the figure-regeneration harness.
    Bench,
    /// The paper's Table 2 input sizes (long runs).
    Paper,
}

/// A boxed final-memory checker against a host-computed reference.
type Verifier = Box<dyn Fn(&VecMemory) -> Result<(), String> + Send + Sync>;

/// A named region of the flat kernel memory, in 8-byte words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferDesc {
    /// Role of the region (e.g. `"input image"`, `"out"`).
    pub name: &'static str,
    /// First word of the region.
    pub word_offset: u64,
    /// Length in words.
    pub words: u64,
}

impl BufferDesc {
    /// One past the last byte of the region.
    pub fn end_bytes(&self) -> u64 {
        (self.word_offset + self.words) * 8
    }
}

/// Declared memory map of a kernel: which word ranges mean what.
///
/// Purely descriptive metadata — the kernels address memory directly — but
/// the sim-side linter cross-checks it against the allocated [`VecMemory`]
/// (fit, overlap) and reports `DWS0404 LayoutMismatch` when the declaration
/// and the allocation disagree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferLayout {
    /// Regions in declaration order (conventionally ascending offsets).
    pub buffers: Vec<BufferDesc>,
}

impl BufferLayout {
    /// Declares a layout from `(name, word_offset, words)` triples.
    pub fn of(buffers: &[(&'static str, u64, u64)]) -> Self {
        BufferLayout {
            buffers: buffers
                .iter()
                .map(|&(name, word_offset, words)| BufferDesc {
                    name,
                    word_offset,
                    words,
                })
                .collect(),
        }
    }

    /// Checks the declaration against an allocation of `mem_bytes` bytes.
    ///
    /// Returns one message per defect: a region overrunning the allocation,
    /// two regions overlapping, or an empty region.
    pub fn check(&self, mem_bytes: u64) -> Vec<String> {
        let mut problems = Vec::new();
        for b in &self.buffers {
            if b.words == 0 {
                problems.push(format!("buffer `{}` is empty", b.name));
            }
            if b.end_bytes() > mem_bytes {
                problems.push(format!(
                    "buffer `{}` (words {}..{}) overruns the {mem_bytes}-byte allocation",
                    b.name,
                    b.word_offset,
                    b.word_offset + b.words,
                ));
            }
        }
        for (i, a) in self.buffers.iter().enumerate() {
            for b in &self.buffers[i + 1..] {
                let lo = a.word_offset.max(b.word_offset);
                let hi = (a.word_offset + a.words).min(b.word_offset + b.words);
                if lo < hi {
                    problems.push(format!(
                        "buffers `{}` and `{}` overlap on words {lo}..{hi}",
                        a.name, b.name,
                    ));
                }
            }
        }
        problems
    }
}

/// A ready-to-simulate benchmark: program, initialized memory, verifier.
pub struct KernelSpec {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// The compiled kernel, shared so simulators clone the handle (with the
    /// predecoded µop table) instead of the instruction stream.
    pub program: Arc<Program>,
    /// Initialized functional memory (inputs + zeroed outputs).
    pub memory: VecMemory,
    /// Declared memory map (empty when a kernel predates the linter).
    pub layout: BufferLayout,
    /// Checks the final memory against a host-computed reference.
    verifier: Verifier,
}

impl KernelSpec {
    /// Assembles a spec (used by the per-benchmark modules).
    pub fn new(
        name: &'static str,
        program: impl Into<Arc<Program>>,
        memory: VecMemory,
        verifier: impl Fn(&VecMemory) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        KernelSpec {
            name,
            program: program.into(),
            memory,
            layout: BufferLayout::default(),
            verifier: Box::new(verifier),
        }
    }

    /// Attaches the declared memory map.
    #[must_use]
    pub fn with_layout(mut self, layout: BufferLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Swaps in a different compiled program (same inputs, layout, and
    /// verifier) — used to compare a transformed kernel, e.g. the
    /// control-flow-melded variant, against the original on identical
    /// workloads.
    #[must_use]
    pub fn with_program(mut self, program: impl Into<Arc<Program>>) -> Self {
        self.program = program.into();
        self
    }

    /// Verifies a final memory image against the host reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn verify(&self, memory: &VecMemory) -> Result<(), String> {
        (self.verifier)(memory)
    }
}

impl fmt::Debug for KernelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelSpec")
            .field("name", &self.name)
            .field("program_len", &self.program.len())
            .field("memory_bytes", &self.memory.size_bytes())
            .finish()
    }
}

/// The eight benchmarks of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Fast Fourier transform (Splash2).
    Fft,
    /// Edge detection by 3x3 convolution.
    Filter,
    /// Thermal simulation, iterative PDE solver (Rodinia).
    HotSpot,
    /// Dense LU decomposition (Splash2).
    Lu,
    /// Bottom-up merge sort.
    Merge,
    /// Winning-path search (dynamic programming).
    Short,
    /// K-means clustering (MineBench).
    KMeans,
    /// Support-vector-machine kernel computation (MineBench).
    Svm,
}

impl Benchmark {
    /// All eight, in the paper's column order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Fft,
        Benchmark::Filter,
        Benchmark::HotSpot,
        Benchmark::Lu,
        Benchmark::Merge,
        Benchmark::Short,
        Benchmark::KMeans,
        Benchmark::Svm,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Fft => "FFT",
            Benchmark::Filter => "Filter",
            Benchmark::HotSpot => "HotSpot",
            Benchmark::Lu => "LU",
            Benchmark::Merge => "Merge",
            Benchmark::Short => "Short",
            Benchmark::KMeans => "KMeans",
            Benchmark::Svm => "SVM",
        }
    }

    /// Builds the benchmark at the given scale with a deterministic seed.
    pub fn build(self, scale: Scale, seed: u64) -> KernelSpec {
        match self {
            Benchmark::Fft => crate::fft::build(scale, seed),
            Benchmark::Filter => crate::filter::build(scale, seed),
            Benchmark::HotSpot => crate::hotspot::build(scale, seed),
            Benchmark::Lu => crate::lu::build(scale, seed),
            Benchmark::Merge => crate::merge::build(scale, seed),
            Benchmark::Short => crate::short::build(scale, seed),
            Benchmark::KMeans => crate::kmeans::build(scale, seed),
            Benchmark::Svm => crate::svm::build(scale, seed),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Compares two float words within tolerance (shared by verifiers).
pub(crate) fn close(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            ["FFT", "Filter", "HotSpot", "LU", "Merge", "Short", "KMeans", "SVM"]
        );
        assert_eq!(Benchmark::Fft.to_string(), "FFT");
    }

    #[test]
    fn layout_check_reports_overrun_and_overlap() {
        let layout = BufferLayout::of(&[("a", 0, 8), ("b", 4, 8), ("c", 20, 0)]);
        let problems = layout.check(12 * 8);
        assert!(
            problems.iter().any(|p| p.contains("overlap")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("overruns")),
            "{problems:?}"
        );
        assert!(problems.iter().any(|p| p.contains("empty")), "{problems:?}");
        assert!(BufferLayout::of(&[("a", 0, 8), ("b", 8, 4)])
            .check(12 * 8)
            .is_empty());
    }

    #[test]
    fn close_tolerates_relative_error() {
        assert!(close(1e12, 1e12 * (1.0 + 1e-12), 1e-9));
        assert!(!close(1.0, 1.1, 1e-9));
        assert!(close(0.0, 1e-12, 1e-9));
    }
}
