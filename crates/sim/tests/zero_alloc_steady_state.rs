//! Steady-state `Machine::step` must not touch the heap.
//!
//! The hot-path work of this optimization pass (caller-owned completion
//! buffers, reusable issue scratch, flat scans instead of per-tick maps)
//! is locked in by counting allocations with a wrapping global allocator:
//! after a warm-up prefix has sized every scratch buffer, MSHR pool and
//! event queue, a long stretch of `step` calls must perform zero
//! allocations. This file holds exactly one test because the allocator
//! hook is process-global.

use dws_core::Policy;
use dws_kernels::{Benchmark, Scale};
use dws_sim::{Machine, SimConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static SIZES: [AtomicU64; 16] = [ZERO; 16];

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            let n = ALLOCS.fetch_add(1, Ordering::Relaxed);
            if (n as usize) < SIZES.len() {
                SIZES[n as usize].store(layout.size() as u64, Ordering::Relaxed);
            }
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_step_does_not_allocate() {
    // A memory-heavy, divergence-heavy workload under the most split-happy
    // policy exercises every per-tick path: issue scratch, warp access
    // grouping, MSHR allocation/merge, completion draining, WST traffic.
    let spec = Benchmark::Merge.build(Scale::Test, 11);
    let cfg = SimConfig::paper(Policy::dws_revive());
    let mut m = Machine::new(&cfg, &spec);

    // Warm up: let every scratch vector, pool and queue reach capacity.
    let mut warmup = 0u64;
    while !m.done() && warmup < 5_000 {
        m.step();
        warmup += 1;
    }
    assert!(!m.done(), "workload too small to have a steady state");

    COUNTING.store(true, Ordering::SeqCst);
    let mut steps = 0u64;
    while !m.done() && steps < 20_000 {
        m.step();
        steps += 1;
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert!(steps > 1_000, "expected a long steady-state stretch");
    let sizes: Vec<u64> = SIZES.iter().map(|s| s.load(Ordering::SeqCst)).collect();
    assert_eq!(
        allocs, 0,
        "Machine::step allocated {allocs} times across {steps} steady-state cycles \
         (first alloc sizes: {sizes:?})"
    );
}
