//! Parallel-stepping differential oracle: sharding one machine's WPUs
//! across worker threads ([`SimConfig::with_threads`]) must be *invisible*.
//! The coordinator runs every WPU's compute phase in parallel, then commits
//! buffered memory interactions at the cycle barrier in WPU-index order —
//! exactly the interleaving the serial loop produces — so every run must be
//! bit-identical to the serial oracle at any thread count: same end cycle,
//! same memory image, same per-WPU statistics, same memory-system counters,
//! same warp-split-table peaks, even under a chaotic fault-injection plan.

#[path = "../../core/tests/common/mod.rs"]
mod common;

use common::{all_policies, compile, gen_block, MEM_WORDS};
use dws_core::Policy;
use dws_engine::fault::FaultPlan;
use dws_engine::rng::Rng64;
use dws_isa::VecMemory;
use dws_kernels::{Benchmark, KernelSpec, Scale};
use dws_sim::{presets, Machine, RunResult, SimConfig};
use std::sync::Arc;

/// Full bit-identity: everything a run observes must match the oracle.
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.memory.words(), b.memory.words(), "{what}: memory image");
    assert_eq!(a.wst_peaks, b.wst_peaks, "{what}: WST peaks");
    assert_eq!(
        a.per_thread_misses, b.per_thread_misses,
        "{what}: per-thread misses"
    );
    assert_eq!(a.mem, b.mem, "{what}: memory-system stats");
    assert_eq!(a.per_wpu, b.per_wpu, "{what}: per-WPU stats");
}

fn run_threads(cfg: &SimConfig, spec: &KernelSpec, threads: usize) -> RunResult {
    Machine::run(&cfg.with_threads(threads), spec)
        .unwrap_or_else(|e| panic!("{threads}-thread run failed: {e}"))
}

/// Every scheduling policy on the 4-WPU paper machine: 2- and 4-thread
/// sharding (4 = one WPU per worker) against the serial oracle.
#[test]
fn all_policies_bit_identical_on_paper_machine() {
    let spec = Benchmark::Merge.build(Scale::Test, 11);
    for policy in all_policies() {
        let cfg = SimConfig::paper(policy);
        let serial = run_threads(&cfg, &spec, 1);
        spec.verify(&serial.memory).unwrap();
        for threads in [2, 4] {
            let parallel = run_threads(&cfg, &spec, threads);
            assert_identical(
                &serial,
                &parallel,
                &format!("{} x{threads}", policy.paper_name()),
            );
        }
    }
}

/// The 32-WPU scaled preset across the full thread ladder (the scaling
/// study's configurations): 1, 2, 4, and 8 workers must all reproduce the
/// serial result exactly.
#[test]
fn thread_counts_bit_identical_at_32_wpus() {
    for policy in [Policy::dws_revive(), Policy::slip_branch_bypass()] {
        let cfg = presets::scaled(policy, 32);
        let spec = Benchmark::Filter.build(Scale::Test, 7);
        let serial = run_threads(&cfg, &spec, 1);
        spec.verify(&serial.memory).unwrap();
        for threads in [2, 4, 8] {
            let parallel = run_threads(&cfg, &spec, threads);
            assert_identical(
                &serial,
                &parallel,
                &format!("{} 32-WPU x{threads}", policy.paper_name()),
            );
        }
    }
}

/// Randomly generated divergent kernels, every policy: small machines where
/// each worker owns exactly one WPU, so the compute/commit split is
/// exercised with maximum interleaving pressure.
#[test]
fn random_kernels_bit_identical_under_threading() {
    for seed in 0..6u64 {
        let mut rng = Rng64::new(0x9A8A_11E1 ^ seed);
        let mut budget = 24usize;
        let top_len = 1 + rng.range_usize(7);
        let stmts = gen_block(&mut rng, 3, top_len, &mut budget);
        let program = Arc::new(compile(&stmts));
        let mem0 = VecMemory::new(MEM_WORDS as u64 * 8);
        for policy in all_policies() {
            let cfg = SimConfig::paper(policy)
                .with_wpus(2)
                .with_width(8)
                .with_warps(1);
            let spec = KernelSpec::new("random", Arc::clone(&program), mem0.clone(), |_| Ok(()));
            let serial = run_threads(&cfg, &spec, 1);
            let parallel = run_threads(&cfg, &spec, 2);
            assert_identical(
                &serial,
                &parallel,
                &format!("seed {seed} {} ({stmts:?})", policy.paper_name()),
            );
        }
    }
}

/// Fault injection under threading: a chaotic plan perturbs timing through
/// per-WPU RNG streams drawn mid-tick, so this pins that the parallel
/// compute phases replay the exact per-(cycle, WPU) draw sequence — the
/// chaos plan must be thread-count-invariant and reproducible.
#[test]
fn chaos_plans_bit_identical_under_threading() {
    let mut perturbed = 0u32;
    for seed in [3u64, 17] {
        for policy in [Policy::dws_revive(), Policy::slip()] {
            let spec = Benchmark::Merge.build(Scale::Test, seed);
            let base = SimConfig::paper(policy);
            let baseline = run_threads(&base, &spec, 1);
            for (name, plan) in [
                ("mem_jitter", FaultPlan::mem_jitter(seed)),
                ("full_chaos", FaultPlan::full_chaos(seed)),
            ] {
                assert!(!plan.is_nop());
                let cfg = base.with_fault(plan);
                let serial = run_threads(&cfg, &spec, 1);
                spec.verify(&serial.memory).unwrap();
                for threads in [2, 4] {
                    let parallel = run_threads(&cfg, &spec, threads);
                    assert_identical(
                        &serial,
                        &parallel,
                        &format!("seed {seed} {} {name} x{threads}", policy.paper_name()),
                    );
                }
                if serial.cycles != baseline.cycles {
                    perturbed += 1;
                }
            }
        }
    }
    assert!(
        perturbed > 0,
        "no chaotic run shifted timing — the plans were nonzero in name only"
    );
}

/// Thread counts beyond the WPU count clamp down to one WPU per worker
/// rather than spawning idle shards.
#[test]
fn oversubscribed_thread_count_clamps() {
    let spec = Benchmark::Short.build(Scale::Test, 5);
    let cfg = SimConfig::paper(Policy::dws_revive()).with_wpus(2);
    let serial = run_threads(&cfg, &spec, 1);
    let parallel = run_threads(&cfg, &spec, 16);
    assert_identical(&serial, &parallel, "2-WPU machine at 16 threads");
}
