//! Transform-equivalence oracle for the control-flow melding pass.
//!
//! [`dws_isa::meld`] rewrites a divergent diamond into predicated
//! straight-line code. This battery proves the rewrite is semantics-
//! preserving *on the timed machine*, not just under the reference
//! interpreter:
//!
//! 1. **Bit-identity** — for every meldable kernel variant, the melded and
//!    unmelded programs produce bit-identical final memory under all eleven
//!    fuzz policies, with and without a chaotic fault plan.
//! 2. **Profitability** — under the conventional baseline (no DWS, warps
//!    serialize both diamond arms) the melded form strictly reduces the
//!    cycle count, so the `DWS0601` advisory is honest.
//! 3. **Lint-clean output** — the melded program re-verifies with zero
//!    errors and zero warnings, i.e. `dws-cli opt --meld` output survives
//!    `--deny-warnings`.
//! 4. **Corpus coverage** — the checked-in fuzz reproducer
//!    `corpus/seed-00000-meldable-poly.asm` actually exercises the
//!    transform, keeping the fuzz meld axis honest on replay.

use dws_core::Policy;
use dws_engine::fault::FaultPlan;
use dws_isa::{meld, parse_asm, Severity, VecMemory, VerifyOptions};
use dws_kernels::{KernelSpec, MeldKernel, Scale};
use dws_sim::fuzz::fuzz_policies;
use dws_sim::{Machine, SimConfig};

const SEED: u64 = 0x0d57;

/// A small machine (2 WPUs x 8 lanes x 2 warps = 32 threads) so the full
/// policy x plan x kernel cross-product stays fast in release mode.
fn small(policy: Policy) -> SimConfig {
    SimConfig::paper(policy)
        .with_wpus(2)
        .with_width(8)
        .with_warps(2)
}

fn run(cfg: &SimConfig, spec: &KernelSpec, ctx: &str) -> (VecMemory, u64) {
    let r = Machine::run(cfg, spec).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    (r.memory, r.cycles)
}

/// Melded and unmelded variants are bit-identical across every policy, with
/// and without a chaotic fault plan, and both pass the host verifier.
#[test]
fn melded_bit_identical_across_policies_and_chaos() {
    for kernel in MeldKernel::ALL {
        let base = kernel.build(Scale::Test, SEED);
        let melded = kernel.build_melded(Scale::Test, SEED);
        for policy in fuzz_policies() {
            for (tag, plan) in [
                ("clean", FaultPlan::NONE),
                ("chaos", FaultPlan::full_chaos(SEED)),
            ] {
                let cfg = small(policy).with_fault(plan);
                let ctx = format!("{kernel}/{}/{tag}", policy.paper_name());
                let (mem_base, _) = run(&cfg, &base, &format!("{ctx} unmelded"));
                let (mem_meld, _) = run(&cfg, &melded, &format!("{ctx} melded"));
                base.verify(&mem_base)
                    .unwrap_or_else(|e| panic!("{ctx} unmelded: {e}"));
                melded
                    .verify(&mem_meld)
                    .unwrap_or_else(|e| panic!("{ctx} melded: {e}"));
                if let Some(w) = mem_base
                    .words()
                    .iter()
                    .zip(mem_meld.words())
                    .position(|(a, b)| a != b)
                {
                    panic!(
                        "{ctx}: melded diverges from unmelded at word {w}: \
                         {:#x} vs {:#x}",
                        mem_base.words()[w],
                        mem_meld.words()[w],
                    );
                }
            }
        }
    }
}

/// Under the conventional baseline (the policy that pays full price for
/// branch divergence) melding strictly reduces the cycle count — the
/// figure-13-style comparison row rests on this.
#[test]
fn melding_reduces_cycles_under_conventional() {
    let cfg = small(Policy::conventional());
    for kernel in MeldKernel::ALL {
        let base = kernel.build(Scale::Test, SEED);
        let melded = kernel.build_melded(Scale::Test, SEED);
        let (_, cycles_base) = run(&cfg, &base, &format!("{kernel} unmelded"));
        let (_, cycles_meld) = run(&cfg, &melded, &format!("{kernel} melded"));
        assert!(
            cycles_meld < cycles_base,
            "{kernel}: melding did not pay off under Conv: \
             {cycles_meld} melded vs {cycles_base} unmelded cycles",
        );
    }
}

/// `dws-cli opt --meld` output survives `--deny-warnings`: the melded
/// program re-verifies with zero errors and zero warnings.
#[test]
fn melded_output_lints_clean() {
    for kernel in MeldKernel::ALL {
        let spec = kernel.build_melded(Scale::Test, SEED);
        let opts = VerifyOptions::default()
            .with_nthreads(small(Policy::conventional()).total_threads())
            .with_mem_bytes(spec.memory.size_bytes());
        let report = spec.program.lint(&opts);
        assert_eq!(report.count(Severity::Error), 0, "{kernel}:\n{report}");
        assert_eq!(report.count(Severity::Warning), 0, "{kernel}:\n{report}");
    }
}

/// The checked-in fuzz corpus reproducer really does exercise the melding
/// transform, so the fuzz meld axis runs it end to end on every replay.
#[test]
fn corpus_reproducer_exercises_meld() {
    let asm = include_str!("corpus/seed-00000-meldable-poly.asm");
    let program = parse_asm(asm).expect("corpus reproducer must assemble");
    let out = meld(program.insts()).expect("corpus reproducer must meld");
    assert!(out.changed(), "reproducer no longer triggers the transform");
    assert_eq!(out.applied.len(), 1, "exactly one diamond expected");
    assert!(out.applied[0].saved > 0, "melding it must save issue slots");
}
