//! Panic isolation in parallel sweeps: one poisoned job must not take down
//! its siblings. A panic inside `Machine::run` (here: a kernel storing far
//! out of bounds, which trips the functional memory's slice indexing)
//! becomes [`SimError::Panicked`] for that job alone; every other job
//! completes and verifies. Panics raised by *caller* callbacks, by
//! contrast, must propagate — annotated with the failing job's label.

use dws_core::Policy;
use dws_isa::{KernelBuilder, Operand, VecMemory};
use dws_kernels::{Benchmark, KernelSpec, Scale};
use dws_sim::{failure_summary, SimConfig, SimError, SweepRunner};
use std::sync::{Arc, Mutex};

/// A kernel whose lanes 1.. store ~2^40 bytes past the end of a 64-byte
/// functional memory: the timing model accepts the access (plenty of
/// MSHRs), then the functional store panics on the slice index.
fn poisoned_spec() -> Arc<KernelSpec> {
    let mut b = KernelBuilder::new();
    let tid = b.tid();
    let a = b.reg();
    b.mul(a, tid, Operand::Imm(1 << 40));
    b.store(Operand::Imm(1), a, 0);
    b.halt();
    let program = b.build().unwrap();
    Arc::new(KernelSpec::new(
        "poisoned",
        program,
        VecMemory::new(64),
        |_| Ok(()),
    ))
}

#[test]
fn panicking_job_is_isolated() {
    let good = Arc::new(Benchmark::Short.build(Scale::Test, 3));
    let mut sweep = SweepRunner::new().with_workers(2);
    sweep.add(
        "ok0",
        SimConfig::paper(Policy::conventional()).with_wpus(1),
        &good,
    );
    sweep.add(
        "boom",
        SimConfig::paper(Policy::conventional()).with_wpus(1),
        &poisoned_spec(),
    );
    sweep.add(
        "ok1",
        SimConfig::paper(Policy::dws_revive()).with_wpus(1),
        &good,
    );
    sweep.add("ok2", SimConfig::paper(Policy::slip()).with_wpus(1), &good);
    let out = sweep.run();
    assert_eq!(out.len(), 4);
    match &out[1].result {
        Err(SimError::Panicked { label, payload }) => {
            assert_eq!(label, "boom");
            assert!(
                payload.contains("index out of bounds"),
                "unexpected payload: {payload}"
            );
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The survivors finished and verify — the panic never left its job.
    for i in [0, 2, 3] {
        let r = out[i]
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("job {} should have survived: {e}", out[i].label));
        out[i].spec.verify(&r.memory).unwrap();
    }
    let summary = failure_summary(&out).expect("one job failed");
    assert!(summary.starts_with("1/4 sweep jobs failed:"), "{summary}");
    assert!(summary.contains("boom"), "{summary}");
    assert!(
        failure_summary(&out[..1]).is_none(),
        "ok job is not a failure"
    );
}

#[test]
fn streaming_isolates_panicked_job() {
    let good = Arc::new(Benchmark::Short.build(Scale::Test, 3));
    let mut sweep = SweepRunner::new().with_workers(2);
    sweep.add(
        "s0",
        SimConfig::paper(Policy::conventional()).with_wpus(1),
        &good,
    );
    sweep.add(
        "bad",
        SimConfig::paper(Policy::conventional()).with_wpus(1),
        &poisoned_spec(),
    );
    sweep.add(
        "s1",
        SimConfig::paper(Policy::dws_revive()).with_wpus(1),
        &good,
    );
    let out = sweep.run_streaming();
    assert!(matches!(
        &out[1].result,
        Err(SimError::Panicked { label, .. }) if label == "bad"
    ));
    for i in [0, 2] {
        let r = out[i].result.as_ref().unwrap();
        assert!(
            r.memory.words().is_empty(),
            "verified and dropped on arrival"
        );
    }
}

#[test]
fn callback_panic_carries_job_label() {
    let good = Arc::new(Benchmark::Short.build(Scale::Test, 3));
    let mut sweep = SweepRunner::new().with_workers(2);
    for i in 0..3 {
        sweep.add(
            format!("p{i}"),
            SimConfig::paper(Policy::conventional()).with_wpus(1),
            &good,
        );
    }
    let seen = Mutex::new(0u32);
    let p = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sweep.run_with(|i, _| {
            *seen.lock().unwrap() += 1;
            assert!(i != 1, "callback exploded");
        })
    }))
    .err()
    .expect("the callback panic must propagate");
    let msg = p
        .downcast_ref::<String>()
        .cloned()
        .expect("label-annotated panics carry a String payload");
    assert!(msg.contains("sweep job 'p1'"), "{msg}");
    assert!(msg.contains("callback exploded"), "{msg}");
}
