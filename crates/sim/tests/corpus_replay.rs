//! Replays every checked-in fuzz reproducer across all oracle axes.
//!
//! Each `tests/corpus/seed-NNNNN-<tag>.asm` file is a verifier-accepted
//! kernel the fuzzer's generator produced (regenerate with
//! `cargo run -p dws-sim --example gen_corpus -- crates/sim/tests/corpus`).
//! The seed in the filename selects the same input image the original
//! campaign used, so a replay is bit-for-bit the original differential
//! check: every policy vs the reference interpreter, stepped vs
//! event-driven, parallel vs serial, legacy engine vs µop, chaos vs
//! zero-fault. All must agree — any finding here is a regression.

use dws_isa::parse_asm;
use dws_sim::fuzz::{check_program, FuzzConfig};

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "asm"))
        .collect();
    files.sort();
    files
}

/// `seed-NNNNN-<tag>.asm` → the campaign seed that chose the input image.
fn seed_of(path: &std::path::Path) -> u64 {
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .expect("utf-8 name");
    name.strip_prefix("seed-")
        .and_then(|rest| rest.split('-').next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("corpus file '{name}' is not named seed-NNNNN-<tag>.asm"))
}

#[test]
fn every_corpus_kernel_replays_clean_on_every_axis() {
    let files = corpus_files();
    assert!(
        files.len() >= 6,
        "corpus should hold at least 6 reproducers, found {}",
        files.len()
    );
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let program = parse_asm(&text)
            .unwrap_or_else(|e| panic!("{name}: checked-in reproducer no longer parses: {e}"));
        let cfg = FuzzConfig::default();
        if let Some(f) = check_program(program, seed_of(&path), &cfg) {
            panic!("{name}: {} — {}", f.class.label(), f.message);
        }
    }
}

#[test]
fn corpus_filenames_carry_their_seeds() {
    for path in corpus_files() {
        // Panics on malformed names; the replay test depends on these.
        let _ = seed_of(&path);
    }
}
