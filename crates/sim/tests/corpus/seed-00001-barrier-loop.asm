; fuzz corpus reproducer: global barrier alongside uniform loops
; generator seed 1, 32 threads, 18 statements, 67 instructions
; replay: dws-cli fuzz --seed-start 1 --seeds 1 --minimize
	li r10, 63
	mul r9, r0, 1
	add r2, r9, 1
	mul r9, r0, 3
	add r3, r9, 8
	mul r9, r0, 5
	add r4, r9, 15
	mul r9, r0, 7
	add r5, r9, 22
	mul r9, r0, 9
	add r6, r9, 29
	mul r9, r0, 11
	add r7, r9, 36
	and r8, r2, r10
	mul r8, r8, 8
	ld r3, [r8]
	bar
	and r8, r6, r10
	mul r8, r8, 8
	ld r5, [r8]
	xor r5, r5, r4
	min r5, r5, -15
	bne r3, -5, L52
	and r6, r4, r4
	li r11, 0
L25:	bge r11, 2, L51
	mul r8, r0, 4
	add r8, r8, 66
	mul r8, r8, 8
	ld r6, [r8]
	li r12, 0
L31:	bge r12, 3, L37
	max r2, r6, r2
	xor r6, r2, -12
	xor r6, r2, 0
	add r12, r12, 1
	jmp L31
L37:	li r13, 0
L38:	bge r13, 2, L49
	add r2, r4, r2
	mul r8, r0, 4
	add r8, r8, 66
	mul r8, r8, 8
	st r6, [r8]
	and r8, r5, r10
	mul r8, r8, 8
	ld r4, [r8]
	add r13, r13, 1
	jmp L38
L49:	add r11, r11, 1
	jmp L25
L51:	jmp L57
L52:	sub r5, r4, 6
	mul r8, r0, 4
	add r8, r8, 64
	mul r8, r8, 8
	st r2, [r8]
L57:	mov r9, r2
	xor r9, r9, r3
	xor r9, r9, r4
	xor r9, r9, r5
	xor r9, r9, r6
	xor r9, r9, r7
	add r8, r0, 192
	mul r8, r8, 8
	st r9, [r8]
	halt
