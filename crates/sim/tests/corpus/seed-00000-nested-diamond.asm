; fuzz corpus reproducer: diamond inside a diamond arm
; generator seed 0, 32 threads, 24 statements, 86 instructions
; replay: dws-cli fuzz --seed-start 0 --seeds 1 --minimize
	li r10, 63
	mul r9, r0, 1
	add r2, r9, 1
	mul r9, r0, 3
	add r3, r9, 8
	mul r9, r0, 5
	add r4, r9, 15
	mul r9, r0, 7
	add r5, r9, 22
	mul r9, r0, 9
	add r6, r9, 29
	mul r9, r0, 11
	add r7, r9, 36
	and r8, r2, r10
	mul r8, r8, 8
	ld r3, [r8]
	add r6, r3, r5
	li r11, 0
L18:	bge r11, 2, L32
	and r8, r4, r10
	mul r8, r8, 8
	ld r5, [r8]
	mul r8, r0, 4
	add r8, r8, 66
	mul r8, r8, 8
	st r3, [r8]
	mul r8, r0, 4
	add r8, r8, 64
	mul r8, r8, 8
	ld r6, [r8]
	add r11, r11, 1
	jmp L18
L32:	and r8, r3, r10
	mul r8, r8, 8
	ld r4, [r8]
	bar
	add r2, r6, r3
	beq r4, -3, L46
	li r12, 0
L39:	bge r12, 3, L45
	and r8, r6, r10
	mul r8, r8, 8
	ld r2, [r8]
	add r12, r12, 1
	jmp L39
L45:	jmp L62
L46:	ble r5, 5, L58
	mul r8, r0, 4
	add r8, r8, 65
	mul r8, r8, 8
	ld r6, [r8]
	li r13, 0
L52:	bge r13, 1, L56
	sub r4, r5, 12
	add r13, r13, 1
	jmp L52
L56:	xor r6, r2, 12
	jmp L58
L58:	mul r8, r0, 4
	add r8, r8, 65
	mul r8, r8, 8
	st r4, [r8]
L62:	beq r3, 26, L76
	sub r4, r6, -2
	bge r6, 53, L69
	and r8, r5, r10
	mul r8, r8, 8
	ld r2, [r8]
	jmp L74
L69:	li r14, 0
L70:	bge r14, 1, L74
	add r4, r3, 9
	add r14, r14, 1
	jmp L70
L74:	xor r6, r2, -1
	jmp L76
L76:	mov r9, r2
	xor r9, r9, r3
	xor r9, r9, r4
	xor r9, r9, r5
	xor r9, r9, r6
	xor r9, r9, r7
	add r8, r0, 192
	mul r8, r8, 8
	st r9, [r8]
	halt
