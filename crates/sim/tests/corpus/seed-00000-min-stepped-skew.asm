; fuzz corpus reproducer: minimized from an injected stepped-axis cycle skew
; generator seed 0, 32 threads, 0 statements, 26 instructions
; replay: dws-cli fuzz --seed-start 0 --seeds 1 --minimize
	li r10, 63
	mul r9, r0, 1
	add r2, r9, 1
	mul r9, r0, 3
	add r3, r9, 8
	mul r9, r0, 5
	add r4, r9, 15
	mul r9, r0, 7
	add r5, r9, 22
	mul r9, r0, 9
	add r6, r9, 29
	mul r9, r0, 11
	add r7, r9, 36
	and r8, r2, r10
	mul r8, r8, 8
	ld r3, [r8]
	mov r9, r2
	xor r9, r9, r3
	xor r9, r9, r4
	xor r9, r9, r5
	xor r9, r9, r6
	xor r9, r9, r7
	add r8, r0, 192
	mul r8, r8, 8
	st r9, [r8]
	halt
