; fuzz corpus reproducer: sign-selected polynomial diamond the meld axis rewrites
; handwritten for the melded-vs-unmelded oracle, 32 threads, 22 instructions
; replay: dws-cli fuzz --seed-start 0 --seeds 1
	li r10, 63
	and r8, r0, r10
	mul r8, r8, 8
	ld r3, [r8]
	blt r3, 0, L12
	mul r4, r3, 5
	add r4, r4, 1
	xor r4, r4, r3
	shr r4, r4, 1
	add r4, r4, r3
	mul r4, r4, r4
	jmp L18
L12:	mul r4, r3, 3
	add r4, r4, 1
	xor r4, r4, r3
	shr r4, r4, 1
	add r4, r4, r3
	mul r4, r4, r4
L18:	add r8, r0, 192
	mul r8, r8, 8
	st r4, [r8]
	halt
