; fuzz corpus reproducer: 6+ gather/private memory operations
; generator seed 6, 32 threads, 24 statements, 89 instructions
; replay: dws-cli fuzz --seed-start 6 --seeds 1 --minimize
	li r10, 63
	mul r9, r0, 1
	add r2, r9, 1
	mul r9, r0, 3
	add r3, r9, 8
	mul r9, r0, 5
	add r4, r9, 15
	mul r9, r0, 7
	add r5, r9, 22
	mul r9, r0, 9
	add r6, r9, 29
	mul r9, r0, 11
	add r7, r9, 36
	and r8, r2, r10
	mul r8, r8, 8
	ld r3, [r8]
	and r2, r6, r3
	li r11, 0
L18:	bge r11, 1, L32
	li r12, 0
L20:	bge r12, 2, L26
	and r8, r3, r10
	mul r8, r8, 8
	ld r6, [r8]
	add r12, r12, 1
	jmp L20
L26:	mul r8, r0, 4
	add r8, r8, 64
	mul r8, r8, 8
	ld r5, [r8]
	add r11, r11, 1
	jmp L18
L32:	bgt r5, 57, L38
	mul r8, r0, 4
	add r8, r8, 66
	mul r8, r8, 8
	st r6, [r8]
	jmp L64
L38:	bgt r6, 28, L51
	li r13, 0
L40:	bge r13, 3, L47
	mul r8, r0, 4
	add r8, r8, 64
	mul r8, r8, 8
	st r6, [r8]
	add r13, r13, 1
	jmp L40
L47:	and r8, r2, r10
	mul r8, r8, 8
	ld r3, [r8]
	jmp L64
L51:	li r14, 0
L52:	bge r14, 3, L56
	xor r6, r2, r3
	add r14, r14, 1
	jmp L52
L56:	bne r6, 9, L62
	or r3, r6, r5
	and r8, r5, r10
	mul r8, r8, 8
	ld r6, [r8]
	jmp L64
L62:	min r2, r3, 2
	min r5, r5, -9
L64:	li r15, 0
L65:	bge r15, 2, L75
	bne r4, 25, L71
	and r8, r3, r10
	mul r8, r8, 8
	ld r4, [r8]
	jmp L72
L71:	mul r4, r3, r5
L72:	add r5, r5, r6
	add r15, r15, 1
	jmp L65
L75:	mul r8, r0, 4
	add r8, r8, 64
	mul r8, r8, 8
	ld r6, [r8]
	mov r9, r2
	xor r9, r9, r3
	xor r9, r9, r4
	xor r9, r9, r5
	xor r9, r9, r6
	xor r9, r9, r7
	add r8, r0, 192
	mul r8, r8, 8
	st r9, [r8]
	halt
