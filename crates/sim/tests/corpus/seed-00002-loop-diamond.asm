; fuzz corpus reproducer: divergent diamond inside a uniform loop
; generator seed 2, 32 threads, 23 statements, 83 instructions
; replay: dws-cli fuzz --seed-start 2 --seeds 1 --minimize
	li r10, 63
	mul r9, r0, 1
	add r2, r9, 1
	mul r9, r0, 3
	add r3, r9, 8
	mul r9, r0, 5
	add r4, r9, 15
	mul r9, r0, 7
	add r5, r9, 22
	mul r9, r0, 9
	add r6, r9, 29
	mul r9, r0, 11
	add r7, r9, 36
	and r8, r2, r10
	mul r8, r8, 8
	ld r3, [r8]
	and r8, r3, r10
	mul r8, r8, 8
	ld r5, [r8]
	li r11, 0
L20:	bge r11, 3, L24
	and r4, r3, -11
	add r11, r11, 1
	jmp L20
L24:	bge r3, -5, L36
	or r6, r4, -17
	li r12, 0
L27:	bge r12, 2, L35
	li r13, 0
L29:	bge r13, 2, L33
	sub r6, r5, r2
	add r13, r13, 1
	jmp L29
L33:	add r12, r12, 1
	jmp L27
L35:	jmp L68
L36:	and r8, r6, r10
	mul r8, r8, 8
	ld r6, [r8]
	li r14, 0
L40:	bge r14, 2, L68
	li r15, 0
L42:	bge r15, 2, L48
	and r8, r4, r10
	mul r8, r8, 8
	ld r3, [r8]
	add r15, r15, 1
	jmp L42
L48:	li r16, 0
L49:	bge r16, 2, L60
	and r2, r4, r4
	mul r8, r0, 4
	add r8, r8, 64
	mul r8, r8, 8
	st r3, [r8]
	and r8, r5, r10
	mul r8, r8, 8
	ld r6, [r8]
	add r16, r16, 1
	jmp L49
L60:	bge r4, 46, L65
	add r2, r3, r6
	xor r5, r2, 14
	xor r6, r3, r3
	jmp L66
L65:	xor r2, r2, 1
L66:	add r14, r14, 1
	jmp L40
L68:	bar
	mul r8, r0, 4
	add r8, r8, 65
	mul r8, r8, 8
	st r3, [r8]
	mov r9, r2
	xor r9, r9, r3
	xor r9, r9, r4
	xor r9, r9, r5
	xor r9, r9, r6
	xor r9, r9, r7
	add r8, r0, 192
	mul r8, r8, 8
	st r9, [r8]
	halt
