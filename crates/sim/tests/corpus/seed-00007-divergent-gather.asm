; fuzz corpus reproducer: memory operations under divergence
; generator seed 7, 32 threads, 22 statements, 80 instructions
; replay: dws-cli fuzz --seed-start 7 --seeds 1 --minimize
	li r10, 63
	mul r9, r0, 1
	add r2, r9, 1
	mul r9, r0, 3
	add r3, r9, 8
	mul r9, r0, 5
	add r4, r9, 15
	mul r9, r0, 7
	add r5, r9, 22
	mul r9, r0, 9
	add r6, r9, 29
	mul r9, r0, 11
	add r7, r9, 36
	and r8, r2, r10
	mul r8, r8, 8
	ld r3, [r8]
	li r11, 0
L17:	bge r11, 2, L25
	beq r2, 21, L21
	xor r6, r2, 12
	jmp L22
L21:	min r5, r5, r3
L22:	bar
	add r11, r11, 1
	jmp L17
L25:	max r4, r4, -16
	and r4, r2, -10
	li r12, 0
L28:	bge r12, 3, L70
	beq r4, 51, L47
	mul r8, r0, 4
	add r8, r8, 64
	mul r8, r8, 8
	ld r3, [r8]
	li r13, 0
L35:	bge r13, 1, L42
	and r4, r3, r6
	and r8, r3, r10
	mul r8, r8, 8
	ld r4, [r8]
	add r13, r13, 1
	jmp L35
L42:	mul r8, r0, 4
	add r8, r8, 66
	mul r8, r8, 8
	st r6, [r8]
	jmp L55
L47:	li r14, 0
L48:	bge r14, 2, L55
	xor r3, r2, -5
	and r8, r5, r10
	mul r8, r8, 8
	ld r5, [r8]
	add r14, r14, 1
	jmp L48
L55:	li r15, 0
L56:	bge r15, 1, L68
	li r16, 0
L58:	bge r16, 1, L66
	add r6, r4, 6
	and r8, r6, r10
	mul r8, r8, 8
	ld r2, [r8]
	bar
	add r16, r16, 1
	jmp L58
L66:	add r15, r15, 1
	jmp L56
L68:	add r12, r12, 1
	jmp L28
L70:	mov r9, r2
	xor r9, r9, r3
	xor r9, r9, r4
	xor r9, r9, r5
	xor r9, r9, r6
	xor r9, r9, r7
	add r8, r0, 192
	mul r8, r8, 8
	st r9, [r8]
	halt
