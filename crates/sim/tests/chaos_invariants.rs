//! Chaos differential test: randomly generated divergent kernels must stay
//! functionally correct — and terminate without deadlock or livelock — under
//! every scheduling policy *and* every deterministic fault plan, with the
//! release-mode sanitizer checks ([`dws_engine::sanitize`]) forced on.
//!
//! Fault plans perturb timing only (fill jitter, link delays, MSHR
//! back-pressure, wake jitter, wake-heap churn); the invariants are:
//!
//! 1. Final memory matches the timing-free reference runner for every
//!    (seed, policy, plan) triple.
//! 2. The zero-fault plan is bit-identical to a machine with no plan set.
//! 3. A chaotic plan is reproducible: the same plan replays to the same
//!    cycle count.
//! 4. Every run passes the promoted scheduler-sync and µop-oracle checks
//!    (they would panic otherwise).

#[path = "../../core/tests/common/mod.rs"]
mod common;

use common::{all_policies, compile, gen_block, MEM_WORDS};
use dws_engine::fault::FaultPlan;
use dws_engine::rng::Rng64;
use dws_isa::{Program, ReferenceRunner, VecMemory};
use dws_kernels::KernelSpec;
use dws_sim::{Machine, SimConfig};
use std::sync::Arc;

fn output_region(mem: &VecMemory) -> &[u64] {
    &mem.words()[(MEM_WORDS / 2) as usize..]
}

/// The fault-plan battery for one kernel seed: the zero plan plus every
/// preset, each salted by the kernel seed so no two seeds replay the same
/// fault stream.
fn plans(seed: u64) -> [(&'static str, FaultPlan); 6] {
    [
        ("none", FaultPlan::NONE),
        ("mem_jitter", FaultPlan::mem_jitter(seed)),
        ("link_chaos", FaultPlan::link_chaos(seed)),
        ("mshr_squeeze", FaultPlan::mshr_squeeze(seed)),
        ("sched_chaos", FaultPlan::sched_chaos(seed)),
        ("full_chaos", FaultPlan::full_chaos(seed)),
    ]
}

fn run(cfg: &SimConfig, program: &Arc<Program>, mem0: &VecMemory, ctx: &str) -> (VecMemory, u64) {
    let spec = KernelSpec::new("chaos", Arc::clone(program), mem0.clone(), |_| Ok(()));
    let r = Machine::run(cfg, &spec)
        .unwrap_or_else(|e| panic!("{ctx}: run failed (deadlock/livelock/timeout?): {e}"));
    (r.memory, r.cycles)
}

#[test]
fn chaos_invariants() {
    // Promote the debug-only scheduler-sync and µop-oracle assertions to
    // this release-mode run, exactly as `DWS_SANITIZE=1` would.
    dws_engine::sanitize::force(true);
    // Guards against a silently dead injector: across the whole battery at
    // least some chaotic runs must actually shift the cycle count.
    let mut perturbed = 0u64;
    for seed in 0..16u64 {
        let mut rng = Rng64::new(0xC4A0_55ED ^ seed);
        let mut budget = 24usize;
        let top_len = 1 + rng.range_usize(7);
        let stmts = gen_block(&mut rng, 3, top_len, &mut budget);
        let program = Arc::new(compile(&stmts));
        let mem0 = VecMemory::new(MEM_WORDS as u64 * 8);
        // Timing-free reference execution (16 threads = 2 WPUs x 8 x 1).
        let mut reference = mem0.clone();
        ReferenceRunner::new(&program, 16)
            .with_step_budget(10_000_000)
            .run(&mut reference)
            .expect("reference terminates");
        for policy in all_policies() {
            let base = SimConfig::paper(policy)
                .with_wpus(2)
                .with_width(8)
                .with_warps(1);
            let (_, base_cycles) = run(
                &base,
                &program,
                &mem0,
                &format!("seed {seed} policy {} (no plan)", policy.paper_name()),
            );
            for (name, plan) in plans(0x9E37_79B9 ^ seed) {
                let ctx = format!("seed {seed} policy {} plan {name}", policy.paper_name());
                let cfg = base.with_fault(plan);
                let (mem, cycles) = run(&cfg, &program, &mem0, &ctx);
                // Invariant 1: faults perturb timing, never results.
                assert_eq!(
                    output_region(&mem),
                    output_region(&reference),
                    "{ctx}: final memory diverged from reference ({stmts:?})"
                );
                if plan.is_nop() {
                    // Invariant 2: the zero plan is bit-identical to no plan.
                    assert_eq!(cycles, base_cycles, "{ctx}: zero-fault plan changed timing");
                } else {
                    // Invariant 3: chaos is deterministic — replaying the
                    // same plan reproduces the same cycle count.
                    let (_, again) = run(&cfg, &program, &mem0, &ctx);
                    assert_eq!(cycles, again, "{ctx}: fault plan is not reproducible");
                    if cycles != base_cycles {
                        perturbed += 1;
                    }
                }
            }
        }
    }
    assert!(
        perturbed > 100,
        "only {perturbed} chaotic runs shifted timing — injector looks dead"
    );
}
