//! End-to-end tests of the differential fuzzing harness: clean campaigns,
//! deterministic reports, injected-failure detection and classification,
//! and the delta-debugging minimizer's contract (monotonic shrink, class
//! preservation, termination, rejection of passing kernels).

use dws_core::Policy;
use dws_isa::gen::{self, GenConfig};
use dws_sim::fuzz::{
    ast_weight, minimize, reductions, run_campaign, Axis, FailureClass, FuzzConfig, MinimizeError,
    Perturbation,
};

#[test]
fn a_fixed_seed_campaign_is_clean_on_every_axis() {
    let cfg = FuzzConfig {
        seeds: 12,
        ..FuzzConfig::default()
    };
    let report = run_campaign(&cfg);
    assert!(
        report.clean(),
        "real oracle divergence found: {:?}",
        report.failures
    );
    assert_eq!(report.seeds, 12);
    assert_eq!(report.policy, None);
}

#[test]
fn campaign_reports_are_byte_identical_across_runs() {
    let cfg = FuzzConfig {
        seeds: 6,
        minimize: true,
        ..FuzzConfig::default()
    };
    assert_eq!(run_campaign(&cfg).to_json(), run_campaign(&cfg).to_json());
}

#[test]
fn config_hash_distinguishes_campaign_shapes() {
    let a = FuzzConfig::default();
    let b = FuzzConfig {
        policy: Some(Policy::dws_aggress()),
        ..FuzzConfig::default()
    };
    let c = FuzzConfig {
        max_cycles: 1_000,
        ..FuzzConfig::default()
    };
    assert_ne!(a.config_hash(), b.config_hash());
    assert_ne!(a.config_hash(), c.config_hash());
}

#[test]
fn an_injected_stepped_skew_is_caught_classified_and_minimized() {
    let cfg = FuzzConfig {
        seeds: 2,
        minimize: true,
        perturb: Perturbation::SkewStepped,
        ..FuzzConfig::default()
    };
    let report = run_campaign(&cfg);
    assert_eq!(report.failures.len(), 2, "every seed must trip the skew");
    for f in &report.failures {
        assert_eq!(f.class, FailureClass::CycleMismatch(Axis::Stepped));
        assert!(f.replay.contains(&format!("--seed-start {}", f.seed)));
        let m = f.minimized.as_ref().expect("campaign ran with minimize");
        assert!(m.insts < f.insts, "minimized {} of {}", m.insts, f.insts);
        assert!(m.asm.contains("halt"), "reproducer renders as full asm");
    }
    let json = report.to_json();
    assert!(json.contains("cycle-mismatch@stepped"));
    assert!(json.contains("\"minimized_insts\""));
    assert!(json.contains("\"minimized_asm\""));
}

#[test]
fn an_injected_chaos_corruption_is_caught_and_classified() {
    let cfg = FuzzConfig {
        seeds: 1,
        perturb: Perturbation::CorruptChaos,
        ..FuzzConfig::default()
    };
    let report = run_campaign(&cfg);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(
        report.failures[0].class,
        FailureClass::MemoryMismatch(Axis::Chaos)
    );
    assert!(report.failures[0].minimized.is_none(), "minimize was off");
}

#[test]
fn every_reduction_strictly_shrinks_the_weight() {
    // Termination of the greedy minimization loop rests on this invariant:
    // any accepted candidate has strictly smaller weight, and weights are
    // non-negative integers.
    let gcfg = GenConfig::default();
    for seed in 0..24 {
        let ast = gen::generate(seed, &gcfg);
        let w = ast_weight(&ast);
        for cand in reductions(&ast) {
            assert!(
                ast_weight(&cand) < w,
                "seed {seed}: a reduction failed to shrink ({} -> {})",
                w,
                ast_weight(&cand)
            );
        }
    }
}

#[test]
fn minimization_preserves_the_failure_class_and_shrinks() {
    let cfg = FuzzConfig {
        perturb: Perturbation::CorruptChaos,
        // One policy keeps each differential check cheap; the perturbed
        // chaos axis still runs.
        policy: Some(Policy::dws_revive()),
        ..FuzzConfig::default()
    };
    let ast = gen::generate(1, &cfg.gen);
    let (small, finding) = minimize(&ast, 1, &cfg).expect("perturbed kernel fails");
    assert_eq!(finding.class, FailureClass::MemoryMismatch(Axis::Chaos));
    assert!(ast_weight(&small) <= ast_weight(&ast));
    assert!(small.compile().is_ok(), "reproducer still verifies");
}

#[test]
fn minimizing_a_passing_kernel_is_rejected() {
    let cfg = FuzzConfig::default();
    let ast = gen::generate(3, &cfg.gen);
    assert_eq!(
        minimize(&ast, 3, &cfg).unwrap_err(),
        MinimizeError::KernelPasses
    );
}

#[test]
fn a_large_failing_kernel_minimizes_to_a_quarter_or_less() {
    // Acceptance criterion: the minimizer must reach <= 25% of the
    // original instruction count. The compiled floor (prologue + epilogue
    // with empty statement list) is 26 instructions, so pick a seed whose
    // kernel is at least 104 instructions.
    let gcfg = GenConfig {
        max_stmts: 60,
        ..GenConfig::default()
    };
    let cfg = FuzzConfig {
        gen: gcfg,
        perturb: Perturbation::SkewStepped,
        policy: Some(Policy::dws_revive()),
        ..FuzzConfig::default()
    };
    let (seed, insts) = (0..64u64)
        .find_map(|s| {
            let p = gen::generate(s, &cfg.gen).compile().ok()?;
            (p.len() >= 104).then_some((s, p.len()))
        })
        .expect("some seed under 64 compiles to >= 104 instructions");
    let ast = gen::generate(seed, &cfg.gen);
    let (small, finding) = minimize(&ast, seed, &cfg).expect("perturbed kernel fails");
    assert_eq!(finding.class, FailureClass::CycleMismatch(Axis::Stepped));
    let small_insts = small.compile().expect("still compiles").len();
    assert!(
        small_insts * 4 <= insts,
        "minimized to {small_insts} of {insts} instructions (> 25%)"
    );
}
