//! The event-driven run loop must be invisible: [`Machine::run`] skips
//! cycles on a per-WPU basis (each WPU sleeps until its own next wake or
//! fill completion) and charges the skipped stretch lazily, so its results
//! must be bit-identical to stepping [`Machine::step`] one cycle at a time.
//! These tests drive multi-WPU machines so some WPUs sleep while others
//! issue — the path the in-crate single-WPU test cannot reach.

use dws_core::Policy;
use dws_kernels::{Benchmark, Scale};
use dws_sim::{Machine, RunResult, SimConfig};

fn by_step(cfg: &SimConfig, spec: &dws_kernels::KernelSpec) -> RunResult {
    let mut m = Machine::new(cfg, spec);
    while !m.done() {
        m.step();
        assert!(m.now().raw() < 200_000_000, "step loop runaway");
    }
    m.into_result()
}

fn assert_equivalent(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.memory.words(), b.memory.words(), "{what}: memory");
    assert_eq!(a.wst_peaks, b.wst_peaks, "{what}: wst peaks");
    assert_eq!(
        a.per_thread_misses, b.per_thread_misses,
        "{what}: per-thread misses"
    );
    for (i, (x, y)) in a.per_wpu.iter().zip(&b.per_wpu).enumerate() {
        assert_eq!(
            x.busy_cycles.get(),
            y.busy_cycles.get(),
            "{what}: wpu{i} busy"
        );
        assert_eq!(
            x.mem_stall_cycles.get(),
            y.mem_stall_cycles.get(),
            "{what}: wpu{i} mem stall"
        );
        assert_eq!(
            x.idle_cycles.get(),
            y.idle_cycles.get(),
            "{what}: wpu{i} idle"
        );
        assert_eq!(
            x.warp_insts.get(),
            y.warp_insts.get(),
            "{what}: wpu{i} insts"
        );
        assert_eq!(
            x.branch_splits.get() + x.mem_splits.get() + x.revive_splits.get(),
            y.branch_splits.get() + y.mem_splits.get() + y.revive_splits.get(),
            "{what}: wpu{i} splits"
        );
    }
}

/// Non-adaptive policies on two-WPU machines: WPUs stall at different
/// times, so the run loop's per-WPU skipping (one WPU asleep while its
/// neighbour issues) must still reproduce the stepped machine exactly.
#[test]
fn run_matches_step_on_multi_wpu_machines() {
    for policy in [
        Policy::conventional(),
        Policy::dws_aggress(),
        Policy::dws_lazy(),
        Policy::dws_revive(),
    ] {
        for bench in [Benchmark::Merge, Benchmark::Fft] {
            let spec = bench.build(Scale::Test, 11);
            let cfg = SimConfig::paper(policy).with_wpus(2);
            let run = Machine::run(&cfg, &spec).unwrap();
            spec.verify(&run.memory).unwrap();
            let step = by_step(&cfg, &spec);
            assert_equivalent(
                &run,
                &step,
                &format!("{} under {}", bench.name(), policy.paper_name()),
            );
        }
    }
}

/// Adaptive policies (slip, adaptive throttle) sample cycle counters on
/// their own tick cadence, so `run` keeps them in lockstep rather than
/// skipping per WPU. They can legitimately differ from `step` (which never
/// fast-forwards idle stretches the same way the historical loop did), but
/// `run` itself must stay deterministic and correct.
#[test]
fn adaptive_policies_run_deterministically() {
    for policy in [Policy::slip(), Policy::dws_revive_throttled()] {
        let spec = Benchmark::Merge.build(Scale::Test, 11);
        let cfg = SimConfig::paper(policy).with_wpus(2);
        let a = Machine::run(&cfg, &spec).unwrap();
        spec.verify(&a.memory).unwrap();
        let b = Machine::run(&cfg, &spec).unwrap();
        assert_equivalent(&a, &b, policy.paper_name());
    }
}

/// The paper machine (4 WPUs, 4 L1s) exercises per-L1 completion wakeups:
/// each WPU's sleep horizon is the min of its own group wake and the next
/// fill bound for its L1, not a machine-global event time.
#[test]
fn run_matches_step_on_paper_machine() {
    let spec = Benchmark::Filter.build(Scale::Test, 11);
    let cfg = SimConfig::paper(Policy::dws_revive());
    let run = Machine::run(&cfg, &spec).unwrap();
    spec.verify(&run.memory).unwrap();
    let step = by_step(&cfg, &spec);
    assert_equivalent(&run, &step, "filter on the 4-WPU paper machine");
}
