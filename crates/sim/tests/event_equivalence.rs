//! The event-driven run loop must be invisible: [`Machine::run`] skips
//! cycles on a per-WPU basis (each WPU sleeps until its own next wake or
//! fill completion) and charges the skipped stretch lazily, so its results
//! must be bit-identical to stepping [`Machine::step`] one cycle at a time.
//! These tests drive multi-WPU machines so some WPUs sleep while others
//! issue — the path the in-crate single-WPU test cannot reach.

use dws_core::Policy;
use dws_kernels::{Benchmark, Scale};
use dws_sim::{Machine, RunResult, SimConfig};

fn by_step(cfg: &SimConfig, spec: &dws_kernels::KernelSpec) -> RunResult {
    let mut m = Machine::new(cfg, spec);
    while !m.done() {
        m.step();
        assert!(m.now().raw() < 200_000_000, "step loop runaway");
    }
    m.into_result()
}

fn assert_equivalent(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.memory.words(), b.memory.words(), "{what}: memory");
    assert_eq!(a.wst_peaks, b.wst_peaks, "{what}: wst peaks");
    assert_eq!(
        a.per_thread_misses, b.per_thread_misses,
        "{what}: per-thread misses"
    );
    assert_eq!(a.mem, b.mem, "{what}: memory-system stats");
    assert_eq!(a.per_wpu, b.per_wpu, "{what}: per-WPU stats");
}

/// Non-adaptive policies on two-WPU machines: WPUs stall at different
/// times, so the run loop's per-WPU skipping (one WPU asleep while its
/// neighbour issues) must still reproduce the stepped machine exactly.
#[test]
fn run_matches_step_on_multi_wpu_machines() {
    for policy in [
        Policy::conventional(),
        Policy::dws_aggress(),
        Policy::dws_lazy(),
        Policy::dws_revive(),
    ] {
        for bench in [Benchmark::Merge, Benchmark::Fft] {
            let spec = bench.build(Scale::Test, 11);
            let cfg = SimConfig::paper(policy).with_wpus(2);
            let run = Machine::run(&cfg, &spec).unwrap();
            spec.verify(&run.memory).unwrap();
            let step = by_step(&cfg, &spec);
            assert_equivalent(
                &run,
                &step,
                &format!("{} under {}", bench.name(), policy.paper_name()),
            );
        }
    }
}

/// Adaptive policies (slip's inactivity sampling, the adaptive throttle)
/// publish their next decision boundary as a wake event
/// ([`dws_core::Wpu::next_adapt_boundary`]), so the run loop no longer
/// holds them in per-cycle lockstep — it sleeps through event gaps like it
/// does for every other policy, waking for adapt boundaries as it does for
/// memory completions. The event-driven run must still be bit-identical to
/// stepping every cycle.
#[test]
fn adaptive_policies_run_matches_step() {
    for policy in [Policy::slip(), Policy::dws_revive_throttled()] {
        let spec = Benchmark::Merge.build(Scale::Test, 11);
        let cfg = SimConfig::paper(policy).with_wpus(2);
        let run = Machine::run(&cfg, &spec).unwrap();
        spec.verify(&run.memory).unwrap();
        let step = by_step(&cfg, &spec);
        assert_equivalent(&run, &step, policy.paper_name());
    }
}

/// The paper machine (4 WPUs, 4 L1s) exercises per-L1 completion wakeups:
/// each WPU's sleep horizon is the min of its own group wake and the next
/// fill bound for its L1, not a machine-global event time.
#[test]
fn run_matches_step_on_paper_machine() {
    let spec = Benchmark::Filter.build(Scale::Test, 11);
    let cfg = SimConfig::paper(Policy::dws_revive());
    let run = Machine::run(&cfg, &spec).unwrap();
    spec.verify(&run.memory).unwrap();
    let step = by_step(&cfg, &spec);
    assert_equivalent(&run, &step, "filter on the 4-WPU paper machine");
}
