//! The parallel sweep harness must be invisible: for any worker count the
//! outcomes (cycles, stats, final memory) are bit-identical to the strictly
//! serial in-order run, in submission order, across repeated runs.

use dws_core::Policy;
use dws_kernels::{Benchmark, KernelSpec, Scale};
use dws_sim::{SimConfig, SweepRunner};
use std::sync::Arc;

fn job_set() -> Vec<(String, SimConfig, Arc<KernelSpec>)> {
    let policies = [
        ("conv", Policy::conventional()),
        ("aggress", Policy::dws_aggress()),
        ("revive", Policy::dws_revive()),
        ("slip", Policy::slip()),
        ("throttled", Policy::dws_revive_throttled()),
    ];
    let mut jobs = Vec::new();
    for bench in [Benchmark::Filter, Benchmark::Merge] {
        let spec = Arc::new(bench.build(Scale::Test, 7));
        for (name, policy) in policies {
            jobs.push((
                format!("{}-{name}", bench.name()),
                SimConfig::paper(policy).with_wpus(2),
                Arc::clone(&spec),
            ));
        }
    }
    jobs
}

/// Everything observable about a sweep run, in submission order.
fn fingerprint(workers: usize) -> Vec<(String, u64, u64, u64, u64, Vec<u64>)> {
    let mut sweep = SweepRunner::new().with_workers(workers);
    for (label, cfg, spec) in job_set() {
        sweep.add(label, cfg, &spec);
    }
    sweep
        .run()
        .into_iter()
        .map(|o| {
            let r = o.result.expect("sweep job completes");
            o.spec.verify(&r.memory).expect("correct result");
            (
                o.label,
                r.cycles,
                r.wpu.warp_insts.get(),
                r.wpu.mem_stall_cycles.get(),
                r.wpu.branch_splits.get() + r.wpu.mem_splits.get() + r.wpu.revive_splits.get(),
                r.memory.words().to_vec(),
            )
        })
        .collect()
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = fingerprint(1);
    assert_eq!(serial.len(), job_set().len());
    for workers in [2, dws_sim::sweep::default_workers().max(3)] {
        assert_eq!(serial, fingerprint(workers), "workers={workers}");
    }
}

#[test]
fn repeated_serial_sweeps_are_deterministic() {
    assert_eq!(fingerprint(1), fingerprint(1));
}
