//! Simulation configuration and errors.

use crate::diag::DiagnosticReport;
use dws_core::Policy;
use dws_engine::fault::FaultPlan;
use dws_mem::MemConfig;
use std::fmt;
use std::time::Duration;

/// Full machine configuration. Defaults mirror the paper's Table 3.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of WPUs (the paper simulates four).
    pub n_wpus: usize,
    /// SIMD width per warp.
    pub width: usize,
    /// Warps per WPU.
    pub n_warps: usize,
    /// Scheduling policy.
    pub policy: Policy,
    /// Scheduler slots per WPU (paper: double the warp count).
    pub sched_slots: usize,
    /// Warp-split table entries per WPU (paper: 16).
    pub wst_entries: usize,
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Abort the run after this many cycles (deadlock backstop).
    pub max_cycles: u64,
    /// Deterministic timing-fault injection plan (default: no faults; the
    /// zero-fault plan is bit-identical to a machine without injection).
    pub fault: FaultPlan,
    /// Forward-progress watchdog: abort with [`SimError::Livelock`] after
    /// this many consecutive processed cycles in which no WPU retired an
    /// instruction. Sleeping through an event gap is not livelock — only
    /// densely processed, retire-free cycles count.
    pub livelock_window: u64,
    /// Optional host wall-clock budget for one run; exceeded budgets abort
    /// with [`SimError::HostBudget`].
    pub host_budget: Option<Duration>,
    /// Intra-run worker threads sharding the WPUs of *one* machine
    /// (deterministic: results are bit-identical at any thread count).
    /// `None` defers to the `DWS_THREADS` environment variable, defaulting
    /// to 1 (serial).
    pub threads: Option<usize>,
}

impl SimConfig {
    /// The paper's baseline machine: 4 WPUs x 16-wide x 4 warps over the
    /// Table 3 hierarchy, under the given policy.
    pub fn paper(policy: Policy) -> Self {
        let n_wpus = 4;
        let width = 16;
        SimConfig {
            n_wpus,
            width,
            n_warps: 4,
            policy,
            sched_slots: 8,
            wst_entries: 16,
            mem: MemConfig::paper(n_wpus, width),
            max_cycles: 20_000_000_000,
            fault: FaultPlan::NONE,
            livelock_window: 2_000_000,
            host_budget: None,
            threads: None,
        }
    }

    /// Pins the intra-run worker thread count (overrides `DWS_THREADS`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Changes the WPU count (and the matching number of L1s).
    pub fn with_wpus(mut self, n: usize) -> Self {
        self.n_wpus = n;
        self.mem.n_l1s = n;
        self
    }

    /// Changes the SIMD width (and the L1 banking that follows it).
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width;
        self.mem.l1d.banks = width.max(1);
        self
    }

    /// Changes the multi-threading depth and keeps the paper's 2x scheduler
    /// sizing.
    pub fn with_warps(mut self, n_warps: usize) -> Self {
        self.n_warps = n_warps;
        self.sched_slots = 2 * n_warps;
        self
    }

    /// Changes the policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Total hardware threads in the machine.
    pub fn total_threads(&self) -> u64 {
        (self.n_wpus * self.width * self.n_warps) as u64
    }

    /// The livelock window actually enforced by a run: the
    /// `DWS_WATCHDOG_LIVELOCK` environment variable (processed cycles, at
    /// least 1) when set and valid, else
    /// [`livelock_window`](SimConfig::livelock_window). Malformed or zero
    /// values warn once and fall back, mirroring `DWS_JOBS` handling.
    pub fn effective_livelock_window(&self) -> u64 {
        env_watchdog_u64("DWS_WATCHDOG_LIVELOCK")
            .unwrap_or(self.livelock_window)
            .max(1)
    }

    /// The host wall-clock budget actually enforced by a run:
    /// `DWS_WATCHDOG_HOST_MS` (milliseconds, >= 1) when set and valid,
    /// else [`host_budget`](SimConfig::host_budget). The override can
    /// impose a budget on a config that has none; it cannot remove one.
    pub fn effective_host_budget(&self) -> Option<Duration> {
        env_watchdog_u64("DWS_WATCHDOG_HOST_MS")
            .map(Duration::from_millis)
            .or(self.host_budget)
    }
}

/// Reads a watchdog override variable: `Some(n)` for a valid `n >= 1`,
/// `None` (after a once-only warning for malformed input) otherwise.
fn env_watchdog_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    match parse_watchdog_value(&raw) {
        Ok(n) => Some(n),
        Err(why) => {
            crate::sweep::warn_once(&format!(
                "{var}={raw:?} {why}; using the configured watchdog value"
            ));
            None
        }
    }
}

/// Pure watchdog-value parser (split out so tests need not mutate the
/// process environment): accepts a positive integer, rejects zero and
/// non-numeric input with a human-readable reason.
pub(crate) fn parse_watchdog_value(raw: &str) -> Result<u64, &'static str> {
    match raw.trim().parse::<u64>() {
        Ok(0) => Err("is zero (need >= 1)"),
        Ok(n) => Ok(n),
        Err(_) => Err("is not a positive integer"),
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The cycle budget elapsed; carries a machine-state snapshot.
    Timeout {
        /// Cycle count at abort.
        cycles: u64,
        /// Machine-state snapshot at abort.
        diagnostics: DiagnosticReport,
    },
    /// No WPU can make progress and no event is pending.
    Deadlock {
        /// Cycle of detection.
        cycles: u64,
        /// Machine-state snapshot at abort.
        diagnostics: DiagnosticReport,
    },
    /// Cycles kept advancing but no instruction retired for the configured
    /// [`livelock_window`](SimConfig::livelock_window) — the machine spins
    /// without forward progress (e.g. a structural-reject loop that can
    /// never drain).
    Livelock {
        /// Cycle of detection.
        cycles: u64,
        /// Consecutive processed cycles without a retired instruction.
        stalled_for: u64,
        /// Machine-state snapshot at abort.
        diagnostics: DiagnosticReport,
    },
    /// The per-run host wall-clock budget elapsed.
    HostBudget {
        /// Cycle count at abort.
        cycles: u64,
        /// The budget that was exceeded.
        budget: Duration,
    },
    /// The final memory image failed the kernel's verifier (streaming
    /// sweeps check on arrival, before the image is dropped).
    VerifyFailed {
        /// Label of the sweep job that failed.
        label: String,
        /// The verifier's mismatch report.
        message: String,
    },
    /// The worker running this sweep job panicked; the sweep's other jobs
    /// were unaffected.
    Panicked {
        /// Label of the sweep job that panicked.
        label: String,
        /// The panic payload, rendered to a string.
        payload: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles, .. } => {
                write!(f, "simulation exceeded its cycle budget at cycle {cycles}")
            }
            SimError::Deadlock { cycles, .. } => {
                write!(f, "simulation deadlocked at cycle {cycles}")
            }
            SimError::Livelock {
                cycles,
                stalled_for,
                ..
            } => {
                write!(
                    f,
                    "simulation livelocked at cycle {cycles}: no instruction retired \
                     for {stalled_for} processed cycles"
                )
            }
            SimError::HostBudget { cycles, budget } => {
                write!(
                    f,
                    "simulation exceeded its {:.1}s host budget at cycle {cycles}",
                    budget.as_secs_f64()
                )
            }
            SimError::VerifyFailed { label, message } => {
                write!(f, "verification failed for {label}: {message}")
            }
            SimError::Panicked { label, payload } => {
                write!(f, "worker panicked in {label}: {payload}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper(Policy::conventional());
        assert_eq!(c.n_wpus, 4);
        assert_eq!(c.width, 16);
        assert_eq!(c.n_warps, 4);
        assert_eq!(c.sched_slots, 8);
        assert_eq!(c.wst_entries, 16);
        assert_eq!(c.total_threads(), 256);
    }

    #[test]
    fn builders_update_dependents() {
        let c = SimConfig::paper(Policy::conventional())
            .with_wpus(2)
            .with_width(8)
            .with_warps(6);
        assert_eq!(c.mem.n_l1s, 2);
        assert_eq!(c.mem.l1d.banks, 8);
        assert_eq!(c.sched_slots, 12);
        assert_eq!(c.total_threads(), 2 * 8 * 6);
    }

    #[test]
    fn watchdog_value_parsing() {
        assert_eq!(parse_watchdog_value("500"), Ok(500));
        assert_eq!(parse_watchdog_value("  42\n"), Ok(42));
        assert!(parse_watchdog_value("0").is_err());
        assert!(parse_watchdog_value("-3").is_err());
        assert!(parse_watchdog_value("fast").is_err());
        assert!(parse_watchdog_value("1.5").is_err());
        assert!(parse_watchdog_value("").is_err());
    }

    #[test]
    fn effective_watchdogs_fall_back_to_config() {
        // The DWS_WATCHDOG_* variables are unset under `cargo test`; the
        // env-override path itself is covered by the CLI fuzz smoke run,
        // which sets them explicitly.
        let mut c = SimConfig::paper(Policy::conventional());
        c.livelock_window = 1234;
        assert_eq!(c.effective_livelock_window(), 1234);
        assert_eq!(c.effective_host_budget(), None);
        c.host_budget = Some(Duration::from_millis(250));
        assert_eq!(c.effective_host_budget(), Some(Duration::from_millis(250)));
        c.livelock_window = 0; // still clamped to >= 1
        assert_eq!(c.effective_livelock_window(), 1);
    }

    #[test]
    fn error_display() {
        let empty = DiagnosticReport {
            cycles: 7,
            wpus: Vec::new(),
            pending_fills: 0,
        };
        let e = SimError::Deadlock {
            cycles: 7,
            diagnostics: empty.clone(),
        };
        assert!(e.to_string().contains("deadlock"));
        let e = SimError::Livelock {
            cycles: 9,
            stalled_for: 4,
            diagnostics: empty,
        };
        assert!(e.to_string().contains("livelock"));
        let e = SimError::HostBudget {
            cycles: 11,
            budget: Duration::from_secs(2),
        };
        assert!(e.to_string().contains("host budget"));
        let e = SimError::Panicked {
            label: "job".into(),
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }
}
