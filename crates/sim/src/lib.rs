//! Whole-machine simulation: the paper's four-WPU system over a two-level
//! coherent cache hierarchy, with a deterministic run loop, global-barrier
//! coordination, metric collection, and experiment presets for every
//! figure and table.
//!
//! # Example
//!
//! ```
//! use dws_sim::{Machine, SimConfig};
//! use dws_core::Policy;
//! use dws_kernels::{Benchmark, Scale};
//!
//! let spec = Benchmark::Filter.build(Scale::Test, 1);
//! let cfg = SimConfig::paper(Policy::dws_revive()).with_wpus(1);
//! let result = Machine::run(&cfg, &spec).expect("simulation completes");
//! spec.verify(&result.memory).expect("functionally correct");
//! assert!(result.cycles > 0);
//! ```

pub mod config;
pub mod diag;
pub mod fuzz;
pub mod lint;
pub mod machine;
pub mod metrics;
pub mod parallel;
pub mod presets;
pub mod sweep;

pub use config::{SimConfig, SimError};
pub use diag::{DiagnosticReport, WpuDiag};
pub use fuzz::{
    check_program, run_campaign, Axis, FailureClass, FuzzConfig, FuzzFailure, FuzzFinding,
    FuzzReport, Perturbation, WatchdogKind,
};
pub use lint::lint_spec;
pub use machine::Machine;
pub use metrics::RunResult;
pub use parallel::default_threads;
pub use sweep::{failure_summary, SweepOutcome, SweepRunner};
