//! Machine-aware kernel linting: static verification with the machine's
//! actual parameters substituted in.
//!
//! The `dws-isa` verifier runs at program-build time with no machine
//! context: it knows the CFG but not how many threads will execute it, how
//! much memory backs it, or how deep the warp-split table is. This module
//! closes that gap. [`lint_spec`] re-runs the full pass pipeline with
//!
//! * `nthreads` = [`SimConfig::total_threads`] — so `r0`/`r1` get tight
//!   intervals and grid-stride address arithmetic becomes provable,
//! * `mem_bytes` = the spec's allocated [`VecMemory`] size — so the
//!   interval bounds pass classifies every access against the real
//!   allocation,
//! * `wst_capacity` = [`SimConfig::wst_entries`] — so the static
//!   re-convergence-stack bound is checked against the hardware that will
//!   actually hold the splits,
//!
//! and then cross-checks the spec's declared [`BufferLayout`] against the
//! allocation (fit, overlap), reporting `DWS0404 LayoutMismatch` for every
//! disagreement. This is the engine behind `dws-cli lint`.

use dws_isa::{Diagnostic, DwsLintCode, VerifyOptions, VerifyReport};
use dws_kernels::KernelSpec;

use crate::config::SimConfig;

/// Lints a built kernel under a concrete machine configuration.
///
/// Returns the merged report: the five IR verifier passes run with the
/// machine's thread count, memory size, and WST capacity, plus the
/// layout-vs-allocation cross-check.
pub fn lint_spec(cfg: &SimConfig, spec: &KernelSpec) -> VerifyReport {
    let opts = VerifyOptions::default()
        .with_nthreads(cfg.total_threads())
        .with_mem_bytes(spec.memory.size_bytes())
        .with_wst_capacity(cfg.wst_entries);
    let mut report = spec.program.lint(&opts);
    for problem in spec.layout.check(spec.memory.size_bytes()) {
        report.push(Diagnostic::new(
            DwsLintCode::LayoutMismatch,
            None,
            None,
            format!("{}: {problem}", spec.name),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::Severity;
    use dws_kernels::{Benchmark, BufferLayout, Scale};

    #[test]
    fn shipped_kernels_lint_clean_under_paper_machine() {
        let cfg = SimConfig::paper(dws_core::Policy::dws_revive());
        for bench in Benchmark::ALL {
            let spec = bench.build(Scale::Test, 42);
            let report = lint_spec(&cfg, &spec);
            assert_eq!(report.count(Severity::Error), 0, "{bench}:\n{report}");
            assert_eq!(report.count(Severity::Warning), 0, "{bench}:\n{report}");
        }
    }

    #[test]
    fn layout_overrun_is_reported_as_mismatch() {
        let cfg = SimConfig::paper(dws_core::Policy::dws_revive());
        let mut spec = Benchmark::Merge.build(Scale::Test, 42);
        // Forge a declaration that overruns the allocation.
        let words = spec.memory.size_bytes() / 8;
        spec = spec.with_layout(BufferLayout::of(&[("bogus", 0, words + 1)]));
        let report = lint_spec(&cfg, &spec);
        let d = report.find(DwsLintCode::LayoutMismatch).expect("finding");
        assert_eq!(d.severity, Severity::Error);
        assert!(report.has_errors());
    }

    #[test]
    fn tiny_wst_flags_deeply_nested_kernels() {
        // With a 1-entry WST every kernel that nests two divergent
        // branches must draw the depth warning; the shipped suite at the
        // paper's 16 entries must not (covered above). Use Short, whose
        // min-update branch nests under the window loop.
        let mut cfg = SimConfig::paper(dws_core::Policy::dws_revive());
        cfg.wst_entries = 1;
        let spec = Benchmark::Short.build(Scale::Test, 42);
        let report = lint_spec(&cfg, &spec);
        assert!(
            report.stats.reconv_stack_bound() > 1,
            "Short should nest: {:?}",
            report.stats
        );
        assert!(report.find(DwsLintCode::ReconvDepthExceedsWst).is_some());
    }
}
