//! Parallel sweep execution.
//!
//! The paper's evaluation is a wall of independent simulations — up to
//! eight benchmarks times many configurations per figure — and each
//! simulation is single-threaded and deterministic. `SweepRunner` fans
//! those `(label, SimConfig, Arc<KernelSpec>)` jobs over a scoped worker
//! pool: workers claim jobs through an atomic index (work stealing by
//! next-job-wins), each kernel's generated inputs are shared via `Arc`
//! instead of regenerated per point, and results are returned in
//! submission order so anything printed from them is byte-identical to a
//! serial run.
//!
//! Worker count comes from the `DWS_JOBS` environment variable when set
//! (with `DWS_JOBS=1` falling back to a strictly in-order inline loop),
//! otherwise from [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use dws_core::Policy;
//! use dws_kernels::{Benchmark, Scale};
//! use dws_sim::{SimConfig, SweepRunner};
//! use std::sync::Arc;
//!
//! let spec = Arc::new(Benchmark::Filter.build(Scale::Test, 1));
//! let mut sweep = SweepRunner::new();
//! let conv = sweep.add("conv", SimConfig::paper(Policy::conventional()).with_wpus(1), &spec);
//! let dws = sweep.add("dws", SimConfig::paper(Policy::dws_revive()).with_wpus(1), &spec);
//! let results = sweep.run();
//! assert_eq!(results.len(), 2);
//! assert!(results[conv].result.is_ok() && results[dws].result.is_ok());
//! ```

use crate::config::{SimConfig, SimError};
use crate::machine::Machine;
use crate::metrics::RunResult;
use dws_kernels::KernelSpec;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One queued simulation: a labelled `(config, kernel)` point.
pub struct SweepJob {
    /// Display label (policy name, config description, ...).
    pub label: String,
    /// Machine configuration for this point.
    pub config: SimConfig,
    /// The kernel, shared across all points that simulate it.
    pub spec: Arc<KernelSpec>,
}

/// The completed form of a [`SweepJob`].
pub struct SweepOutcome {
    /// The job's label, carried through for reporting.
    pub label: String,
    /// The kernel the job simulated (for verification).
    pub spec: Arc<KernelSpec>,
    /// The simulation result or failure.
    pub result: Result<RunResult, SimError>,
    /// Host wall-clock seconds this single simulation took.
    pub host_seconds: f64,
}

/// Worker count for a sweep: `DWS_JOBS` if set and >= 1, else the host's
/// available parallelism, else 1. `DWS_JOBS=0` and unparseable values are
/// rejected with a once-per-process stderr warning, then fall back to
/// auto-detection.
#[must_use]
pub fn default_workers() -> usize {
    env_worker_count("DWS_JOBS").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Parses a worker-count environment variable: `Some(n)` for an integer of
/// at least 1, `None` when unset. Zero and unparseable values are rejected
/// with a once-per-process stderr warning, then treated as unset so the
/// caller falls back to its default. Shared by [`default_workers`]
/// (`DWS_JOBS`, inter-run sweep workers) and
/// [`default_threads`](crate::parallel::default_threads) (`DWS_THREADS`,
/// intra-run WPU shards).
pub(crate) fn env_worker_count(var: &str) -> Option<usize> {
    let v = std::env::var(var).ok()?;
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        Ok(_) => {
            warn_once(&format!(
                "{var}=0 is invalid (need >= 1); using the default"
            ));
            None
        }
        Err(_) => {
            warn_once(&format!(
                "{var}={v:?} is not a worker count; using the default"
            ));
            None
        }
    }
}

/// Prints one warning to stderr, at most once per process.
pub(crate) fn warn_once(msg: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| eprintln!("warning: {msg}"));
}

/// One line per failed job, or `None` when every outcome succeeded — the
/// end-of-sweep failure summary for harnesses that keep going past a
/// poisoned job.
#[must_use]
pub fn failure_summary(outcomes: &[SweepOutcome]) -> Option<String> {
    use std::fmt::Write as _;
    let failed = outcomes.iter().filter(|o| o.result.is_err()).count();
    if failed == 0 {
        return None;
    }
    let mut s = format!("{failed}/{} sweep jobs failed:", outcomes.len());
    for o in outcomes {
        if let Err(e) = &o.result {
            let _ = write!(s, "\n  {}: {e}", o.label);
        }
    }
    Some(s)
}

/// Renders a `catch_unwind` payload: panics carry a `&str` or `String`
/// message in practice; anything else gets a placeholder.
pub(crate) fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A queue of independent simulation jobs executed by a worker pool.
#[derive(Default)]
pub struct SweepRunner {
    jobs: Vec<SweepJob>,
    workers: Option<usize>,
    job_budget: Option<Duration>,
}

impl SweepRunner {
    /// An empty sweep; worker count resolved from the environment at
    /// [`run`](Self::run) time.
    #[must_use]
    pub fn new() -> Self {
        SweepRunner::default()
    }

    /// Overrides the worker count (tests; callers normally use `DWS_JOBS`).
    #[must_use]
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Caps each job's host wall-clock time: a job still running when its
    /// budget elapses aborts with [`SimError::HostBudget`] (jobs that
    /// already carry a tighter [`SimConfig::host_budget`] keep it).
    #[must_use]
    pub fn with_job_budget(mut self, budget: Duration) -> Self {
        self.job_budget = Some(budget);
        self
    }

    /// Queues one simulation and returns its job id — the index of its
    /// outcome in the slice returned by [`run`](Self::run).
    pub fn add(
        &mut self,
        label: impl Into<String>,
        config: SimConfig,
        spec: &Arc<KernelSpec>,
    ) -> usize {
        self.jobs.push(SweepJob {
            label: label.into(),
            config,
            spec: Arc::clone(spec),
        });
        self.jobs.len() - 1
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every queued job and returns outcomes in submission order.
    pub fn run(self) -> Vec<SweepOutcome> {
        self.run_with(|_, _| {})
    }

    /// Runs every queued job, invoking `on_complete(job_id, outcome)` as
    /// each finishes (from whichever worker thread ran it; completion
    /// order is nondeterministic with more than one worker). Outcomes are
    /// returned in submission order regardless.
    ///
    /// # Panics
    ///
    /// Propagates panics from `on_complete` (e.g. verification failures),
    /// prefixed with the failing job's label so one bad point in a
    /// 100-point sweep is attributable from the panic message alone.
    pub fn run_with<F>(self, on_complete: F) -> Vec<SweepOutcome>
    where
        F: Fn(usize, &SweepOutcome) + Sync,
    {
        self.run_map(|i, o| {
            on_complete(i, &o);
            o
        })
    }

    /// Streaming execution: each `RunResult` is verified against its
    /// kernel's spec on the worker that produced it, and the final memory
    /// image is dropped before the outcome is collected. Peak RSS stays
    /// one machine per worker instead of one memory image per job, which
    /// is what makes paper-scale grids practical. A verifier mismatch
    /// surfaces as [`SimError::VerifyFailed`] in that job's outcome.
    pub fn run_streaming(self) -> Vec<SweepOutcome> {
        self.run_map(|_, mut o| {
            if let Ok(r) = &mut o.result {
                match o.spec.verify(&r.memory) {
                    Ok(()) => r.memory = dws_isa::VecMemory::new(0),
                    Err(message) => {
                        o.result = Err(SimError::VerifyFailed {
                            label: o.label.clone(),
                            message,
                        });
                    }
                }
            }
            o
        })
    }

    /// Shared driver: runs each job, pipes its outcome through `map` on
    /// the worker thread, and returns the mapped outcomes in submission
    /// order. A panic inside `Machine::run` is caught and isolated to its
    /// own job as [`SimError::Panicked`]; a panic from `map` (the caller's
    /// callback) is re-raised with the job's label attached — carried back
    /// to the calling thread explicitly, because `thread::scope` replaces
    /// a worker's panic payload with a generic message.
    fn run_map<F>(self, map: F) -> Vec<SweepOutcome>
    where
        F: Fn(usize, SweepOutcome) -> SweepOutcome + Sync,
    {
        let n = self.jobs.len();
        let workers = self.workers.unwrap_or_else(default_workers).min(n.max(1));
        let job_budget = self.job_budget;
        let jobs = self.jobs;

        let run_one = |i: usize, job: &SweepJob| -> Result<SweepOutcome, String> {
            let t0 = Instant::now();
            let mut config = job.config;
            if let Some(b) = job_budget {
                config.host_budget = Some(config.host_budget.map_or(b, |own| own.min(b)));
            }
            let result =
                std::panic::catch_unwind(AssertUnwindSafe(|| Machine::run(&config, &job.spec)))
                    .unwrap_or_else(|p| {
                        Err(SimError::Panicked {
                            label: job.label.clone(),
                            payload: panic_payload(p.as_ref()),
                        })
                    });
            let outcome = SweepOutcome {
                label: job.label.clone(),
                spec: Arc::clone(&job.spec),
                result,
                host_seconds: t0.elapsed().as_secs_f64(),
            };
            match std::panic::catch_unwind(AssertUnwindSafe(|| map(i, outcome))) {
                Ok(mapped) => Ok(mapped),
                Err(p) => Err(format!(
                    "sweep job '{}' (id {i}): {}",
                    job.label,
                    panic_payload(p.as_ref())
                )),
            }
        };

        if workers <= 1 {
            // Strictly in-order inline execution: with DWS_JOBS=1 even the
            // progress callback fires in submission order, so stderr (not
            // just stdout) is byte-identical to the historical serial
            // harness.
            return jobs
                .iter()
                .enumerate()
                .map(|(i, j)| run_one(i, j).unwrap_or_else(|msg| panic!("{msg}")))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SweepOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // First callback panic, label-annotated; re-raised after the join.
        let aborted: Mutex<Option<String>> = Mutex::new(None);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match run_one(i, &jobs[i]) {
                        Ok(outcome) => *slots[i].lock().unwrap() = Some(outcome),
                        Err(msg) => {
                            aborted.lock().unwrap().get_or_insert(msg);
                            break;
                        }
                    }
                });
            }
        });
        if let Some(msg) = aborted.into_inner().unwrap() {
            panic!("{msg}");
        }
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("no worker aborted, so every job slot is filled")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_core::Policy;
    use dws_kernels::{Benchmark, Scale};

    #[test]
    fn empty_sweep_is_fine() {
        assert!(SweepRunner::new().is_empty());
        assert!(SweepRunner::new().run().is_empty());
        assert!(SweepRunner::new().with_workers(8).run().is_empty());
    }

    #[test]
    fn outcomes_come_back_in_submission_order() {
        let spec = Arc::new(Benchmark::Short.build(Scale::Test, 3));
        let mut sweep = SweepRunner::new().with_workers(4);
        let mut ids = Vec::new();
        for (i, policy) in [Policy::conventional(), Policy::dws_revive(), Policy::slip()]
            .into_iter()
            .enumerate()
        {
            ids.push(sweep.add(
                format!("job{i}"),
                SimConfig::paper(policy).with_wpus(1),
                &spec,
            ));
        }
        assert_eq!(sweep.len(), 3);
        let out = sweep.run();
        assert_eq!(ids, vec![0, 1, 2]);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.label, format!("job{i}"));
            let r = o.result.as_ref().unwrap();
            o.spec.verify(&r.memory).unwrap();
            assert!(o.host_seconds >= 0.0);
        }
    }

    #[test]
    fn callback_sees_every_job_exactly_once() {
        let spec = Arc::new(Benchmark::Filter.build(Scale::Test, 5));
        let mut sweep = SweepRunner::new().with_workers(3);
        for i in 0..7 {
            sweep.add(
                format!("p{i}"),
                SimConfig::paper(Policy::dws_revive()).with_wpus(1),
                &spec,
            );
        }
        let seen = Mutex::new(vec![0u32; 7]);
        sweep.run_with(|i, o| {
            assert!(o.result.is_ok());
            seen.lock().unwrap()[i] += 1;
        });
        assert_eq!(*seen.lock().unwrap(), vec![1; 7]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn streaming_verifies_and_drops_memory() {
        let spec = Arc::new(Benchmark::Filter.build(Scale::Test, 5));
        let mut sweep = SweepRunner::new().with_workers(2);
        for i in 0..4 {
            sweep.add(
                format!("s{i}"),
                SimConfig::paper(Policy::dws_revive()).with_wpus(1),
                &spec,
            );
        }
        let out = sweep.run_streaming();
        assert_eq!(out.len(), 4);
        for o in &out {
            let r = o.result.as_ref().unwrap();
            assert!(r.memory.words().is_empty(), "image dropped after verify");
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn streaming_reports_verifier_mismatch() {
        let good = Benchmark::Short.build(Scale::Test, 3);
        let bad = Arc::new(dws_kernels::KernelSpec::new(
            "short",
            good.program.clone(),
            good.memory.clone(),
            |_| Err("forced mismatch".into()),
        ));
        let mut sweep = SweepRunner::new().with_workers(1);
        sweep.add(
            "bad",
            SimConfig::paper(Policy::conventional()).with_wpus(1),
            &bad,
        );
        let out = sweep.run_streaming();
        match &out[0].result {
            Err(SimError::VerifyFailed { label, message }) => {
                assert_eq!(label, "bad");
                assert!(message.contains("forced mismatch"));
            }
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
    }
}
