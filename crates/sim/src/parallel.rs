//! Deterministic intra-run parallelism: shard one machine's WPUs across a
//! persistent worker pool.
//!
//! # Execution model
//!
//! Each processed cycle splits into two phases, following the
//! [`Component`](dws_engine::Component) discipline:
//!
//! 1. **Compute** (parallel): every due WPU runs
//!    [`Wpu::tick_compute`], which touches only WPU-local state — the
//!    scheduler, the warp-split table, the register file, and the WPU's
//!    private L1-I. A tick that reaches a shared-memory-system interaction
//!    suspends with [`Phase::NeedsCommit`] instead of touching the
//!    hierarchy.
//! 2. **Commit** (serial, ordered): the coordinator resumes every
//!    suspended WPU with [`Wpu::tick_commit`] in ascending WPU-index
//!    order against the shared [`MemorySystem`](dws_mem::MemorySystem).
//!
//! # Why this is bit-identical to the serial engine
//!
//! The serial loop ticks due WPUs in index order, so WPU *j*'s tick
//! observes the memory system after WPU *i*'s (*i < j*). In the parallel
//! loop, compute phases read no shared mutable state — a WPU's compute
//! result cannot depend on what any other WPU did this cycle — and the
//! commit pass replays the shared-state interactions in exactly the
//! serial order. Every crossbar slot, MSHR allocation, DRAM-queue entry,
//! and fault-RNG draw therefore happens at the same (cycle, WPU) point as
//! in the serial engine, at any thread count. The serial engine is kept
//! as the differential oracle (`parallel_equivalence` tests).
//!
//! # Pool mechanics
//!
//! Workers are spawned once per run in a [`std::thread::scope`] and
//! rendezvous with the coordinator through an epoch counter: the
//! coordinator publishes a [`Job`] (raw shard pointers + the cycle to
//! process), bumps the epoch, processes shard 0 itself, then waits for
//! the workers' done-count. Both waits spin briefly and then *park*, so
//! an oversubscribed host (more shards than cores — the extreme being a
//! single-core machine) degrades to ordinary blocking handoffs instead of
//! burning whole scheduler quanta in spin loops. Worker panics are caught
//! by a drop guard that poisons the pool instead of hanging the
//! coordinator; coordinator exits (including unwinds) raise a shutdown
//! flag so workers always terminate.

use crate::config::{SimConfig, SimError};
use crate::machine::Machine;
use crate::metrics::RunResult;
use dws_core::{TickClass, Wpu};
use dws_engine::{Cycle, Phase};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Intra-run thread count: `DWS_THREADS` if set and >= 1, else 1 (serial).
/// Unlike `DWS_JOBS` this does *not* auto-detect host parallelism — sweeps
/// already saturate the host with one run per worker, so intra-run
/// sharding is opt-in.
#[must_use]
pub fn default_threads() -> usize {
    crate::sweep::env_worker_count("DWS_THREADS").unwrap_or(1)
}

/// One cycle's work order, published by the coordinator to the pool.
///
/// Raw pointers into the coordinator's per-WPU arrays; shard `s` of `t`
/// owns the contiguous index range `[s*ceil(n/t), (s+1)*ceil(n/t)) ∩
/// [0, n)` and touches nothing outside it.
#[derive(Clone, Copy)]
struct Job {
    wpus: *mut Wpu,
    wake: *mut Option<Cycle>,
    adapt_at: *mut Option<Cycle>,
    charged: *mut Cycle,
    last_class: *mut TickClass,
    needs_commit: *mut bool,
    n: usize,
    threads: usize,
    now: Cycle,
}

// SAFETY: the pointers are only dereferenced for the shard's own disjoint
// index range, and only between the epoch bump that publishes the job and
// the done-count increment that retires it (both fenced by
// acquire/release ordering on `PoolShared`).
unsafe impl Send for Job {}

/// Coordinator/worker rendezvous state.
struct PoolShared {
    /// Bumped (release) after a fresh [`Job`] is written; workers spin on
    /// it (acquire).
    epoch: AtomicU64,
    /// Workers that have finished the current epoch.
    done: AtomicUsize,
    /// The current work order; written by the coordinator while all
    /// workers are quiescent (between their done-increment and the next
    /// epoch bump).
    job: UnsafeCell<Job>,
    /// Raised when the run ends (normally or by unwind); workers exit.
    shutdown: AtomicBool,
    /// Raised by a worker's drop guard if its shard panicked.
    poisoned: AtomicBool,
    /// Any shard observed a `Busy` tick this cycle (serial loop's
    /// `any_busy`).
    any_busy: AtomicBool,
    /// The coordinator thread, unparked by each worker's done-increment.
    coordinator: std::thread::Thread,
}

// SAFETY: `job` is the only non-Sync field; the epoch/done protocol above
// guarantees exclusive coordinator access while writing and shared
// read-only access while workers run.
unsafe impl Sync for PoolShared {}

/// Increments `done` even if the shard panics, so the coordinator never
/// hangs; a panicking shard poisons the pool first.
struct DoneGuard<'a> {
    shared: &'a PoolShared,
    panicked: bool,
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        if self.panicked {
            self.shared.poisoned.store(true, Ordering::Release);
        }
        self.shared.done.fetch_add(1, Ordering::Release);
        self.shared.coordinator.unpark();
    }
}

/// Unblocks and retires the workers when the coordinator leaves the run
/// loop for any reason, including an unwind.
struct ShutdownGuard<'a> {
    shared: &'a PoolShared,
    workers: &'a [std::thread::Thread],
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for w in self.workers {
            w.unpark();
        }
    }
}

/// Spin briefly, yield a few times, then park until `pred` holds.
///
/// `unpark` tokens are sticky and the condition is re-checked around
/// every park, so stale tokens from a previous cycle and spurious wakes
/// both just cost one extra loop iteration.
fn wait_until(pred: impl Fn() -> bool) {
    for _ in 0..128 {
        if pred() {
            return;
        }
        std::hint::spin_loop();
    }
    for _ in 0..4 {
        if pred() {
            return;
        }
        std::thread::yield_now();
    }
    while !pred() {
        std::thread::park();
    }
}

/// Processes one shard of the published job: due-check, lazy stall
/// charge, and the compute phase for every WPU in the shard's range.
/// Completed ticks update their wake/adapt/class slots; suspended ticks
/// only mark `needs_commit` and leave bookkeeping to the commit pass.
///
/// # Safety
///
/// The job's pointers must be live, and no other thread may touch this
/// shard's index range for the duration of the call.
unsafe fn run_shard(job: &Job, shard: usize, any_busy: &AtomicBool) {
    let chunk = job.n.div_ceil(job.threads);
    let lo = (shard * chunk).min(job.n);
    let hi = ((shard + 1) * chunk).min(job.n);
    let now = job.now;
    for i in lo..hi {
        let wake = &mut *job.wake.add(i);
        let adapt = &mut *job.adapt_at.add(i);
        let due = wake.is_some_and(|w| w <= now) || adapt.is_some_and(|a| a <= now);
        if !due {
            continue;
        }
        let wpu = &mut *job.wpus.add(i);
        let charged = &mut *job.charged.add(i);
        let last_class = &mut *job.last_class.add(i);
        let lag = now - *charged;
        if lag > 0 {
            wpu.account_skipped_stall(lag, *last_class);
        }
        *charged = now + 1;
        match wpu.tick_compute(now) {
            Phase::Complete(t) => {
                *last_class = t;
                *wake = match t {
                    TickClass::Busy => {
                        any_busy.store(true, Ordering::Relaxed);
                        Some(now + 1)
                    }
                    TickClass::Done => None,
                    TickClass::StallMem | TickClass::Idle => wpu.cached_next_wake(),
                };
                *adapt = wpu.next_adapt_boundary();
            }
            Phase::NeedsCommit => *job.needs_commit.add(i) = true,
        }
    }
}

/// Worker body: wait for an epoch bump, process the published job's
/// shard, report done. Exits on shutdown.
fn worker_loop(shared: &PoolShared, shard: usize) {
    // Baseline at the epoch's initial value, NOT a load: the coordinator
    // may have published epoch 1 before this thread ran its first
    // instruction, and adopting that as the baseline would skip the job
    // (and deadlock the coordinator's done-wait).
    let mut seen = 0u64;
    loop {
        wait_until(|| shared.epoch.load(Ordering::Acquire) != seen);
        seen = shared.epoch.load(Ordering::Acquire);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the acquire-load of the bumped epoch synchronizes with
        // the coordinator's release-store after writing the job.
        let job = unsafe { *shared.job.get() };
        let mut guard = DoneGuard {
            shared,
            panicked: true,
        };
        // SAFETY: shard indices are disjoint per worker; the job is live
        // until every worker increments `done`.
        unsafe { run_shard(&job, shard, &shared.any_busy) };
        guard.panicked = false;
    }
}

/// The parallel twin of `Machine::run_serial`: identical control flow
/// (completion prologue, global barrier, watchdogs, event-driven sleep),
/// with the per-WPU tick loop replaced by the sharded
/// compute-then-ordered-commit protocol described in the module docs.
/// Keep the two loops in sync when editing either.
pub(crate) fn run_parallel(
    machine: Machine,
    config: &SimConfig,
    threads: usize,
) -> Result<RunResult, SimError> {
    let mut m = machine;
    let n = m.wpus.len();
    let t = threads;
    debug_assert!(t >= 2 && t <= n);
    let mut wake: Vec<Option<Cycle>> = vec![Some(Cycle::ZERO); n];
    let mut adapt_at: Vec<Option<Cycle>> = m.wpus.iter().map(Wpu::next_adapt_boundary).collect();
    let mut charged: Vec<Cycle> = vec![Cycle::ZERO; n];
    let mut needs_commit: Vec<bool> = vec![false; n];
    let livelock_window = config.effective_livelock_window();
    let mut last_insts = 0u64;
    let mut quiet_iters = 0u64;
    let host_deadline = config
        .effective_host_budget()
        .map(|b| (std::time::Instant::now() + b, b));
    let mut iters = 0u64;
    let shared = PoolShared {
        epoch: AtomicU64::new(0),
        done: AtomicUsize::new(0),
        job: UnsafeCell::new(Job {
            wpus: std::ptr::null_mut(),
            wake: std::ptr::null_mut(),
            adapt_at: std::ptr::null_mut(),
            charged: std::ptr::null_mut(),
            last_class: std::ptr::null_mut(),
            needs_commit: std::ptr::null_mut(),
            n,
            threads: t,
            now: Cycle::ZERO,
        }),
        shutdown: AtomicBool::new(false),
        poisoned: AtomicBool::new(false),
        any_busy: AtomicBool::new(false),
        coordinator: std::thread::current(),
    };
    let outcome = std::thread::scope(|s| -> Result<(), SimError> {
        let mut workers: Vec<std::thread::Thread> = Vec::with_capacity(t - 1);
        for shard in 1..t {
            let shared = &shared;
            let handle = std::thread::Builder::new()
                .name(format!("dws-wpu-shard{shard}"))
                .spawn_scoped(s, move || worker_loop(shared, shard))
                .expect("spawn worker thread");
            workers.push(handle.thread().clone());
        }
        let workers = workers;
        let _shutdown = ShutdownGuard {
            shared: &shared,
            workers: &workers,
        };
        loop {
            let now = m.now;
            m.mem.drain_completions_into(now, &mut m.completions);
            for c in &m.completions {
                m.wpus[c.l1].on_completion(c.request, c.at);
                wake[c.l1] = Some(wake[c.l1].map_or(now, |w| w.min(now)));
            }
            // Compute phase: publish the job, bump the epoch, take shard 0
            // ourselves, then wait for the pool. Cycles on which every due
            // WPU lives in shard 0 skip the rendezvous — the due-check the
            // workers would run is a scan the coordinator can do itself.
            shared.any_busy.store(false, Ordering::Relaxed);
            let job = Job {
                wpus: m.wpus.as_mut_ptr(),
                wake: wake.as_mut_ptr(),
                adapt_at: adapt_at.as_mut_ptr(),
                charged: charged.as_mut_ptr(),
                last_class: m.last_class.as_mut_ptr(),
                needs_commit: needs_commit.as_mut_ptr(),
                n,
                threads: t,
                now,
            };
            let chunk = n.div_ceil(t);
            let worker_work_due = wake[chunk..]
                .iter()
                .zip(&adapt_at[chunk..])
                .any(|(w, a)| w.is_some_and(|w| w <= now) || a.is_some_and(|a| a <= now));
            if worker_work_due {
                // SAFETY: all workers are quiescent (done-count drained
                // last epoch), so the coordinator has exclusive access.
                unsafe { *shared.job.get() = job };
                shared.epoch.fetch_add(1, Ordering::Release);
                for w in &workers {
                    w.unpark();
                }
            }
            // SAFETY: shard 0 is disjoint from every worker's shard.
            unsafe { run_shard(&job, 0, &shared.any_busy) };
            if worker_work_due {
                wait_until(|| shared.done.load(Ordering::Acquire) >= t - 1);
                shared.done.store(0, Ordering::Relaxed);
            }
            assert!(
                !shared.poisoned.load(Ordering::Acquire),
                "parallel worker panicked; machine state at cycle {now} is unrecoverable"
            );
            // Commit phase: resume suspended ticks in WPU-index order —
            // this serial order is what makes the run bit-identical.
            let mut any_busy = shared.any_busy.load(Ordering::Relaxed);
            for i in 0..n {
                if !needs_commit[i] {
                    continue;
                }
                needs_commit[i] = false;
                let t = m.wpus[i].tick_commit(now, &mut m.mem, &mut m.data);
                m.last_class[i] = t;
                wake[i] = match t {
                    TickClass::Busy => {
                        any_busy = true;
                        Some(now + 1)
                    }
                    TickClass::Done => None,
                    TickClass::StallMem | TickClass::Idle => m.wpus[i].cached_next_wake(),
                };
                adapt_at[i] = m.wpus[i].next_adapt_boundary();
            }
            // From here on: identical to the serial loop.
            let live: u64 = m.wpus.iter().map(Wpu::live_threads).sum();
            let waiting: u64 = m.wpus.iter().map(Wpu::barrier_waiting).sum();
            if live > 0 && waiting == live {
                for (i, w) in m.wpus.iter_mut().enumerate() {
                    w.release_barrier(now);
                    if !w.done() {
                        wake[i] = Some(now + 1);
                    }
                }
            }
            m.now += 1;
            if m.done() {
                return Ok(());
            }
            let insts: u64 = m.wpus.iter().map(|w| w.stats.warp_insts.get()).sum();
            if insts != last_insts {
                last_insts = insts;
                quiet_iters = 0;
            } else {
                quiet_iters += 1;
                if quiet_iters >= livelock_window {
                    return Err(SimError::Livelock {
                        cycles: m.now.raw(),
                        stalled_for: quiet_iters,
                        diagnostics: m.diagnostics(),
                    });
                }
            }
            if m.now.raw() >= config.max_cycles {
                return Err(SimError::Timeout {
                    cycles: m.now.raw(),
                    diagnostics: m.diagnostics(),
                });
            }
            iters += 1;
            if let Some((deadline, budget)) = host_deadline {
                if iters & 0xFFF == 0 && std::time::Instant::now() >= deadline {
                    return Err(SimError::HostBudget {
                        cycles: m.now.raw(),
                        budget,
                    });
                }
            }
            if any_busy {
                continue;
            }
            let mut next: Option<Cycle> = None;
            for (i, &w) in wake.iter().enumerate() {
                for c in [w, m.mem.next_completion_at_l1(i)].into_iter().flatten() {
                    next = Some(next.map_or(c, |x: Cycle| x.min(c)));
                }
            }
            let Some(next) = next else {
                return Err(SimError::Deadlock {
                    cycles: m.now.raw(),
                    diagnostics: m.diagnostics(),
                });
            };
            let next = adapt_at.iter().flatten().fold(next, |n, &a| n.min(a));
            m.now = next.max(m.now);
        }
    });
    outcome?;
    Ok(RunResult::collect(&m.wpus, &m.mem, m.now.raw(), m.data))
}
