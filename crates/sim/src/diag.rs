//! Structured diagnostics for failed runs.
//!
//! When [`Machine::run`](crate::Machine::run) aborts — timeout, deadlock,
//! or livelock — the error carries a [`DiagnosticReport`]: a machine-state
//! snapshot (per-WPU group states, WST and MSHR occupancy, next-wake
//! bounds) that tooling can inspect field by field and the CLI can render
//! human-readably, instead of the ad-hoc strings it replaced.

use dws_core::TickClass;

/// Snapshot of one WPU at abort time.
#[derive(Debug, Clone)]
pub struct WpuDiag {
    /// WPU index (== its L1 index).
    pub id: usize,
    /// What the WPU did on its most recent processed cycle.
    pub last_class: TickClass,
    /// Threads that have not yet halted.
    pub live_threads: u64,
    /// Lanes parked at the global barrier.
    pub barrier_waiting: u64,
    /// Live SIMD groups (full warps and splits).
    pub groups_alive: usize,
    /// Current warp-split table occupancy.
    pub wst_used: usize,
    /// Peak warp-split table occupancy so far.
    pub wst_peak: usize,
    /// Warp-split table capacity.
    pub wst_capacity: usize,
    /// Outstanding MSHR entries at this WPU's L1.
    pub mshr_in_use: usize,
    /// MSHR entry capacity at this WPU's L1.
    pub mshr_capacity: usize,
    /// The WPU's cached next group wake time, if any.
    pub next_wake: Option<u64>,
    /// The earliest pending fill bound for this WPU's L1, if any.
    pub next_fill: Option<u64>,
    /// Per-group state dump (warp, pc, mask, status, stack depths).
    pub groups: String,
}

/// A structured machine-state snapshot attached to
/// [`SimError`](crate::SimError) aborts.
#[derive(Debug, Clone)]
pub struct DiagnosticReport {
    /// Simulation time at abort.
    pub cycles: u64,
    /// One snapshot per WPU.
    pub wpus: Vec<WpuDiag>,
    /// In-flight fills across the whole memory system.
    pub pending_fills: usize,
}

impl std::fmt::Display for DiagnosticReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "machine state at cycle {} ({} fills in flight):",
            self.cycles, self.pending_fills
        )?;
        for w in &self.wpus {
            writeln!(
                f,
                "WPU {}: last={:?} live={} barrier_waiting={} groups={} \
                 wst={}/{} (peak {}) mshr={}/{} next_wake={} next_fill={}",
                w.id,
                w.last_class,
                w.live_threads,
                w.barrier_waiting,
                w.groups_alive,
                w.wst_used,
                w.wst_capacity,
                w.wst_peak,
                w.mshr_in_use,
                w.mshr_capacity,
                OrNone(w.next_wake),
                OrNone(w.next_fill),
            )?;
            for line in w.groups.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// Renders `Some(v)` as `v` and `None` as `-`.
struct OrNone(Option<u64>);

impl std::fmt::Display for OrNone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_every_wpu() {
        let report = DiagnosticReport {
            cycles: 123,
            pending_fills: 2,
            wpus: vec![WpuDiag {
                id: 0,
                last_class: TickClass::StallMem,
                live_threads: 16,
                barrier_waiting: 0,
                groups_alive: 3,
                wst_used: 2,
                wst_peak: 4,
                wst_capacity: 16,
                mshr_in_use: 1,
                mshr_capacity: 32,
                next_wake: Some(130),
                next_fill: None,
                groups: "warp=0 pc=5 status=WaitMem".into(),
            }],
        };
        let s = report.to_string();
        assert!(s.contains("cycle 123"));
        assert!(s.contains("WPU 0"));
        assert!(s.contains("wst=2/16 (peak 4)"));
        assert!(s.contains("mshr=1/32"));
        assert!(s.contains("next_wake=130"));
        assert!(s.contains("next_fill=-"));
        assert!(s.contains("warp=0 pc=5"));
    }
}
