//! The assembled machine and its deterministic run loop.

use crate::config::{SimConfig, SimError};
use crate::diag::{DiagnosticReport, WpuDiag};
use crate::metrics::RunResult;
use dws_core::{TickClass, Wpu, WpuConfig};
use dws_engine::Cycle;
use dws_kernels::KernelSpec;
use dws_mem::MemorySystem;
use std::sync::Arc;

/// A machine instance mid-run. Most callers use [`Machine::run`]; the
/// step-level API ([`Machine::new`] + [`Machine::step`]) exists for tests
/// and interactive tooling.
pub struct Machine {
    pub(crate) wpus: Vec<Wpu>,
    pub(crate) mem: MemorySystem,
    pub(crate) data: dws_isa::VecMemory,
    pub(crate) now: Cycle,
    pub(crate) last_class: Vec<TickClass>,
    /// Reusable completion buffer: [`step`](Self::step) drains into this
    /// instead of allocating a `Vec` every cycle.
    pub(crate) completions: Vec<dws_mem::Completion>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("wpus", &self.wpus.len())
            .finish()
    }
}

impl Machine {
    /// Builds a machine for `config` loaded with `spec`'s program and data.
    pub fn new(config: &SimConfig, spec: &KernelSpec) -> Machine {
        let program = Arc::clone(&spec.program);
        let threads_per_wpu = (config.width * config.n_warps) as u64;
        let nthreads = config.total_threads();
        let wpus: Vec<Wpu> = (0..config.n_wpus)
            .map(|i| {
                let mut w = Wpu::new(
                    WpuConfig {
                        id: i,
                        width: config.width,
                        n_warps: config.n_warps,
                        policy: config.policy,
                        sched_slots: config.sched_slots,
                        wst_entries: config.wst_entries,
                        l1i: config.mem.l1i,
                    },
                    Arc::clone(&program),
                    i as u64 * threads_per_wpu,
                    nthreads,
                );
                if !config.fault.is_nop() {
                    w.set_fault_plan(config.fault);
                }
                w
            })
            .collect();
        let mut mem = MemorySystem::new(config.mem);
        if !config.fault.is_nop() {
            mem.set_fault_plan(config.fault);
        }
        Machine {
            last_class: vec![TickClass::Idle; config.n_wpus],
            wpus,
            mem,
            data: spec.memory.clone(),
            now: Cycle::ZERO,
            completions: Vec::new(),
        }
    }

    /// Whether every thread has terminated.
    pub fn done(&self) -> bool {
        self.wpus.iter().all(Wpu::done)
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Read access to the WPUs (metrics, tests).
    pub fn wpus(&self) -> &[Wpu] {
        &self.wpus
    }

    /// Read access to the memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Advances the machine one cycle. Returns true if any WPU issued.
    pub fn step(&mut self) -> bool {
        let now = self.now;
        self.mem.drain_completions_into(now, &mut self.completions);
        for c in &self.completions {
            self.wpus[c.l1].on_completion(c.request, c.at);
        }
        let mut any_busy = false;
        for (i, w) in self.wpus.iter_mut().enumerate() {
            let t = w.tick(now, &mut self.mem, &mut self.data);
            self.last_class[i] = t;
            if t == TickClass::Busy {
                any_busy = true;
            }
        }
        // Global barrier: release once every live thread has arrived.
        let live: u64 = self.wpus.iter().map(Wpu::live_threads).sum();
        let waiting: u64 = self.wpus.iter().map(Wpu::barrier_waiting).sum();
        if live > 0 && waiting == live {
            for w in &mut self.wpus {
                w.release_barrier(now);
            }
            any_busy = true; // barrier release is progress
        }
        self.now += 1;
        any_busy
    }

    /// Runs `config` + `spec` to completion and collects metrics.
    ///
    /// Event-driven: each WPU carries its own wakeup time (the wake time it
    /// cached during its last stalled tick, or the next fill completion
    /// destined for its L1), and the loop only processes cycles at which
    /// some WPU is due. Cycles a WPU sleeps through are charged lazily via
    /// [`Wpu::account_skipped_stall`] in the class of its last tick — valid
    /// because a stalled WPU's state is frozen between external events, so
    /// the ticks it skips would all have repeated that classification. The
    /// result is bit-identical to stepping [`Machine::step`] cycle by
    /// cycle.
    ///
    /// Adaptive policies ([`Policy::is_adaptive`]) sample cycle counters on
    /// an absolute-cycle cadence; each WPU publishes its next adaptation
    /// boundary ([`Wpu::next_adapt_boundary`]) and the loop guarantees a
    /// tick at (or before) that cycle, so event-driven sleeping never skips
    /// a boundary and adaptive machines no longer force per-cycle lockstep.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] when the cycle budget elapses,
    /// [`SimError::Deadlock`] when no progress is possible,
    /// [`SimError::Livelock`] when cycles keep advancing without an
    /// instruction retiring for [`SimConfig::livelock_window`] processed
    /// cycles, and [`SimError::HostBudget`] when the optional wall-clock
    /// budget runs out.
    pub fn run(config: &SimConfig, spec: &KernelSpec) -> Result<RunResult, SimError> {
        let threads = config
            .threads
            .unwrap_or_else(crate::parallel::default_threads);
        Self::run_with_threads(config, spec, threads)
    }

    /// [`run`](Self::run) with an explicit intra-run thread count:
    /// `threads <= 1` is the serial reference engine; more shards the
    /// machine's WPUs across a worker pool with per-cycle ordered commits,
    /// bit-identical to serial (see [`crate::parallel`]).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_with_threads(
        config: &SimConfig,
        spec: &KernelSpec,
        threads: usize,
    ) -> Result<RunResult, SimError> {
        let m = Machine::new(config, spec);
        let t = threads.clamp(1, m.wpus.len().max(1));
        if t <= 1 {
            m.run_serial(config)
        } else {
            crate::parallel::run_parallel(m, config, t)
        }
    }

    pub(crate) fn run_serial(self, config: &SimConfig) -> Result<RunResult, SimError> {
        let mut m = self;
        let n = m.wpus.len();
        // The next cycle each WPU must tick; `None` once it is done (or,
        // transiently, when only a fill completion can wake it).
        let mut wake: Vec<Option<Cycle>> = vec![Some(Cycle::ZERO); n];
        // Each WPU's next adaptation boundary (`None` for non-adaptive
        // policies): an extra tick-due condition and a bound on how far the
        // event scan may sleep, refreshed after every tick.
        let mut adapt_at: Vec<Option<Cycle>> =
            m.wpus.iter().map(Wpu::next_adapt_boundary).collect();
        // The cycle up to which each WPU's stall time has been accounted.
        let mut charged: Vec<Cycle> = vec![Cycle::ZERO; n];
        // Forward-progress watchdog: consecutive *processed* cycles with no
        // retired instruction. Sleeping across an event gap is one
        // iteration, so a legitimately long memory stall cannot trip it —
        // only a dense retire-free spin (livelock) can.
        let livelock_window = config.effective_livelock_window();
        let mut last_insts = 0u64;
        let mut quiet_iters = 0u64;
        let host_deadline = config
            .effective_host_budget()
            .map(|b| (std::time::Instant::now() + b, b));
        let mut iters = 0u64;
        loop {
            let now = m.now;
            m.mem.drain_completions_into(now, &mut m.completions);
            for c in &m.completions {
                m.wpus[c.l1].on_completion(c.request, c.at);
                // Whatever the completion changed, the owner re-evaluates
                // this cycle (a tick that finds nothing issuable just
                // refreshes its wake time).
                wake[c.l1] = Some(wake[c.l1].map_or(now, |w| w.min(now)));
            }
            let mut any_busy = false;
            for i in 0..n {
                let due =
                    wake[i].is_some_and(|w| w <= now) || adapt_at[i].is_some_and(|a| a <= now);
                if !due {
                    continue;
                }
                let lag = now - charged[i];
                if lag > 0 {
                    m.wpus[i].account_skipped_stall(lag, m.last_class[i]);
                }
                let t = m.wpus[i].tick(now, &mut m.mem, &mut m.data);
                m.last_class[i] = t;
                charged[i] = now + 1;
                wake[i] = match t {
                    TickClass::Busy => {
                        any_busy = true;
                        Some(now + 1)
                    }
                    TickClass::Done => None,
                    TickClass::StallMem | TickClass::Idle => m.wpus[i].cached_next_wake(),
                };
                adapt_at[i] = m.wpus[i].next_adapt_boundary();
            }
            // Global barrier: release once every live thread has arrived.
            // Arrival counts only change when a WPU ticks, so checking on
            // processed cycles is exhaustive.
            let live: u64 = m.wpus.iter().map(Wpu::live_threads).sum();
            let waiting: u64 = m.wpus.iter().map(Wpu::barrier_waiting).sum();
            if live > 0 && waiting == live {
                for (i, w) in m.wpus.iter_mut().enumerate() {
                    w.release_barrier(now);
                    if !w.done() {
                        wake[i] = Some(now + 1);
                    }
                }
            }
            m.now += 1;
            if m.done() {
                break;
            }
            let insts: u64 = m.wpus.iter().map(|w| w.stats.warp_insts.get()).sum();
            if insts != last_insts {
                last_insts = insts;
                quiet_iters = 0;
            } else {
                quiet_iters += 1;
                if quiet_iters >= livelock_window {
                    return Err(SimError::Livelock {
                        cycles: m.now.raw(),
                        stalled_for: quiet_iters,
                        diagnostics: m.diagnostics(),
                    });
                }
            }
            if m.now.raw() >= config.max_cycles {
                return Err(SimError::Timeout {
                    cycles: m.now.raw(),
                    diagnostics: m.diagnostics(),
                });
            }
            // The host-budget clock is only consulted every few thousand
            // iterations; a simulated cycle is tens of nanoseconds, so the
            // overshoot is bounded well under a millisecond.
            iters += 1;
            if let Some((deadline, budget)) = host_deadline {
                if iters & 0xFFF == 0 && std::time::Instant::now() >= deadline {
                    return Err(SimError::HostBudget {
                        cycles: m.now.raw(),
                        budget,
                    });
                }
            }
            // A busy WPU wakes at `now + 1` (already the new `m.now`), every
            // other wake source is strictly later, and fills scheduled this
            // cycle land in the future — so the event scan below would
            // return exactly `m.now`. Skip it.
            if any_busy {
                continue;
            }
            // Sleep until the earliest per-WPU event: a cached group wake
            // or a fill bound for that WPU's L1. Adaptation boundaries only
            // clamp the sleep — they are deliberately *not* progress
            // events: an adapt tick alone never wakes a group, so a machine
            // whose only future cycles are adapt boundaries is just as
            // deadlocked as one with none.
            let mut next: Option<Cycle> = None;
            for (i, &w) in wake.iter().enumerate() {
                for c in [w, m.mem.next_completion_at_l1(i)].into_iter().flatten() {
                    next = Some(next.map_or(c, |x: Cycle| x.min(c)));
                }
            }
            let Some(next) = next else {
                return Err(SimError::Deadlock {
                    cycles: m.now.raw(),
                    diagnostics: m.diagnostics(),
                });
            };
            let next = adapt_at.iter().flatten().fold(next, |n, &a| n.min(a));
            m.now = next.max(m.now);
        }
        Ok(RunResult::collect(&m.wpus, &m.mem, m.now.raw(), m.data))
    }

    /// Consumes a stepped machine and collects the same metrics
    /// [`Machine::run`] returns, so step-level drivers (tests, interactive
    /// tooling) can compare against the event-driven loop.
    #[must_use]
    pub fn into_result(self) -> RunResult {
        RunResult::collect(&self.wpus, &self.mem, self.now.raw(), self.data)
    }

    /// Machine-state snapshot for error reports: per-WPU group states, WST
    /// and MSHR occupancy, and next-wake bounds.
    pub fn diagnostics(&self) -> DiagnosticReport {
        DiagnosticReport {
            cycles: self.now.raw(),
            pending_fills: self.mem.pending_fills(),
            wpus: self
                .wpus
                .iter()
                .enumerate()
                .map(|(i, w)| WpuDiag {
                    id: i,
                    last_class: self.last_class[i],
                    live_threads: w.live_threads(),
                    barrier_waiting: w.barrier_waiting(),
                    groups_alive: w.groups_alive(),
                    wst_used: w.wst_used(),
                    wst_peak: w.wst_peak(),
                    wst_capacity: w.wst_capacity(),
                    mshr_in_use: self.mem.mshr_in_use(i),
                    mshr_capacity: self.mem.mshr_capacity(i),
                    next_wake: w.cached_next_wake().map(Cycle::raw),
                    next_fill: self.mem.next_completion_at_l1(i).map(Cycle::raw),
                    groups: w.dump_groups(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_core::Policy;
    use dws_isa::{CondOp, KernelBuilder, Operand, VecMemory};
    use dws_kernels::{Benchmark, KernelSpec, Scale};

    #[test]
    fn filter_runs_and_verifies_on_paper_machine() {
        let spec = Benchmark::Filter.build(Scale::Test, 9);
        let cfg = SimConfig::paper(Policy::conventional());
        let r = Machine::run(&cfg, &spec).unwrap();
        spec.verify(&r.memory).unwrap();
        assert!(r.cycles > 0);
        assert_eq!(r.per_wpu.len(), 4);
    }

    #[test]
    fn step_api_matches_run() {
        // `run` skips fully-stalled stretches and charges them through
        // `account_skipped_stall`; stepping cycle-by-cycle takes the slow
        // path. Both must agree on the final memory, the total cycle count,
        // and the per-stall-class accounting. (Policies here are
        // non-adaptive: Slip/throttled variants tune themselves on
        // absolute-cycle schedules and legitimately diverge under skipping.)
        for policy in [
            Policy::conventional(),
            Policy::dws_aggress(),
            Policy::dws_revive(),
        ] {
            let spec = Benchmark::Merge.build(Scale::Test, 9);
            let cfg = SimConfig::paper(policy).with_wpus(1);
            let by_run = Machine::run(&cfg, &spec).unwrap();
            let mut m = Machine::new(&cfg, &spec);
            while !m.done() {
                m.step();
                assert!(m.now().raw() < 50_000_000);
            }
            let by_step = RunResult::collect(&m.wpus, &m.mem, m.now.raw(), m.data);
            assert_eq!(by_step.memory.words(), by_run.memory.words());
            assert_eq!(by_step.cycles, by_run.cycles, "{policy:?}");
            for (s, r) in by_step.per_wpu.iter().zip(&by_run.per_wpu) {
                assert_eq!(s.busy_cycles.get(), r.busy_cycles.get(), "{policy:?}");
                assert_eq!(
                    s.mem_stall_cycles.get(),
                    r.mem_stall_cycles.get(),
                    "{policy:?}"
                );
                assert_eq!(s.idle_cycles.get(), r.idle_cycles.get(), "{policy:?}");
                assert_eq!(s.warp_insts.get(), r.warp_insts.get(), "{policy:?}");
            }
        }
    }

    #[test]
    fn timeout_reports_diagnostics() {
        let spec = Benchmark::Fft.build(Scale::Test, 9);
        let mut cfg = SimConfig::paper(Policy::conventional());
        cfg.max_cycles = 100;
        match Machine::run(&cfg, &spec) {
            Err(SimError::Timeout {
                cycles,
                diagnostics,
            }) => {
                assert!(cycles >= 100);
                assert_eq!(diagnostics.cycles, cycles);
                assert_eq!(diagnostics.wpus.len(), 4);
                let rendered = diagnostics.to_string();
                for w in &diagnostics.wpus {
                    assert!(w.live_threads > 0, "threads can't finish in 100 cycles");
                    assert!(w.wst_capacity > 0);
                    assert!(w.mshr_capacity > 0);
                    assert!(rendered.contains(&format!("WPU {}", w.id)));
                }
                assert!(rendered.contains("machine state at cycle"));
                assert!(rendered.contains("mshr="));
                assert!(rendered.contains("wst="));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_reports_diagnostics() {
        // The classic SIMT hang: a barrier inside a divergent branch. Lane 0
        // parks at the barrier while its 15 sibling lanes wait on the
        // reconvergence stack, so the barrier can never collect every live
        // thread and no memory event is pending — the run loop must detect
        // a deadlock rather than spin or sleep forever.
        let mut b = KernelBuilder::new();
        let tid = b.tid();
        b.if_then(CondOp::Eq, tid, Operand::Imm(0), KernelBuilder::barrier);
        b.halt();
        let program = b.build().unwrap();
        let spec = KernelSpec::new("divergent-barrier", program, VecMemory::new(64), |_| Ok(()));
        let cfg = SimConfig::paper(Policy::conventional()).with_wpus(1);
        match Machine::run(&cfg, &spec) {
            Err(SimError::Deadlock { diagnostics, .. }) => {
                assert_eq!(diagnostics.wpus.len(), 1);
                assert_eq!(diagnostics.pending_fills, 0);
                let w = &diagnostics.wpus[0];
                // Only warp 0's lane 0 reaches the barrier; warps 1..4 halt.
                assert_eq!(w.barrier_waiting, 1);
                assert!(w.live_threads > w.barrier_waiting);
                assert_eq!(w.next_wake, None, "a pending wake would not deadlock");
                assert_eq!(w.next_fill, None);
                let rendered = diagnostics.to_string();
                assert!(rendered.contains("barrier_waiting=1"));
                assert!(rendered.contains("next_wake=-"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn livelock_reports_diagnostics() {
        // Every lane of a 16-wide warp touches a distinct line, so one warp
        // access wants 16 fresh MSHRs; with a single-entry MSHR file and
        // nothing in flight the structural reject can never drain. Cycles
        // keep advancing (the group retries at `now + 1`) but nothing
        // retires — a livelock, not a deadlock.
        let mut b = KernelBuilder::new();
        let tid = b.tid();
        let a = b.reg();
        b.mul(a, tid, Operand::Imm(1024));
        b.load(a, a, 0);
        b.halt();
        let program = b.build().unwrap();
        let spec = KernelSpec::new("mshr-starved", program, VecMemory::new(64 * 1024), |_| {
            Ok(())
        });
        let mut cfg = SimConfig::paper(Policy::conventional()).with_wpus(1);
        cfg.mem.l1d.mshrs = 1;
        cfg.livelock_window = 10_000;
        match Machine::run(&cfg, &spec) {
            Err(SimError::Livelock {
                stalled_for,
                diagnostics,
                ..
            }) => {
                assert!(stalled_for >= 10_000);
                assert_eq!(diagnostics.wpus.len(), 1);
                let w = &diagnostics.wpus[0];
                assert!(w.live_threads > 0);
                assert_eq!(w.mshr_in_use, 0, "nothing ever gets an MSHR");
                assert_eq!(w.mshr_capacity, 1);
                assert!(diagnostics.to_string().contains("mshr=0/1"));
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }
}
