//! Experiment presets: the named configurations each figure sweeps.

use crate::config::SimConfig;
use dws_core::{MemSplit, Policy};

/// `Conv` — the baseline every figure normalizes against.
pub fn conv() -> SimConfig {
    SimConfig::paper(Policy::conventional())
}

/// `DWS.ReviveSplit` — the paper's headline configuration.
pub fn dws() -> SimConfig {
    SimConfig::paper(Policy::dws_revive())
}

/// The policy set of Figure 7 (branch-divergence DWS only).
pub fn figure7_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("StackReconv", Policy::dws_branch_stack()),
        ("PCReconv", Policy::dws_branch_only()),
    ]
}

/// The policy set of Figure 11 (BranchLimited memory-divergence DWS).
pub fn figure11_policies() -> Vec<(&'static str, Policy)> {
    vec![
        (
            "DWS.AggressSplit.BL",
            Policy::dws_branch_limited(MemSplit::Aggressive),
        ),
        (
            "DWS.LazySplit.BL",
            Policy::dws_branch_limited(MemSplit::Lazy),
        ),
        (
            "DWS.ReviveSplit.BL",
            Policy::dws_branch_limited(MemSplit::Revive),
        ),
    ]
}

/// The policy set of Figure 13 (every scheme, per benchmark).
pub fn figure13_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("DWS.BranchOnly", Policy::dws_branch_only()),
        ("DWS.ReviveSplit.MemOnly", Policy::dws_mem_only()),
        ("DWS.AggressSplit", Policy::dws_aggress()),
        ("DWS.LazySplit", Policy::dws_lazy()),
        ("DWS.ReviveSplit", Policy::dws_revive()),
        ("Slip", Policy::slip()),
        ("Slip.BranchBypass", Policy::slip_branch_bypass()),
    ]
}

/// A machine scaled to `n_wpus` WPUs (paper per-WPU organization, one L1
/// per WPU). The WPU counts in [`scaling_wpu_counts`] are the simspeed
/// scaling-study presets; intra-run threading (`DWS_THREADS` /
/// [`SimConfig::with_threads`]) is what makes the larger ones tractable.
pub fn scaled(policy: Policy, n_wpus: usize) -> SimConfig {
    SimConfig::paper(policy).with_wpus(n_wpus)
}

/// The WPU counts of the scaling study (8x, 16x, and 32x the paper's
/// 4-WPU machine).
#[must_use]
pub fn scaling_wpu_counts() -> [usize; 3] {
    [32, 64, 128]
}

/// The three systems compared in the sensitivity studies (Figures 18/19/21).
pub fn sensitivity_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("Conv", Policy::conventional()),
        ("DWS", Policy::dws_revive()),
        ("Slip.BranchBypass", Policy::slip_branch_bypass()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_are_unique() {
        let names: Vec<&str> = figure13_policies().iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn scaled_presets_size_the_hierarchy() {
        for n in scaling_wpu_counts() {
            let c = scaled(Policy::dws_revive(), n);
            assert_eq!(c.n_wpus, n);
            assert_eq!(c.mem.n_l1s, n);
            assert_eq!(c.total_threads(), (n * 16 * 4) as u64);
        }
    }

    #[test]
    fn headline_configs() {
        assert_eq!(conv().policy.paper_name(), "Conv");
        assert_eq!(dws().policy.paper_name(), "DWS.ReviveSplit");
        assert_eq!(figure7_policies().len(), 2);
        assert_eq!(figure11_policies().len(), 3);
        assert_eq!(sensitivity_policies().len(), 3);
    }
}
