//! Per-run metrics: the numbers every figure and table consumes.

use dws_core::{Wpu, WpuStats};
use dws_energy::{EnergyBreakdown, EnergyModel};
use dws_isa::VecMemory;
use dws_mem::{MemStats, MemorySystem};

/// Everything measured in one simulation run.
#[derive(Debug)]
pub struct RunResult {
    /// End-to-end execution time in cycles.
    pub cycles: u64,
    /// Per-WPU statistics.
    pub per_wpu: Vec<WpuStats>,
    /// Machine-wide aggregate of the per-WPU statistics.
    pub wpu: WpuStats,
    /// Memory-system counters.
    pub mem: MemStats,
    /// Energy breakdown under the default 65 nm model.
    pub energy: EnergyBreakdown,
    /// Per-thread miss counts, `[wpu][warp][lane]` (Figure 14).
    pub per_thread_misses: Vec<Vec<Vec<u64>>>,
    /// Peak warp-split-table occupancy per WPU.
    pub wst_peaks: Vec<usize>,
    /// Final functional memory (pass to `KernelSpec::verify`).
    pub memory: VecMemory,
}

impl RunResult {
    /// Gathers metrics from a finished machine.
    pub(crate) fn collect(
        wpus: &[Wpu],
        mem: &MemorySystem,
        cycles: u64,
        memory: VecMemory,
    ) -> RunResult {
        let per_wpu: Vec<WpuStats> = wpus.iter().map(|w| w.stats.clone()).collect();
        let mut agg = WpuStats::default();
        for s in &per_wpu {
            agg.merge(s);
        }
        let mut mem_stats = mem.stats();
        // The L1-I arrays live inside the WPUs (so the parallel compute
        // phase can probe them locally); fold their counters back into the
        // memory-system view the energy model and reports consume.
        for w in wpus {
            let (fetches, misses) = w.icache_counters();
            mem_stats.l1i_fetches.add(fetches);
            mem_stats.l1i_misses.add(misses);
        }
        let energy = dws_energy::compute(
            &EnergyModel::paper_65nm(),
            &agg,
            &mem_stats,
            cycles,
            wpus.len(),
        );
        RunResult {
            cycles,
            wpu: agg,
            mem: mem_stats,
            energy,
            per_thread_misses: wpus.iter().map(Wpu::per_thread_misses).collect(),
            wst_peaks: wpus.iter().map(Wpu::wst_peak).collect(),
            memory,
            per_wpu,
        }
    }

    /// Fraction of WPU time stalled waiting for memory (the paper's
    /// "time spent waiting for memory").
    pub fn mem_stall_fraction(&self) -> f64 {
        self.wpu.mem_stall_fraction().unwrap_or(0.0)
    }

    /// Fraction of WPU time spent issuing ("SIMD computation").
    pub fn busy_fraction(&self) -> f64 {
        let t = self.wpu.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.wpu.busy_cycles.get() as f64 / t as f64
        }
    }

    /// Average SIMD width of issued instructions.
    pub fn avg_simd_width(&self) -> f64 {
        self.wpu.simd_width.ratio().unwrap_or(0.0)
    }

    /// Average memory-level parallelism: in-flight line fills sampled at
    /// each new miss (the paper's MLP argument for DWS).
    pub fn avg_mlp(&self) -> f64 {
        self.mem.mlp.mean().unwrap_or(0.0)
    }

    /// Speedup of this run relative to a baseline run of the same work.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Energy relative to a baseline run (Figure 19's normalization).
    pub fn energy_ratio_over(&self, baseline: &RunResult) -> f64 {
        self.energy.total() / baseline.energy.total()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Machine, SimConfig};
    use dws_core::Policy;
    use dws_kernels::{Benchmark, Scale};

    #[test]
    fn fractions_are_sane() {
        let spec = Benchmark::Short.build(Scale::Test, 2);
        let cfg = SimConfig::paper(Policy::conventional()).with_wpus(1);
        let r = Machine::run(&cfg, &spec).unwrap();
        let busy = r.busy_fraction();
        let stall = r.mem_stall_fraction();
        assert!(busy > 0.0 && busy <= 1.0);
        assert!((0.0..=1.0).contains(&stall));
        assert!(busy + stall <= 1.0 + 1e-9);
        assert!(r.avg_simd_width() > 0.0 && r.avg_simd_width() <= 16.0);
        assert!((r.speedup_over(&r) - 1.0).abs() < 1e-12);
        assert!((r.energy_ratio_over(&r) - 1.0).abs() < 1e-12);
        assert!(r.avg_mlp() >= 1.0, "misses imply at least one in flight");
    }
}
