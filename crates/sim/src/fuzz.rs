//! Verifier-guided differential fuzzing of the whole simulator.
//!
//! The repo accumulated a set of pairwise equivalence oracles — µop engine
//! vs legacy ShadowLane interpretation, event-driven vs stepped run,
//! parallel vs serial stepping, fault-injected vs clean timing, every
//! scheduling policy vs the scalar reference interpreter, and (PR 8) the
//! control-flow-melded kernel vs its unmelded self. Each oracle was
//! exercised only by the eight hand-written benchmarks and a handful of
//! test kernels. This module closes the input side: [`run_campaign`]
//! draws verifier-accepted random kernels from [`dws_isa::gen`], runs
//! each one across *all* the oracle axes on a small canonical machine,
//! and classifies any disagreement, watchdog diagnostic, or caught panic
//! into a structured [`FuzzFailure`].
//!
//! A failing kernel is then handed to [`minimize`], a delta-debugging
//! loop over the generator's statement AST: drop statements, inline
//! diamond arms, unwrap loops, collapse trip counts, simplify memory
//! operations — accepting only candidates that still verify and still
//! fail with the *same* [`FailureClass`]. The shrunk kernel renders to
//! assembly ([`dws_isa::render_asm`]) as a checked-in reproducer.
//!
//! Everything is deterministic: the same seed range produces the same
//! kernels, the same axis order, and byte-identical JSON reports
//! ([`FuzzReport::to_json`] contains no timestamps and hashes the
//! configuration with the simulator's fixed-seed [`FastHasher`]).
//!
//! # The canonical fuzz machine
//!
//! 2 WPUs x 8-wide x 2 warps = 32 threads — big enough for inter-WPU
//! coherence traffic, cross-warp barrier coordination, and warp-split
//! pressure, small enough that a full differential battery on one kernel
//! is a few milliseconds.

use crate::config::{SimConfig, SimError};
use crate::machine::Machine;
use crate::metrics::RunResult;
use crate::sweep::{panic_payload, SweepRunner};
use dws_core::{MemSplit, Policy};
use dws_engine::fault::FaultPlan;
use dws_engine::hash::FastHasher;
use dws_engine::rng::Rng64;
use dws_isa::gen::{self, GenConfig, GenOp, GenStmt, GenVal, KernelAst};
use dws_isa::{render_asm, ReferenceRunner, VecMemory};
use dws_kernels::{BufferLayout, KernelSpec};
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// WPUs in the canonical fuzz machine.
pub const FUZZ_WPUS: usize = 2;
/// SIMD width of the canonical fuzz machine.
pub const FUZZ_WIDTH: usize = 8;
/// Warps per WPU in the canonical fuzz machine.
pub const FUZZ_WARPS: usize = 2;
/// Threads the canonical machine launches (and generated kernels target).
pub const FUZZ_THREADS: u64 = (FUZZ_WPUS * FUZZ_WIDTH * FUZZ_WARPS) as u64;

/// Test-only result perturbations: deterministic, intentionally-wrong
/// observations injected *after* simulation so the harness's detection,
/// classification, and minimization paths can be exercised without a real
/// simulator bug on hand. [`Perturbation::None`] in all production use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// No perturbation (production).
    None,
    /// Report the stepped run one cycle late — a guaranteed
    /// [`FailureClass::CycleMismatch`] on the stepped axis.
    SkewStepped,
    /// Flip one bit of the chaos run's final memory — a guaranteed
    /// [`FailureClass::MemoryMismatch`] on the chaos axis.
    CorruptChaos,
    /// Flip one bit of the melded run's final memory (and force the meld
    /// axis to run even on kernels the transform leaves unchanged) — a
    /// guaranteed [`FailureClass::MemoryMismatch`] on the meld axis.
    CorruptMeld,
}

/// Which oracle axis observed a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Event-driven run under the named policy, against the scalar
    /// reference interpreter's memory image.
    Policy(&'static str),
    /// Cycle-stepped run vs the event-driven run (canonical policy).
    Stepped,
    /// Two-worker parallel stepping vs serial (canonical policy).
    Parallel,
    /// Legacy ShadowLane interpretation vs the µop engine (canonical
    /// policy).
    Legacy,
    /// Full-chaos fault injection vs the reference memory image (faults
    /// are timing-only; results must not change).
    Chaos,
    /// The control-flow-melded kernel ([`dws_isa::meld`]) vs the
    /// *unmelded* reference memory image: the static transform must be
    /// semantics-preserving on every kernel the fuzzer produces.
    Meld,
}

impl Axis {
    /// Stable label used in JSON reports and replay output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Axis::Policy(p) => format!("policy:{p}"),
            Axis::Stepped => "stepped".to_string(),
            Axis::Parallel => "parallel".to_string(),
            Axis::Legacy => "legacy-engine".to_string(),
            Axis::Chaos => "chaos".to_string(),
            Axis::Meld => "meld".to_string(),
        }
    }
}

/// Which watchdog tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogKind {
    /// Cycle budget elapsed ([`SimError::Timeout`]).
    Timeout,
    /// No progress possible ([`SimError::Deadlock`]).
    Deadlock,
    /// Cycles advance without retires ([`SimError::Livelock`]).
    Livelock,
    /// Host wall-clock budget elapsed ([`SimError::HostBudget`]).
    HostBudget,
}

impl WatchdogKind {
    fn label(self) -> &'static str {
        match self {
            WatchdogKind::Timeout => "timeout",
            WatchdogKind::Deadlock => "deadlock",
            WatchdogKind::Livelock => "livelock",
            WatchdogKind::HostBudget => "host-budget",
        }
    }
}

/// Structured classification of one differential failure. Minimization
/// preserves the class: a candidate kernel is accepted only if it still
/// fails with an *equal* `FailureClass`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Final memory differs from the axis's baseline.
    MemoryMismatch(Axis),
    /// Cycle count differs between two engines that must agree exactly.
    CycleMismatch(Axis),
    /// A watchdog aborted the run on this axis.
    Watchdog(WatchdogKind, Axis),
    /// The simulator panicked on this axis (caught and isolated).
    Panic(Axis),
    /// The scalar reference interpreter itself rejected the kernel — a
    /// generator bug, reported rather than masked.
    ReferenceError,
    /// The melding transform itself failed on a verifier-accepted kernel
    /// (refused the input or emitted output its own re-verification
    /// rejects) — a transform bug, distinct from a downstream mismatch.
    TransformError,
}

impl FailureClass {
    /// Stable `kind@axis` label used in JSON reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            FailureClass::MemoryMismatch(a) => format!("memory-mismatch@{}", a.label()),
            FailureClass::CycleMismatch(a) => format!("cycle-mismatch@{}", a.label()),
            FailureClass::Watchdog(k, a) => format!("watchdog-{}@{}", k.label(), a.label()),
            FailureClass::Panic(a) => format!("panic@{}", a.label()),
            FailureClass::ReferenceError => "reference-error".to_string(),
            FailureClass::TransformError => "meld-transform-error".to_string(),
        }
    }
}

/// One observed failure: the class plus a human-readable detail line
/// (mismatching word, watchdog diagnostics, panic payload).
#[derive(Debug, Clone)]
pub struct FuzzFinding {
    /// Structured classification.
    pub class: FailureClass,
    /// Detail for the report (first differing word, diagnostics, ...).
    pub message: String,
}

/// A minimized reproducer, ready to check into the corpus.
#[derive(Debug, Clone)]
pub struct MinimizedRepro {
    /// The shrunk AST (recompilable, still failing with the same class).
    pub ast: KernelAst,
    /// Instruction count of the compiled reproducer.
    pub insts: usize,
    /// The reproducer rendered as `parse_asm`-compatible text.
    pub asm: String,
}

/// A fully-described campaign failure.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Generator seed that produced the kernel.
    pub seed: u64,
    /// Structured classification.
    pub class: FailureClass,
    /// Detail line from the failing axis.
    pub message: String,
    /// Instruction count of the original generated kernel.
    pub insts: usize,
    /// Delta-debugged reproducer, when minimization was requested.
    pub minimized: Option<MinimizedRepro>,
    /// Command that replays exactly this failure.
    pub replay: String,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// First generator seed.
    pub seed_start: u64,
    /// Number of consecutive seeds to check.
    pub seeds: u64,
    /// Kernel-generator knobs ([`GenConfig::nthreads`] must stay
    /// [`FUZZ_THREADS`]).
    pub gen: GenConfig,
    /// Restrict the policy axis to one policy (default: all eleven).
    pub policy: Option<Policy>,
    /// Cycle budget per simulation.
    pub max_cycles: u64,
    /// Host wall-clock budget per sweep job (panic-isolated policy axis).
    pub job_budget: Option<Duration>,
    /// Delta-debug failing kernels down to minimal reproducers.
    pub minimize: bool,
    /// Run the melded-vs-unmelded axis ([`Axis::Meld`]).
    pub meld: bool,
    /// Test-only fault injection into the harness itself.
    pub perturb: Perturbation,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed_start: 0,
            seeds: 100,
            gen: GenConfig::default(),
            policy: None,
            max_cycles: 5_000_000,
            job_budget: Some(Duration::from_secs(30)),
            minimize: false,
            meld: true,
            perturb: Perturbation::None,
        }
    }
}

impl FuzzConfig {
    /// The policy whose run anchors the engine-equivalence axes (stepped,
    /// parallel, legacy, chaos): the restricted policy when one is set,
    /// else `DWS.ReviveSplit` — the paper's headline configuration and
    /// the one with the most warp-split machinery in play.
    #[must_use]
    pub fn canonical_policy(&self) -> Policy {
        self.policy.unwrap_or_else(Policy::dws_revive)
    }

    /// Deterministic hash of everything that shapes the campaign's
    /// behavior, so a report is self-describing: two reports with equal
    /// hashes ran identical configurations.
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        let mut h = FastHasher::default();
        h.write_u64(self.seed_start);
        h.write_u64(self.seeds);
        h.write_u64(self.gen.nthreads);
        h.write_u64(u64::from(self.gen.max_depth));
        h.write_u64(self.gen.max_stmts as u64);
        h.write(self.policy.map_or("all", |p| p.paper_name()).as_bytes());
        h.write_u64(self.max_cycles);
        h.write_u64(self.job_budget.map_or(0, |b| b.as_millis() as u64));
        h.write_u64(u64::from(self.minimize));
        h.write_u64(u64::from(self.meld));
        h.write_u64(self.perturb as u64);
        h.write_u64(FUZZ_THREADS);
        h.finish()
    }
}

/// The eleven scheduling policies of the policy axis.
#[must_use]
pub fn fuzz_policies() -> Vec<Policy> {
    vec![
        Policy::conventional(),
        Policy::dws_branch_stack(),
        Policy::dws_branch_only(),
        Policy::dws_mem_only(),
        Policy::dws_aggress(),
        Policy::dws_lazy(),
        Policy::dws_revive(),
        Policy::dws_revive_throttled(),
        Policy::dws_branch_limited(MemSplit::Revive),
        Policy::slip(),
        Policy::slip_branch_bypass(),
    ]
}

/// The canonical machine configuration for one fuzz simulation.
fn fuzz_sim_config(policy: Policy, max_cycles: u64) -> SimConfig {
    let mut c = SimConfig::paper(policy)
        .with_wpus(FUZZ_WPUS)
        .with_width(FUZZ_WIDTH)
        .with_warps(FUZZ_WARPS)
        .with_threads(1);
    c.max_cycles = max_cycles;
    c
}

/// Builds the runnable spec for a compiled fuzz kernel: input region
/// seeded from `Rng64(seed)`, private windows and outputs zeroed, verifier
/// comparing the full final image against the reference interpreter's.
///
/// Returns `Err` with the interpreter's message when the reference run
/// itself fails (a generator bug, classified [`FailureClass::ReferenceError`]).
fn build_spec(program: dws_isa::Program, seed: u64) -> Result<(Arc<KernelSpec>, Vec<u64>), String> {
    let mut memory = VecMemory::new(gen::mem_words(FUZZ_THREADS) * 8);
    let mut rng = Rng64::new(seed ^ 0xF022_5EED_DA7A_0001);
    for w in 0..gen::IN_WORDS as u64 {
        memory.write_i64(w * 8, rng.next_u64() as i64);
    }
    let mut expected_mem = memory.clone();
    ReferenceRunner::new(&program, FUZZ_THREADS).run(&mut expected_mem)?;
    let expected: Vec<u64> = expected_mem.words().to_vec();
    let check = expected.clone();
    let spec = KernelSpec::new("fuzz-kernel", program, memory, move |mem| {
        if mem.words() == check.as_slice() {
            Ok(())
        } else {
            Err("final memory differs from the reference interpreter".to_string())
        }
    })
    .with_layout(BufferLayout::of(&gen::layout(FUZZ_THREADS)));
    Ok((Arc::new(spec), expected))
}

/// First differing word between two memory images, as a detail string.
fn first_diff(got: &[u64], want: &[u64]) -> String {
    if got.len() != want.len() {
        return format!("memory sizes differ: {} vs {} words", got.len(), want.len());
    }
    for (w, (g, e)) in got.iter().zip(want).enumerate() {
        if g != e {
            return format!("word {w}: got {g:#x}, expected {e:#x}");
        }
    }
    "images equal".to_string()
}

/// Classifies a [`SimError`] on `axis`.
fn classify_err(e: &SimError, axis: Axis) -> FuzzFinding {
    let (kind, detail) = match e {
        SimError::Timeout { cycles, .. } => (WatchdogKind::Timeout, format!("at cycle {cycles}")),
        SimError::Deadlock {
            cycles,
            diagnostics,
        } => (
            WatchdogKind::Deadlock,
            format!("at cycle {cycles}: {diagnostics}"),
        ),
        SimError::Livelock {
            cycles,
            stalled_for,
            ..
        } => (
            WatchdogKind::Livelock,
            format!("at cycle {cycles} after {stalled_for} retire-free cycles"),
        ),
        SimError::HostBudget { cycles, budget } => (
            WatchdogKind::HostBudget,
            format!("{:.1}s budget at cycle {cycles}", budget.as_secs_f64()),
        ),
        SimError::Panicked { payload, .. } => {
            return FuzzFinding {
                class: FailureClass::Panic(axis),
                message: payload.clone(),
            }
        }
        SimError::VerifyFailed { message, .. } => {
            return FuzzFinding {
                class: FailureClass::MemoryMismatch(axis),
                message: message.clone(),
            }
        }
    };
    FuzzFinding {
        class: FailureClass::Watchdog(kind, axis),
        message: detail,
    }
}

/// Runs one compiled kernel across every oracle axis; `None` means all
/// axes agree. Axis order is fixed (policies in registry order, then
/// stepped, parallel, legacy engine, chaos, meld), and the first failure
/// wins, so classification is deterministic.
///
/// # Errors
///
/// `Err` when the AST no longer compiles/verifies — minimization
/// candidates take this path and are skipped.
pub fn check_ast(
    ast: &KernelAst,
    seed: u64,
    cfg: &FuzzConfig,
) -> Result<Option<FuzzFinding>, String> {
    assert_eq!(
        ast.nthreads, FUZZ_THREADS,
        "fuzz kernels target the canonical {FUZZ_THREADS}-thread machine"
    );
    let program = ast.compile().map_err(|e| e.to_string())?;
    Ok(check_program(program, seed, cfg))
}

/// [`check_ast`] for an already-compiled (or re-parsed) program — the
/// entry point corpus replay uses for checked-in `.asm` reproducers. The
/// program must target the canonical machine's thread count and memory
/// layout ([`gen::layout`] at [`FUZZ_THREADS`] threads).
pub fn check_program(
    program: dws_isa::Program,
    seed: u64,
    cfg: &FuzzConfig,
) -> Option<FuzzFinding> {
    let (spec, expected) = match build_spec(program, seed) {
        Ok(x) => x,
        Err(msg) => {
            return Some(FuzzFinding {
                class: FailureClass::ReferenceError,
                message: msg,
            })
        }
    };

    // Axis 1: every policy's event-driven run vs the reference image.
    // SweepRunner supplies panic isolation and the per-job host budget.
    let policies = match cfg.policy {
        Some(p) => vec![p],
        None => fuzz_policies(),
    };
    let canonical = cfg.canonical_policy();
    let mut sweep = SweepRunner::new().with_workers(1);
    if let Some(b) = cfg.job_budget {
        sweep = sweep.with_job_budget(b);
    }
    for &p in &policies {
        sweep.add(p.paper_name(), fuzz_sim_config(p, cfg.max_cycles), &spec);
    }
    let mut canonical_run: Option<RunResult> = None;
    for (outcome, &p) in sweep.run().into_iter().zip(&policies) {
        let axis = Axis::Policy(p.paper_name());
        match outcome.result {
            Ok(r) => {
                if r.memory.words() != expected.as_slice() {
                    return Some(FuzzFinding {
                        class: FailureClass::MemoryMismatch(axis),
                        message: first_diff(r.memory.words(), &expected),
                    });
                }
                if p == canonical {
                    canonical_run = Some(r);
                }
            }
            Err(e) => return Some(classify_err(&e, axis)),
        }
    }
    let canonical_run = canonical_run.expect("canonical policy is in the sweep");
    let config = fuzz_sim_config(canonical, cfg.max_cycles);

    // Axis 2: cycle-stepped run vs the event-driven run. `Machine::run`
    // documents bit-identity with stepping, so cycles AND memory must
    // match exactly. The step loop is bounded by the event run's cycle
    // count — crossing it already proves divergence.
    let stepped = catch_unwind(AssertUnwindSafe(|| {
        let mut m = Machine::new(&config, &spec);
        let limit = canonical_run.cycles + 1;
        while !m.done() && m.now().raw() < limit {
            m.step();
        }
        (m.done(), m.into_result())
    }));
    match stepped {
        Ok((done, r)) => {
            let mut cycles = r.cycles;
            if cfg.perturb == Perturbation::SkewStepped {
                cycles += 1;
            }
            if !done || cycles != canonical_run.cycles {
                return Some(FuzzFinding {
                    class: FailureClass::CycleMismatch(Axis::Stepped),
                    message: format!(
                        "stepped: {} cycles (done={done}), event-driven: {}",
                        cycles, canonical_run.cycles
                    ),
                });
            }
            if r.memory.words() != canonical_run.memory.words() {
                return Some(FuzzFinding {
                    class: FailureClass::MemoryMismatch(Axis::Stepped),
                    message: first_diff(r.memory.words(), canonical_run.memory.words()),
                });
            }
        }
        Err(p) => {
            return Some(FuzzFinding {
                class: FailureClass::Panic(Axis::Stepped),
                message: panic_payload(&*p),
            })
        }
    }

    // Axis 3: parallel stepping (2 workers sharding the WPUs) vs serial.
    let par = catch_unwind(AssertUnwindSafe(|| {
        Machine::run_with_threads(&config, &spec, 2)
    }));
    match par {
        Ok(Ok(r)) => {
            if r.cycles != canonical_run.cycles {
                return Some(FuzzFinding {
                    class: FailureClass::CycleMismatch(Axis::Parallel),
                    message: format!(
                        "parallel: {} cycles, serial: {}",
                        r.cycles, canonical_run.cycles
                    ),
                });
            }
            if r.memory.words() != canonical_run.memory.words() {
                return Some(FuzzFinding {
                    class: FailureClass::MemoryMismatch(Axis::Parallel),
                    message: first_diff(r.memory.words(), canonical_run.memory.words()),
                });
            }
        }
        Ok(Err(e)) => return Some(classify_err(&e, Axis::Parallel)),
        Err(p) => {
            return Some(FuzzFinding {
                class: FailureClass::Panic(Axis::Parallel),
                message: panic_payload(&*p),
            })
        }
    }

    // Axis 4: legacy ShadowLane interpretation vs the µop engine. Total
    // equivalence — cycles and memory.
    let legacy = catch_unwind(AssertUnwindSafe(|| {
        let mut m = Machine::new(&config, &spec);
        for w in &mut m.wpus {
            w.set_uop_engine(false);
        }
        m.run_serial(&config)
    }));
    match legacy {
        Ok(Ok(r)) => {
            if r.cycles != canonical_run.cycles {
                return Some(FuzzFinding {
                    class: FailureClass::CycleMismatch(Axis::Legacy),
                    message: format!(
                        "legacy engine: {} cycles, uop engine: {}",
                        r.cycles, canonical_run.cycles
                    ),
                });
            }
            if r.memory.words() != canonical_run.memory.words() {
                return Some(FuzzFinding {
                    class: FailureClass::MemoryMismatch(Axis::Legacy),
                    message: first_diff(r.memory.words(), canonical_run.memory.words()),
                });
            }
        }
        Ok(Err(e)) => return Some(classify_err(&e, Axis::Legacy)),
        Err(p) => {
            return Some(FuzzFinding {
                class: FailureClass::Panic(Axis::Legacy),
                message: panic_payload(&*p),
            })
        }
    }

    // Axis 5: full-chaos fault injection. Faults perturb timing only, so
    // the final memory must still match the reference image (cycles will
    // differ, by design).
    let chaos_config = config.with_fault(FaultPlan::full_chaos(seed));
    let chaos = catch_unwind(AssertUnwindSafe(|| Machine::run(&chaos_config, &spec)));
    match chaos {
        Ok(Ok(r)) => {
            let mut words = r.memory.words().to_vec();
            if cfg.perturb == Perturbation::CorruptChaos {
                if let Some(w) = words.last_mut() {
                    *w ^= 1;
                }
            }
            if words != expected {
                return Some(FuzzFinding {
                    class: FailureClass::MemoryMismatch(Axis::Chaos),
                    message: first_diff(&words, &expected),
                });
            }
        }
        Ok(Err(e)) => return Some(classify_err(&e, Axis::Chaos)),
        Err(p) => {
            return Some(FuzzFinding {
                class: FailureClass::Panic(Axis::Chaos),
                message: panic_payload(&*p),
            })
        }
    }

    // Axis 6: control-flow melding. Rewrite divergent diamonds into
    // predicated straight-line code, then require the melded kernel's
    // event-driven AND chaos runs to reproduce the unmelded reference
    // image exactly. Cycles may differ (melding exists to change them);
    // memory may not.
    if cfg.meld || cfg.perturb == Perturbation::CorruptMeld {
        let melded = match catch_unwind(AssertUnwindSafe(|| dws_isa::meld(spec.program.insts()))) {
            Ok(Ok(out)) => out,
            Ok(Err(report)) => {
                return Some(FuzzFinding {
                    class: FailureClass::TransformError,
                    message: format!("meld refused a verifier-accepted kernel:\n{report}"),
                })
            }
            Err(p) => {
                return Some(FuzzFinding {
                    class: FailureClass::Panic(Axis::Meld),
                    message: panic_payload(&*p),
                })
            }
        };
        // An unchanged kernel re-runs identically; skip the redundant
        // simulations unless a perturbation test needs the axis to fire.
        if melded.changed() || cfg.perturb == Perturbation::CorruptMeld {
            let program = match dws_isa::Program::from_insts(melded.insts) {
                Ok(p) => p,
                Err(e) => {
                    return Some(FuzzFinding {
                        class: FailureClass::TransformError,
                        message: format!("melded output fails verification: {e}"),
                    })
                }
            };
            let melded_spec = Arc::new(
                KernelSpec::new("fuzz-kernel-melded", program, spec.memory.clone(), |_| {
                    Ok(())
                })
                .with_layout(BufferLayout::of(&gen::layout(FUZZ_THREADS))),
            );
            for (run_config, tag) in [
                (config, "melded"),
                (
                    config.with_fault(FaultPlan::full_chaos(seed)),
                    "melded chaos",
                ),
            ] {
                let run =
                    catch_unwind(AssertUnwindSafe(|| Machine::run(&run_config, &melded_spec)));
                match run {
                    Ok(Ok(r)) => {
                        let mut words = r.memory.words().to_vec();
                        if cfg.perturb == Perturbation::CorruptMeld {
                            if let Some(w) = words.last_mut() {
                                *w ^= 1;
                            }
                        }
                        if words != expected {
                            return Some(FuzzFinding {
                                class: FailureClass::MemoryMismatch(Axis::Meld),
                                message: format!("{tag}: {}", first_diff(&words, &expected)),
                            });
                        }
                    }
                    Ok(Err(e)) => return Some(classify_err(&e, Axis::Meld)),
                    Err(p) => {
                        return Some(FuzzFinding {
                            class: FailureClass::Panic(Axis::Meld),
                            message: panic_payload(&*p),
                        })
                    }
                }
            }
        }
    }

    None
}

/// Shrink-ordering weight: every reduction in [`reductions`] strictly
/// decreases it, so greedy minimization terminates.
fn weight_of(stmts: &[GenStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            GenStmt::Arith { .. } | GenStmt::Barrier => 1,
            GenStmt::Gather { .. } | GenStmt::LoadPriv { .. } | GenStmt::StorePriv { .. } => 2,
            GenStmt::Diamond { then_b, else_b, .. } => 2 + weight_of(then_b) + weight_of(else_b),
            GenStmt::Loop { trips, body } => 1 + *trips as usize + weight_of(body),
        })
        .sum()
}

/// The total shrink weight of an AST.
#[must_use]
pub fn ast_weight(ast: &KernelAst) -> usize {
    weight_of(&ast.stmts)
}

/// All single-edit reduction candidates of `stmts`, each with strictly
/// smaller weight: drop a statement, inline a diamond arm, unwrap a loop,
/// collapse a trip count, demote a memory op to plain arithmetic, and the
/// same edits recursively inside nested bodies.
fn reduce_block(stmts: &[GenStmt]) -> Vec<Vec<GenStmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        // Drop.
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
        match &stmts[i] {
            GenStmt::Diamond { then_b, else_b, .. } => {
                // Inline either arm in place of the diamond.
                for arm in [then_b, else_b] {
                    let mut v = stmts.to_vec();
                    v.splice(i..=i, arm.iter().cloned());
                    out.push(v);
                }
                // Recurse into each arm.
                for (arm_idx, arm) in [then_b, else_b].into_iter().enumerate() {
                    for smaller in reduce_block(arm) {
                        let mut v = stmts.to_vec();
                        if let GenStmt::Diamond { then_b, else_b, .. } = &mut v[i] {
                            if arm_idx == 0 {
                                *then_b = smaller;
                            } else {
                                *else_b = smaller;
                            }
                        }
                        out.push(v);
                    }
                }
            }
            GenStmt::Loop { trips, body } => {
                // Unwrap: replace the loop with one copy of its body.
                let mut v = stmts.to_vec();
                v.splice(i..=i, body.iter().cloned());
                out.push(v);
                // Collapse the trip count.
                if *trips > 1 {
                    let mut v = stmts.to_vec();
                    if let GenStmt::Loop { trips, .. } = &mut v[i] {
                        *trips = 1;
                    }
                    out.push(v);
                }
                // Recurse into the body.
                for smaller in reduce_block(body) {
                    let mut v = stmts.to_vec();
                    if let GenStmt::Loop { body, .. } = &mut v[i] {
                        *body = smaller;
                    }
                    out.push(v);
                }
            }
            // Demote memory traffic to a cheap register op that keeps the
            // destination defined (so downstream reads stay valid).
            GenStmt::Gather { dst, idx } => {
                let mut v = stmts.to_vec();
                v[i] = GenStmt::Arith {
                    dst: *dst,
                    op: GenOp::Xor,
                    a: GenVal::Slot(*idx),
                    b: GenVal::Imm(0),
                };
                out.push(v);
            }
            GenStmt::LoadPriv { dst, .. } => {
                let mut v = stmts.to_vec();
                v[i] = GenStmt::Arith {
                    dst: *dst,
                    op: GenOp::Xor,
                    a: GenVal::Slot(*dst),
                    b: GenVal::Imm(0),
                };
                out.push(v);
            }
            GenStmt::StorePriv { src, .. } => {
                let mut v = stmts.to_vec();
                v[i] = GenStmt::Arith {
                    dst: *src,
                    op: GenOp::Xor,
                    a: GenVal::Slot(*src),
                    b: GenVal::Imm(0),
                };
                out.push(v);
            }
            GenStmt::Arith { .. } | GenStmt::Barrier => {}
        }
    }
    out
}

/// All single-edit reductions of `ast`.
#[must_use]
pub fn reductions(ast: &KernelAst) -> Vec<KernelAst> {
    reduce_block(&ast.stmts)
        .into_iter()
        .map(|stmts| KernelAst {
            nthreads: ast.nthreads,
            stmts,
        })
        .collect()
}

/// Why minimization refused to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinimizeError {
    /// The kernel passes every oracle axis — nothing to minimize.
    KernelPasses,
    /// The kernel no longer compiles (stale reproducer).
    CompileError(String),
}

impl std::fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinimizeError::KernelPasses => {
                write!(f, "kernel passes all oracle axes; nothing to minimize")
            }
            MinimizeError::CompileError(e) => write!(f, "kernel does not compile: {e}"),
        }
    }
}

/// Delta-debugs a failing kernel: greedily applies the first reduction
/// that still compiles, still verifies, and still fails with the same
/// [`FailureClass`], until no reduction is accepted. Every accepted step
/// strictly decreases [`ast_weight`], so the loop terminates.
///
/// # Errors
///
/// [`MinimizeError::KernelPasses`] when `ast` does not fail any axis
/// (minimizing a passing kernel is rejected, not a silent no-op), and
/// [`MinimizeError::CompileError`] when it does not even compile.
pub fn minimize(
    ast: &KernelAst,
    seed: u64,
    cfg: &FuzzConfig,
) -> Result<(KernelAst, FuzzFinding), MinimizeError> {
    let finding = match check_ast(ast, seed, cfg) {
        Ok(Some(f)) => f,
        Ok(None) => return Err(MinimizeError::KernelPasses),
        Err(e) => return Err(MinimizeError::CompileError(e)),
    };
    let mut cur = ast.clone();
    let mut cur_finding = finding;
    loop {
        let before = ast_weight(&cur);
        let mut improved = false;
        for cand in reductions(&cur) {
            debug_assert!(ast_weight(&cand) < before, "reductions must shrink");
            if let Ok(Some(f)) = check_ast(&cand, seed, cfg) {
                if f.class == cur_finding.class {
                    cur = cand;
                    cur_finding = f;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return Ok((cur, cur_finding));
        }
    }
}

/// A finished campaign, ready to render as JSON.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Configuration fingerprint ([`FuzzConfig::config_hash`]).
    pub config_hash: u64,
    /// First seed checked.
    pub seed_start: u64,
    /// Seeds checked.
    pub seeds: u64,
    /// Policy-axis restriction, if any (paper name).
    pub policy: Option<&'static str>,
    /// All failures, in seed order.
    pub failures: Vec<FuzzFailure>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl FuzzReport {
    /// Whether every checked seed passed every axis.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the deterministic JSON report: fixed key order, no
    /// wall-clock fields, so identical campaigns are byte-identical.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"config_hash\":\"{:#018x}\",\"seed_start\":{},\"seeds\":{},\"policy\":\"{}\",\"failed\":{},\"failures\":[",
            self.config_hash,
            self.seed_start,
            self.seeds,
            self.policy.unwrap_or("all"),
            self.failures.len(),
        );
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"seed\":{},\"class\":\"{}\",\"message\":\"{}\",\"insts\":{}",
                f.seed,
                json_escape(&f.class.label()),
                json_escape(&f.message),
                f.insts,
            );
            if let Some(m) = &f.minimized {
                let _ = write!(
                    s,
                    ",\"minimized_insts\":{},\"minimized_stmts\":{},\"minimized_asm\":\"{}\"",
                    m.insts,
                    m.ast.stmt_count(),
                    json_escape(&m.asm),
                );
            }
            let _ = write!(s, ",\"replay\":\"{}\"}}", json_escape(&f.replay));
        }
        s.push_str("]}");
        s
    }
}

/// Runs a full campaign: for each seed, generate a verifier-accepted
/// kernel, run the differential battery, optionally minimize failures.
/// Deterministic: identical configs produce byte-identical
/// [`FuzzReport::to_json`] output.
#[must_use]
pub fn run_campaign(cfg: &FuzzConfig) -> FuzzReport {
    let mut failures = Vec::new();
    for seed in cfg.seed_start..cfg.seed_start.saturating_add(cfg.seeds) {
        let ast = gen::generate(seed, &cfg.gen);
        let insts = ast.compile().map_or(0, |p| p.len());
        let Ok(Some(finding)) = check_ast(&ast, seed, cfg) else {
            continue;
        };
        let minimized = if cfg.minimize {
            minimize(&ast, seed, cfg).ok().and_then(|(small, _)| {
                let program = small.compile().ok()?;
                Some(MinimizedRepro {
                    insts: program.len(),
                    asm: render_asm(&program),
                    ast: small,
                })
            })
        } else {
            None
        };
        let mut replay = format!("dws-cli fuzz --seed-start {seed} --seeds 1 --minimize");
        if let Some(p) = cfg.policy {
            replay.push_str(&format!(" --policy {}", p.paper_name()));
        }
        failures.push(FuzzFailure {
            seed,
            class: finding.class,
            message: finding.message,
            insts,
            minimized,
            replay,
        });
    }
    FuzzReport {
        config_hash: cfg.config_hash(),
        seed_start: cfg.seed_start,
        seeds: cfg.seeds,
        policy: cfg.policy.map(|p| p.paper_name()),
        failures,
    }
}
