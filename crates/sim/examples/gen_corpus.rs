//! One-shot generator for `crates/sim/tests/corpus/` (output is checked
//! in; this example exists so the corpus can be regenerated after a
//! generator or ISA change). Scans seeds for kernels exercising the
//! generator's hairiest shapes, plus minimizes one injected failure per
//! perturbation so the corpus pins the minimizer's output format too.
//!
//! Usage: `cargo run -p dws-sim --example gen_corpus -- <out-dir>`

use dws_isa::gen::{self, GenConfig, GenStmt, KernelAst};
use dws_isa::render_asm;
use dws_sim::fuzz::{minimize, FuzzConfig, Perturbation, FUZZ_THREADS};

fn any_stmt(stmts: &[GenStmt], pred: &dyn Fn(&GenStmt) -> bool) -> bool {
    stmts.iter().any(|s| {
        pred(s)
            || match s {
                GenStmt::Diamond { then_b, else_b, .. } => {
                    any_stmt(then_b, pred) || any_stmt(else_b, pred)
                }
                GenStmt::Loop { body, .. } => any_stmt(body, pred),
                _ => false,
            }
    })
}

fn count_stmts(stmts: &[GenStmt], pred: &dyn Fn(&GenStmt) -> bool) -> usize {
    stmts
        .iter()
        .map(|s| {
            usize::from(pred(s))
                + match s {
                    GenStmt::Diamond { then_b, else_b, .. } => {
                        count_stmts(then_b, pred) + count_stmts(else_b, pred)
                    }
                    GenStmt::Loop { body, .. } => count_stmts(body, pred),
                    _ => 0,
                }
        })
        .sum()
}

fn nested_diamond(s: &GenStmt) -> bool {
    match s {
        GenStmt::Diamond { then_b, else_b, .. } => {
            any_stmt(then_b, &|x| matches!(x, GenStmt::Diamond { .. }))
                || any_stmt(else_b, &|x| matches!(x, GenStmt::Diamond { .. }))
        }
        _ => false,
    }
}

fn loop_with_diamond(s: &GenStmt) -> bool {
    match s {
        GenStmt::Loop { body, .. } => any_stmt(body, &|x| matches!(x, GenStmt::Diamond { .. })),
        _ => false,
    }
}

fn is_mem(s: &GenStmt) -> bool {
    matches!(
        s,
        GenStmt::Gather { .. } | GenStmt::LoadPriv { .. } | GenStmt::StorePriv { .. }
    )
}

/// First seed matching `want` that hasn't been claimed by an earlier
/// profile, so the corpus holds distinct kernels.
fn first_seed(
    cfg: &GenConfig,
    used: &mut Vec<u64>,
    want: &dyn Fn(&KernelAst) -> bool,
) -> (u64, KernelAst) {
    for seed in 0..10_000 {
        if used.contains(&seed) {
            continue;
        }
        let ast = gen::generate(seed, cfg);
        if want(&ast) {
            used.push(seed);
            return (seed, ast);
        }
    }
    panic!("no seed under 10000 matches the requested shape");
}

fn write_kernel(dir: &str, seed: u64, tag: &str, why: &str, ast: &KernelAst) {
    let program = ast.compile().expect("corpus kernels compile");
    let path = format!("{dir}/seed-{seed:05}-{tag}.asm");
    let header = format!(
        "; fuzz corpus reproducer: {why}\n\
         ; generator seed {seed}, {} threads, {} statements, {} instructions\n\
         ; replay: dws-cli fuzz --seed-start {seed} --seeds 1 --minimize\n",
        ast.nthreads,
        ast.stmt_count(),
        program.len(),
    );
    std::fs::write(&path, format!("{header}{}", render_asm(&program))).expect("write corpus file");
    println!("{path}: {} insts", program.len());
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .expect("usage: gen_corpus <out-dir>");
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let gcfg = GenConfig::default();
    let mut used: Vec<u64> = Vec::new();
    assert_eq!(gcfg.nthreads, FUZZ_THREADS);

    let (seed, ast) = first_seed(&gcfg, &mut used, &|a| any_stmt(&a.stmts, &nested_diamond));
    write_kernel(
        &dir,
        seed,
        "nested-diamond",
        "diamond inside a diamond arm",
        &ast,
    );

    let (seed, ast) = first_seed(&gcfg, &mut used, &|a| {
        any_stmt(&a.stmts, &loop_with_diamond)
    });
    write_kernel(
        &dir,
        seed,
        "loop-diamond",
        "divergent diamond inside a uniform loop",
        &ast,
    );

    let (seed, ast) = first_seed(&gcfg, &mut used, &|a| {
        any_stmt(&a.stmts, &|s| matches!(s, GenStmt::Barrier))
            && any_stmt(&a.stmts, &|s| matches!(s, GenStmt::Loop { .. }))
    });
    write_kernel(
        &dir,
        seed,
        "barrier-loop",
        "global barrier alongside uniform loops",
        &ast,
    );

    let (seed, ast) = first_seed(&gcfg, &mut used, &|a| count_stmts(&a.stmts, &is_mem) >= 6);
    write_kernel(
        &dir,
        seed,
        "memory-heavy",
        "6+ gather/private memory operations",
        &ast,
    );

    let (seed, ast) = first_seed(&gcfg, &mut used, &|a| {
        any_stmt(&a.stmts, &|s| match s {
            GenStmt::Diamond { then_b, else_b, .. } => {
                any_stmt(then_b, &is_mem) || any_stmt(else_b, &is_mem)
            }
            _ => false,
        })
    });
    write_kernel(
        &dir,
        seed,
        "divergent-gather",
        "memory operations under divergence",
        &ast,
    );

    // Minimized reproducers: inject each test-only perturbation, minimize
    // the resulting failure, and pin the shrunk kernel. These replay clean
    // (the perturbation lives in the harness, not the kernel); they pin
    // the minimizer's fixed point and output format.
    for (perturb, tag, why) in [
        (
            Perturbation::SkewStepped,
            "min-stepped-skew",
            "minimized from an injected stepped-axis cycle skew",
        ),
        (
            Perturbation::CorruptChaos,
            "min-chaos-corrupt",
            "minimized from an injected chaos-axis memory corruption",
        ),
    ] {
        let cfg = FuzzConfig {
            perturb,
            ..FuzzConfig::default()
        };
        let seed = 0;
        let ast = gen::generate(seed, &cfg.gen);
        let (small, finding) = minimize(&ast, seed, &cfg).expect("perturbed kernel fails");
        println!("{tag}: class {}", finding.class.label());
        write_kernel(&dir, seed, tag, why, &small);
    }
}
