//! Figure 20: DWS sensitivity to the number of scheduler slots. Too few
//! slots cap multi-threading (unslotted splits cannot hide latency); many
//! slots stop helping once cache contention bites. The paper doubles the
//! conventional entry count (8 slots for 4 warps).

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let slots = [4usize, 6, 8, 12, 16, 32];
    let mut headers = vec!["series".to_string()];
    headers.extend(slots.iter().map(|s| format!("{s} slots")));
    let mut t = Table::new(
        "Figure 20 — DWS speedup over Conv vs scheduler slots (h-mean)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let ids = slots
            .iter()
            .map(|&s| {
                let mut cfg = SimConfig::paper(Policy::dws_revive());
                cfg.sched_slots = s;
                sweep.add(format!("DWS slots={s}"), &cfg, &spec)
            })
            .collect();
        jobs.push((base, ids));
    }
    let results = sweep.run();

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); slots.len()];
    for (base, ids) in &jobs {
        let base = &results[*base];
        for (i, &id) in ids.iter().enumerate() {
            cols[i].push(results[id].speedup_over(base));
        }
    }
    t.row(
        std::iter::once("DWS".to_string())
            .chain(cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.print();
    println!(
        "\npaper (Fig. 20): best performance at a moderate slot count; the\n\
         paper's default doubles the conventional scheduler (8 slots)."
    );
}
