//! Figure 20: DWS sensitivity to the number of scheduler slots. Too few
//! slots cap multi-threading (unslotted splits cannot hide latency); many
//! slots stop helping once cache contention bites. The paper doubles the
//! conventional entry count (8 slots for 4 warps).

use dws_bench::{build, f2, hmean, run, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let slots = [4usize, 6, 8, 12, 16, 32];
    let mut headers = vec!["series".to_string()];
    headers.extend(slots.iter().map(|s| format!("{s} slots")));
    let mut t = Table::new(
        "Figure 20 — DWS speedup over Conv vs scheduler slots (h-mean)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); slots.len()];
    for bench in dws_bench::benchmarks() {
        let spec = build(bench);
        let base = run("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        for (i, &s) in slots.iter().enumerate() {
            let mut cfg = SimConfig::paper(Policy::dws_revive());
            cfg.sched_slots = s;
            let r = run(&format!("DWS slots={s}"), &cfg, &spec);
            cols[i].push(r.speedup_over(&base));
        }
    }
    t.row(
        std::iter::once("DWS".to_string())
            .chain(cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.print();
    println!(
        "\npaper (Fig. 20): best performance at a moderate slot count; the\n\
         paper's default doubles the conventional scheduler (8 slots)."
    );
}
