//! Figure 13: comparing every DWS scheme and the adaptive-slip baselines,
//! per benchmark, normalized to the conventional architecture.
//!
//! Series: DWS.BranchOnly, DWS.ReviveSplit.MemOnly, DWS.AggressSplit,
//! DWS.LazySplit, DWS.ReviveSplit, Slip, Slip.BranchBypass; plus the
//! harmonic mean across benchmarks.

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::{presets, SimConfig};

fn main() {
    let policies = presets::figure13_policies();
    let mut headers = vec!["benchmark"];
    headers.extend(policies.iter().map(|(n, _)| *n));
    let mut t = Table::new("Figure 13 — speedup over Conv, per scheme", &headers);

    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let ids = policies
            .iter()
            .map(|(name, policy)| sweep.add(*name, &SimConfig::paper(*policy), &spec))
            .collect();
        jobs.push((base, ids));
    }
    let results = sweep.run();

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (&bench, (base, ids)) in benches.iter().zip(&jobs) {
        let mut cells = vec![bench.name().to_string()];
        for (i, &id) in ids.iter().enumerate() {
            let s = results[id].speedup_over(&results[*base]);
            columns[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut cells = vec!["h-mean".to_string()];
    for col in &columns {
        cells.push(f2(hmean(col)));
    }
    t.row(cells);
    t.print();
    println!(
        "\npaper (Fig. 13): BranchOnly 1.13X, ReviveSplit.MemOnly 1.20X,\n\
         AggressSplit/LazySplit below 1.0X, ReviveSplit 1.71X (h-means);\n\
         Slip degrades many benchmarks, Slip.BranchBypass helps some but\n\
         still harms KMeans/Short/FFT."
    );
}
