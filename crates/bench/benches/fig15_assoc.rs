//! Figure 15: speedup vs D-cache associativity (4-way to fully
//! associative) for Conv and DWS.ReviveSplit, normalized to Conv at the
//! paper's default 8-way configuration.

use dws_bench::{build, f2, hmean, run, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let assocs: [(&str, Option<usize>); 4] = [
        ("4-way", Some(4)),
        ("8-way", Some(8)),
        ("16-way", Some(16)),
        ("full", None),
    ];
    let mut headers = vec!["series".to_string()];
    headers.extend(assocs.iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(
        "Figure 15 — speedup vs D-cache associativity (h-mean, norm. to Conv 8-way)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    let make = |policy: Policy, assoc: Option<usize>| {
        let mut cfg = SimConfig::paper(policy);
        cfg.mem.l1d = match assoc {
            Some(a) => cfg.mem.l1d.with_assoc(a),
            None => cfg.mem.l1d.fully_associative(),
        };
        cfg
    };

    let mut conv_cols: Vec<Vec<f64>> = vec![Vec::new(); assocs.len()];
    let mut dws_cols: Vec<Vec<f64>> = vec![Vec::new(); assocs.len()];
    let mut per_bench: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for bench in dws_bench::benchmarks() {
        let spec = build(bench);
        let base = run("Conv 8-way", &make(Policy::conventional(), Some(8)), &spec);
        let mut conv_row = Vec::new();
        let mut dws_row = Vec::new();
        for (i, &(name, assoc)) in assocs.iter().enumerate() {
            let c = if assoc == Some(8) {
                base.cycles
            } else {
                run(
                    &format!("Conv {name}"),
                    &make(Policy::conventional(), assoc),
                    &spec,
                )
                .cycles
            };
            let d = run(
                &format!("DWS {name}"),
                &make(Policy::dws_revive(), assoc),
                &spec,
            )
            .cycles;
            let cs = base.cycles as f64 / c as f64;
            let ds = base.cycles as f64 / d as f64;
            conv_cols[i].push(cs);
            dws_cols[i].push(ds);
            conv_row.push(cs);
            dws_row.push(ds);
        }
        per_bench.push((bench.name().to_string(), conv_row, dws_row));
    }
    t.row(
        std::iter::once("Conv".to_string())
            .chain(conv_cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.row(
        std::iter::once("DWS".to_string())
            .chain(dws_cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.print();

    let mut t2 = Table::new(
        "Figure 15 (detail) — per-benchmark DWS speedup over Conv at same assoc",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (name, conv_row, dws_row) in &per_bench {
        let cells: Vec<String> = std::iter::once(name.clone())
            .chain(conv_row.iter().zip(dws_row).map(|(c, d)| f2(d / c)))
            .collect();
        t2.row(cells);
    }
    t2.print();
    println!(
        "\npaper (Fig. 15): DWS's edge shrinks as associativity grows (fewer\n\
         misses to hide) and can also shrink at very low associativity\n\
         (whole warps miss together, so divergence itself disappears)."
    );
}
