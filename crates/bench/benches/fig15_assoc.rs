//! Figure 15: speedup vs D-cache associativity (4-way to fully
//! associative) for Conv and DWS.ReviveSplit, normalized to Conv at the
//! paper's default 8-way configuration.

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let assocs: [(&str, Option<usize>); 4] = [
        ("4-way", Some(4)),
        ("8-way", Some(8)),
        ("16-way", Some(16)),
        ("full", None),
    ];
    let mut headers = vec!["series".to_string()];
    headers.extend(assocs.iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(
        "Figure 15 — speedup vs D-cache associativity (h-mean, norm. to Conv 8-way)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    let make = |policy: Policy, assoc: Option<usize>| {
        let mut cfg = SimConfig::paper(policy);
        cfg.mem.l1d = match assoc {
            Some(a) => cfg.mem.l1d.with_assoc(a),
            None => cfg.mem.l1d.fully_associative(),
        };
        cfg
    };

    // Per bench: the Conv 8-way baseline id, then per assoc the optional
    // Conv id (None at 8-way, which reuses the baseline) and the DWS id.
    type BenchJobs = (usize, Vec<(Option<usize>, usize)>);
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<BenchJobs> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv 8-way", &make(Policy::conventional(), Some(8)), &spec);
        let ids = assocs
            .iter()
            .map(|&(name, assoc)| {
                let conv = if assoc == Some(8) {
                    None
                } else {
                    Some(sweep.add(
                        format!("Conv {name}"),
                        &make(Policy::conventional(), assoc),
                        &spec,
                    ))
                };
                let dws = sweep.add(
                    format!("DWS {name}"),
                    &make(Policy::dws_revive(), assoc),
                    &spec,
                );
                (conv, dws)
            })
            .collect();
        jobs.push((base, ids));
    }
    let results = sweep.run();

    let mut conv_cols: Vec<Vec<f64>> = vec![Vec::new(); assocs.len()];
    let mut dws_cols: Vec<Vec<f64>> = vec![Vec::new(); assocs.len()];
    let mut per_bench: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (&bench, (base, ids)) in benches.iter().zip(&jobs) {
        let base = &results[*base];
        let mut conv_row = Vec::new();
        let mut dws_row = Vec::new();
        for (i, &(conv, dws)) in ids.iter().enumerate() {
            let c = match conv {
                Some(id) => results[id].cycles,
                None => base.cycles,
            };
            let d = results[dws].cycles;
            let cs = base.cycles as f64 / c as f64;
            let ds = base.cycles as f64 / d as f64;
            conv_cols[i].push(cs);
            dws_cols[i].push(ds);
            conv_row.push(cs);
            dws_row.push(ds);
        }
        per_bench.push((bench.name().to_string(), conv_row, dws_row));
    }
    t.row(
        std::iter::once("Conv".to_string())
            .chain(conv_cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.row(
        std::iter::once("DWS".to_string())
            .chain(dws_cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.print();

    let mut t2 = Table::new(
        "Figure 15 (detail) — per-benchmark DWS speedup over Conv at same assoc",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (name, conv_row, dws_row) in &per_bench {
        let cells: Vec<String> = std::iter::once(name.clone())
            .chain(conv_row.iter().zip(dws_row).map(|(c, d)| f2(d / c)))
            .collect();
        t2.row(cells);
    }
    t2.print();
    println!(
        "\npaper (Fig. 15): DWS's edge shrinks as associativity grows (fewer\n\
         misses to hide) and can also shrink at very low associativity\n\
         (whole warps miss together, so divergence itself disappears)."
    );
}
