//! Ablation studies for the design choices documented in DESIGN.md §6 —
//! the points where the paper under-specifies the hardware and this
//! reproduction had to choose:
//!
//! 1. matching split PCs at issue (the WST PC CAM) vs only after memory
//!    instructions (§4.5 read literally);
//! 2. parking the empty edge of a branch split (keep the body side
//!    running) vs always continuing with the taken side;
//! 3. the §4.3 static subdivision threshold (post-dominator block length),
//!    swept from "never subdivide" to "always subdivide".
//!
//! All numbers are speedups over `Conv`, harmonic-mean across the
//! benchmark set, under `DWS.ReviveSplit` variants.

use std::sync::Arc;

use dws_bench::{build, build_shared, f2, hmean, Sweep, Table};
use dws_core::{DwsConfig, Policy};
use dws_sim::SimConfig;

fn revive_with(f: impl Fn(&mut DwsConfig)) -> Policy {
    match Policy::dws_revive() {
        Policy::Dws(mut c) => {
            f(&mut c);
            Policy::Dws(c)
        }
        _ => unreachable!("dws_revive is a DWS policy"),
    }
}

fn main() {
    let variants: Vec<(&str, Policy)> = vec![
        ("ReviveSplit (default)", Policy::dws_revive()),
        ("no issue-PC-CAM", revive_with(|c| c.issue_pc_cam = false)),
        (
            "no short-path parking",
            revive_with(|c| c.park_short_path = false),
        ),
        (
            "neither refinement",
            revive_with(|c| {
                c.issue_pc_cam = false;
                c.park_short_path = false;
            }),
        ),
    ];
    let mut headers = vec!["benchmark"];
    headers.extend(variants.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "Ablation A — PC-merge refinements (speedup over Conv)",
        &headers,
    );
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut a_jobs: Vec<(usize, Vec<usize>)> = Vec::new();
    // Ablation B: the Section 4.3 subdivision threshold. Each threshold
    // needs its own spec — `with_subdiv_threshold` rewrites the program's
    // static branch classification.
    let thresholds: Vec<(&str, usize)> = vec![
        ("0 (never)", 0),
        ("10", 10),
        ("50 (paper)", 50),
        ("200", 200),
        ("inf (always)", usize::MAX),
    ];
    let mut b_jobs: Vec<Vec<usize>> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let ids = variants
            .iter()
            .map(|(name, policy)| sweep.add(*name, &SimConfig::paper(*policy), &spec))
            .collect();
        a_jobs.push((base, ids));
        b_jobs.push(
            thresholds
                .iter()
                .map(|&(name, thr)| {
                    let mut spec = build(bench);
                    spec.program = Arc::new(spec.program.with_subdiv_threshold(thr));
                    sweep.add(
                        name,
                        &SimConfig::paper(Policy::dws_revive()),
                        &Arc::new(spec),
                    )
                })
                .collect(),
        );
    }
    let results = sweep.run();

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for (&bench, (base, ids)) in benches.iter().zip(&a_jobs) {
        let base = &results[*base];
        let mut cells = vec![bench.name().to_string()];
        for (i, &id) in ids.iter().enumerate() {
            let s = results[id].speedup_over(base);
            cols[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut cells = vec!["h-mean".to_string()];
    for col in &cols {
        cells.push(f2(hmean(col)));
    }
    t.row(cells);
    t.print();

    let mut headers = vec!["benchmark".to_string()];
    headers.extend(thresholds.iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(
        "Ablation B — §4.3 subdivision threshold (speedup over Conv, ReviveSplit)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); thresholds.len()];
    for (&bench, ((base, _), ids)) in benches.iter().zip(a_jobs.iter().zip(&b_jobs)) {
        let base = &results[*base];
        let mut cells = vec![bench.name().to_string()];
        for (i, &id) in ids.iter().enumerate() {
            let s = results[id].speedup_over(base);
            cols[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut cells = vec!["h-mean".to_string()];
    for col in &cols {
        cells.push(f2(hmean(col)));
    }
    t.row(cells);
    t.print();
    println!(
        "\nexpectation: the issue-PC-CAM and short-path parking are what\n\
         keep branch subdivision from degrading compute-bound benchmarks;\n\
         threshold 0 reduces DWS to memory-divergence-only behavior at\n\
         branches, and very large thresholds over-subdivide."
    );
}
