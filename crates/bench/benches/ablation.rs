//! Ablation studies for the design choices documented in DESIGN.md §6 —
//! the points where the paper under-specifies the hardware and this
//! reproduction had to choose:
//!
//! 1. matching split PCs at issue (the WST PC CAM) vs only after memory
//!    instructions (§4.5 read literally);
//! 2. parking the empty edge of a branch split (keep the body side
//!    running) vs always continuing with the taken side;
//! 3. the §4.3 static subdivision threshold (post-dominator block length),
//!    swept from "never subdivide" to "always subdivide".
//!
//! All numbers are speedups over `Conv`, harmonic-mean across the
//! benchmark set, under `DWS.ReviveSplit` variants.

use dws_bench::{build, f2, hmean, run, Table};
use dws_core::{DwsConfig, Policy};
use dws_sim::SimConfig;

fn revive_with(f: impl Fn(&mut DwsConfig)) -> Policy {
    match Policy::dws_revive() {
        Policy::Dws(mut c) => {
            f(&mut c);
            Policy::Dws(c)
        }
        _ => unreachable!("dws_revive is a DWS policy"),
    }
}

fn main() {
    let variants: Vec<(&str, Policy)> = vec![
        ("ReviveSplit (default)", Policy::dws_revive()),
        ("no issue-PC-CAM", revive_with(|c| c.issue_pc_cam = false)),
        (
            "no short-path parking",
            revive_with(|c| c.park_short_path = false),
        ),
        (
            "neither refinement",
            revive_with(|c| {
                c.issue_pc_cam = false;
                c.park_short_path = false;
            }),
        ),
    ];
    let mut headers = vec!["benchmark"];
    headers.extend(variants.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "Ablation A — PC-merge refinements (speedup over Conv)",
        &headers,
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for bench in dws_bench::benchmarks() {
        let spec = build(bench);
        let base = run("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let mut cells = vec![bench.name().to_string()];
        for (i, (name, policy)) in variants.iter().enumerate() {
            let r = run(name, &SimConfig::paper(*policy), &spec);
            let s = r.speedup_over(&base);
            cols[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut cells = vec!["h-mean".to_string()];
    for col in &cols {
        cells.push(f2(hmean(col)));
    }
    t.row(cells);
    t.print();

    // Ablation B: the Section 4.3 subdivision threshold.
    let thresholds: Vec<(&str, usize)> = vec![
        ("0 (never)", 0),
        ("10", 10),
        ("50 (paper)", 50),
        ("200", 200),
        ("inf (always)", usize::MAX),
    ];
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(thresholds.iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(
        "Ablation B — §4.3 subdivision threshold (speedup over Conv, ReviveSplit)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); thresholds.len()];
    for bench in dws_bench::benchmarks() {
        let mut spec = build(bench);
        let base = run("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let mut cells = vec![bench.name().to_string()];
        for (i, &(name, thr)) in thresholds.iter().enumerate() {
            spec.program = spec.program.with_subdiv_threshold(thr);
            let r = run(name, &SimConfig::paper(Policy::dws_revive()), &spec);
            let s = r.speedup_over(&base);
            cols[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut cells = vec!["h-mean".to_string()];
    for col in &cols {
        cells.push(f2(hmean(col)));
    }
    t.row(cells);
    t.print();
    println!(
        "\nexpectation: the issue-PC-CAM and short-path parking are what\n\
         keep branch subdivision from degrading compute-bound benchmarks;\n\
         threshold 0 reduces DWS to memory-divergence-only behavior at\n\
         branches, and very large thresholds over-subdivide."
    );
}
