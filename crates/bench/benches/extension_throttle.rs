//! Extension study: the paper's future work (Section 5.2) asks whether
//! "foreknowledge or speculation ... prediction hardware" could decide
//! when subdivision pays. `DWS.ReviveSplit.Throttled` tries the simplest
//! such predictor — duty-cycle dueling (probe splits on, drain, probe
//! splits off, commit to the measured winner) — and this bench reports
//! whether it rescues the benchmarks where subdivision backfires without
//! costing the ones where it pays.

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let policies = [
        ("DWS.ReviveSplit", Policy::dws_revive()),
        ("DWS.ReviveSplit.Throttled", Policy::dws_revive_throttled()),
    ];
    let mut headers = vec!["benchmark"];
    headers.extend(policies.iter().map(|(n, _)| *n));
    headers.push("splits (plain)");
    headers.push("splits (throttled)");
    let mut t = Table::new(
        "Extension — adaptive subdivision throttle (speedup over Conv)",
        &headers,
    );
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let ids = policies
            .iter()
            .map(|(name, policy)| sweep.add(*name, &SimConfig::paper(*policy), &spec))
            .collect();
        jobs.push((base, ids));
    }
    let results = sweep.run();

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (&bench, (base, ids)) in benches.iter().zip(&jobs) {
        let base = &results[*base];
        let mut cells = vec![bench.name().to_string()];
        let mut splits = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let r = &results[id];
            let s = r.speedup_over(base);
            cols[i].push(s);
            cells.push(f2(s));
            splits.push(
                r.wpu.branch_splits.get() + r.wpu.mem_splits.get() + r.wpu.revive_splits.get(),
            );
        }
        for sp in splits {
            cells.push(sp.to_string());
        }
        t.row(cells);
    }
    let mut cells = vec!["h-mean".to_string()];
    for col in &cols {
        cells.push(f2(hmean(col)));
    }
    cells.push(String::new());
    cells.push(String::new());
    t.row(cells);
    t.print();
    println!(
        "\nexpectation (and honest result): temporal probing is only partly\n\
         reliable — it trims losses where subdivision backfires but can\n\
         mis-predict across workload phases, which is presumably why the\n\
         paper left this to future work."
    );
}
