//! Table 1: characterization of the frequency of branch divergence and
//! SIMD cache misses, per benchmark, on the conventional baseline.
//!
//! Paper rows: average instruction count between branches, percentage of
//! divergent branches, average instruction count between misses, average
//! instruction count between divergent misses, percentage of divergent
//! memory accesses.

use dws_bench::{build_shared, f2, pct, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let mut t = Table::new(
        "Table 1 — divergence characterization (Conv baseline)",
        &[
            "benchmark",
            "insts/branch",
            "div branches",
            "insts/miss",
            "insts/div-miss",
            "div accesses",
        ],
    );
    let cfg = SimConfig::paper(Policy::conventional());
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let ids: Vec<usize> = benches
        .iter()
        .map(|&bench| sweep.add("Conv", &cfg, &build_shared(bench)))
        .collect();
    let results = sweep.run();
    for (&bench, &id) in benches.iter().zip(&ids) {
        let r = &results[id];
        t.row(vec![
            bench.name().to_string(),
            f2(r.wpu.insts_between_branches.mean().unwrap_or(f64::NAN)),
            pct(r.wpu.divergent_branch_fraction().unwrap_or(0.0)),
            f2(r.wpu.insts_between_misses.mean().unwrap_or(f64::NAN)),
            f2(r.wpu.insts_between_div_misses.mean().unwrap_or(f64::NAN)),
            pct(r.wpu.divergent_access_fraction().unwrap_or(0.0)),
        ]);
    }
    t.print();
    println!(
        "\npaper (Table 1): insts/branch 9-59; divergent branches 0-22%;\n\
         insts/miss 5-47; divergent accesses 60-92%."
    );
}
