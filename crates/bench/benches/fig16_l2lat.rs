//! Figure 16: speedup vs L2 lookup latency (10 to 300 cycles — from an
//! aggressive on-chip L2 to Tesla-like no-L2 systems). Both systems slow
//! down with longer misses, but DWS's *relative* advantage grows: it
//! manufactures extra scheduling entities exactly when more latency needs
//! hiding.

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let lats = [10u64, 30, 100, 300];
    let mut headers = vec!["series".to_string()];
    headers.extend(lats.iter().map(|l| format!("L2={l}")));
    let mut t = Table::new(
        "Figure 16 — performance vs L2 lookup latency (h-mean, norm. to Conv L2=10)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let make = |policy: Policy, lat: u64| {
        let mut cfg = SimConfig::paper(policy);
        cfg.mem.l2.hit_latency = lat;
        cfg
    };

    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<Vec<(usize, usize)>> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        jobs.push(
            lats.iter()
                .map(|&lat| {
                    let c = sweep.add(
                        format!("Conv L2={lat}"),
                        &make(Policy::conventional(), lat),
                        &spec,
                    );
                    let d = sweep.add(
                        format!("DWS L2={lat}"),
                        &make(Policy::dws_revive(), lat),
                        &spec,
                    );
                    (c, d)
                })
                .collect(),
        );
    }
    let results = sweep.run();

    let mut conv_cols: Vec<Vec<f64>> = vec![Vec::new(); lats.len()];
    let mut dws_cols: Vec<Vec<f64>> = vec![Vec::new(); lats.len()];
    let mut ratio_cols: Vec<Vec<f64>> = vec![Vec::new(); lats.len()];
    for bench_ids in &jobs {
        let base = results[bench_ids[0].0].cycles as f64;
        for (i, &(c, d)) in bench_ids.iter().enumerate() {
            let c = results[c].cycles;
            let d = results[d].cycles;
            conv_cols[i].push(base / c as f64);
            dws_cols[i].push(base / d as f64);
            ratio_cols[i].push(c as f64 / d as f64);
        }
    }
    t.row(
        std::iter::once("Conv".to_string())
            .chain(conv_cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.row(
        std::iter::once("DWS".to_string())
            .chain(dws_cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.row(
        std::iter::once("DWS/Conv".to_string())
            .chain(ratio_cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.print();
    println!(
        "\npaper (Fig. 16): both degrade with latency; the DWS-over-Conv\n\
         ratio *increases* with L2 latency."
    );
}
