//! Scaling study: the 32/64/128-WPU `scaled` presets (8x/16x/32x the
//! paper's 4-WPU machine). Two questions: does DWS's advantage over Conv
//! survive when many more WPUs contend for the shared L2/DRAM, and how far
//! does deterministic intra-run threading (`DWS_THREADS`, bit-identical to
//! serial) cut the host wall-clock of one large machine. The DWS runs are
//! executed twice — serial and threaded — and their cycle counts asserted
//! equal, so the speedup column is measured on verified-identical work.

use dws_bench::{build_shared, f2, hmean, run, Table};
use dws_core::Policy;
use dws_sim::presets::{scaled, scaling_wpu_counts};
use std::time::Instant;

fn main() {
    let threads = {
        let env = dws_sim::default_threads();
        if env > 1 {
            env
        } else {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZero::get)
                .clamp(2, 4)
        }
    };
    let benches = dws_bench::benchmarks();
    let threaded_hdr = format!("{threads}-thread host s");
    let mut t = Table::new(
        "Scaling — scaled presets, DWS.ReviveSplit vs Conv",
        &[
            "WPUs",
            "DWS/Conv (hmean)",
            "serial host s",
            &threaded_hdr,
            "intra-run speedup",
        ],
    );
    for &n in &scaling_wpu_counts() {
        let mut speedups = Vec::new();
        let mut serial_s = 0.0f64;
        let mut threaded_s = 0.0f64;
        for &bench in &benches {
            let spec = build_shared(bench);
            let conv = run(
                &format!("Conv {n}w"),
                &scaled(Policy::conventional(), n),
                &spec,
            );
            let dws = scaled(Policy::dws_revive(), n);
            let t0 = Instant::now();
            let serial = run(&format!("DWS {n}w x1"), &dws.with_threads(1), &spec);
            serial_s += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let threaded = run(
                &format!("DWS {n}w x{threads}"),
                &dws.with_threads(threads),
                &spec,
            );
            threaded_s += t0.elapsed().as_secs_f64();
            assert_eq!(
                serial.cycles, threaded.cycles,
                "threaded run diverged from the serial oracle"
            );
            speedups.push(threaded.speedup_over(&conv));
        }
        t.row(vec![
            n.to_string(),
            f2(hmean(&speedups)),
            f2(serial_s),
            f2(threaded_s),
            f2(serial_s / threaded_s),
        ]);
    }
    t.print();
    println!(
        "\nintra-run threading shards one machine's WPUs across {threads} worker\n\
         threads; results are bit-identical to serial at any thread count\n\
         (asserted above), so the speedup is free of simulation error. Hosts\n\
         with a single core pay pure handoff overhead (speedup below 1)."
    );
}
