//! Figure 14: spatial distribution of memory divergence among SIMD
//! threads. Threads map to a grid (rows = warps, columns = lanes); the
//! cell intensity is that thread's share of D-cache misses. The paper uses
//! this to argue the pattern is dynamic — no static lane/thread choice for
//! subdivision works.

use dws_bench::{build_shared, Sweep};
use dws_core::Policy;
use dws_sim::SimConfig;

/// Five-level ASCII intensity ramp.
const RAMP: [char; 5] = [' ', '.', 'o', 'O', '#'];

fn main() {
    let cfg = SimConfig::paper(Policy::conventional());
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let ids: Vec<usize> = benches
        .iter()
        .map(|&bench| sweep.add("Conv", &cfg, &build_shared(bench)))
        .collect();
    let results = sweep.run();
    for (&bench, &id) in benches.iter().zip(&ids) {
        let r = &results[id];
        println!(
            "\n== Figure 14 — per-thread miss map: {} (WPU 0) ==",
            bench.name()
        );
        let map = &r.per_thread_misses[0];
        let max = map.iter().flatten().copied().max().unwrap_or(0).max(1);
        println!("        lanes 0..{}", map[0].len() - 1);
        for (w, row) in map.iter().enumerate() {
            let cells: String = row
                .iter()
                .map(|&m| {
                    let level = (m * (RAMP.len() as u64 - 1) + max / 2) / max;
                    RAMP[level as usize]
                })
                .collect();
            println!("  warp {w} |{cells}|");
        }
        let total: u64 = map.iter().flatten().sum();
        println!("  total misses (WPU 0): {total}, hottest thread: {max}");
    }
    println!(
        "\npaper (Fig. 14): lighter cells (more misses) scatter differently\n\
         across benchmarks and phases — divergence cannot be pinned to\n\
         particular lanes statically."
    );
}
