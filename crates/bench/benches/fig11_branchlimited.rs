//! Figure 11: memory-divergence DWS with BranchLimited re-convergence.
//! Splits must re-unite at every branch/post-dominator, so with the
//! paper's small basic blocks (Table 1) the run-ahead barely gets going —
//! all three subdivision schemes show little gain.

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::{presets, SimConfig};

fn main() {
    let policies = presets::figure11_policies();
    let mut headers = vec!["benchmark"];
    headers.extend(policies.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "Figure 11 — BranchLimited memory-divergence DWS: speedup over Conv",
        &headers,
    );
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let ids = policies
            .iter()
            .map(|(name, policy)| sweep.add(*name, &SimConfig::paper(*policy), &spec))
            .collect();
        jobs.push((base, ids));
    }
    let results = sweep.run();

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (&bench, (base, ids)) in benches.iter().zip(&jobs) {
        let mut cells = vec![bench.name().to_string()];
        for (i, &id) in ids.iter().enumerate() {
            let s = results[id].speedup_over(&results[*base]);
            cols[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut cells = vec!["h-mean".to_string()];
    for col in &cols {
        cells.push(f2(hmean(col)));
    }
    t.row(cells);
    t.print();
    println!(
        "\npaper (Fig. 11): all BranchLimited variants gain little (~1.0X),\n\
         motivating BranchBypass (Section 5.3.2)."
    );
}
