//! Figure 21: DWS sensitivity to the warp-split table size (4 to 64
//! entries, 64 threads per WPU, 8 scheduler slots). Once the WST holds
//! about twice the scheduler's slots, growing it further stops helping —
//! which is how the paper justifies a 16-entry WST (< 1% area).

use dws_bench::{build, f2, hmean, run, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let sizes = [4usize, 8, 16, 32, 64];
    let mut headers = vec!["series".to_string()];
    headers.extend(sizes.iter().map(|s| format!("WST={s}")));
    let mut t = Table::new(
        "Figure 21 — DWS speedup over Conv vs WST entries (h-mean, 8 slots)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut slip_col = Vec::new();
    for bench in dws_bench::benchmarks() {
        let spec = build(bench);
        let base = run("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        for (i, &n) in sizes.iter().enumerate() {
            let mut cfg = SimConfig::paper(Policy::dws_revive());
            cfg.wst_entries = n;
            let r = run(&format!("DWS wst={n}"), &cfg, &spec);
            cols[i].push(r.speedup_over(&base));
        }
        let slip = run(
            "Slip.BB",
            &SimConfig::paper(Policy::slip_branch_bypass()),
            &spec,
        );
        slip_col.push(slip.speedup_over(&base));
    }
    t.row(
        std::iter::once("DWS".to_string())
            .chain(cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    let mut slip_row = vec!["Slip.BB (no WST)".to_string(), f2(hmean(&slip_col))];
    slip_row.resize(headers.len(), String::new());
    t.row(slip_row);
    t.print();
    println!(
        "\npaper (Fig. 21): performance saturates once WST entries reach\n\
         about twice the scheduler slots (16 for 8 slots)."
    );
}
