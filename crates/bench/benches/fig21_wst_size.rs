//! Figure 21: DWS sensitivity to the warp-split table size (4 to 64
//! entries, 64 threads per WPU, 8 scheduler slots). Once the WST holds
//! about twice the scheduler's slots, growing it further stops helping —
//! which is how the paper justifies a 16-entry WST (< 1% area).

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let sizes = [4usize, 8, 16, 32, 64];
    let mut headers = vec!["series".to_string()];
    headers.extend(sizes.iter().map(|s| format!("WST={s}")));
    let mut t = Table::new(
        "Figure 21 — DWS speedup over Conv vs WST entries (h-mean, 8 slots)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<(usize, Vec<usize>, usize)> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let ids = sizes
            .iter()
            .map(|&n| {
                let mut cfg = SimConfig::paper(Policy::dws_revive());
                cfg.wst_entries = n;
                sweep.add(format!("DWS wst={n}"), &cfg, &spec)
            })
            .collect();
        let slip = sweep.add(
            "Slip.BB",
            &SimConfig::paper(Policy::slip_branch_bypass()),
            &spec,
        );
        jobs.push((base, ids, slip));
    }
    let results = sweep.run();

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut slip_col = Vec::new();
    for (base, ids, slip) in &jobs {
        let base = &results[*base];
        for (i, &id) in ids.iter().enumerate() {
            cols[i].push(results[id].speedup_over(base));
        }
        slip_col.push(results[*slip].speedup_over(base));
    }
    t.row(
        std::iter::once("DWS".to_string())
            .chain(cols.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    let mut slip_row = vec!["Slip.BB (no WST)".to_string(), f2(hmean(&slip_col))];
    slip_row.resize(headers.len(), String::new());
    t.row(slip_row);
    t.print();
    println!(
        "\npaper (Fig. 21): performance saturates once WST entries reach\n\
         about twice the scheduler slots (16 for 8 slots)."
    );
}
