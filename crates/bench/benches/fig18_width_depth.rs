//! Figure 18: Conv vs DWS vs Slip.BranchBypass across SIMD widths and
//! multi-threading depths, under two D-cache setups (8-way and fully
//! associative, 32 KB). Speedups are harmonic means normalized to the
//! single-warp conventional WPU of the same cache setup.
//!
//! The sweep is large; by default it uses a reduced benchmark set. Set
//! `DWS_BENCHMARKS` to override and `DWS_FIG18_FULL=1` for the paper's
//! full width/depth grid.

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_kernels::Benchmark;
use dws_sim::SimConfig;

fn main() {
    let full = std::env::var("DWS_FIG18_FULL").is_ok();
    let widths: Vec<usize> = if full {
        vec![4, 8, 16, 32]
    } else {
        vec![8, 16, 32]
    };
    let depths: Vec<usize> = if full {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 2, 4]
    };
    let benches: Vec<Benchmark> = if std::env::var("DWS_BENCHMARKS").is_ok() {
        dws_bench::benchmarks()
    } else {
        vec![Benchmark::Filter, Benchmark::Merge, Benchmark::Lu]
    };
    let policies = [
        ("Conv", Policy::conventional()),
        ("DWS", Policy::dws_revive()),
        ("Slip.BB", Policy::slip_branch_bypass()),
    ];
    let caches: [(&str, bool); 2] = [("8-way 32KB", false), ("fully-assoc 32KB", true)];

    let specs: Vec<_> = benches.iter().map(|&b| build_shared(b)).collect();
    for (cache_name, full_assoc) in caches {
        let make = |policy: Policy, w: usize, d: usize| {
            let mut cfg = SimConfig::paper(policy).with_width(w).with_warps(d);
            if full_assoc {
                cfg.mem.l1d = cfg.mem.l1d.fully_associative();
            }
            cfg
        };
        let mut headers = vec!["config".to_string()];
        headers.extend(policies.iter().map(|(n, _)| n.to_string()));
        let mut t = Table::new(
            &format!("Figure 18 — width x depth sweep, {cache_name} (h-mean speedup vs Conv w=min,1 warp)"),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        // Per benchmark: baseline = Conv at (min width, 1 warp), then the
        // full grid of (width, depth, policy) points.
        let mut sweep = Sweep::new();
        let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
        for spec in &specs {
            let base = sweep.add(
                "base",
                &make(Policy::conventional(), widths[0], depths[0]),
                spec,
            );
            let mut grid = Vec::new();
            for &w in &widths {
                for &d in &depths {
                    for (name, policy) in &policies {
                        let label = format!("{name} w={w} x{d}");
                        grid.push(sweep.add(label, &make(*policy, w, d), spec));
                    }
                }
            }
            jobs.push((base, grid));
        }
        let results = sweep.run();

        let mut cells: Vec<Vec<Vec<f64>>> =
            vec![vec![Vec::new(); policies.len()]; widths.len() * depths.len()];
        for (base, grid) in &jobs {
            let base = results[*base].cycles as f64;
            let mut k = 0;
            for wi in 0..widths.len() {
                for di in 0..depths.len() {
                    for cell in &mut cells[wi * depths.len() + di] {
                        cell.push(base / results[grid[k]].cycles as f64);
                        k += 1;
                    }
                }
            }
        }
        for (wi, &w) in widths.iter().enumerate() {
            for (di, &d) in depths.iter().enumerate() {
                let mut row = vec![format!("w={w} x {d} warps")];
                for cell in &cells[wi * depths.len() + di] {
                    row.push(f2(hmean(cell)));
                }
                t.row(row);
            }
        }
        t.print();
    }
    println!(
        "\npaper (Fig. 18): DWS wins for wide SIMD (>= 8); with many narrow\n\
         warps plain multithreading suffices. Two 16-wide DWS warps beat\n\
         four 8-wide conventional warps within the same area. Slip.BB\n\
         scales poorly to wide warps."
    );
}
