//! Microbenchmarks of the simulator's core data structures — useful when
//! optimizing the simulator itself (these measure *host* performance, not
//! simulated performance).
//!
//! Off by default so the default build stays minimal; enable with
//! `cargo bench --bench micro --features criterion`. Timing is hand-rolled
//! (median of repeated timed batches) so the target needs no external
//! benchmarking crate.

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("micro: host microbenchmarks are feature-gated; rerun with --features criterion");
}

#[cfg(feature = "criterion")]
fn main() {
    micro::run();
}

#[cfg(feature = "criterion")]
mod micro {
    use dws_core::{Mask, Policy, Wpu, WpuConfig};
    use dws_engine::{Cycle, EventQueue};
    use dws_isa::{CondOp, KernelBuilder, Operand, VecMemory};
    use dws_mem::{
        AccessKind, CacheArray, CacheConfig, LaneAccess, MemConfig, MemorySystem, MesiState,
    };
    use std::hint::black_box;
    use std::sync::Arc;
    use std::time::Instant;

    /// Times `f` over repeated batches and prints the median ns/iteration.
    fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
        // Warm up and size the batch so one batch takes ~1 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt.as_micros() >= 1000 || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        let mut samples: Vec<f64> = (0..30)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!("{name:32} {median:12.1} ns/iter  (batch {batch})");
    }

    pub fn run() {
        bench_cache();
        bench_event_queue();
        bench_mask();
        bench_postdom();
        bench_memory_system();
        bench_wpu_tick();
    }

    fn bench_cache() {
        let mut cache = CacheArray::new(&CacheConfig::paper_l1d(16));
        for line in 0..64 {
            cache.fill(line, MesiState::Shared);
        }
        let mut i = 0u64;
        bench("cache_probe_hit", || {
            i = (i + 1) % 64;
            black_box(cache.probe(i))
        });
        let mut cache = CacheArray::new(&CacheConfig::paper_l1d(16));
        let mut line = 0u64;
        bench("cache_fill_evict", || {
            line += 1;
            black_box(cache.fill(line, MesiState::Shared))
        });
    }

    fn bench_event_queue() {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        bench("event_queue_push_pop", || {
            t += 1;
            q.push(Cycle(t + 100), t);
            black_box(q.pop_ready(Cycle(t)))
        });
    }

    fn bench_mask() {
        let m = Mask(0xF0F0_A5A5_F0F0_A5A5);
        bench("mask_iter_union", || {
            let mut acc = 0usize;
            for lane in black_box(m).iter() {
                acc += lane;
            }
            black_box(acc)
        });
    }

    fn bench_postdom() {
        bench("cfg_postdom_analysis", || {
            let mut k = KernelBuilder::new();
            let i = k.reg();
            let v = k.reg();
            k.for_range(
                i,
                Operand::Imm(0),
                Operand::Imm(100),
                Operand::Imm(1),
                |k| {
                    k.if_then_else(
                        CondOp::Lt,
                        Operand::Reg(i),
                        Operand::Imm(50),
                        |k| k.add(v, Operand::Reg(v), Operand::Imm(1)),
                        |k| k.sub(v, Operand::Reg(v), Operand::Imm(1)),
                    );
                },
            );
            k.halt();
            black_box(k.build().unwrap())
        });
    }

    fn bench_memory_system() {
        let mut mem = MemorySystem::new(MemConfig::paper(1, 16));
        let mut base = 0u64;
        let mut now = Cycle(0);
        bench("warp_access_16_lane_gather", || {
            base = base.wrapping_add(8 * 1024);
            now += 1;
            let accesses: Vec<LaneAccess> = (0..16)
                .map(|l| LaneAccess {
                    lane: l,
                    addr: base + (l as u64) * 128,
                    kind: AccessKind::Load,
                })
                .collect();
            let out = mem.warp_access(now, 0, &accesses);
            let done = mem.drain_completions(now + 1000);
            black_box((out, done))
        });
    }

    fn bench_wpu_tick() {
        // A pure-ALU kernel: measures the issue path of the WPU.
        let mut k = KernelBuilder::new();
        let i = k.reg();
        let v = k.reg();
        k.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(1_000_000_000),
            Operand::Imm(1),
            |k| {
                k.add(v, Operand::Reg(v), Operand::Imm(3));
                k.xor(v, Operand::Reg(v), Operand::Reg(i));
            },
        );
        k.halt();
        let program = Arc::new(k.build().unwrap());
        let mut wpu = Wpu::new(WpuConfig::paper(0, Policy::dws_revive()), program, 0, 64);
        let mut mem = MemorySystem::new(MemConfig::paper(1, 16));
        let mut data = VecMemory::new(4096);
        let mut now = Cycle(0);
        bench("wpu_tick_alu_loop", || {
            now += 1;
            black_box(wpu.tick(now, &mut mem, &mut data))
        });
    }
}
