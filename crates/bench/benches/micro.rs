//! Criterion microbenchmarks of the simulator's core data structures —
//! useful when optimizing the simulator itself (these measure *host*
//! performance, not simulated performance).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dws_core::{Mask, Policy, Wpu, WpuConfig};
use dws_engine::{Cycle, EventQueue};
use dws_isa::{CondOp, KernelBuilder, Operand, VecMemory};
use dws_mem::{
    AccessKind, CacheArray, CacheConfig, LaneAccess, MemConfig, MemorySystem, MesiState,
};
use std::sync::Arc;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_probe_hit", |b| {
        let mut cache = CacheArray::new(&CacheConfig::paper_l1d(16));
        for line in 0..64 {
            cache.fill(line, MesiState::Shared);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(cache.probe(i))
        });
    });
    c.bench_function("cache_fill_evict", |b| {
        let mut cache = CacheArray::new(&CacheConfig::paper_l1d(16));
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            black_box(cache.fill(line, MesiState::Shared))
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.push(Cycle(t + 100), t);
            black_box(q.pop_ready(Cycle(t)))
        });
    });
}

fn bench_mask(c: &mut Criterion) {
    c.bench_function("mask_iter_union", |b| {
        let m = Mask(0xF0F0_A5A5_F0F0_A5A5);
        b.iter(|| {
            let mut acc = 0usize;
            for lane in black_box(m).iter() {
                acc += lane;
            }
            black_box(acc)
        });
    });
}

fn bench_postdom(c: &mut Criterion) {
    c.bench_function("cfg_postdom_analysis", |b| {
        b.iter(|| {
            let mut k = KernelBuilder::new();
            let i = k.reg();
            let v = k.reg();
            k.for_range(
                i,
                Operand::Imm(0),
                Operand::Imm(100),
                Operand::Imm(1),
                |k| {
                    k.if_then_else(
                        CondOp::Lt,
                        Operand::Reg(i),
                        Operand::Imm(50),
                        |k| k.add(v, Operand::Reg(v), Operand::Imm(1)),
                        |k| k.sub(v, Operand::Reg(v), Operand::Imm(1)),
                    );
                },
            );
            k.halt();
            black_box(k.build().unwrap())
        });
    });
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("warp_access_16_lane_gather", |b| {
        let mut mem = MemorySystem::new(MemConfig::paper(1, 16));
        let mut base = 0u64;
        let mut now = Cycle(0);
        b.iter(|| {
            base = base.wrapping_add(8 * 1024);
            now += 1;
            let accesses: Vec<LaneAccess> = (0..16)
                .map(|l| LaneAccess {
                    lane: l,
                    addr: base + (l as u64) * 128,
                    kind: AccessKind::Load,
                })
                .collect();
            let out = mem.warp_access(now, 0, &accesses);
            let done = mem.drain_completions(now + 1000);
            black_box((out, done))
        });
    });
}

fn bench_wpu_tick(c: &mut Criterion) {
    c.bench_function("wpu_tick_alu_loop", |b| {
        // A pure-ALU kernel: measures the issue path of the WPU.
        let mut k = KernelBuilder::new();
        let i = k.reg();
        let v = k.reg();
        k.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(1_000_000_000),
            Operand::Imm(1),
            |k| {
                k.add(v, Operand::Reg(v), Operand::Imm(3));
                k.xor(v, Operand::Reg(v), Operand::Reg(i));
            },
        );
        k.halt();
        let program = Arc::new(k.build().unwrap());
        let mut wpu = Wpu::new(WpuConfig::paper(0, Policy::dws_revive()), program, 0, 64);
        let mut mem = MemorySystem::new(MemConfig::paper(1, 16));
        let mut data = VecMemory::new(4096);
        let mut now = Cycle(0);
        b.iter(|| {
            now += 1;
            black_box(wpu.tick(now, &mut mem, &mut data))
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(30);
    targets = bench_cache,
        bench_event_queue,
        bench_mask,
        bench_postdom,
        bench_memory_system,
        bench_wpu_tick
);
criterion_main!(micro);
