//! Figure-13-style comparison row for the control-flow melding pass: static
//! melding vs dynamic warp subdivision vs both, on the meldable kernel
//! variants, normalized to the conventional architecture.
//!
//! Series: Conv+meld (static transform only), DWS.ReviveSplit (dynamic
//! only), DWS+meld (both). Melding removes the divergent diamond at compile
//! time, so it helps the Conv baseline most; DWS already tolerates the
//! divergence dynamically, so the combined column shows how much headroom
//! the transform leaves once warps subdivide.

use dws_bench::{f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_kernels::MeldKernel;
use dws_sim::SimConfig;
use std::sync::Arc;

fn main() {
    let scale = dws_bench::scale();
    let seed = dws_bench::seed();
    let conv = SimConfig::paper(Policy::conventional());
    let dws = SimConfig::paper(Policy::dws_revive());

    let mut t = Table::new(
        "Figure 13 (meld row) — speedup over Conv, static vs dynamic divergence tolerance",
        &["kernel", "Conv+meld", "DWS.ReviveSplit", "DWS+meld"],
    );

    let mut sweep = Sweep::new();
    let mut jobs: Vec<(usize, [usize; 3])> = Vec::new();
    for kernel in MeldKernel::ALL {
        let base = Arc::new(kernel.build(scale, seed));
        let melded = Arc::new(kernel.build_melded(scale, seed));
        let b = sweep.add("Conv", &conv, &base);
        let ids = [
            sweep.add("Conv+meld", &conv, &melded),
            sweep.add("DWS.ReviveSplit", &dws, &base),
            sweep.add("DWS+meld", &dws, &melded),
        ];
        jobs.push((b, ids));
    }
    let results = sweep.run();

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (kernel, (base, ids)) in MeldKernel::ALL.iter().zip(&jobs) {
        let mut cells = vec![kernel.name().to_string()];
        for (i, &id) in ids.iter().enumerate() {
            let s = results[id].speedup_over(&results[*base]);
            columns[i].push(s);
            cells.push(f2(s));
        }
        t.row(cells);
    }
    let mut cells = vec!["h-mean".to_string()];
    for col in &columns {
        cells.push(f2(hmean(col)));
    }
    t.row(cells);
    t.print();
    println!(
        "\nexpectation: Conv+meld > 1.0X on both kernels (the transform\n\
         deletes the divergence the baseline serializes); DWS.ReviveSplit\n\
         recovers most of the same loss dynamically, so DWS+meld adds only\n\
         the saved issue slots on top."
    );
}
