//! Figure 17: DWS speedup vs D-cache size (8 KB to 128 KB, 8-way). With
//! ample cache there are few misses and little latency to hide, so the
//! DWS advantage fades; the paper notes DWS behaves roughly like doubling
//! the D-cache.

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let sizes = [8u64, 16, 32, 64, 128];
    let mut headers = vec!["series".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s}KB")));
    let mut t = Table::new(
        "Figure 17 — DWS speedup over Conv vs D-cache size (h-mean)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let make = |policy: Policy, kb: u64| {
        let mut cfg = SimConfig::paper(policy);
        cfg.mem.l1d = cfg.mem.l1d.with_size(kb * 1024);
        cfg
    };

    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<Vec<(usize, usize)>> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        jobs.push(
            sizes
                .iter()
                .map(|&kb| {
                    let c = sweep.add(
                        format!("Conv {kb}KB"),
                        &make(Policy::conventional(), kb),
                        &spec,
                    );
                    let d = sweep.add(
                        format!("DWS {kb}KB"),
                        &make(Policy::dws_revive(), kb),
                        &spec,
                    );
                    (c, d)
                })
                .collect(),
        );
    }
    let results = sweep.run();

    let mut ratio: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut conv_abs: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for bench_ids in &jobs {
        let base = results[bench_ids[0].0].cycles as f64;
        for (i, &(c, d)) in bench_ids.iter().enumerate() {
            let c = results[c].cycles;
            let d = results[d].cycles;
            ratio[i].push(c as f64 / d as f64);
            conv_abs[i].push(base / c as f64);
        }
    }
    t.row(
        std::iter::once("Conv (norm 8KB)".to_string())
            .chain(conv_abs.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.row(
        std::iter::once("DWS/Conv".to_string())
            .chain(ratio.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.print();
    println!(
        "\npaper (Fig. 17): the DWS edge decreases with D-cache size and is\n\
         nearly gone at 128 KB."
    );
}
