//! Figure 17: DWS speedup vs D-cache size (8 KB to 128 KB, 8-way). With
//! ample cache there are few misses and little latency to hide, so the
//! DWS advantage fades; the paper notes DWS behaves roughly like doubling
//! the D-cache.

use dws_bench::{build, f2, hmean, run, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let sizes = [8u64, 16, 32, 64, 128];
    let mut headers = vec!["series".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s}KB")));
    let mut t = Table::new(
        "Figure 17 — DWS speedup over Conv vs D-cache size (h-mean)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let make = |policy: Policy, kb: u64| {
        let mut cfg = SimConfig::paper(policy);
        cfg.mem.l1d = cfg.mem.l1d.with_size(kb * 1024);
        cfg
    };
    let mut ratio: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut conv_abs: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for bench in dws_bench::benchmarks() {
        let spec = build(bench);
        let mut base = None;
        for (i, &kb) in sizes.iter().enumerate() {
            let c = run(
                &format!("Conv {kb}KB"),
                &make(Policy::conventional(), kb),
                &spec,
            );
            let d = run(
                &format!("DWS {kb}KB"),
                &make(Policy::dws_revive(), kb),
                &spec,
            );
            ratio[i].push(c.cycles as f64 / d.cycles as f64);
            let b = *base.get_or_insert(c.cycles) as f64;
            conv_abs[i].push(b / c.cycles as f64);
        }
    }
    t.row(
        std::iter::once("Conv (norm 8KB)".to_string())
            .chain(conv_abs.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.row(
        std::iter::once("DWS/Conv".to_string())
            .chain(ratio.iter().map(|c| f2(hmean(c))))
            .collect(),
    );
    t.print();
    println!(
        "\npaper (Fig. 17): the DWS edge decreases with D-cache size and is\n\
         nearly gone at 128 KB."
    );
}
