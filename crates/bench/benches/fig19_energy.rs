//! Figure 19: energy of Conv, DWS and Slip.BranchBypass, normalized to
//! Conv per benchmark. At 65 nm static energy (clock + leakage) grows with
//! runtime, so DWS's speedups become energy savings (~30% in the paper).

use dws_bench::{build_shared, f2, hmean, pct, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn main() {
    let mut t = Table::new(
        "Figure 19 — energy normalized to Conv (static share in parentheses)",
        &[
            "benchmark",
            "Conv",
            "static",
            "DWS",
            "static",
            "Slip.BB",
            "static",
        ],
    );
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let dws = sweep.add("DWS", &SimConfig::paper(Policy::dws_revive()), &spec);
        let slip = sweep.add(
            "Slip.BB",
            &SimConfig::paper(Policy::slip_branch_bypass()),
            &spec,
        );
        jobs.push((base, dws, slip));
    }
    let results = sweep.run();

    let mut dws_col = Vec::new();
    let mut slip_col = Vec::new();
    for (&bench, &(base, dws, slip)) in benches.iter().zip(&jobs) {
        let base = &results[base];
        let dws = &results[dws];
        let slip = &results[slip];
        let dr = dws.energy_ratio_over(base);
        let sr = slip.energy_ratio_over(base);
        dws_col.push(dr);
        slip_col.push(sr);
        t.row(vec![
            bench.name().to_string(),
            f2(1.0),
            pct(base.energy.static_energy() / base.energy.total()),
            f2(dr),
            pct(dws.energy.static_energy() / dws.energy.total()),
            f2(sr),
            pct(slip.energy.static_energy() / slip.energy.total()),
        ]);
    }
    t.row(vec![
        "h-mean".to_string(),
        f2(1.0),
        String::new(),
        f2(hmean(&dws_col)),
        String::new(),
        f2(hmean(&slip_col)),
        String::new(),
    ]);
    t.print();
    println!(
        "\npaper (Fig. 19 / Sec. 6.5): DWS saves ~30% energy (leakage is a\n\
         big slice at 65 nm and scales with runtime); Slip.BB saves only ~5%."
    );
}
