//! Figure 7: dynamic warp subdivision upon branch divergence alone —
//! stack-based vs PC-based re-convergence, normalized to Conv. Also
//! reports the average SIMD width, which the paper uses to show PC-based
//! re-convergence curbing unrelenting subdivision (4 -> 9 for KMeans).

use dws_bench::{build_shared, f2, hmean, Sweep, Table};
use dws_core::Policy;
use dws_sim::{presets, SimConfig};

fn main() {
    let policies = presets::figure7_policies();
    let mut t = Table::new(
        "Figure 7 — branch-divergence DWS: speedup over Conv (and avg width)",
        &["benchmark", "StackReconv", "width", "PCReconv", "width"],
    );
    let benches = dws_bench::benchmarks();
    let mut sweep = Sweep::new();
    let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        let base = sweep.add("Conv", &SimConfig::paper(Policy::conventional()), &spec);
        let ids = policies
            .iter()
            .map(|(name, policy)| sweep.add(*name, &SimConfig::paper(*policy), &spec))
            .collect();
        jobs.push((base, ids));
    }
    let results = sweep.run();

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (&bench, (base, ids)) in benches.iter().zip(&jobs) {
        let mut cells = vec![bench.name().to_string()];
        for (i, &id) in ids.iter().enumerate() {
            let r = &results[id];
            let s = r.speedup_over(&results[*base]);
            cols[i].push(s);
            cells.push(f2(s));
            cells.push(f2(r.avg_simd_width()));
        }
        t.row(cells);
    }
    t.row(vec![
        "h-mean".to_string(),
        f2(hmean(&cols[0])),
        String::new(),
        f2(hmean(&cols[1])),
        String::new(),
    ]);
    t.print();
    println!(
        "\npaper (Fig. 7): stack-based gains on some benchmarks but hurts\n\
         KMeans badly (width drops to 4); PC-based re-convergence restores\n\
         width (~9) and reaches 1.13X h-mean without ever degrading."
    );
}
