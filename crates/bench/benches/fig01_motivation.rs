//! Figure 1: the motivation study on the conventional architecture.
//!
//! (a) execution-time breakdown vs SIMD width (4 warps): wider SIMD
//!     shrinks compute time but inflates time waiting for memory;
//! (b) 16-wide WPUs vs D-cache associativity: the problem is capacity,
//!     not conflicts — full associativity still waits on memory;
//! (c) 8-wide WPUs vs warp count: a few warps hide latency, too many
//!     thrash the L1.
//!
//! All numbers are harmonic means across the benchmark set, normalized to
//! the first configuration of each sweep.

use dws_bench::{build_shared, f2, hmean, pct, Sweep, Table};
use dws_core::Policy;
use dws_sim::SimConfig;

fn sweep<F>(title: &str, points: &[(String, F)])
where
    F: Fn() -> SimConfig,
{
    let benches = dws_bench::benchmarks();
    let mut t = Table::new(
        title,
        &["config", "norm. time", "busy", "wait mem", "other"],
    );
    let mut sweep = Sweep::new();
    let mut ids: Vec<Vec<usize>> = Vec::new();
    for &bench in &benches {
        let spec = build_shared(bench);
        ids.push(
            points
                .iter()
                .map(|(label, cfg)| sweep.add(label.clone(), &cfg(), &spec))
                .collect(),
        );
    }
    let results = sweep.run();

    let mut norm: Vec<Vec<f64>> = vec![Vec::new(); points.len()];
    let mut busy = vec![Vec::new(); points.len()];
    let mut stall = vec![Vec::new(); points.len()];
    for bench_ids in &ids {
        let base = results[bench_ids[0]].cycles;
        for (i, &id) in bench_ids.iter().enumerate() {
            let r = &results[id];
            norm[i].push(base as f64 / r.cycles as f64); // speedup for hmean
            busy[i].push(r.busy_fraction());
            stall[i].push(r.mem_stall_fraction());
        }
    }
    for (i, (label, _)) in points.iter().enumerate() {
        let speedup = hmean(&norm[i]);
        let b = busy[i].iter().sum::<f64>() / busy[i].len() as f64;
        let s = stall[i].iter().sum::<f64>() / stall[i].len() as f64;
        t.row(vec![
            label.clone(),
            f2(1.0 / speedup),
            pct(b),
            pct(s),
            pct((1.0 - b - s).max(0.0)),
        ]);
    }
    t.print();
}

fn main() {
    // (a) SIMD width 1..16, 4 warps.
    let widths = [1usize, 2, 4, 8, 16];
    let points: Vec<(String, _)> = widths
        .iter()
        .map(|&w| {
            (format!("width {w}"), move || {
                SimConfig::paper(Policy::conventional()).with_width(w)
            })
        })
        .collect();
    sweep(
        "Figure 1a — exec time vs SIMD width (Conv, 4 warps)",
        &points,
    );

    // (b) D-cache associativity at 16-wide.
    let assocs: [(&str, Option<usize>); 4] = [
        ("4-way", Some(4)),
        ("8-way", Some(8)),
        ("16-way", Some(16)),
        ("full", None),
    ];
    let points: Vec<(String, _)> = assocs
        .iter()
        .map(|&(label, assoc)| {
            (label.to_string(), move || {
                let mut cfg = SimConfig::paper(Policy::conventional());
                cfg.mem.l1d = match assoc {
                    Some(a) => cfg.mem.l1d.with_assoc(a),
                    None => cfg.mem.l1d.fully_associative(),
                };
                cfg
            })
        })
        .collect();
    sweep(
        "Figure 1b — exec time vs D-cache associativity (Conv, 16-wide)",
        &points,
    );

    // (c) warp count at 8-wide.
    let warps = [1usize, 2, 4, 8, 16];
    let points: Vec<(String, _)> = warps
        .iter()
        .map(|&n| {
            (format!("{n} warps"), move || {
                SimConfig::paper(Policy::conventional())
                    .with_width(8)
                    .with_warps(n)
            })
        })
        .collect();
    sweep(
        "Figure 1c — exec time vs warp count (Conv, 8-wide)",
        &points,
    );

    println!(
        "\npaper (Fig. 1): time first drops with width then memory waiting\n\
         dominates; full associativity does not remove the memory wait;\n\
         a few warps help, many warps exacerbate L1 contention."
    );
}
