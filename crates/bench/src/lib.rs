//! Shared support for the figure-regeneration harness.
//!
//! Every bench target (`cargo bench -p dws-bench --bench figNN`) regenerates
//! one table or figure from the paper's evaluation: the same rows/series,
//! with speedups normalized the same way (per-benchmark `Conv` baselines,
//! harmonic means across benchmarks).
//!
//! Environment knobs:
//!
//! * `DWS_SCALE` — `test` | `bench` (default) | `paper`: input sizes.
//! * `DWS_BENCHMARKS` — comma-separated subset (e.g. `Merge,FFT`); default
//!   is all eight.
//! * `DWS_SEED` — workload seed (default 42).

use dws_kernels::{Benchmark, KernelSpec, Scale};
use dws_sim::{Machine, RunResult, SimConfig, SweepOutcome, SweepRunner};
use std::io::Write as _;
use std::ops::Index;
use std::sync::Arc;
use std::time::Instant;

/// Input scale selected by `DWS_SCALE`.
pub fn scale() -> Scale {
    match std::env::var("DWS_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("paper") => Scale::Paper,
        _ => Scale::Bench,
    }
}

/// Workload seed selected by `DWS_SEED`.
pub fn seed() -> u64 {
    std::env::var("DWS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Benchmark set selected by `DWS_BENCHMARKS`.
pub fn benchmarks() -> Vec<Benchmark> {
    match std::env::var("DWS_BENCHMARKS") {
        Ok(list) => {
            let wanted: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .collect();
            Benchmark::ALL
                .into_iter()
                .filter(|b| wanted.contains(&b.name().to_ascii_lowercase()))
                .collect()
        }
        Err(_) => Benchmark::ALL.to_vec(),
    }
}

/// Builds a benchmark at the harness scale/seed.
pub fn build(bench: Benchmark) -> KernelSpec {
    bench.build(scale(), seed())
}

/// Builds a benchmark once and wraps it for sharing across sweep jobs, so
/// inputs are generated once per benchmark instead of once per point.
pub fn build_shared(bench: Benchmark) -> Arc<KernelSpec> {
    Arc::new(build(bench))
}

/// Runs one configuration, verifying the result (a wrong answer is a
/// harness bug, so it panics) and reporting progress on stderr.
pub fn run(label: &str, cfg: &SimConfig, spec: &KernelSpec) -> RunResult {
    let t0 = Instant::now();
    let result = Machine::run(cfg, spec).unwrap_or_else(|e| panic!("{} / {label}: {e}", spec.name));
    spec.verify(&result.memory)
        .unwrap_or_else(|e| panic!("{} / {label}: wrong result: {e}", spec.name));
    eprintln!(
        "  [{:>8}] {:24} {:>12} cycles  ({:.1}s host)",
        spec.name,
        label,
        result.cycles,
        t0.elapsed().as_secs_f64()
    );
    let _ = std::io::stderr().flush();
    result
}

/// A figure's worth of simulations executed on the shared worker pool.
///
/// Bench targets queue every `(label, config, kernel)` point first, keeping
/// the returned job ids, then call [`Sweep::run`] once and index the
/// results while printing tables. Results come back in submission order, so
/// table output is byte-identical to the old one-`run`-at-a-time harness;
/// only the stderr progress-line *order* varies when `DWS_JOBS > 1`.
#[derive(Default)]
pub struct Sweep {
    runner: SweepRunner,
}

impl Sweep {
    /// An empty sweep (worker count from `DWS_JOBS`/host parallelism).
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Queues one point; the returned id indexes the [`SweepResults`].
    pub fn add(
        &mut self,
        label: impl Into<String>,
        cfg: &SimConfig,
        spec: &Arc<KernelSpec>,
    ) -> usize {
        self.runner.add(label, *cfg, spec)
    }

    /// Number of queued points.
    pub fn len(&self) -> usize {
        self.runner.len()
    }

    /// Whether no points are queued.
    pub fn is_empty(&self) -> bool {
        self.runner.is_empty()
    }

    /// Runs all queued points, verifying each result (a wrong answer is a
    /// harness bug, so it panics) and reporting per-point progress on
    /// stderr in the same format as [`run`].
    pub fn run(self) -> SweepResults {
        let outcomes = self.runner.run_with(|_, o| {
            let result = match &o.result {
                Ok(r) => r,
                Err(e) => panic!("{} / {}: {e}", o.spec.name, o.label),
            };
            o.spec
                .verify(&result.memory)
                .unwrap_or_else(|e| panic!("{} / {}: wrong result: {e}", o.spec.name, o.label));
            eprintln!(
                "  [{:>8}] {:24} {:>12} cycles  ({:.1}s host)",
                o.spec.name, o.label, result.cycles, o.host_seconds
            );
            let _ = std::io::stderr().flush();
        });
        SweepResults {
            results: outcomes
                .into_iter()
                .map(|o: SweepOutcome| o.result.expect("checked in callback"))
                .collect(),
        }
    }
}

/// Verified results of a [`Sweep`], indexed by the job ids handed out by
/// [`Sweep::add`].
pub struct SweepResults {
    results: Vec<RunResult>,
}

impl SweepResults {
    /// Number of results (equals the number of queued points).
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the sweep was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

impl Index<usize> for SweepResults {
    type Output = RunResult;

    fn index(&self, job: usize) -> &RunResult {
        &self.results[job]
    }
}

/// Harmonic mean (the paper's reporting convention).
pub fn hmean(values: &[f64]) -> f64 {
    dws_engine::stats::harmonic_mean(values).unwrap_or(f64::NAN)
}

/// A fixed-width text table printed to stdout.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}
