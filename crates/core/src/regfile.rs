//! The warp register file in structure-of-arrays layout.
//!
//! The seed simulator kept one heap-allocated `ThreadState` per thread
//! (array-of-structures): every warp-wide operation walked `width` separate
//! `Vec`s and re-matched the instruction per lane. [`RegFile`] stores one
//! contiguous block per warp, indexed `[reg * lanes + lane]`, so a warp-wide
//! kernel touching one register row streams over adjacent words — and the
//! per-lane oracle still gets a mutable lane view ([`RegFile::lane`])
//! implementing [`LaneRegs`], sharing the interpreter in `dws-isa` instead
//! of duplicating it.

use dws_isa::{LaneRegs, Reg};

/// All architectural registers of one warp, SoA: register `r` of lane `l`
/// lives at `r * lanes + l`, so a register row is contiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    lanes: usize,
    regs: Vec<u64>,
}

impl RegFile {
    /// Creates the register file for a warp whose lane `l` runs global
    /// thread `base_tid + l`, preloading `r0 = tid` and `r1 = nthreads`
    /// (mirroring `ThreadState::new`).
    pub fn new(num_regs: u16, lanes: usize, base_tid: u64, nthreads: u64) -> Self {
        let mut regs = vec![0u64; num_regs as usize * lanes];
        for (l, r) in regs[..lanes].iter_mut().enumerate() {
            *r = base_tid + l as u64;
        }
        if num_regs > 1 {
            regs[lanes..2 * lanes].fill(nthreads);
        }
        RegFile { lanes, regs }
    }

    /// Number of lanes (the SIMD width).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Reads register `reg` of `lane`.
    #[inline(always)]
    pub fn get(&self, reg: u16, lane: usize) -> u64 {
        self.regs[reg as usize * self.lanes + lane]
    }

    /// Writes register `reg` of `lane`.
    #[inline(always)]
    pub fn set(&mut self, reg: u16, lane: usize, v: u64) {
        self.regs[reg as usize * self.lanes + lane] = v;
    }

    /// A mutable single-lane view implementing [`LaneRegs`] — the legacy
    /// per-lane execution path runs through this.
    #[inline]
    pub fn lane(&mut self, lane: usize) -> LaneView<'_> {
        debug_assert!(lane < self.lanes);
        LaneView { rf: self, lane }
    }

    /// A read-only single-lane view that records the register write instead
    /// of applying it (differential oracle: debug builds and `DWS_SANITIZE`
    /// release runs).
    #[inline]
    pub(crate) fn shadow(&self, lane: usize) -> ShadowLane<'_> {
        ShadowLane {
            rf: self,
            lane,
            written: None,
        }
    }
}

/// One lane of a [`RegFile`], as seen by the per-lane interpreter.
#[derive(Debug)]
pub struct LaneView<'a> {
    rf: &'a mut RegFile,
    lane: usize,
}

impl LaneRegs for LaneView<'_> {
    #[inline(always)]
    fn reg(&self, r: Reg) -> u64 {
        self.rf.get(r.0, self.lane)
    }
    #[inline(always)]
    fn set_reg(&mut self, r: Reg, v: u64) {
        self.rf.set(r.0, self.lane, v);
    }
}

/// A read-only lane view that captures the (single) register write of one
/// instruction instead of performing it. Used by the differential oracle to
/// precompute the legacy path's effect *before* the warp-wide kernel
/// mutates the file, then assert the kernel produced the same value.
pub(crate) struct ShadowLane<'a> {
    rf: &'a RegFile,
    lane: usize,
    written: Option<(u16, u64)>,
}

impl ShadowLane<'_> {
    /// The `(reg, value)` the instruction would have written, if any.
    pub(crate) fn written(&self) -> Option<(u16, u64)> {
        self.written
    }
}

impl LaneRegs for ShadowLane<'_> {
    #[inline]
    fn reg(&self, r: Reg) -> u64 {
        // A single instruction performs all reads before its one write, so
        // reading through to the backing file is exact.
        self.rf.get(r.0, self.lane)
    }
    #[inline]
    fn set_reg(&mut self, r: Reg, v: u64) {
        debug_assert!(self.written.is_none(), "one write per instruction");
        self.written = Some((r.0, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::execute_lane;

    #[test]
    fn preloads_tid_and_nthreads() {
        let rf = RegFile::new(4, 8, 16, 64);
        for l in 0..8 {
            assert_eq!(rf.get(0, l), 16 + l as u64);
            assert_eq!(rf.get(1, l), 64);
            assert_eq!(rf.get(2, l), 0);
            assert_eq!(rf.get(3, l), 0);
        }
    }

    #[test]
    fn single_reg_file_skips_nthreads_row() {
        let rf = RegFile::new(1, 4, 0, 4);
        assert_eq!(rf.get(0, 3), 3);
    }

    #[test]
    fn lane_view_runs_the_interpreter() {
        use dws_isa::{AluOp, Inst, Operand, Reg, StepOutcome};
        let mut rf = RegFile::new(3, 4, 0, 4);
        let inst = Inst::Alu {
            op: AluOp::Add,
            dst: Reg(2),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(10),
        };
        for l in 0..4 {
            assert_eq!(execute_lane(&mut rf.lane(l), &inst), StepOutcome::Next);
        }
        for l in 0..4 {
            assert_eq!(rf.get(2, l), 10 + l as u64, "lane {l}");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn shadow_lane_captures_without_mutating() {
        use dws_isa::{Inst, Operand, Reg, UnOp};
        let rf = RegFile::new(3, 2, 5, 2);
        let inst = Inst::Un {
            op: UnOp::Mov,
            dst: Reg(2),
            a: Operand::Reg(Reg(0)),
        };
        let mut sh = rf.shadow(1);
        execute_lane(&mut sh, &inst);
        assert_eq!(sh.written(), Some((2, 6)));
        assert_eq!(rf.get(2, 1), 0, "backing file untouched");
    }
}
