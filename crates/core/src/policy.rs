//! Every scheduling policy evaluated in the paper, expressed as data.
//!
//! The paper's named configurations map onto [`Policy`] as follows (see
//! Figures 7, 11 and 13):
//!
//! | Paper name | Constructor |
//! |---|---|
//! | `Conv` | [`Policy::conventional`] |
//! | branch-DWS, stack-based re-conv. (Fig. 7) | [`Policy::dws_branch_stack`] |
//! | `DWS.BranchOnly` (PC-based re-conv.) | [`Policy::dws_branch_only`] |
//! | `DWS.ReviveSplit.MemOnly` | [`Policy::dws_mem_only`] |
//! | `DWS.AggressSplit` | [`Policy::dws_aggress`] |
//! | `DWS.LazySplit` | [`Policy::dws_lazy`] |
//! | `DWS.ReviveSplit` (the headline scheme) | [`Policy::dws_revive`] |
//! | `AggressSplit.BL` etc. (Fig. 11) | [`Policy::dws_branch_limited`] |
//! | `Slip` | [`Policy::slip`] |
//! | `Slip.BranchBypass` | [`Policy::slip_branch_bypass`] |

/// When to subdivide a warp upon memory divergence (paper Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSplit {
    /// Split on every memory divergence (`AggressSplit`).
    Aggressive,
    /// Split only when no other SIMD group on the WPU could hide the
    /// latency (`LazySplit`).
    Lazy,
    /// `LazySplit`, plus: when the pipeline stalls, revive one suspended
    /// group whose arrived threads can run ahead (`ReviveSplit`).
    Revive,
}

/// How warp-splits re-converge (paper Sections 4.4–4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconvMode {
    /// Splits run until the post-dominator on top of the warp's
    /// re-convergence stack, then stall to be re-united.
    StackBased,
    /// Additionally, ready splits of the same warp whose PCs meet are
    /// re-united immediately (checked when the running split executes a
    /// memory instruction). Stack-based re-convergence still applies as the
    /// backstop.
    PcBased,
}

/// How branches interact with memory-divergence splits (Section 5.3.1–5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchHandling {
    /// Splits must re-converge at every branch and post-dominator, keeping
    /// the re-convergence stack authoritative (`BranchLimited`).
    BranchLimited,
    /// Run-ahead splits proceed beyond branches (and hence loop
    /// boundaries); divergent branches subdivide further or serialize
    /// within the split (`BranchBypass`).
    BranchBypass,
}

/// Full DWS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwsConfig {
    /// Subdivide on divergent branches statically marked subdividable.
    pub branch_split: bool,
    /// Memory-divergence subdivision scheme, if enabled.
    pub mem_split: Option<MemSplit>,
    /// Re-convergence mode.
    pub reconv: ReconvMode,
    /// Branch handling for splits.
    pub branch_handling: BranchHandling,
    /// Under PC-based re-convergence, also match the running split's PC
    /// against ready siblings at *issue* (a CAM over the WST PC fields),
    /// not only after memory instructions. See DESIGN.md note 2; the
    /// `ablation_reconv` bench quantifies it.
    pub issue_pc_cam: bool,
    /// On a branch split where one edge jumps straight to the
    /// post-dominator, keep executing the other side and park the empty
    /// one (it then re-merges almost immediately). See DESIGN.md note 2.
    pub park_short_path: bool,
    /// Extension of the paper's future work (Section 5.2: deciding when to
    /// subdivide "requires foreknowledge or speculation ... prediction
    /// hardware"): a profiling-interval controller that disables
    /// subdivision while the pipeline is issue-bound and re-enables it
    /// while it is memory-bound. Off in every paper-named configuration.
    pub adaptive_throttle: bool,
}

impl DwsConfig {
    /// The defaults shared by every named configuration.
    fn base(
        branch_split: bool,
        mem_split: Option<MemSplit>,
        reconv: ReconvMode,
        branch_handling: BranchHandling,
    ) -> DwsConfig {
        DwsConfig {
            branch_split,
            mem_split,
            reconv,
            branch_handling,
            issue_pc_cam: true,
            park_short_path: true,
            adaptive_throttle: false,
        }
    }
}

/// Adaptive-slip configuration (paper Section 5.7, after Tarjan et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlipConfig {
    /// Allow run-ahead threads to proceed beyond conditional branches
    /// (`Slip.BranchBypass`); plain `Slip` stalls at them.
    pub branch_bypass: bool,
    /// Profiling interval in cycles for the adaptive divergence bound.
    pub interval: u64,
    /// Increment the bound when the memory-stall fraction exceeds this.
    pub raise_threshold: f64,
    /// Decrement the bound when the busy fraction exceeds this.
    pub lower_threshold: f64,
}

impl Default for SlipConfig {
    fn default() -> Self {
        SlipConfig {
            branch_bypass: false,
            interval: 100_000,
            raise_threshold: 0.7,
            lower_threshold: 0.5,
        }
    }
}

/// A WPU scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// The conventional baseline: re-convergence stack only, warps stall on
    /// any lane's miss.
    Conventional,
    /// Dynamic warp subdivision.
    Dws(DwsConfig),
    /// Adaptive slip.
    Slip(SlipConfig),
}

impl Policy {
    /// `Conv` — the baseline all speedups are normalized to.
    pub fn conventional() -> Policy {
        Policy::Conventional
    }

    /// Branch-divergence DWS with stack-based re-convergence (Figure 7).
    pub fn dws_branch_stack() -> Policy {
        Policy::Dws(DwsConfig::base(
            true,
            None,
            ReconvMode::StackBased,
            BranchHandling::BranchBypass,
        ))
    }

    /// `DWS.BranchOnly`: branch-divergence DWS with PC-based re-convergence.
    pub fn dws_branch_only() -> Policy {
        Policy::Dws(DwsConfig::base(
            true,
            None,
            ReconvMode::PcBased,
            BranchHandling::BranchBypass,
        ))
    }

    /// `DWS.ReviveSplit.MemOnly`: memory-divergence DWS alone (no branch
    /// subdivision; splits serialize divergent branches internally).
    pub fn dws_mem_only() -> Policy {
        Policy::Dws(DwsConfig::base(
            false,
            Some(MemSplit::Revive),
            ReconvMode::PcBased,
            BranchHandling::BranchBypass,
        ))
    }

    /// `DWS.AggressSplit`: integrated branch + memory DWS, aggressive.
    pub fn dws_aggress() -> Policy {
        Policy::Dws(DwsConfig::base(
            true,
            Some(MemSplit::Aggressive),
            ReconvMode::PcBased,
            BranchHandling::BranchBypass,
        ))
    }

    /// `DWS.LazySplit`.
    pub fn dws_lazy() -> Policy {
        Policy::Dws(DwsConfig::base(
            true,
            Some(MemSplit::Lazy),
            ReconvMode::PcBased,
            BranchHandling::BranchBypass,
        ))
    }

    /// `DWS.ReviveSplit` — the paper's best configuration (1.71X average).
    pub fn dws_revive() -> Policy {
        Policy::Dws(DwsConfig::base(
            true,
            Some(MemSplit::Revive),
            ReconvMode::PcBased,
            BranchHandling::BranchBypass,
        ))
    }

    /// Figure 11's `*.BL` family: memory-divergence splits whose lifetime is
    /// limited to a basic block (`BranchLimited` re-convergence).
    pub fn dws_branch_limited(split: MemSplit) -> Policy {
        Policy::Dws(DwsConfig::base(
            false,
            Some(split),
            ReconvMode::PcBased,
            BranchHandling::BranchLimited,
        ))
    }

    /// `DWS.ReviveSplit.Throttled` — this reproduction's extension of the
    /// paper's future work: ReviveSplit gated by an issue-pressure
    /// predictor (see [`DwsConfig::adaptive_throttle`]).
    pub fn dws_revive_throttled() -> Policy {
        let mut c = DwsConfig::base(
            true,
            Some(MemSplit::Revive),
            ReconvMode::PcBased,
            BranchHandling::BranchBypass,
        );
        c.adaptive_throttle = true;
        Policy::Dws(c)
    }

    /// `Slip` — adaptive slip without branch predication.
    pub fn slip() -> Policy {
        Policy::Slip(SlipConfig::default())
    }

    /// `Slip.BranchBypass` — adaptive slip combined with DWS-style branch
    /// bypass.
    pub fn slip_branch_bypass() -> Policy {
        Policy::Slip(SlipConfig {
            branch_bypass: true,
            ..SlipConfig::default()
        })
    }

    /// Whether this policy ever creates warp-splits (needs a WST).
    pub fn uses_wst(&self) -> bool {
        matches!(self, Policy::Dws(_))
    }

    /// Whether the policy adapts itself from per-interval cycle statistics
    /// (adaptive slip, duty-cycle throttling). Such controllers sample
    /// counters at fixed interval boundaries; each WPU publishes its next
    /// boundary as a wake event (`Wpu::next_adapt_boundary`), so the run
    /// loop sleeps through event gaps exactly as it does for every other
    /// policy — waking for the boundary like it would for a memory
    /// completion — instead of holding adaptive machines in per-cycle
    /// lockstep.
    pub fn is_adaptive(&self) -> bool {
        match self {
            Policy::Slip(_) => true,
            Policy::Dws(c) => c.adaptive_throttle,
            Policy::Conventional => false,
        }
    }

    /// The paper's display name for the configuration.
    pub fn paper_name(&self) -> &'static str {
        match self {
            Policy::Conventional => "Conv",
            Policy::Slip(c) if c.branch_bypass => "Slip.BranchBypass",
            Policy::Slip(_) => "Slip",
            Policy::Dws(c) => match (c.branch_split, c.mem_split, c.reconv, c.branch_handling) {
                (true, None, ReconvMode::StackBased, _) => "DWS.Branch.StackReconv",
                (true, None, ReconvMode::PcBased, _) => "DWS.BranchOnly",
                (false, Some(MemSplit::Revive), _, BranchHandling::BranchBypass) => {
                    "DWS.ReviveSplit.MemOnly"
                }
                (false, Some(MemSplit::Aggressive), _, BranchHandling::BranchLimited) => {
                    "DWS.AggressSplit.BL"
                }
                (false, Some(MemSplit::Lazy), _, BranchHandling::BranchLimited) => {
                    "DWS.LazySplit.BL"
                }
                (false, Some(MemSplit::Revive), _, BranchHandling::BranchLimited) => {
                    "DWS.ReviveSplit.BL"
                }
                (true, Some(MemSplit::Aggressive), _, _) => "DWS.AggressSplit",
                (true, Some(MemSplit::Lazy), _, _) => "DWS.LazySplit",
                (true, Some(MemSplit::Revive), _, _) if c.adaptive_throttle => {
                    "DWS.ReviveSplit.Throttled"
                }
                (true, Some(MemSplit::Revive), _, _) => "DWS.ReviveSplit",
                _ => "DWS.custom",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names_round_trip() {
        assert_eq!(Policy::conventional().paper_name(), "Conv");
        assert_eq!(Policy::dws_branch_only().paper_name(), "DWS.BranchOnly");
        assert_eq!(
            Policy::dws_branch_stack().paper_name(),
            "DWS.Branch.StackReconv"
        );
        assert_eq!(Policy::dws_revive().paper_name(), "DWS.ReviveSplit");
        assert_eq!(Policy::dws_aggress().paper_name(), "DWS.AggressSplit");
        assert_eq!(Policy::dws_lazy().paper_name(), "DWS.LazySplit");
        assert_eq!(
            Policy::dws_mem_only().paper_name(),
            "DWS.ReviveSplit.MemOnly"
        );
        assert_eq!(
            Policy::dws_branch_limited(MemSplit::Revive).paper_name(),
            "DWS.ReviveSplit.BL"
        );
        assert_eq!(Policy::slip().paper_name(), "Slip");
        assert_eq!(
            Policy::slip_branch_bypass().paper_name(),
            "Slip.BranchBypass"
        );
    }

    #[test]
    fn wst_usage() {
        assert!(!Policy::conventional().uses_wst());
        assert!(Policy::dws_revive().uses_wst());
        assert!(!Policy::slip().uses_wst());
    }

    #[test]
    fn slip_defaults_match_paper() {
        let c = SlipConfig::default();
        assert_eq!(c.interval, 100_000);
        assert!((c.raise_threshold - 0.7).abs() < 1e-12);
        assert!((c.lower_threshold - 0.5).abs() < 1e-12);
    }
}
