//! Active-thread bit masks over a warp's lanes.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not, Sub};

/// A set of lanes within a warp (bit *i* = lane *i* active). Warps of up to
/// 64 lanes are supported; the paper evaluates widths 1–32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Mask(pub u64);

impl Mask {
    /// The empty mask.
    pub const EMPTY: Mask = Mask(0);

    /// A mask with lanes `0..width` set.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn full(width: usize) -> Mask {
        assert!(width <= 64, "SIMD width > 64 unsupported");
        if width == 64 {
            Mask(u64::MAX)
        } else {
            Mask((1u64 << width) - 1)
        }
    }

    /// A mask with only `lane` set.
    pub fn lane(lane: usize) -> Mask {
        assert!(lane < 64);
        Mask(1 << lane)
    }

    /// Whether no lane is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set lanes.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether `lane` is set.
    #[inline]
    pub fn contains(self, lane: usize) -> bool {
        self.0 & (1 << lane) != 0
    }

    /// Whether every lane of `other` is also in `self`.
    #[inline]
    pub fn contains_all(self, other: Mask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the two masks share no lane.
    #[inline]
    pub fn is_disjoint(self, other: Mask) -> bool {
        self.0 & other.0 == 0
    }

    /// Sets `lane`.
    #[inline]
    pub fn set(&mut self, lane: usize) {
        self.0 |= 1 << lane;
    }

    /// Clears `lane`.
    #[inline]
    pub fn clear(&mut self, lane: usize) {
        self.0 &= !(1 << lane);
    }

    /// Iterates over set lane indices in ascending order.
    pub fn iter(self) -> MaskIter {
        MaskIter(self.0)
    }

    /// The lowest set lane, if any.
    pub fn first(self) -> Option<usize> {
        (self.0 != 0).then(|| self.0.trailing_zeros() as usize)
    }
}

impl BitOr for Mask {
    type Output = Mask;
    #[inline]
    fn bitor(self, rhs: Mask) -> Mask {
        Mask(self.0 | rhs.0)
    }
}

impl BitAnd for Mask {
    type Output = Mask;
    #[inline]
    fn bitand(self, rhs: Mask) -> Mask {
        Mask(self.0 & rhs.0)
    }
}

impl Sub for Mask {
    type Output = Mask;
    /// Set difference.
    #[inline]
    fn sub(self, rhs: Mask) -> Mask {
        Mask(self.0 & !rhs.0)
    }
}

impl Not for Mask {
    type Output = Mask;
    #[inline]
    fn not(self) -> Mask {
        Mask(!self.0)
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:b}", self.0)
    }
}

impl FromIterator<usize> for Mask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Mask {
        let mut m = Mask::EMPTY;
        for lane in iter {
            m.set(lane);
        }
        m
    }
}

/// Iterator over set lanes, produced by [`Mask::iter`].
#[derive(Debug, Clone)]
pub struct MaskIter(u64);

impl Iterator for MaskIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let lane = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(lane)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_masks() {
        assert_eq!(Mask::full(0), Mask::EMPTY);
        assert_eq!(Mask::full(4), Mask(0b1111));
        assert_eq!(Mask::full(64), Mask(u64::MAX));
        assert_eq!(Mask::full(16).count(), 16);
    }

    #[test]
    fn set_operations() {
        let a = Mask(0b1100);
        let b = Mask(0b1010);
        assert_eq!(a | b, Mask(0b1110));
        assert_eq!(a & b, Mask(0b1000));
        assert_eq!(a - b, Mask(0b0100));
        assert!(Mask(0b11).is_disjoint(Mask(0b100)));
        assert!(!a.is_disjoint(b));
        assert!(Mask(0b111).contains_all(Mask(0b101)));
        assert!(!Mask(0b101).contains_all(Mask(0b111)));
    }

    #[test]
    fn lane_manipulation() {
        let mut m = Mask::EMPTY;
        assert!(m.is_empty());
        m.set(3);
        m.set(7);
        assert!(m.contains(3) && m.contains(7) && !m.contains(4));
        m.clear(3);
        assert_eq!(m, Mask::lane(7));
        assert_eq!(m.first(), Some(7));
        assert_eq!(Mask::EMPTY.first(), None);
    }

    #[test]
    fn iteration_ascending() {
        let m: Mask = [5usize, 1, 9].into_iter().collect();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
        assert_eq!(Mask::EMPTY.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn width_over_64_panics() {
        Mask::full(65);
    }
}
