//! Warp-split table accounting (paper Sections 4.4, 5.6, 6.7).
//!
//! The WST holds one entry per warp-split. A warp that has not been
//! subdivided is tracked by the baseline scheduler and consumes no WST
//! entry; the moment it splits, each of its groups needs one. When the
//! table is full, subdivision is disabled ("warps are not able to be
//! subdivided when the WST is already full"). The paper limits the WST to
//! 16 entries at a cost of 84 bits each (< 1% of WPU storage area).

/// Tracks WST occupancy across the warps of one WPU.
#[derive(Debug, Clone)]
pub struct WstAccounting {
    capacity: usize,
    /// Number of groups per warp.
    groups_per_warp: Vec<usize>,
    /// Peak occupancy observed (reported by the harness).
    peak: usize,
}

impl WstAccounting {
    /// Creates accounting for `n_warps` warps and `capacity` WST entries.
    pub fn new(n_warps: usize, capacity: usize) -> Self {
        WstAccounting {
            capacity,
            groups_per_warp: vec![0; n_warps],
            peak: 0,
        }
    }

    /// Current number of occupied entries: subdivided warps contribute one
    /// entry per split; unsplit warps contribute none.
    pub fn used(&self) -> usize {
        self.groups_per_warp
            .iter()
            .map(|&g| if g > 1 { g } else { 0 })
            .sum()
    }

    /// Entries that would be occupied if `warp` were split once more.
    fn used_after_split(&self, warp: usize) -> usize {
        let extra = if self.groups_per_warp[warp] == 1 {
            2
        } else {
            1
        };
        self.used() + extra
    }

    /// Whether warp `warp` may be subdivided (one group becoming two).
    pub fn can_split(&self, warp: usize) -> bool {
        self.used_after_split(warp) <= self.capacity
    }

    /// Records that `warp` gained a group (spawn or split).
    pub fn on_group_created(&mut self, warp: usize) {
        self.groups_per_warp[warp] += 1;
        let used = self.used();
        if used > self.peak {
            self.peak = used;
        }
    }

    /// Records that `warp` lost a group (merge or death).
    ///
    /// # Panics
    ///
    /// Panics if the warp has no groups.
    pub fn on_group_removed(&mut self, warp: usize) {
        assert!(self.groups_per_warp[warp] > 0, "group underflow");
        self.groups_per_warp[warp] -= 1;
    }

    /// Number of groups warp `warp` currently has.
    pub fn groups_of(&self, warp: usize) -> usize {
        self.groups_per_warp[warp]
    }

    /// Peak simultaneous WST occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsplit_warps_consume_nothing() {
        let mut w = WstAccounting::new(4, 16);
        for warp in 0..4 {
            w.on_group_created(warp);
        }
        assert_eq!(w.used(), 0);
        assert!(w.can_split(0));
    }

    #[test]
    fn splitting_consumes_entries() {
        let mut w = WstAccounting::new(2, 4);
        w.on_group_created(0);
        w.on_group_created(1);
        // Split warp 0: 1 -> 2 groups, costs 2 entries.
        assert!(w.can_split(0));
        w.on_group_created(0);
        assert_eq!(w.used(), 2);
        // Split warp 0 again: 2 -> 3 groups, costs 1 entry.
        assert!(w.can_split(0));
        w.on_group_created(0);
        assert_eq!(w.used(), 3);
        // Splitting warp 1 (1 -> 2) needs 2 entries; only 1 free.
        assert!(!w.can_split(1));
        // Merging warp 0 back frees entries.
        w.on_group_removed(0);
        w.on_group_removed(0);
        assert_eq!(w.used(), 0);
        assert!(w.can_split(1));
        assert_eq!(w.peak(), 3);
        assert_eq!(w.capacity(), 4);
        assert_eq!(w.groups_of(0), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn removing_from_empty_warp_panics() {
        let mut w = WstAccounting::new(1, 4);
        w.on_group_removed(0);
    }
}
