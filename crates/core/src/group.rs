//! SIMD groups: full warps and warp-splits, treated uniformly by the
//! scheduler (paper Section 4.2: "Warp-splits are independent scheduling
//! entities and are treated equally as warps").

use crate::mask::Mask;
use crate::warp::Frame;
use dws_engine::Cycle;

/// Identifier of a live group within a WPU (slab index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub usize);

/// Scheduling state of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupStatus {
    /// Eligible to issue once `ready_at` passes.
    Ready,
    /// Blocked on outstanding memory requests (lanes with `pending` set).
    WaitMem,
    /// Stalled at a re-convergence point (TOS post-dominator, or any branch
    /// under `BranchLimited`), waiting for sibling splits.
    WaitReconv,
    /// Stalled at a global barrier.
    WaitBarrier,
    /// Slip only: suspended fall-behind threads, re-united when the
    /// run-ahead revisits `slip_pc` (not resumed by request completion).
    SlipSuspended,
    /// Slip only: the run-ahead stalled at a conditional branch waiting for
    /// fall-behind threads to catch up.
    SlipStalledAtBranch,
}

/// A schedulable SIMD group: a full warp or a warp-split.
///
/// This is the software embodiment of one warp-split-table entry: warp id,
/// PC, active mask, status (the paper budgets 84 bits per entry). The
/// `local_stack` extends the paper's design: when a split encounters a
/// divergent branch it cannot subdivide on (WST full, or subdivision
/// disabled), the paths serialize within the split using conventional
/// re-convergence frames private to it.
#[derive(Debug, Clone)]
pub struct Group {
    /// Owning warp index within the WPU.
    pub warp: usize,
    /// Current PC.
    pub pc: usize,
    /// Active threads.
    pub mask: Mask,
    /// Scheduling status.
    pub status: GroupStatus,
    /// Earliest cycle the group may issue again.
    pub ready_at: Cycle,
    /// Private serialization frames for in-split branch divergence.
    pub local_stack: Vec<Frame>,
    /// Re-convergence PC of the group's innermost *local* region, if it is
    /// serializing a branch privately ([`Group::local_stack`]).
    pub local_rpc: Option<usize>,
    /// Slip: the memory-instruction PC this fall-behind group suspended at.
    pub slip_pc: Option<usize>,
    /// Slip: whether completed fall-behind threads may run independently to
    /// catch up (set when the run-ahead stalls at a branch/barrier/halt).
    pub slip_catchup: bool,
    /// Whether the group occupies a scheduler slot.
    pub slotted: bool,
    /// Creation sequence, for deterministic slot promotion and merging.
    pub seq: u64,
    /// Retired uniform-*spine* branches (see
    /// `dws_isa::verify::BranchUniformity::spine`). Together with the PC
    /// this identifies the group's position on the uniform spine: splits
    /// inherit it, and a merge of groups with unequal counts means lanes
    /// with different spine histories (e.g. different trip counts of a
    /// uniform loop) now share a group — the warp's uniform-branch fast
    /// path is then disabled.
    pub spine_trips: u64,
    /// Structural-stall memo: `(pc, mask, l1 generation)` of the last
    /// rejected memory access. While the group spins on full MSHRs its
    /// registers cannot change, so an identical attempt against an
    /// unchanged L1 generation is re-rejected without re-probing the cache.
    pub reject_memo: Option<(usize, Mask, u64)>,
}

impl Group {
    /// Creates a ready group.
    pub fn new(warp: usize, pc: usize, mask: Mask, seq: u64) -> Self {
        Group {
            warp,
            pc,
            mask,
            status: GroupStatus::Ready,
            ready_at: Cycle::ZERO,
            local_stack: Vec::new(),
            local_rpc: None,
            slip_pc: None,
            slip_catchup: false,
            slotted: false,
            seq,
            spine_trips: 0,
            reject_memo: None,
        }
    }

    /// Whether the group can issue at `now`.
    pub fn issuable(&self, now: Cycle) -> bool {
        self.slotted && self.status == GroupStatus::Ready && self.ready_at <= now
    }

    /// Whether two groups' private serialization contexts line up
    /// structurally (same frame PCs and re-convergence PCs; the masks are
    /// per-group thread shares and are unioned on merge).
    pub fn local_ctx_compatible(&self, other: &Group) -> bool {
        self.local_rpc == other.local_rpc
            && self.local_stack.len() == other.local_stack.len()
            && self
                .local_stack
                .iter()
                .zip(&other.local_stack)
                .all(|(a, b)| a.pc == b.pc && a.rpc == b.rpc)
    }

    /// Whether two groups may merge: same warp, same PC, compatible
    /// serialization context, both runnable.
    pub fn can_merge_with(&self, other: &Group) -> bool {
        self.warp == other.warp
            && self.pc == other.pc
            && self.status == GroupStatus::Ready
            && other.status == GroupStatus::Ready
            && self.local_ctx_compatible(other)
            && self.slip_pc.is_none()
            && other.slip_pc.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issuable_requires_slot_ready_and_time() {
        let mut g = Group::new(0, 0, Mask::full(4), 0);
        assert!(!g.issuable(Cycle(0)), "unslotted");
        g.slotted = true;
        assert!(g.issuable(Cycle(0)));
        g.ready_at = Cycle(5);
        assert!(!g.issuable(Cycle(4)));
        assert!(g.issuable(Cycle(5)));
        g.status = GroupStatus::WaitMem;
        assert!(!g.issuable(Cycle(9)));
    }

    #[test]
    fn merge_compatibility() {
        let a = Group::new(0, 7, Mask(0b0011), 0);
        let b = Group::new(0, 7, Mask(0b1100), 1);
        assert!(a.can_merge_with(&b));
        let mut c = b.clone();
        c.pc = 8;
        assert!(!a.can_merge_with(&c));
        let mut d = b.clone();
        d.warp = 1;
        assert!(!a.can_merge_with(&d));
        let mut e = b.clone();
        e.local_stack.push(Frame {
            pc: 0,
            rpc: Some(1),
            mask: Mask(0b1100),
        });
        assert!(!a.can_merge_with(&e));
        let mut f = b.clone();
        f.status = GroupStatus::WaitMem;
        assert!(!a.can_merge_with(&f));
        let mut g = b.clone();
        g.slip_pc = Some(3);
        assert!(!a.can_merge_with(&g));
    }
}
