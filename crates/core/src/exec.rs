//! Warp-wide µop execution kernels.
//!
//! The per-lane interpreter matches the instruction once for *every* active
//! lane. These kernels invert that: one opcode dispatch per instruction,
//! then a tight loop over the active lanes of the SoA [`RegFile`]. Each
//! match arm monomorphizes a lane loop around `eval_alu`/`eval_un`/
//! `CondOp::eval` with the opcode as a compile-time constant — the inner
//! opcode match const-folds away, so the semantics stay written exactly
//! once (in `dws-isa`) while the hot loop contains only the selected
//! operation.

use crate::mask::Mask;
use crate::regfile::RegFile;
use dws_isa::{eval_alu, eval_un, AluOp, CondOp, Src, UnOp};

/// Resolves a predecoded source operand for one lane.
#[inline(always)]
fn src(rf: &RegFile, lane: usize, s: Src) -> u64 {
    match s {
        Src::Reg(r) => rf.get(r, lane),
        Src::Imm(v) => v,
    }
}

/// Lane loop for a binary operation with a monomorphized body.
#[inline(always)]
fn bin(rf: &mut RegFile, mask: Mask, dst: u16, a: Src, b: Src, f: impl Fn(u64, u64) -> u64) {
    for lane in mask.iter() {
        let v = f(src(rf, lane, a), src(rf, lane, b));
        rf.set(dst, lane, v);
    }
}

/// Lane loop for a unary operation with a monomorphized body.
#[inline(always)]
fn un(rf: &mut RegFile, mask: Mask, dst: u16, a: Src, f: impl Fn(u64) -> u64) {
    for lane in mask.iter() {
        let v = f(src(rf, lane, a));
        rf.set(dst, lane, v);
    }
}

/// `dst = a <op> b` across the active lanes: one dispatch, `lanes` bodies.
pub(crate) fn exec_alu(rf: &mut RegFile, mask: Mask, op: AluOp, dst: u16, a: Src, b: Src) {
    macro_rules! arms {
        ($($v:ident),+) => {
            match op {
                $(AluOp::$v => bin(rf, mask, dst, a, b, |x, y| eval_alu(AluOp::$v, x, y)),)+
            }
        };
    }
    arms!(
        Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Min, Max, FAdd, FSub, FMul, FDiv, FMin,
        FMax
    );
}

/// `dst = <op> a` across the active lanes.
pub(crate) fn exec_un(rf: &mut RegFile, mask: Mask, op: UnOp, dst: u16, a: Src) {
    macro_rules! arms {
        ($($v:ident),+) => {
            match op {
                $(UnOp::$v => un(rf, mask, dst, a, |x| eval_un(UnOp::$v, x)),)+
            }
        };
    }
    arms!(Mov, Not, Neg, FNeg, FAbs, FSqrt, I2F, F2I);
}

/// `dst = (a <cond> b) ? 1 : 0` across the active lanes.
pub(crate) fn exec_set(rf: &mut RegFile, mask: Mask, cond: CondOp, dst: u16, a: Src, b: Src) {
    macro_rules! arms {
        ($($v:ident),+) => {
            match cond {
                $(CondOp::$v => bin(rf, mask, dst, a, b, |x, y| CondOp::$v.eval(x, y) as u64),)+
            }
        };
    }
    arms!(Eq, Ne, Lt, Le, Gt, Ge, FEq, FNe, FLt, FLe, FGt, FGe);
}

/// The set of active lanes whose `a <cond> b` holds — the branch-taken mask.
pub(crate) fn branch_taken(rf: &RegFile, mask: Mask, cond: CondOp, a: Src, b: Src) -> Mask {
    macro_rules! arms {
        ($($v:ident),+) => {
            match cond {
                $(CondOp::$v => {
                    let mut taken = Mask::EMPTY;
                    for lane in mask.iter() {
                        if CondOp::$v.eval(src(rf, lane, a), src(rf, lane, b)) {
                            taken.set(lane);
                        }
                    }
                    taken
                })+
            }
        };
    }
    arms!(Eq, Ne, Lt, Le, Gt, Ge, FEq, FNe, FLt, FLe, FGt, FGe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_kernel_matches_per_lane_eval() {
        let mut rf = RegFile::new(4, 8, 0, 8);
        // r2 = tid * 3 on lanes {0, 2, 5}.
        let mask = Mask(0b100101);
        exec_alu(&mut rf, mask, AluOp::Mul, 2, Src::Reg(0), Src::Imm(3));
        for lane in 0..8 {
            let expect = if mask.contains(lane) {
                lane as u64 * 3
            } else {
                0
            };
            assert_eq!(rf.get(2, lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn un_kernel_and_aliasing_dst() {
        let mut rf = RegFile::new(3, 4, 0, 4);
        exec_alu(
            &mut rf,
            Mask::full(4),
            AluOp::Add,
            2,
            Src::Reg(0),
            Src::Imm(1),
        );
        // dst aliases src: r2 = -r2.
        exec_un(&mut rf, Mask::full(4), UnOp::Neg, 2, Src::Reg(2));
        for lane in 0..4 {
            assert_eq!(rf.get(2, lane) as i64, -(lane as i64 + 1));
        }
    }

    #[test]
    fn set_and_branch_taken_agree() {
        let mut rf = RegFile::new(3, 8, 0, 8);
        exec_set(
            &mut rf,
            Mask::full(8),
            CondOp::Lt,
            2,
            Src::Reg(0),
            Src::Imm(5),
        );
        let taken = branch_taken(&rf, Mask::full(8), CondOp::Lt, Src::Reg(0), Src::Imm(5));
        for lane in 0..8 {
            assert_eq!(rf.get(2, lane) == 1, taken.contains(lane), "lane {lane}");
        }
        assert_eq!(taken, Mask(0b11111));
    }

    #[test]
    fn float_ops_go_through_bit_patterns() {
        let mut rf = RegFile::new(4, 2, 0, 2);
        rf.set(2, 0, 2.0f64.to_bits());
        rf.set(2, 1, 9.0f64.to_bits());
        exec_un(&mut rf, Mask::full(2), UnOp::FSqrt, 3, Src::Reg(2));
        assert_eq!(f64::from_bits(rf.get(3, 0)), 2.0f64.sqrt());
        assert_eq!(f64::from_bits(rf.get(3, 1)), 3.0);
        exec_alu(
            &mut rf,
            Mask::full(2),
            AluOp::FMul,
            3,
            Src::Reg(3),
            Src::Imm(0.5f64.to_bits()),
        );
        assert_eq!(f64::from_bits(rf.get(3, 1)), 1.5);
    }
}
