//! Warps: thread contexts, the re-convergence stack, and halt tracking.

use crate::mask::Mask;
use crate::regfile::RegFile;
use dws_isa::Program;
use dws_mem::RequestId;

/// One frame of a re-convergence stack (Fung-style).
///
/// The executing entity corresponds to the top frame. On a divergent branch
/// the top frame's `pc` is redirected to the re-convergence point, and one
/// frame per path is pushed; when execution reaches the top frame's `rpc`
/// the frame pops and the next path (or the re-converged continuation)
/// resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Where this frame resumes execution.
    pub pc: usize,
    /// The re-convergence PC at which this frame pops, or `None` for the
    /// root frame (threads run to termination).
    pub rpc: Option<usize>,
    /// Threads belonging to this frame.
    pub mask: Mask,
}

/// Per-thread bookkeeping within a warp (registers live in the warp's SoA
/// [`RegFile`]).
#[derive(Debug)]
pub struct ThreadSlot {
    /// Set once the thread executes `Halt`.
    pub halted: bool,
    /// The outstanding miss this thread is blocked on, if any.
    pub pending: Option<RequestId>,
    /// D-cache misses attributed to this thread (Figure 14's heat map).
    pub miss_count: u64,
}

/// A warp: `width` threads, a re-convergence stack, and halt state.
#[derive(Debug)]
pub struct Warp {
    /// Warp index within its WPU.
    pub id: usize,
    /// Architectural registers of all lanes, SoA.
    pub regs: RegFile,
    /// Per-thread bookkeeping, one slot per lane.
    pub threads: Vec<ThreadSlot>,
    /// The architectural re-convergence stack.
    pub stack: Vec<Frame>,
    /// Lanes whose threads have terminated.
    pub halted: Mask,
    /// Number of live SIMD groups currently representing this warp.
    pub group_count: usize,
}

impl Warp {
    /// Creates a warp whose lane `l` runs global thread `base_tid + l`.
    pub fn new(id: usize, width: usize, base_tid: u64, nthreads: u64, program: &Program) -> Self {
        let threads = (0..width)
            .map(|_| ThreadSlot {
                halted: false,
                pending: None,
                miss_count: 0,
            })
            .collect();
        Warp {
            id,
            regs: RegFile::new(program.num_regs(), width, base_tid, nthreads),
            threads,
            stack: vec![Frame {
                pc: 0,
                rpc: None,
                mask: Mask::full(width),
            }],
            halted: Mask::EMPTY,
            group_count: 0,
        }
    }

    /// The top re-convergence frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (only possible after the warp retired).
    pub fn tos(&self) -> &Frame {
        self.stack.last().expect("live warp has a root frame")
    }

    /// The top frame's mask minus halted threads — the set every split of
    /// the current region must account for when re-converging.
    pub fn tos_live_mask(&self) -> Mask {
        self.tos().mask - self.halted
    }

    /// Whether all threads have terminated.
    pub fn all_halted(&self, width: usize) -> bool {
        self.halted == Mask::full(width)
    }

    /// Lanes in `mask` that have no outstanding miss.
    pub fn arrived_lanes(&self, mask: Mask) -> Mask {
        mask.iter()
            .filter(|&l| self.threads[l].pending.is_none())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_isa::KernelBuilder;

    fn prog() -> Program {
        let mut b = KernelBuilder::new();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn new_warp_has_root_frame() {
        let p = prog();
        let w = Warp::new(1, 8, 16, 64, &p);
        assert_eq!(w.stack.len(), 1);
        assert_eq!(w.tos().mask, Mask::full(8));
        assert_eq!(w.tos().rpc, None);
        assert_eq!(w.tos().pc, 0);
        assert!(!w.all_halted(8));
        // Lane 3 runs global thread 19.
        assert_eq!(w.regs.get(0, 3), 19);
        assert_eq!(w.regs.get(1, 3), 64);
    }

    #[test]
    fn live_mask_excludes_halted() {
        let p = prog();
        let mut w = Warp::new(0, 4, 0, 4, &p);
        w.halted.set(1);
        assert_eq!(w.tos_live_mask(), Mask(0b1101));
        w.halted = Mask::full(4);
        assert!(w.all_halted(4));
    }

    #[test]
    fn arrived_lanes_follow_pending() {
        let p = prog();
        let mut w = Warp::new(0, 4, 0, 4, &p);
        w.threads[2].pending = Some(RequestId(9));
        assert_eq!(w.arrived_lanes(Mask::full(4)), Mask(0b1011));
        assert_eq!(w.arrived_lanes(Mask::lane(2)), Mask::EMPTY);
    }
}
