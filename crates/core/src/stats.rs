//! Per-WPU statistics: everything the paper's tables and figures consume.

use dws_engine::stats::{Counter, Distribution, Ratio};

/// Statistics accumulated by one WPU over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WpuStats {
    /// Cycles in which a warp instruction issued.
    pub busy_cycles: Counter,
    /// Cycles stalled with at least one group waiting on memory and nothing
    /// to issue — the paper's "time spent waiting for memory".
    pub mem_stall_cycles: Counter,
    /// Cycles with nothing to issue for any other reason (barriers,
    /// re-convergence waits, drained work).
    pub idle_cycles: Counter,

    /// Warp-level instructions issued.
    pub warp_insts: Counter,
    /// Thread-level instructions executed (warp instruction x active lanes).
    pub thread_insts: Counter,
    /// (active lanes, instructions): mean = average SIMD width per issued
    /// instruction (paper Sections 4.6 and 5.5).
    pub simd_width: Ratio,

    /// Conditional branches executed (warp level).
    pub branches: Counter,
    /// Branches whose outcome diverged within the executing group.
    pub divergent_branches: Counter,
    /// Warp-level D-cache accesses.
    pub mem_accesses: Counter,
    /// Accesses on which at least one lane missed.
    pub mem_accesses_with_miss: Counter,
    /// Miss accesses that were *divergent*: some lanes hit while others
    /// missed, or the misses spanned several lines (different latencies).
    pub divergent_mem_accesses: Counter,

    /// Warp instructions between successive conditional branches (Table 1).
    pub insts_between_branches: Distribution,
    /// Warp instructions between successive miss events (Table 1).
    pub insts_between_misses: Distribution,
    /// Warp instructions between successive *divergent* misses (Table 1).
    pub insts_between_div_misses: Distribution,

    /// Splits created on branch divergence.
    pub branch_splits: Counter,
    /// Splits created on memory divergence at issue (Aggressive/Lazy).
    pub mem_splits: Counter,
    /// Splits created by ReviveSplit while the pipeline was stalled.
    pub revive_splits: Counter,
    /// Re-unions through PC match.
    pub pc_merges: Counter,
    /// Re-unions at stack post-dominators / BranchLimited barriers.
    pub stack_merges: Counter,
    /// Subdivisions suppressed because the WST was full.
    pub wst_full_events: Counter,
    /// Subdivisions suppressed by the Lazy condition (other work existed).
    pub lazy_suppressed: Counter,
    /// Subdivisions suppressed by the adaptive throttle extension.
    pub throttle_suppressed: Counter,
    /// Slip: divergences where threads were left behind.
    pub slip_events: Counter,
    /// Slip: re-unions on revisiting the divergent PC.
    pub slip_merges: Counter,
    /// Branches evaluated through the verifier-uniformity fast path (one
    /// representative lane instead of the full warp).
    pub uniform_fast_branches: Counter,

    /// Lane-level integer ALU operations (energy model).
    pub int_ops: Counter,
    /// Lane-level floating-point operations (energy model).
    pub fp_ops: Counter,
    /// Lane-level loads.
    pub loads: Counter,
    /// Lane-level stores.
    pub stores: Counter,

    /// Running counters used to sample the "instructions between" series.
    pub(crate) insts_since_branch: u64,
    pub(crate) insts_since_miss: u64,
    pub(crate) insts_since_div_miss: u64,
}

impl WpuStats {
    /// Records one issued warp instruction with `active` lanes.
    pub(crate) fn on_issue(&mut self, active: u32) {
        self.busy_cycles.incr();
        self.warp_insts.incr();
        self.thread_insts.add(active as u64);
        self.simd_width.add(active as u64, 1);
        self.insts_since_branch += 1;
        self.insts_since_miss += 1;
        self.insts_since_div_miss += 1;
    }

    /// Records a conditional branch (after `on_issue`).
    pub(crate) fn on_branch(&mut self, divergent: bool) {
        self.branches.incr();
        if divergent {
            self.divergent_branches.incr();
        }
        self.insts_between_branches
            .record(self.insts_since_branch as f64);
        self.insts_since_branch = 0;
    }

    /// Records a memory access outcome (after `on_issue`).
    pub(crate) fn on_mem_access(&mut self, any_miss: bool, divergent: bool) {
        self.mem_accesses.incr();
        if any_miss {
            self.mem_accesses_with_miss.incr();
            self.insts_between_misses
                .record(self.insts_since_miss as f64);
            self.insts_since_miss = 0;
            if divergent {
                self.divergent_mem_accesses.incr();
                self.insts_between_div_misses
                    .record(self.insts_since_div_miss as f64);
                self.insts_since_div_miss = 0;
            }
        }
    }

    /// Total cycles this WPU was observed (busy + stalled + idle).
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles.get() + self.mem_stall_cycles.get() + self.idle_cycles.get()
    }

    /// Fraction of time stalled on memory, if any cycles elapsed.
    pub fn mem_stall_fraction(&self) -> Option<f64> {
        let t = self.total_cycles();
        (t > 0).then(|| self.mem_stall_cycles.get() as f64 / t as f64)
    }

    /// Percentage of branches that diverged.
    pub fn divergent_branch_fraction(&self) -> Option<f64> {
        let b = self.branches.get();
        (b > 0).then(|| self.divergent_branches.get() as f64 / b as f64)
    }

    /// Fraction of miss-bearing accesses that were divergent (Table 1).
    pub fn divergent_access_fraction(&self) -> Option<f64> {
        let m = self.mem_accesses_with_miss.get();
        (m > 0).then(|| self.divergent_mem_accesses.get() as f64 / m as f64)
    }

    /// Merges another WPU's statistics into this one (whole-machine view).
    pub fn merge(&mut self, other: &WpuStats) {
        self.busy_cycles.add(other.busy_cycles.get());
        self.mem_stall_cycles.add(other.mem_stall_cycles.get());
        self.idle_cycles.add(other.idle_cycles.get());
        self.warp_insts.add(other.warp_insts.get());
        self.thread_insts.add(other.thread_insts.get());
        self.simd_width
            .add(other.simd_width.numerator(), other.simd_width.denominator());
        self.branches.add(other.branches.get());
        self.divergent_branches.add(other.divergent_branches.get());
        self.mem_accesses.add(other.mem_accesses.get());
        self.mem_accesses_with_miss
            .add(other.mem_accesses_with_miss.get());
        self.divergent_mem_accesses
            .add(other.divergent_mem_accesses.get());
        self.insts_between_branches
            .merge(&other.insts_between_branches);
        self.insts_between_misses.merge(&other.insts_between_misses);
        self.insts_between_div_misses
            .merge(&other.insts_between_div_misses);
        self.branch_splits.add(other.branch_splits.get());
        self.mem_splits.add(other.mem_splits.get());
        self.revive_splits.add(other.revive_splits.get());
        self.pc_merges.add(other.pc_merges.get());
        self.stack_merges.add(other.stack_merges.get());
        self.wst_full_events.add(other.wst_full_events.get());
        self.lazy_suppressed.add(other.lazy_suppressed.get());
        self.throttle_suppressed
            .add(other.throttle_suppressed.get());
        self.slip_events.add(other.slip_events.get());
        self.slip_merges.add(other.slip_merges.get());
        self.uniform_fast_branches
            .add(other.uniform_fast_branches.get());
        self.int_ops.add(other.int_ops.get());
        self.fp_ops.add(other.fp_ops.get());
        self.loads.add(other.loads.get());
        self.stores.add(other.stores.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_accounting() {
        let mut s = WpuStats::default();
        s.on_issue(16);
        s.on_issue(4);
        assert_eq!(s.warp_insts.get(), 2);
        assert_eq!(s.thread_insts.get(), 20);
        assert_eq!(s.simd_width.ratio(), Some(10.0));
        assert_eq!(s.busy_cycles.get(), 2);
    }

    #[test]
    fn branch_interval_sampling() {
        let mut s = WpuStats::default();
        for _ in 0..5 {
            s.on_issue(8);
        }
        s.on_branch(false);
        for _ in 0..3 {
            s.on_issue(8);
        }
        s.on_branch(true);
        assert_eq!(s.branches.get(), 2);
        assert_eq!(s.divergent_branches.get(), 1);
        assert_eq!(s.insts_between_branches.mean(), Some(4.0)); // (5 + 3) / 2
        assert_eq!(s.divergent_branch_fraction(), Some(0.5));
    }

    #[test]
    fn mem_interval_sampling() {
        let mut s = WpuStats::default();
        s.on_issue(8);
        s.on_mem_access(false, false); // hit: no interval sample
        s.on_issue(8);
        s.on_mem_access(true, true); // divergent miss at distance 2
        assert_eq!(s.mem_accesses.get(), 2);
        assert_eq!(s.mem_accesses_with_miss.get(), 1);
        assert_eq!(s.insts_between_misses.mean(), Some(2.0));
        assert_eq!(s.insts_between_div_misses.mean(), Some(2.0));
        assert_eq!(s.divergent_access_fraction(), Some(1.0));
    }

    #[test]
    fn fractions_none_when_empty() {
        let s = WpuStats::default();
        assert_eq!(s.mem_stall_fraction(), None);
        assert_eq!(s.divergent_branch_fraction(), None);
        assert_eq!(s.divergent_access_fraction(), None);
        assert_eq!(s.total_cycles(), 0);
    }

    #[test]
    fn merge_adds_up() {
        let mut a = WpuStats::default();
        a.on_issue(8);
        a.on_branch(true);
        let mut b = WpuStats::default();
        b.on_issue(4);
        b.on_branch(false);
        a.merge(&b);
        assert_eq!(a.warp_insts.get(), 2);
        assert_eq!(a.branches.get(), 2);
        assert_eq!(a.divergent_branches.get(), 1);
        assert_eq!(a.simd_width.ratio(), Some(6.0));
    }
}
