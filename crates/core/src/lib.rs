//! The warp processing unit (WPU) with **dynamic warp subdivision** — the
//! primary contribution of Meng, Tarjan & Skadron (ISCA 2010).
//!
//! A WPU groups scalar threads into warps that execute in SIMD lockstep.
//! Two kinds of divergence leave runnable threads idle in conventional
//! designs:
//!
//! * **branch divergence** — threads of a warp take different paths at a
//!   conditional branch; a re-convergence stack serializes the paths;
//! * **memory-latency divergence** — some threads of a warp hit the D-cache
//!   while others miss; the whole warp stalls for the slowest lane.
//!
//! Dynamic warp subdivision (DWS) lets a warp occupy more than one scheduler
//! slot by splitting it into *warp-splits* tracked in a warp-split table
//! ([`wst`]). Splits are independent scheduling entities: divergent branch
//! paths interleave, and threads that hit run ahead (non-speculatively
//! prefetching for those that fell behind). Splits re-merge through
//! stack-based or PC-based re-convergence.
//!
//! The crate provides:
//!
//! * [`Mask`] — active-thread bit masks,
//! * [`Policy`] — every scheme evaluated in the paper (`Conv`, the DWS
//!   subdivision × re-convergence matrix, and the adaptive-slip baseline),
//! * [`Wpu`] — the cycle-level engine that executes kernel IR over the
//!   `dws-mem` hierarchy under a chosen policy,
//! * [`WpuStats`] — everything the paper's figures need, from per-thread
//!   miss maps (Figure 14) to divergence characterization (Table 1).

mod exec;
pub mod group;
pub mod mask;
pub mod policy;
pub mod regfile;
pub mod stats;
pub mod trace;
pub mod warp;
pub mod wpu;
pub mod wst;

pub use group::{Group, GroupId, GroupStatus};
pub use mask::Mask;
pub use policy::{BranchHandling, DwsConfig, MemSplit, Policy, ReconvMode, SlipConfig};
pub use regfile::{LaneView, RegFile};
pub use stats::WpuStats;
pub use trace::{TraceEvent, Tracer};
pub use warp::{Frame, Warp};
pub use wpu::{MemPorts, TickClass, Wpu, WpuConfig};
pub use wst::WstAccounting;
