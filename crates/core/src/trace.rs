//! Optional divergence-event tracing.
//!
//! When enabled on a [`crate::Wpu`], every subdivision, re-convergence and
//! barrier event is recorded into a bounded ring buffer — the execution
//! story behind the aggregate counters, useful for debugging policies and
//! for teaching (the trace of Figure 6's example can be read directly).
//!
//! Tracing is off by default and costs nothing when disabled.

use crate::mask::Mask;
use dws_engine::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// One recorded divergence event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A warp subdivided at a divergent branch.
    BranchSplit {
        /// Cycle of the event.
        cycle: Cycle,
        /// Warp index.
        warp: usize,
        /// PC of the branch.
        pc: usize,
        /// Threads that kept executing.
        run_mask: Mask,
        /// Threads parked as the sibling split.
        park_mask: Mask,
    },
    /// A warp subdivided at a memory divergence (at issue).
    MemSplit {
        /// Cycle of the event.
        cycle: Cycle,
        /// Warp index.
        warp: usize,
        /// PC after the memory instruction.
        pc: usize,
        /// Lanes that hit and run ahead.
        hit_mask: Mask,
        /// Lanes left waiting on misses.
        miss_mask: Mask,
    },
    /// ReviveSplit released arrived threads of a suspended group.
    Revive {
        /// Cycle of the event.
        cycle: Cycle,
        /// Warp index.
        warp: usize,
        /// Resume PC.
        pc: usize,
        /// Threads revived to run ahead.
        mask: Mask,
    },
    /// Two splits re-united on a PC match.
    PcMerge {
        /// Cycle of the event.
        cycle: Cycle,
        /// Warp index.
        warp: usize,
        /// The common PC.
        pc: usize,
        /// Mask after the union.
        mask: Mask,
    },
    /// Splits re-united at a stack post-dominator or BranchLimited barrier.
    StackMerge {
        /// Cycle of the event.
        cycle: Cycle,
        /// Warp index.
        warp: usize,
        /// The re-convergence PC.
        pc: usize,
        /// Mask after the union.
        mask: Mask,
    },
    /// All live threads arrived; the global barrier released.
    BarrierRelease {
        /// Cycle of the event.
        cycle: Cycle,
    },
}

impl TraceEvent {
    /// The cycle the event occurred.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::BranchSplit { cycle, .. }
            | TraceEvent::MemSplit { cycle, .. }
            | TraceEvent::Revive { cycle, .. }
            | TraceEvent::PcMerge { cycle, .. }
            | TraceEvent::StackMerge { cycle, .. }
            | TraceEvent::BarrierRelease { cycle } => cycle,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::BranchSplit {
                cycle,
                warp,
                pc,
                run_mask,
                park_mask,
            } => write!(
                f,
                "[{cycle:>8}] warp {warp} branch-split @pc {pc}: run {run_mask} park {park_mask}"
            ),
            TraceEvent::MemSplit {
                cycle,
                warp,
                pc,
                hit_mask,
                miss_mask,
            } => write!(
                f,
                "[{cycle:>8}] warp {warp} mem-split    @pc {pc}: hits {hit_mask} miss {miss_mask}"
            ),
            TraceEvent::Revive {
                cycle,
                warp,
                pc,
                mask,
            } => {
                write!(f, "[{cycle:>8}] warp {warp} revive       @pc {pc}: {mask}")
            }
            TraceEvent::PcMerge {
                cycle,
                warp,
                pc,
                mask,
            } => {
                write!(f, "[{cycle:>8}] warp {warp} pc-merge     @pc {pc}: {mask}")
            }
            TraceEvent::StackMerge {
                cycle,
                warp,
                pc,
                mask,
            } => {
                write!(f, "[{cycle:>8}] warp {warp} stack-merge  @pc {pc}: {mask}")
            }
            TraceEvent::BarrierRelease { cycle } => {
                write!(f, "[{cycle:>8}] barrier released")
            }
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer that retains the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tracer {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest when full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(c: u64) -> TraceEvent {
        TraceEvent::BarrierRelease { cycle: Cycle(c) }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::new(3);
        for c in 0..5 {
            t.record(ev(c));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle().raw()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_is_informative() {
        let e = TraceEvent::MemSplit {
            cycle: Cycle(42),
            warp: 1,
            pc: 7,
            hit_mask: Mask(0b0011),
            miss_mask: Mask(0b1100),
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("mem-split") && s.contains("7"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        Tracer::new(0);
    }
}
