//! The warp processing unit: cycle-level execution of kernel IR over the
//! cache hierarchy under a configurable divergence policy.
//!
//! One [`Wpu::tick`] models one WPU clock: at most one warp instruction
//! issues across the active lanes of the selected SIMD group. The scheduler
//! switches groups on every D-cache access with zero switch cost (the
//! paper's Section 3.3), groups stall on misses, and the configured
//! [`Policy`] decides when warps subdivide and when splits re-converge.

use crate::exec;
use crate::group::{Group, GroupId, GroupStatus};
use crate::mask::Mask;
use crate::policy::{BranchHandling, MemSplit, Policy, ReconvMode};
use crate::stats::WpuStats;
use crate::trace::{TraceEvent, Tracer};
use crate::warp::{Frame, Warp};
use crate::wst::WstAccounting;
use dws_engine::fault::{FaultInjector, FaultPlan};
use dws_engine::{Component, Cycle, FastHashMap, Phase, ReadyRing, WakeHeap};
use dws_isa::cfg::RECONV_NONE;
use dws_isa::{execute_lane, CondOp, ExecOp, MemoryAccess, Program, Reg, Src, StepOutcome};
use dws_mem::{
    AccessKind, AccessOutcome, CacheArray, CacheConfig, LaneAccess, MemorySystem, MesiState,
    RequestId,
};
use std::sync::Arc;

/// Static configuration of one WPU.
#[derive(Debug, Clone, Copy)]
pub struct WpuConfig {
    /// WPU index (also its L1 index in the memory system).
    pub id: usize,
    /// SIMD width (lanes per warp).
    pub width: usize,
    /// Warps per WPU (multi-threading depth).
    pub n_warps: usize,
    /// Scheduling policy.
    pub policy: Policy,
    /// Scheduler slots; groups beyond this sit idle until a slot frees
    /// (paper Section 6.6). The paper doubles the conventional count.
    pub sched_slots: usize,
    /// Warp-split table entries (paper Section 6.7; 16 by default).
    pub wst_entries: usize,
    /// Geometry of the WPU-local L1 instruction cache. The array lives in
    /// the WPU (not the shared memory system) so the parallel compute
    /// phase can probe it without synchronization; only miss fill latency
    /// goes through the shared crossbar/L2 model, at commit time.
    pub l1i: CacheConfig,
}

impl WpuConfig {
    /// The paper's Table 3 WPU: 16-wide, 4 warps, 8 scheduler slots,
    /// 16 WST entries, 16 KB L1-I.
    pub fn paper(id: usize, policy: Policy) -> Self {
        WpuConfig {
            id,
            width: 16,
            n_warps: 4,
            policy,
            sched_slots: 8,
            wst_entries: 16,
            l1i: CacheConfig::paper_l1i(),
        }
    }
}

/// What a WPU did in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickClass {
    /// Issued (or structurally retried) an instruction.
    Busy,
    /// Stalled with at least one group waiting on memory.
    StallMem,
    /// Stalled for another reason (barrier, re-convergence, drained).
    Idle,
    /// All threads have terminated.
    Done,
}

/// Effect of pre-issue bookkeeping on a candidate group.
enum PreIssue {
    /// Group may execute the instruction at its PC.
    Execute,
    /// A zero-cost state transition happened (stack pop / merge / wait);
    /// pick another group this same cycle.
    Redirect,
}

/// Where an issue routes its shared-memory-system interaction.
///
/// `Direct` is the serial engine: the issue talks to the memory system
/// immediately. `Defer` is the parallel compute phase: the shared system
/// is off-limits, so the first memory interaction suspends the tick as a
/// [`PendingIssue`] for the commit phase to resume. Everything up to that
/// point is WPU-local and identical between the two, which is what makes
/// compute-in-parallel / commit-in-order bit-identical to serial ticking.
enum MemPort<'a> {
    Direct(&'a mut MemorySystem, &'a mut dyn MemoryAccess),
    Defer,
}

/// Result of one execute attempt inside the issue loop.
enum ExecResult {
    /// An instruction issued; the cycle is busy.
    Issued,
    /// Structural retry (MSHR-full, I-fetch miss): the group was pushed
    /// back; try another group this same cycle.
    Retry,
    /// Deferred mode reached a memory interaction; the tick is parked in
    /// [`Wpu::pending_issue`] until [`Wpu::tick_commit`] resumes it.
    Suspend,
}

/// How the issue loop ended.
enum IssueOutcome {
    /// An instruction issued this cycle.
    Issued,
    /// The tick suspended at a memory interaction (deferred mode only).
    Suspended,
    /// No candidate group could issue; the cycle is a stall.
    Exhausted,
}

/// The memory interaction a suspended compute phase parked, resumed in
/// WPU-index order by [`Wpu::tick_commit`]. Only the group identity is
/// recorded: the group's own state (PC, mask) is untouched between
/// suspension and resume, so the commit re-derives everything else and
/// replays the exact serial path.
#[derive(Debug, Clone, Copy)]
enum PendingIssue {
    /// An I-cache miss: the line is already installed locally; the fill
    /// latency still needs the shared crossbar/L2 model.
    IcacheFill { gid: GroupId },
    /// A load/store about to probe the shared L1/MSHR state.
    MemAccess { gid: GroupId },
}

/// Adaptive-slip controller state.
#[derive(Debug, Clone, Copy)]
struct SlipCtl {
    max_div: u32,
    last_adapt: Cycle,
    busy_snapshot: u64,
    stall_snapshot: u64,
}

/// Adaptive subdivision throttle (the future-work extension): duty-cycle
/// dueling. The controller alternates short probe intervals with
/// subdivision enabled and disabled, measures actual progress (thread
/// instructions retired per cycle) in each, then commits to the winner
/// for several intervals before re-probing — the set-dueling idea applied
/// to the subdivision decision the paper says needs "foreknowledge or
/// speculation" (Section 5.2).
#[derive(Debug, Clone, Copy)]
struct ThrottleCtl {
    split_enabled: bool,
    phase: ThrottlePhase,
    last_adapt: Cycle,
    insts_snapshot: u64,
    probe_on_ipc: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThrottlePhase {
    /// Measuring progress with subdivision enabled.
    ProbeOn,
    /// Splits disabled, existing fragments re-merging; not measured.
    DrainOff,
    /// Measuring progress with subdivision disabled.
    ProbeOff,
    /// Committed to the winning setting for N more intervals.
    Committed(u8),
}

/// Length of one probe/commit interval, in cycles.
const THROTTLE_INTERVAL: u64 = 20_000;
/// Number of intervals to stay committed before re-probing.
const THROTTLE_COMMIT: u8 = 6;
/// Hysteresis: the probe winner must beat the loser by this factor.
const THROTTLE_MARGIN: f64 = 1.02;

/// Reusable buffers for [`Wpu::tick`]'s issue loop, so steady-state
/// execution performs no per-cycle heap allocation. Capacity is bounded by
/// the SIMD width (one entry per lane).
#[derive(Default)]
struct IssueScratch {
    /// Decoded per-lane outcomes of the issuing memory instruction.
    ops: Vec<(usize, StepOutcome)>,
    /// The lane accesses handed to the memory system.
    accesses: Vec<LaneAccess>,
    /// Outcomes written back by `MemorySystem::warp_access_into`.
    outcomes: Vec<dws_mem::LaneOutcome>,
    /// Distinct lines missed by the current warp access.
    miss_lines: Vec<u64>,
}

/// A warp processing unit.
pub struct Wpu {
    cfg: WpuConfig,
    program: Arc<Program>,
    warps: Vec<Warp>,
    groups: Vec<Option<Group>>,
    next_seq: u64,
    wst: WstAccounting,
    current: Option<GroupId>,
    rr_cursor: usize,
    req_map: FastHashMap<RequestId, (usize, usize)>,
    live_threads: u64,
    slip: SlipCtl,
    throttle: ThrottleCtl,
    tracer: Option<Tracer>,
    scratch: IssueScratch,
    /// Recycled local-stack storage: split paths pop a spare `Vec<Frame>`
    /// here instead of allocating, and dead groups return theirs, so group
    /// churn is heap-quiet once the pool has warmed up.
    frame_pool: Vec<Vec<Frame>>,
    /// Min ready time over slotted ready groups, maintained from the
    /// pending heap at the end of every stalled [`tick`](Self::tick) (see
    /// [`cached_next_wake`](Self::cached_next_wake)).
    next_wake: Option<Cycle>,
    /// Issuable groups (slotted, `Ready`, `ready_at` reached), indexed by
    /// slab position so [`ReadyRing::next_from`] reproduces the round-robin
    /// order of the slab scan it replaced.
    ready: ReadyRing,
    /// Slotted ready groups whose `ready_at` is still in the future. Each
    /// entry carries `(slab index, stamp)`; entries whose stamp no longer
    /// matches [`SchedSlot::stamp`] are stale and dropped when popped.
    pending: WakeHeap<(usize, u64)>,
    /// Per-slab-slot scheduler bookkeeping, parallel to `groups`.
    sched: Vec<SchedSlot>,
    /// Live slotted groups (== the old `slots_in_use` scan).
    n_slotted: usize,
    /// Live slotted groups with status `Ready`.
    n_slotted_ready: usize,
    /// Live groups waiting on memory (`WaitMem` or `SlipSuspended`).
    n_wait_mem: usize,
    /// Lanes parked at the global barrier (== the old `barrier_waiting`
    /// scan).
    barrier_lanes: u64,
    /// Test hook: route picks through the reference slab scan instead of
    /// the ready ring (the indexes are still maintained either way).
    use_scan_scheduler: bool,
    /// Execute through the predecoded warp-wide µop kernels (the default).
    /// Off routes every lane through the legacy per-lane interpreter —
    /// kept as the differential oracle, like `use_scan_scheduler`.
    use_uop_engine: bool,
    /// Cross-check fast paths against their oracles (scheduler-index sync,
    /// µop-vs-interpreter agreement) — always on in debug builds, and on
    /// in release under `DWS_SANITIZE=1`; latched at construction.
    check_oracle: bool,
    /// Deterministic timing-fault injection; `None` outside chaos runs.
    fault: Option<FaultInjector>,
    /// The WPU-local L1 instruction cache (paper Table 3). Lives here —
    /// not in the shared [`MemorySystem`] — so the parallel compute phase
    /// can probe and fill it without touching shared state.
    icache: CacheArray,
    /// `log2(l1i.line_bytes)` when that is a power of two, so the
    /// PC-to-line conversion is a shift instead of a 64-bit divide.
    l1i_shift: Option<u32>,
    /// I-fetch / I-miss counts, merged into the machine-wide memory stats
    /// by result collection (see [`Self::icache_counters`]).
    l1i_fetches: u64,
    l1i_misses: u64,
    /// The memory interaction a suspended [`tick_compute`]
    /// (Self::tick_compute) parked for [`tick_commit`](Self::tick_commit).
    pending_issue: Option<PendingIssue>,
    /// Per-PC verifier classification: `true` where the instruction is a
    /// conditional branch whose condition provably does not depend on the
    /// thread id (so lanes at the same spine position agree). See
    /// `dws_isa::verify::branch_uniformity`.
    uniform_branch: Vec<bool>,
    /// Per-PC: the branch is uniform *and* on the uniform spine — retired
    /// occurrences advance [`Group::spine_trips`].
    spine_branch: Vec<bool>,
    /// Per-warp sticky poison: set when a merge united groups with unequal
    /// [`Group::spine_trips`] (lanes with different spine histories now
    /// share a register file view, so "uniform" registers may differ per
    /// lane). Disables the uniform-branch fast path for that warp.
    uniform_poisoned: Vec<bool>,
    /// Let the scheduler consume the uniformity classification: uniform
    /// branches evaluate one representative lane instead of the full warp
    /// and can never diverge. Cycle-identical by construction (the taken
    /// mask is provably warp-wide either way); on by default, with the
    /// differential test pinning the equivalence.
    use_uniform_hints: bool,
    /// Statistics for this WPU.
    pub stats: WpuStats,
}

/// Scheduler-index bookkeeping for one slab slot.
#[derive(Debug, Clone, Copy, Default)]
struct SchedSlot {
    /// The contribution this slot currently makes to the scheduler indexes
    /// and counters (`None` while the slot is empty). [`Wpu::resched`]
    /// diffs the group's live state against this to update incrementally.
    key: Option<SchedKey>,
    /// Bumped whenever the slot's heap membership changes; pending-heap
    /// entries carrying an older stamp are stale. Never reset, so slab
    /// index reuse cannot resurrect them.
    stamp: u64,
}

/// The slice of group state the scheduler indexes depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SchedKey {
    slotted: bool,
    status: GroupStatus,
    lanes: u32,
    ready_at: Cycle,
}

impl SchedKey {
    /// The part that decides ring/heap membership; `lanes` only feeds the
    /// barrier counter, so mask-only changes skip the index churn.
    fn membership(self) -> (bool, GroupStatus, Cycle) {
        (self.slotted, self.status, self.ready_at)
    }
}

impl std::fmt::Debug for Wpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wpu")
            .field("id", &self.cfg.id)
            .field("live_threads", &self.live_threads)
            .field("groups", &self.groups.iter().flatten().count())
            .finish()
    }
}

impl Wpu {
    /// Creates a WPU whose warp `w`, lane `l` runs global thread
    /// `base_tid + w * width + l`, out of `nthreads` total.
    ///
    /// # Panics
    ///
    /// Panics on a zero-width/zero-warp configuration.
    pub fn new(cfg: WpuConfig, program: Arc<Program>, base_tid: u64, nthreads: u64) -> Self {
        assert!(cfg.width >= 1 && cfg.n_warps >= 1);
        let uniformity = dws_isa::verify::branch_uniformity(program.insts());
        let mut wpu = Wpu {
            warps: Vec::new(),
            groups: Vec::new(),
            next_seq: 0,
            wst: WstAccounting::new(cfg.n_warps, cfg.wst_entries),
            current: None,
            rr_cursor: 0,
            req_map: FastHashMap::default(),
            live_threads: (cfg.width * cfg.n_warps) as u64,
            slip: SlipCtl {
                max_div: cfg.width as u32,
                last_adapt: Cycle::ZERO,
                busy_snapshot: 0,
                stall_snapshot: 0,
            },
            throttle: ThrottleCtl {
                split_enabled: true,
                phase: ThrottlePhase::ProbeOn,
                last_adapt: Cycle::ZERO,
                insts_snapshot: 0,
                probe_on_ipc: 0.0,
            },
            tracer: None,
            scratch: IssueScratch::default(),
            frame_pool: Vec::new(),
            next_wake: None,
            ready: ReadyRing::new(),
            pending: WakeHeap::new(),
            sched: Vec::new(),
            n_slotted: 0,
            n_slotted_ready: 0,
            n_wait_mem: 0,
            barrier_lanes: 0,
            use_scan_scheduler: false,
            use_uop_engine: true,
            check_oracle: cfg!(debug_assertions) || dws_engine::sanitize::enabled(),
            fault: None,
            icache: CacheArray::new(&cfg.l1i),
            l1i_shift: cfg
                .l1i
                .line_bytes
                .is_power_of_two()
                .then(|| cfg.l1i.line_bytes.trailing_zeros()),
            l1i_fetches: 0,
            l1i_misses: 0,
            pending_issue: None,
            uniform_branch: uniformity.uniform,
            spine_branch: uniformity.spine,
            uniform_poisoned: vec![false; cfg.n_warps],
            use_uniform_hints: true,
            stats: WpuStats::default(),
            program: Arc::clone(&program),
            cfg,
        };
        for w in 0..cfg.n_warps {
            wpu.warps.push(Warp::new(
                w,
                cfg.width,
                base_tid + (w * cfg.width) as u64,
                nthreads,
                &program,
            ));
            let gid = wpu.spawn_group(w, 0, Mask::full(cfg.width));
            wpu.try_slot(gid);
        }
        wpu
    }

    /// The WPU's configuration.
    pub fn config(&self) -> &WpuConfig {
        &self.cfg
    }

    /// Enables divergence-event tracing, retaining the most recent
    /// `capacity` events (see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    #[inline]
    fn trace(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t.record(event);
        }
    }

    /// Whether every thread has terminated.
    pub fn done(&self) -> bool {
        self.live_threads == 0
    }

    /// Threads that have not yet halted.
    pub fn live_threads(&self) -> u64 {
        self.live_threads
    }

    /// Threads currently stalled at a global barrier.
    pub fn barrier_waiting(&self) -> u64 {
        self.barrier_lanes
    }

    /// Test hook: route group selection through the reference slab scan
    /// instead of the ready ring. The indexes are maintained either way,
    /// so the oracle property test can compare full-run behavior.
    #[doc(hidden)]
    pub fn set_scan_scheduler(&mut self, on: bool) {
        self.use_scan_scheduler = on;
    }

    /// Test hook: route execution through the legacy per-lane interpreter
    /// (`off`) instead of the predecoded warp-wide µop kernels (`on`, the
    /// default). Both paths are bit-identical; debug builds additionally
    /// cross-check the µop engine against the per-lane oracle on every
    /// executed instruction.
    #[doc(hidden)]
    pub fn set_uop_engine(&mut self, on: bool) {
        self.use_uop_engine = on;
    }

    /// Test hook: disable the verifier-uniformity branch fast path (on by
    /// default). Both settings are cycle- and result-identical; the
    /// differential test pins the equivalence and that the warp-split
    /// table peak never increases with the hints on.
    #[doc(hidden)]
    pub fn set_uniform_hints(&mut self, on: bool) {
        self.use_uniform_hints = on;
    }

    /// Arms deterministic fault injection (wake jitter, scheduler-heap
    /// churn). Each WPU draws from its own stream, salted by its id; a
    /// zero-fault plan installs nothing and leaves timing untouched.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan.injector(0x5750_5500 + self.cfg.id as u64);
    }

    /// Whether any thread is blocked on an outstanding memory request.
    pub fn any_mem_pending(&self) -> bool {
        !self.req_map.is_empty()
    }

    /// Live SIMD groups (full warps and splits).
    pub fn groups_alive(&self) -> usize {
        self.groups.iter().flatten().count()
    }

    /// Peak warp-split table occupancy observed.
    pub fn wst_peak(&self) -> usize {
        self.wst.peak()
    }

    /// Current warp-split table occupancy (diagnostics).
    pub fn wst_used(&self) -> usize {
        self.wst.used()
    }

    /// Warp-split table capacity (diagnostics).
    pub fn wst_capacity(&self) -> usize {
        self.wst.capacity()
    }

    /// The earliest future cycle at which a currently-ready group becomes
    /// issuable, if any. Together with the memory system's next completion
    /// time, this lets the run loop skip over fully-stalled stretches.
    pub fn next_wake_at(&self, now: Cycle) -> Option<Cycle> {
        self.groups
            .iter()
            .flatten()
            .filter(|g| g.slotted && g.status == GroupStatus::Ready)
            .map(|g| g.ready_at.max(now))
            .min()
    }

    /// The wake time computed by the most recent stalled
    /// [`tick`](Self::tick), without rescanning the group list. Only
    /// meaningful directly after a tick that returned
    /// [`TickClass::StallMem`], [`TickClass::Idle`] or [`TickClass::Done`]:
    /// a `Busy` tick leaves the cache stale (the run loop never consults it
    /// then), and any event delivered after the tick (a completion, a
    /// barrier release) invalidates it until the next tick.
    pub fn cached_next_wake(&self) -> Option<Cycle> {
        self.next_wake
    }

    /// The next cycle at which an adaptive controller (the slip interval,
    /// the subdivision throttle) must observe this WPU, if any. The run
    /// loops guarantee a tick at or before this cycle, so event-driven
    /// sleeping never skips an adaptation boundary — which is what lets
    /// adaptive policies run without per-cycle lockstep. Non-adaptive
    /// policies (and finished WPUs) impose no cadence.
    pub fn next_adapt_boundary(&self) -> Option<Cycle> {
        if self.done() {
            return None;
        }
        match self.cfg.policy {
            Policy::Slip(sc) => Some(self.slip.last_adapt + sc.interval),
            Policy::Dws(c) if c.adaptive_throttle => {
                Some(self.throttle.last_adapt + THROTTLE_INTERVAL)
            }
            _ => None,
        }
    }

    /// I-fetch counters `(fetches, misses)` of the WPU-local L1-I, merged
    /// into the machine-wide memory statistics by result collection.
    pub fn icache_counters(&self) -> (u64, u64) {
        (self.l1i_fetches, self.l1i_misses)
    }

    /// Accounts `n` additional stall cycles of the same class as the last
    /// tick (used when the run loop skips ahead over a stalled stretch).
    pub fn account_skipped_stall(&mut self, n: u64, class: TickClass) {
        match class {
            TickClass::StallMem => self.stats.mem_stall_cycles.add(n),
            TickClass::Idle => self.stats.idle_cycles.add(n),
            TickClass::Busy | TickClass::Done => {}
        }
    }

    /// Per-thread D-cache miss counts, indexed `[warp][lane]` (Figure 14).
    pub fn per_thread_misses(&self) -> Vec<Vec<u64>> {
        self.warps
            .iter()
            .map(|w| w.threads.iter().map(|t| t.miss_count).collect())
            .collect()
    }

    // ---- scheduler indexes --------------------------------------------------

    /// Re-indexes group `gid` after a mutation of its scheduling state
    /// (`slotted`, `status`, `ready_at`, or — for groups parked at a
    /// barrier — `mask`). Diffs the live state against the cached
    /// [`SchedKey`] and incrementally updates the counters, the ready
    /// ring, and the pending heap; superseded heap entries are invalidated
    /// by stamp. Mask-only changes in other states may be reported lazily:
    /// the cached contribution is what gets retracted, so the counters
    /// stay consistent either way.
    fn resched(&mut self, gid: GroupId) {
        let i = gid.0;
        let new = self.groups[i].as_ref().map(|g| SchedKey {
            slotted: g.slotted,
            status: g.status,
            lanes: g.mask.count(),
            ready_at: g.ready_at,
        });
        let old = self.sched[i].key;
        if new == old {
            return;
        }
        if let Some(k) = old {
            if k.slotted {
                self.n_slotted -= 1;
                if k.status == GroupStatus::Ready {
                    self.n_slotted_ready -= 1;
                }
            }
            match k.status {
                GroupStatus::WaitMem | GroupStatus::SlipSuspended => self.n_wait_mem -= 1,
                GroupStatus::WaitBarrier => self.barrier_lanes -= u64::from(k.lanes),
                _ => {}
            }
        }
        if let Some(k) = new {
            if k.slotted {
                self.n_slotted += 1;
                if k.status == GroupStatus::Ready {
                    self.n_slotted_ready += 1;
                }
            }
            match k.status {
                GroupStatus::WaitMem | GroupStatus::SlipSuspended => self.n_wait_mem += 1,
                GroupStatus::WaitBarrier => self.barrier_lanes += u64::from(k.lanes),
                _ => {}
            }
        }
        if new.map(SchedKey::membership) != old.map(SchedKey::membership) {
            self.ready.remove(i);
            self.sched[i].stamp += 1;
            if let Some(k) = new {
                if k.slotted && k.status == GroupStatus::Ready {
                    self.pending.push(k.ready_at, (i, self.sched[i].stamp));
                }
            }
        }
        self.sched[i].key = new;
    }

    /// Surfaces pending-heap entries that have come due into the ready
    /// ring, dropping entries a later [`resched`](Self::resched)
    /// invalidated.
    fn surface_ready(&mut self, now: Cycle) {
        loop {
            let Some((at, &(i, stamp))) = self.pending.peek() else {
                return;
            };
            if at > now {
                return;
            }
            self.pending.pop();
            if self.sched[i].stamp == stamp {
                self.ready.insert(i);
            }
        }
    }

    /// Recomputes `next_wake` from the pending heap, popping stale
    /// entries off the top. Called at the end of every stalled tick, when
    /// the ready ring is empty — every slotted ready group then has a live
    /// pending entry at a strictly future cycle, so the heap minimum is
    /// exactly the old fused-scan wake time.
    fn refresh_next_wake(&mut self) {
        loop {
            match self.pending.peek() {
                Some((at, &(i, stamp))) => {
                    if self.sched[i].stamp == stamp {
                        self.next_wake = Some(at);
                        return;
                    }
                    self.pending.pop();
                }
                None => {
                    self.next_wake = None;
                    return;
                }
            }
        }
    }

    /// Re-enqueues every slotted ready group waiting in the pending heap
    /// under a fresh stamp, orphaning the old entries as stale. Only
    /// called when the ready ring is empty, so each such group has exactly
    /// one live entry; its wake time is preserved, making the churn
    /// timing-invisible.
    fn churn_pending_heap(&mut self) {
        for i in 0..self.groups.len() {
            let Some(k) = self.sched[i].key else { continue };
            if k.slotted && k.status == GroupStatus::Ready && !self.ready.contains(i) {
                self.sched[i].stamp += 1;
                self.pending.push(k.ready_at, (i, self.sched[i].stamp));
            }
        }
    }

    /// Invariant check (debug builds and `DWS_SANITIZE=1`): the
    /// incremental counters, the ready ring, and the cached wake time must
    /// agree with a fresh slab scan.
    fn assert_sched_sync(&self, now: Cycle) {
        let mut n_slotted = 0;
        let mut n_slotted_ready = 0;
        let mut n_wait_mem = 0;
        let mut barrier_lanes = 0u64;
        for g in self.groups.iter().flatten() {
            if g.slotted {
                n_slotted += 1;
                if g.status == GroupStatus::Ready {
                    n_slotted_ready += 1;
                }
            }
            match g.status {
                GroupStatus::WaitMem | GroupStatus::SlipSuspended => n_wait_mem += 1,
                GroupStatus::WaitBarrier => barrier_lanes += u64::from(g.mask.count()),
                _ => {}
            }
        }
        assert_eq!(self.n_slotted, n_slotted, "n_slotted drift at {now}");
        assert_eq!(
            self.n_slotted_ready, n_slotted_ready,
            "n_slotted_ready drift at {now}"
        );
        assert_eq!(self.n_wait_mem, n_wait_mem, "n_wait_mem drift at {now}");
        assert_eq!(
            self.barrier_lanes, barrier_lanes,
            "barrier_lanes drift at {now}"
        );
        for i in 0..self.groups.len() {
            if self.ready.contains(i) {
                assert!(
                    self.groups[i].as_ref().is_some_and(|g| g.issuable(now)),
                    "ready ring holds non-issuable group {i} at {now}"
                );
            }
        }
        assert_eq!(
            self.next_wake,
            self.next_wake_at(now),
            "next_wake drift at {now}"
        );
    }

    // ---- group slab ---------------------------------------------------------

    fn spawn_group(&mut self, warp: usize, pc: usize, mask: Mask) -> GroupId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut g = Group::new(warp, pc, mask, seq);
        if let Some(stack) = self.frame_pool.pop() {
            g.local_stack = stack;
        }
        self.wst.on_group_created(warp);
        let gid = match self.groups.iter().position(Option::is_none) {
            Some(i) => {
                self.groups[i] = Some(g);
                GroupId(i)
            }
            None => {
                self.groups.push(Some(g));
                GroupId(self.groups.len() - 1)
            }
        };
        if self.sched.len() < self.groups.len() {
            self.sched.resize(self.groups.len(), SchedSlot::default());
        }
        self.ready.grow_to(self.groups.len());
        self.resched(gid);
        gid
    }

    fn kill_group(&mut self, gid: GroupId) {
        let mut g = self.groups[gid.0].take().expect("kill of dead group");
        self.resched(gid);
        let mut stack = std::mem::take(&mut g.local_stack);
        if stack.capacity() > 0 {
            stack.clear();
            self.frame_pool.push(stack);
        }
        self.wst.on_group_removed(g.warp);
        if self.current == Some(gid) {
            self.current = None;
        }
        if g.slotted {
            self.promote_slot();
        }
        // A slip run-ahead stalled at a branch resumes once it is the last
        // group standing (every fall-behind merged or terminated).
        if self.wst.groups_of(g.warp) == 1 {
            let last = self
                .groups
                .iter()
                .enumerate()
                .find(|(_, x)| {
                    x.as_ref()
                        .map(|x| x.warp == g.warp && x.status == GroupStatus::SlipStalledAtBranch)
                        .unwrap_or(false)
                })
                .map(|(i, _)| GroupId(i));
            if let Some(last) = last {
                {
                    let l = self.group_mut(last);
                    l.status = GroupStatus::Ready;
                    l.slip_catchup = false;
                }
                self.resched(last);
                self.try_slot(last);
            }
        }
    }

    fn group(&self, gid: GroupId) -> &Group {
        self.groups[gid.0].as_ref().expect("live group")
    }

    fn group_mut(&mut self, gid: GroupId) -> &mut Group {
        self.groups[gid.0].as_mut().expect("live group")
    }

    fn slots_in_use(&self) -> usize {
        self.n_slotted
    }

    fn try_slot(&mut self, gid: GroupId) -> bool {
        if self.group(gid).slotted {
            return true;
        }
        if self.slots_in_use() < self.cfg.sched_slots {
            self.group_mut(gid).slotted = true;
            self.resched(gid);
            true
        } else {
            false
        }
    }

    fn release_slot(&mut self, gid: GroupId) {
        if self.group(gid).slotted {
            self.group_mut(gid).slotted = false;
            self.resched(gid);
            self.promote_slot();
        }
    }

    /// Grants the freed slot to the oldest unslotted group that can use it.
    /// Groups parked at synchronization points (barriers, re-convergence,
    /// slip suspension) gave their slot up on purpose and re-acquire one
    /// when they wake; promoting them would starve runnable groups.
    fn promote_slot(&mut self) {
        if self.slots_in_use() >= self.cfg.sched_slots {
            return;
        }
        let candidate = self
            .groups
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (i, g)))
            .filter(|(_, g)| {
                !g.slotted && matches!(g.status, GroupStatus::Ready | GroupStatus::WaitMem)
            })
            .min_by_key(|(_, g)| g.seq)
            .map(|(i, _)| i);
        if let Some(i) = candidate {
            self.groups[i].as_mut().expect("live").slotted = true;
            self.resched(GroupId(i));
        }
    }

    // ---- completions --------------------------------------------------------

    /// Delivers a memory-request completion (routed by the simulator).
    pub fn on_completion(&mut self, req: RequestId, at: Cycle) {
        let Some((warp, lane)) = self.req_map.remove(&req) else {
            panic!("completion for unknown request {req:?}");
        };
        self.warps[warp].threads[lane].pending = None;
        // Find the group owning this lane and re-evaluate its wait.
        let gid = self
            .groups
            .iter()
            .enumerate()
            .find(|(_, g)| {
                g.as_ref()
                    .map(|g| g.warp == warp && g.mask.contains(lane))
                    .unwrap_or(false)
            })
            .map(|(i, _)| GroupId(i));
        let Some(gid) = gid else {
            // The thread's group vanished (e.g. it halted) — nothing to wake.
            return;
        };
        let arrived = {
            let g = self.group(gid);
            self.warps[warp].arrived_lanes(g.mask) == g.mask
        };
        if !arrived {
            return;
        }
        let status = self.group(gid).status;
        match status {
            GroupStatus::WaitMem => {
                // Fault injection: jitter the wakeup. Timing-only — the
                // group still flows through resched and the pending heap.
                let jitter = self.fault.as_mut().map_or(0, FaultInjector::wake_jitter);
                let g = self.group_mut(gid);
                g.status = GroupStatus::Ready;
                g.ready_at = at + jitter;
                self.resched(gid);
                if self.dws_pc_based() {
                    self.try_pc_merge_at(gid, at);
                }
            }
            GroupStatus::SlipSuspended if self.group(gid).slip_catchup => {
                let jitter = self.fault.as_mut().map_or(0, FaultInjector::wake_jitter);
                let g = self.group_mut(gid);
                g.status = GroupStatus::Ready;
                g.ready_at = at + jitter;
                g.slip_pc = None;
                self.resched(gid);
                self.try_slot(gid);
            }
            _ => {}
        }
    }

    fn dws_pc_based(&self) -> bool {
        matches!(
            self.cfg.policy,
            Policy::Dws(c) if c.reconv == ReconvMode::PcBased
        )
    }

    // ---- the cycle ----------------------------------------------------------

    /// Advances the WPU by one cycle. `data` is the functional backing
    /// store shared by all WPUs. This is the serial engine — identical to
    /// running [`tick_compute`](Self::tick_compute) followed (when it
    /// suspends) by [`tick_commit`](Self::tick_commit), which is exactly
    /// what the parallel run loop does.
    pub fn tick(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        data: &mut dyn MemoryAccess,
    ) -> TickClass {
        match self.tick_phase(now, &mut MemPort::Direct(mem, data)) {
            Phase::Complete(class) => class,
            Phase::NeedsCommit => unreachable!("direct tick cannot suspend"),
        }
    }

    /// The parallel compute phase: advances the WPU by one cycle touching
    /// only WPU-local state (including its private L1-I). Returns
    /// [`Phase::NeedsCommit`] when the tick reaches a shared-memory-system
    /// interaction; the caller must then invoke
    /// [`tick_commit`](Self::tick_commit) — serially, in WPU-index order —
    /// to finish the cycle. Compute phases of different WPUs share no
    /// mutable state, so they may run concurrently.
    pub fn tick_compute(&mut self, now: Cycle) -> Phase<TickClass> {
        debug_assert!(self.pending_issue.is_none(), "compute with parked issue");
        self.tick_phase(now, &mut MemPort::Defer)
    }

    /// Finishes a suspended [`tick_compute`](Self::tick_compute): resumes
    /// the parked memory interaction against the shared system, then
    /// continues the issue loop in direct mode — replaying exactly what
    /// the serial [`tick`](Self::tick) would have done from that point.
    pub fn tick_commit(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        data: &mut dyn MemoryAccess,
    ) -> TickClass {
        let pending = self
            .pending_issue
            .take()
            .expect("tick_commit without a suspended compute phase");
        let resumed = match pending {
            PendingIssue::IcacheFill { gid } => self.resume_icache_fill(gid, now, mem, data),
            PendingIssue::MemAccess { gid } => {
                let pc = self.group(gid).pc;
                let op = *self.program.exec_op(pc);
                self.exec_memory(gid, pc, op, now, mem, data)
            }
        };
        match resumed {
            ExecResult::Issued => TickClass::Busy,
            ExecResult::Suspend => unreachable!("direct resume cannot suspend"),
            ExecResult::Retry => match self.issue_loop(now, &mut MemPort::Direct(mem, data)) {
                IssueOutcome::Issued => TickClass::Busy,
                IssueOutcome::Suspended => unreachable!("direct issue cannot suspend"),
                IssueOutcome::Exhausted => self.stall_postlude(now),
            },
        }
    }

    /// Resumes an I-cache miss parked by the compute phase: models the
    /// fill latency against the shared crossbar/L2 and either stalls the
    /// group until the line arrives or — for fills landing within the
    /// issue window — executes the fetched instruction directly.
    fn resume_icache_fill(
        &mut self,
        gid: GroupId,
        now: Cycle,
        mem: &mut MemorySystem,
        data: &mut dyn MemoryAccess,
    ) -> ExecResult {
        let fetch_ready = mem.icache_fill_latency(now);
        if fetch_ready > now + 1 {
            let g = self.group_mut(gid);
            g.ready_at = fetch_ready;
            self.resched(gid);
            self.current = None;
            return ExecResult::Retry;
        }
        let pc = self.group(gid).pc;
        self.execute_post_fetch(gid, pc, now, &mut MemPort::Direct(mem, data))
    }

    /// One cycle through `port`: the done/adaptation prologue, the issue
    /// loop, and — when nothing issued — the stall postlude. Direct mode
    /// always completes; deferred mode suspends at the first shared-memory
    /// interaction.
    fn tick_phase(&mut self, now: Cycle, port: &mut MemPort<'_>) -> Phase<TickClass> {
        if self.done() {
            self.next_wake = None;
            return Phase::Complete(TickClass::Done);
        }
        self.adapt_slip(now);
        self.adapt_throttle(now);
        match self.issue_loop(now, port) {
            IssueOutcome::Issued => Phase::Complete(TickClass::Busy),
            IssueOutcome::Suspended => Phase::NeedsCommit,
            IssueOutcome::Exhausted => Phase::Complete(self.stall_postlude(now)),
        }
    }

    /// The issue half of a tick. Pre-issue transitions are zero-cost PC
    /// redirects; loop until an instruction issues or no candidate
    /// remains.
    fn issue_loop(&mut self, now: Cycle, port: &mut MemPort<'_>) -> IssueOutcome {
        let mut guard = 0;
        loop {
            guard += 1;
            if guard >= 10_000 {
                let dump: Vec<String> = self
                    .groups
                    .iter()
                    .flatten()
                    .map(|g| {
                        format!(
                            "warp={} pc={} mask={} status={:?} lrpc={:?} ldepth={} slot={}",
                            g.warp,
                            g.pc,
                            g.mask,
                            g.status,
                            g.local_rpc,
                            g.local_stack.len(),
                            g.slotted
                        )
                    })
                    .collect();
                panic!(
                    "pre-issue livelock at cycle {now}; groups:\n{}\nstacks: {:?}",
                    dump.join("\n"),
                    self.warps.iter().map(|w| &w.stack).collect::<Vec<_>>()
                );
            }
            let gid = match self.current {
                Some(gid)
                    if self.groups[gid.0]
                        .as_ref()
                        .map(|g| g.issuable(now))
                        .unwrap_or(false) =>
                {
                    gid
                }
                _ => {
                    self.current = None;
                    match self.pick_group(now) {
                        Some(g) => g,
                        None => break,
                    }
                }
            };
            self.current = Some(gid);
            match self.pre_issue(gid, now) {
                PreIssue::Redirect => {
                    if self.current == Some(gid)
                        && self.groups[gid.0]
                            .as_ref()
                            .map(|g| !g.issuable(now))
                            .unwrap_or(true)
                    {
                        self.current = None;
                    }
                }
                PreIssue::Execute => match self.execute(gid, now, port) {
                    ExecResult::Issued => return IssueOutcome::Issued,
                    ExecResult::Suspend => return IssueOutcome::Suspended,
                    // Structural stall (MSHR-full or I-fetch miss): the
                    // group was pushed back; try another this cycle.
                    ExecResult::Retry => {}
                },
            }
        }
        IssueOutcome::Exhausted
    }

    /// The stalled-cycle tail of a tick: revive splits, fault churn, stall
    /// classification, and the cached-wake refresh.
    fn stall_postlude(&mut self, now: Cycle) -> TickClass {
        // Nothing issuable: ReviveSplit may create a run-ahead split.
        if let Policy::Dws(c) = self.cfg.policy {
            if c.mem_split == Some(MemSplit::Revive) && !self.any_slotted_ready() {
                self.try_revive(now);
            }
        }
        if self.done() {
            self.next_wake = None;
            return TickClass::Done;
        }
        // Fault injection: churn the pending heap while it is quiescent,
        // leaving stale entries behind for the stamp-based invalidation
        // paths to drop. Wake times are unchanged, so this perturbs only
        // the index structures the nominal run never stresses this way.
        if let Some(f) = &mut self.fault {
            if f.sched_churn() {
                self.churn_pending_heap();
            }
        }
        // The incremental counters classify the stall, and the pending heap
        // yields the earliest wake time — no slab rescan. At this point the
        // ready ring is empty (pick_group returned None), so every slotted
        // ready group sits in the heap at a strictly future cycle.
        self.refresh_next_wake();
        if self.check_oracle {
            self.assert_sched_sync(now);
        }
        if self.n_wait_mem > 0 {
            self.stats.mem_stall_cycles.incr();
            TickClass::StallMem
        } else {
            self.stats.idle_cycles.incr();
            TickClass::Idle
        }
    }

    fn any_slotted_ready(&self) -> bool {
        self.n_slotted_ready > 0
    }

    /// Round-robin over slotted ready groups, via the ready ring. Pending
    /// groups whose wake time has come surface into the ring first; a
    /// debug-build oracle checks each pick against the slab scan this
    /// replaced.
    fn pick_group(&mut self, now: Cycle) -> Option<GroupId> {
        if self.use_scan_scheduler {
            return self.pick_group_scan(now);
        }
        self.surface_ready(now);
        let picked = self.ready.next_from(self.rr_cursor);
        if self.check_oracle {
            assert_eq!(
                picked.map(GroupId),
                self.scan_next_issuable(now),
                "ready ring diverged from slab scan at {now}"
            );
        }
        let i = picked?;
        self.rr_cursor = (i + 1) % self.groups.len();
        Some(GroupId(i))
    }

    /// The reference implementation `pick_group` replaced: a modular slab
    /// scan from the round-robin cursor. Kept as the oracle for the
    /// debug-build pick assertion and the randomized equivalence test.
    fn pick_group_scan(&mut self, now: Cycle) -> Option<GroupId> {
        self.surface_ready(now); // keep the ring in lockstep for the oracle
        let gid = self.scan_next_issuable(now)?;
        self.rr_cursor = (gid.0 + 1) % self.groups.len();
        Some(gid)
    }

    /// First issuable group at or after the round-robin cursor, by slab
    /// scan; does not advance the cursor.
    fn scan_next_issuable(&self, now: Cycle) -> Option<GroupId> {
        let n = self.groups.len();
        (0..n)
            .map(|off| (self.rr_cursor + off) % n)
            .find(|&i| self.groups[i].as_ref().is_some_and(|g| g.issuable(now)))
            .map(GroupId)
    }

    /// Zero-cost bookkeeping before issuing at the group's PC: local-stack
    /// pops, stack re-convergence, BranchLimited waits, slip interactions.
    fn pre_issue(&mut self, gid: GroupId, now: Cycle) -> PreIssue {
        // Innermost first: pop local serialization frames.
        if let Some(r) = self.group(gid).local_rpc {
            if self.group(gid).pc == r {
                self.pop_local(gid);
                return PreIssue::Redirect;
            }
        }

        let warp = self.group(gid).warp;

        // PC-based re-convergence: the running split re-unites with any
        // ready sibling whose PC (and serialization context) matches —
        // the WST's PC fields act as a small CAM. Checking at issue, not
        // only after memory instructions, is what lets an empty-path
        // branch split re-merge right after the short path finishes
        // (Figure 6's "re-united naturally without stalling").
        if self.dws_pc_based()
            && matches!(self.cfg.policy, Policy::Dws(c) if c.issue_pc_cam)
            && self.wst.groups_of(warp) > 1
        {
            let before = self.wst.groups_of(warp);
            self.try_pc_merge_at(gid, now);
            if self.wst.groups_of(warp) != before {
                return PreIssue::Redirect;
            }
        }

        // Slip catch-up: a group reaching the PC where its run-ahead
        // stalled merges into it (checked before stack handling so the
        // re-union happens even when that PC is a re-convergence point).
        if matches!(self.cfg.policy, Policy::Slip(_)) && self.group(gid).slip_catchup {
            let pc = self.group(gid).pc;
            if let Some(primary) = (0..self.groups.len()).map(GroupId).find(|&s| {
                s != gid
                    && self.groups[s.0].as_ref().is_some_and(|sg| {
                        sg.warp == warp
                            && sg.status == GroupStatus::SlipStalledAtBranch
                            && sg.pc == pc
                            && sg.local_ctx_compatible(self.group(gid))
                    })
            }) {
                // kill_group (via merge_into) wakes the primary once it is
                // the last group of the warp.
                self.merge_into(primary, gid, now);
                return PreIssue::Redirect;
            }
        }

        // Warp-stack re-convergence point.
        if self.group(gid).local_rpc.is_none() {
            if let Some(rpc) = self.warps[warp].tos().rpc {
                if self.group(gid).pc == rpc {
                    if self.wst.groups_of(warp) == 1 {
                        self.pop_warp_frame(gid);
                    } else if matches!(self.cfg.policy, Policy::Slip(_)) {
                        // Fall-behind threads can never arrive at the
                        // post-dominator on their own; park the run-ahead
                        // and let them catch up independently.
                        self.group_mut(gid).status = GroupStatus::SlipStalledAtBranch;
                        self.resched(gid);
                        self.release_slot(gid);
                        self.release_slip_catchups(warp, now);
                    } else {
                        self.group_mut(gid).status = GroupStatus::WaitReconv;
                        self.resched(gid);
                        self.release_slot(gid);
                        self.try_stack_merge(warp, now);
                    }
                    return PreIssue::Redirect;
                }
            }
        }

        let op = *self.program.exec_op(self.group(gid).pc);

        // BranchLimited: splits must re-unite before any conditional branch.
        if let Policy::Dws(c) = self.cfg.policy {
            if c.branch_handling == BranchHandling::BranchLimited
                && op.is_branch()
                && self.wst.groups_of(warp) > 1
                && self.group(gid).local_rpc.is_none()
            {
                self.group_mut(gid).status = GroupStatus::WaitReconv;
                self.resched(gid);
                self.release_slot(gid);
                self.try_stack_merge(warp, now);
                return PreIssue::Redirect;
            }
        }

        if let Policy::Slip(sc) = self.cfg.policy {
            // Fall-behind re-union: before the run-ahead executes a memory
            // instruction, completed fall-behind threads suspended at this
            // PC re-join it.
            if op.is_memory() && self.group(gid).slip_pc.is_none() {
                self.slip_merge_at(gid);
            }
            // Plain slip: the run-ahead may not cross a conditional branch
            // while threads are left behind.
            if !sc.branch_bypass
                && op.is_branch()
                && self.group(gid).slip_pc.is_none()
                && !self.group(gid).slip_catchup
                && self.has_slip_suspended(warp)
            {
                self.group_mut(gid).status = GroupStatus::SlipStalledAtBranch;
                self.resched(gid);
                self.release_slot(gid);
                self.release_slip_catchups(warp, now);
                return PreIssue::Redirect;
            }
        }

        PreIssue::Execute
    }

    /// Pops local serialization frames (conventional semantics) until a
    /// frame with live threads is adopted. Frames whose threads all halted
    /// — or were carved away by a memory-divergence split — are skipped.
    fn pop_local(&mut self, gid: GroupId) {
        let warp = self.group(gid).warp;
        let halted = self.warps[warp].halted;
        loop {
            let g = self.group_mut(gid);
            match g.local_stack.pop() {
                Some(f) => {
                    let live = f.mask - halted;
                    if !live.is_empty() {
                        g.pc = f.pc;
                        g.local_rpc = f.rpc;
                        g.mask = live;
                        return;
                    }
                    // Empty path frame: skip it entirely.
                }
                None => {
                    // Local context drained; continue at the join point
                    // (the PC that matched the old local rpc) at the outer
                    // level with the current mask.
                    g.local_rpc = None;
                    return;
                }
            }
        }
    }

    /// Splits a group's local-frame ownership: threads in `child_mask` move
    /// into `child` (cleared first, normally the sibling's pooled stack);
    /// the input keeps the rest (including any parked else-path threads).
    /// Keeps split halves from both resurrecting the same parked threads
    /// when they pop their join frames.
    fn partition_local_frames(frames: &mut [Frame], child_mask: Mask, child: &mut Vec<Frame>) {
        child.clear();
        child.extend(frames.iter().map(|f| Frame {
            pc: f.pc,
            rpc: f.rpc,
            mask: f.mask & child_mask,
        }));
        for f in frames.iter_mut() {
            f.mask = f.mask - child_mask;
        }
    }

    /// Conventional stack pop at the TOS re-convergence point (sole group).
    fn pop_warp_frame(&mut self, gid: GroupId) {
        let warp = self.group(gid).warp;
        loop {
            let w = &mut self.warps[warp];
            assert!(w.stack.len() > 1, "pop of root frame");
            w.stack.pop();
            let tos = *w.tos();
            let live = tos.mask - w.halted;
            if !live.is_empty() {
                let g = self.group_mut(gid);
                g.pc = tos.pc;
                g.mask = live;
                return;
            }
            if w.stack.len() == 1 {
                // Root drained: every thread halted under this frame.
                self.kill_group(gid);
                return;
            }
        }
    }

    /// Re-unites WaitReconv splits once they cover the TOS live mask.
    fn try_stack_merge(&mut self, warp: usize, now: Cycle) {
        // One scan gathers everything the decision needs (no candidate
        // list): the waiters' common PC, their mask union, and the oldest
        // waiter as survivor.
        let mut pc = None;
        let mut union = Mask::EMPTY;
        let mut survivor: Option<GroupId> = None;
        for (i, g) in self.groups.iter().enumerate() {
            let Some(g) = g else { continue };
            if g.warp != warp || g.status != GroupStatus::WaitReconv {
                continue;
            }
            // All waiters must be at the same PC.
            match pc {
                None => pc = Some(g.pc),
                Some(p) if p != g.pc => return,
                Some(_) => {}
            }
            union = union | g.mask;
            survivor = match survivor {
                Some(s) if self.groups[s.0].as_ref().expect("live").seq <= g.seq => Some(s),
                _ => Some(GroupId(i)),
            };
        }
        let Some(survivor) = survivor else { return };
        if union != self.warps[warp].tos_live_mask() {
            return;
        }
        // Merge into the oldest.
        for i in (0..self.groups.len()).map(GroupId) {
            let is_waiter = i != survivor
                && self.groups[i.0]
                    .as_ref()
                    .is_some_and(|g| g.warp == warp && g.status == GroupStatus::WaitReconv);
            if is_waiter {
                let mask = self.group(i).mask;
                let wtrips = self.group(i).spine_trips;
                let strips = self.group(survivor).spine_trips;
                if strips != wtrips {
                    // Spine branches never sit inside a divergent region,
                    // so structured stack re-unions normally agree; a
                    // mismatch still poisons conservatively (see
                    // [`merge_into`]).
                    self.uniform_poisoned[warp] = true;
                    self.group_mut(survivor).spine_trips = strips.max(wtrips);
                }
                self.group_mut(survivor).mask = self.group(survivor).mask | mask;
                self.kill_group(i);
                self.stats.stack_merges.incr();
            }
        }
        {
            let g = self.group_mut(survivor);
            g.status = GroupStatus::Ready;
            g.ready_at = now;
        }
        self.resched(survivor);
        let (spc, smask) = {
            let g = self.group(survivor);
            (g.pc, g.mask)
        };
        self.trace(TraceEvent::StackMerge {
            cycle: now,
            warp,
            pc: spc,
            mask: smask,
        });
        self.try_slot(survivor);
        // If the union sits at the TOS rpc, the conventional pop happens on
        // its next pre-issue; at a BranchLimited branch it just executes.
    }

    /// Attempts PC-based re-convergence of `gid` with ready siblings,
    /// stamping trace events with `now`.
    fn try_pc_merge_at(&mut self, gid: GroupId, now: Cycle) {
        if self.group(gid).status != GroupStatus::Ready {
            return;
        }
        let warp = self.group(gid).warp;
        loop {
            let partner = (0..self.groups.len()).map(GroupId).find(|&s| {
                s != gid
                    && self.groups[s.0]
                        .as_ref()
                        .is_some_and(|sg| sg.warp == warp && self.group(gid).can_merge_with(sg))
            });
            match partner {
                Some(p) => {
                    // Keep the older as survivor for deterministic naming.
                    let (survivor, victim) = if self.group(p).seq < self.group(gid).seq {
                        (p, gid)
                    } else {
                        (gid, p)
                    };
                    self.merge_into(survivor, victim, self.group(survivor).ready_at);
                    self.stats.pc_merges.incr();
                    let (pc, mask) = {
                        let g = self.group(survivor);
                        (g.pc, g.mask)
                    };
                    self.trace(TraceEvent::PcMerge {
                        cycle: now,
                        warp,
                        pc,
                        mask,
                    });
                    if survivor != gid {
                        return; // gid died
                    }
                }
                None => return,
            }
        }
    }

    /// Merges `victim` into `survivor` (same warp, same PC, structurally
    /// compatible local context). Frame masks union element-wise so each
    /// group's parked-thread shares recombine.
    fn merge_into(&mut self, survivor: GroupId, victim: GroupId, now: Cycle) {
        debug_assert!(
            self.group(survivor)
                .local_ctx_compatible(self.group(victim)),
            "merge of incompatible serialization contexts"
        );
        let vmask = self.group(victim).mask;
        let vready = self.group(victim).ready_at;
        let vtrips = self.group(victim).spine_trips;
        let strips = self.group(survivor).spine_trips;
        if strips != vtrips {
            // The halves sit at different uniform-spine positions (a
            // run-ahead lapped a uniform loop before this PC merge):
            // "uniform" registers may now differ per lane, so the warp
            // loses its fast-path eligibility for good.
            let warp = self.group(survivor).warp;
            self.uniform_poisoned[warp] = true;
            self.group_mut(survivor).spine_trips = strips.max(vtrips);
        }
        let mut vframes = std::mem::take(&mut self.group_mut(victim).local_stack);
        self.kill_group(victim);
        let s = self.group_mut(survivor);
        s.mask = s.mask | vmask;
        s.ready_at = s.ready_at.max(vready).max(now);
        for (sf, vf) in s.local_stack.iter_mut().zip(&vframes) {
            sf.mask = sf.mask | vf.mask;
        }
        if vframes.capacity() > 0 {
            vframes.clear();
            self.frame_pool.push(vframes);
        }
        self.resched(survivor);
        if !self.group(survivor).slotted {
            self.try_slot(survivor);
        }
    }

    // ---- slip helpers -------------------------------------------------------

    fn has_slip_suspended(&self, warp: usize) -> bool {
        self.groups
            .iter()
            .flatten()
            .any(|g| g.warp == warp && g.status == GroupStatus::SlipSuspended)
    }

    fn slip_suspended_count(&self, warp: usize) -> u32 {
        self.groups
            .iter()
            .flatten()
            .filter(|g| g.warp == warp && g.status == GroupStatus::SlipSuspended)
            .map(|g| g.mask.count())
            .sum()
    }

    /// Re-joins completed fall-behind threads suspended at `gid`'s PC.
    /// Merges one match at a time, in index order (the order the old
    /// collect-then-merge version used), so no candidate list is allocated.
    fn slip_merge_at(&mut self, gid: GroupId) {
        let warp = self.group(gid).warp;
        let pc = self.group(gid).pc;
        while let Some(s) = (0..self.groups.len()).map(GroupId).find(|&s| {
            s != gid
                && self.groups[s.0].as_ref().is_some_and(|sg| {
                    sg.warp == warp
                        && sg.status == GroupStatus::SlipSuspended
                        && sg.slip_pc == Some(pc)
                        && self.warps[warp].arrived_lanes(sg.mask) == sg.mask
                        && self.group(gid).local_ctx_compatible(sg)
                })
        }) {
            self.merge_into(gid, s, Cycle::ZERO);
            self.stats.slip_merges.incr();
        }
    }

    /// Lets suspended fall-behind threads run independently (used when the
    /// run-ahead can no longer revisit them: stalled at a branch, at a
    /// barrier, or terminated).
    fn release_slip_catchups(&mut self, warp: usize, now: Cycle) {
        // Direct index scan (no candidate list): releasing a group flips it
        // out of SlipSuspended, so later indices still see the original set.
        for gid in (0..self.groups.len()).map(GroupId) {
            let matches = self.groups[gid.0]
                .as_ref()
                .is_some_and(|g| g.warp == warp && g.status == GroupStatus::SlipSuspended);
            if !matches {
                continue;
            }
            let arrived = {
                let g = self.group(gid);
                self.warps[warp].arrived_lanes(g.mask) == g.mask
            };
            let g = self.group_mut(gid);
            g.slip_catchup = true;
            if arrived {
                g.status = GroupStatus::Ready;
                g.ready_at = now;
                g.slip_pc = None;
                self.resched(gid);
                self.try_slot(gid);
            }
        }
    }

    /// Whether subdivision is currently permitted (always true unless the
    /// adaptive-throttle extension is enabled and has tripped).
    fn splits_allowed(&self) -> bool {
        match self.cfg.policy {
            Policy::Dws(c) if c.adaptive_throttle => self.throttle.split_enabled,
            _ => true,
        }
    }

    fn adapt_throttle(&mut self, now: Cycle) {
        let Policy::Dws(c) = self.cfg.policy else {
            return;
        };
        if !c.adaptive_throttle || now - self.throttle.last_adapt < THROTTLE_INTERVAL {
            return;
        }
        let insts = self.stats.thread_insts.get();
        let interval = (now - self.throttle.last_adapt) as f64;
        let ipc = (insts - self.throttle.insts_snapshot) as f64 / interval;
        match self.throttle.phase {
            ThrottlePhase::ProbeOn => {
                self.throttle.probe_on_ipc = ipc;
                self.throttle.split_enabled = false;
                self.throttle.phase = ThrottlePhase::DrainOff;
            }
            ThrottlePhase::DrainOff => {
                // Fragments created before the switch have had an interval
                // to re-merge; the next interval is a clean measurement.
                self.throttle.phase = ThrottlePhase::ProbeOff;
            }
            ThrottlePhase::ProbeOff => {
                // Commit to the winner; ties (within the margin) keep
                // subdivision on, the paper's default behavior.
                let on_wins = self.throttle.probe_on_ipc * THROTTLE_MARGIN >= ipc;
                self.throttle.split_enabled = on_wins;
                self.throttle.phase = ThrottlePhase::Committed(THROTTLE_COMMIT);
            }
            ThrottlePhase::Committed(n) => {
                if n > 1 {
                    self.throttle.phase = ThrottlePhase::Committed(n - 1);
                } else {
                    self.throttle.split_enabled = true;
                    self.throttle.phase = ThrottlePhase::ProbeOn;
                }
            }
        }
        self.throttle.last_adapt = now;
        self.throttle.insts_snapshot = insts;
    }

    fn adapt_slip(&mut self, now: Cycle) {
        let Policy::Slip(sc) = self.cfg.policy else {
            return;
        };
        if now - self.slip.last_adapt < sc.interval {
            return;
        }
        let busy = self.stats.busy_cycles.get() - self.slip.busy_snapshot;
        let stall = self.stats.mem_stall_cycles.get() - self.slip.stall_snapshot;
        let interval = (now - self.slip.last_adapt) as f64;
        let stall_frac = stall as f64 / interval;
        let busy_frac = busy as f64 / interval;
        if stall_frac > sc.raise_threshold {
            self.slip.max_div = (self.slip.max_div + 1).min(self.cfg.width as u32);
        } else if busy_frac > sc.lower_threshold {
            self.slip.max_div = self.slip.max_div.saturating_sub(1);
        }
        self.slip.last_adapt = now;
        self.slip.busy_snapshot = self.stats.busy_cycles.get();
        self.slip.stall_snapshot = self.stats.mem_stall_cycles.get();
    }

    // ---- execution ----------------------------------------------------------

    /// Executes the instruction at `gid`'s PC. The cycle is consumed
    /// whatever the result.
    fn execute(&mut self, gid: GroupId, now: Cycle, port: &mut MemPort<'_>) -> ExecResult {
        let pc = self.group(gid).pc;
        debug_assert!(
            !self.group(gid).mask.is_empty(),
            "issue with empty mask at pc {pc}"
        );

        // Instruction fetch through the WPU-local L1-I (cold misses stall
        // the group). A hit is fully local; a miss needs the shared
        // crossbar/L2 model for its fill latency, so deferred mode
        // suspends here.
        let fetch_ready = match self.icache_probe(now, pc) {
            Some(ready) => ready,
            None => match port {
                MemPort::Direct(mem, _) => mem.icache_fill_latency(now),
                MemPort::Defer => {
                    self.pending_issue = Some(PendingIssue::IcacheFill { gid });
                    return ExecResult::Suspend;
                }
            },
        };
        if fetch_ready > now + 1 {
            // Anything beyond a 1-cycle hit: retry when the line arrives.
            let g = self.group_mut(gid);
            g.ready_at = fetch_ready;
            self.resched(gid);
            self.current = None;
            return ExecResult::Retry;
        }
        self.execute_post_fetch(gid, pc, now, port)
    }

    /// Probes the WPU-local L1-I for `pc`'s line. Returns the fetch-ready
    /// cycle on a hit; on a miss, counts it and installs the line
    /// (instructions always hit the L2 side in these tiny kernels),
    /// leaving the fill latency to the shared model. Instruction storage
    /// is laid out at 4 bytes per instruction in its own address space.
    fn icache_probe(&mut self, now: Cycle, pc: usize) -> Option<Cycle> {
        self.l1i_fetches += 1;
        let line = match self.l1i_shift {
            Some(s) => (pc as u64 * 4) >> s,
            None => (pc as u64 * 4) / self.cfg.l1i.line_bytes,
        };
        if self.icache.probe(line).valid() {
            return Some(now + self.cfg.l1i.hit_latency);
        }
        self.l1i_misses += 1;
        self.icache.fill(line, MesiState::Shared);
        None
    }

    /// Dispatches the fetched instruction. Separate from
    /// [`execute`](Self::execute) so a commit-phase I-cache fill landing
    /// within the issue window can resume here.
    fn execute_post_fetch(
        &mut self,
        gid: GroupId,
        pc: usize,
        now: Cycle,
        port: &mut MemPort<'_>,
    ) -> ExecResult {
        let op = *self.program.exec_op(pc);
        let mask = self.group(gid).mask;
        let warp = self.group(gid).warp;

        match op {
            ExecOp::Alu { .. } | ExecOp::Un { .. } | ExecOp::Set { .. } => {
                self.stats.on_issue(mask.count());
                self.exec_compute(warp, pc, mask, op);
                if op.is_fp() {
                    self.stats.fp_ops.add(mask.count() as u64);
                } else {
                    self.stats.int_ops.add(mask.count() as u64);
                }
                self.group_mut(gid).pc = pc + 1;
                ExecResult::Issued
            }
            ExecOp::Jump { target } => {
                self.stats.on_issue(mask.count());
                self.stats.int_ops.add(mask.count() as u64);
                self.group_mut(gid).pc = target as usize;
                ExecResult::Issued
            }
            ExecOp::Branch { cond, a, b, target } => {
                self.stats.on_issue(mask.count());
                self.stats.int_ops.add(mask.count() as u64);
                self.exec_branch(gid, pc, cond, a, b, target as usize, now);
                ExecResult::Issued
            }
            ExecOp::Load { .. } | ExecOp::Store { .. } => match port {
                MemPort::Direct(mem, data) => self.exec_memory(gid, pc, op, now, mem, &mut **data),
                MemPort::Defer => {
                    // The memo check, decode, and L1 probe all start at
                    // shared state (the L1 generation); park the whole
                    // access for the commit phase.
                    self.pending_issue = Some(PendingIssue::MemAccess { gid });
                    ExecResult::Suspend
                }
            },
            ExecOp::Barrier => {
                self.stats.on_issue(mask.count());
                let g = self.group_mut(gid);
                g.status = GroupStatus::WaitBarrier;
                self.resched(gid);
                self.release_slot(gid);
                // Fall-behind slip threads must be able to reach the
                // barrier on their own.
                if matches!(self.cfg.policy, Policy::Slip(_)) {
                    self.release_slip_catchups(warp, now);
                }
                self.current = None;
                ExecResult::Issued
            }
            ExecOp::Halt => {
                self.stats.on_issue(mask.count());
                self.exec_halt(gid, now);
                self.current = None;
                ExecResult::Issued
            }
        }
    }

    /// Executes an ALU/Un/Set instruction across the active lanes: through
    /// the warp-wide kernels (one opcode dispatch for the whole warp) or,
    /// with the µop engine off, through the legacy per-lane interpreter.
    /// With the oracle on (debug builds, `DWS_SANITIZE=1`), every lane's
    /// legacy result is precomputed *before* the kernel runs (the
    /// destination may alias a source) and the engines must agree.
    fn exec_compute(&mut self, warp: usize, pc: usize, mask: Mask, op: ExecOp) {
        // Fixed-size capture (a mask holds at most 64 lanes), so the
        // oracle does not allocate — the zero-alloc steady-state guard also
        // runs in debug builds. `None` when the oracle is off, so the
        // release fast path never initializes the array.
        let expected: Option<[Option<(u16, u64)>; 64]> = if self.check_oracle {
            let mut expected = [None; 64];
            let inst = self.program.inst(pc);
            let rf = &self.warps[warp].regs;
            for lane in mask.iter() {
                let mut sh = rf.shadow(lane);
                let out = execute_lane(&mut sh, inst);
                debug_assert_eq!(out, StepOutcome::Next);
                expected[lane] = sh.written();
            }
            Some(expected)
        } else {
            None
        };
        if self.use_uop_engine {
            let rf = &mut self.warps[warp].regs;
            match op {
                ExecOp::Alu { op, dst, a, b, .. } => exec::exec_alu(rf, mask, op, dst, a, b),
                ExecOp::Un { op, dst, a, .. } => exec::exec_un(rf, mask, op, dst, a),
                ExecOp::Set { cond, dst, a, b } => exec::exec_set(rf, mask, cond, dst, a, b),
                _ => unreachable!("exec_compute on non-compute µop"),
            }
        } else {
            let inst = *self.program.inst(pc);
            let rf = &mut self.warps[warp].regs;
            for lane in mask.iter() {
                let out = execute_lane(&mut rf.lane(lane), &inst);
                debug_assert_eq!(out, StepOutcome::Next);
            }
        }
        if let Some(expected) = &expected {
            let rf = &self.warps[warp].regs;
            for lane in mask.iter() {
                if let Some((r, v)) = expected[lane] {
                    assert_eq!(
                        rf.get(r, lane),
                        v,
                        "µop engine diverged from per-lane oracle at pc {pc} lane {lane} reg r{r}"
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_branch(
        &mut self,
        gid: GroupId,
        pc: usize,
        cond: CondOp,
        a: Src,
        b: Src,
        target: usize,
        now: Cycle,
    ) {
        let warp = self.group(gid).warp;
        let mask = self.group(gid).mask;
        // Spine-position bookkeeping (see [`Group::spine_trips`]): every
        // retired spine branch advances the group's counter, fast path or
        // not, so merge-time mismatch detection stays exact.
        if self.spine_branch[pc] {
            self.group_mut(gid).spine_trips += 1;
        }
        let taken = if self.use_uop_engine {
            let uniform =
                self.use_uniform_hints && self.uniform_branch[pc] && !self.uniform_poisoned[warp];
            let taken = if uniform {
                // Verifier-proven uniform branch: the condition reads no
                // thread-varying register, so one representative lane
                // decides for the whole mask. Cycle-identical by
                // construction — the full-warp evaluation would produce
                // either `mask` or the empty mask — and the per-lane
                // oracle below still checks every lane.
                self.stats.uniform_fast_branches.incr();
                let probe = Mask::lane(mask.first().expect("nonempty issue mask"));
                if exec::branch_taken(&self.warps[warp].regs, probe, cond, a, b).is_empty() {
                    Mask::EMPTY
                } else {
                    mask
                }
            } else {
                exec::branch_taken(&self.warps[warp].regs, mask, cond, a, b)
            };
            if self.check_oracle {
                let inst = self.program.inst(pc);
                let rf = &self.warps[warp].regs;
                let mut expect = Mask::EMPTY;
                for lane in mask.iter() {
                    let mut sh = rf.shadow(lane);
                    match execute_lane(&mut sh, inst) {
                        StepOutcome::Jump(_) => expect.set(lane),
                        StepOutcome::Next => {}
                        other => unreachable!("branch produced {other:?}"),
                    }
                }
                assert_eq!(
                    taken, expect,
                    "µop taken mask diverged from per-lane oracle at pc {pc}"
                );
            }
            taken
        } else {
            let inst = *self.program.inst(pc);
            let rf = &mut self.warps[warp].regs;
            let mut taken = Mask::EMPTY;
            for lane in mask.iter() {
                match execute_lane(&mut rf.lane(lane), &inst) {
                    StepOutcome::Jump(_) => taken.set(lane),
                    StepOutcome::Next => {}
                    other => unreachable!("branch produced {other:?}"),
                }
            }
            taken
        };
        let fallthrough = mask - taken;
        let divergent = !taken.is_empty() && !fallthrough.is_empty();
        self.stats.on_branch(divergent);

        if !divergent {
            self.group_mut(gid).pc = if fallthrough.is_empty() {
                target
            } else {
                pc + 1
            };
            return;
        }

        let info = *self
            .program
            .branch_info(pc)
            .expect("divergent conditional branch has metadata");

        // DWS branch subdivision.
        if let Policy::Dws(c) = self.cfg.policy {
            if c.branch_split && info.subdividable && self.splits_allowed() {
                if self.wst.can_split(warp) {
                    // Keep executing the path that still has work before the
                    // post-dominator; park the other as the sibling split.
                    // When the taken edge jumps straight to the
                    // post-dominator (`if` with no else), this lets the body
                    // side catch up one instruction later and re-unite via
                    // the PC match at essentially conventional cost.
                    let (run_mask, run_pc, park_mask, park_pc) =
                        if c.park_short_path && target == info.ipdom {
                            (fallthrough, pc + 1, taken, target)
                        } else {
                            (taken, target, fallthrough, pc + 1)
                        };
                    let sib = self.spawn_group(warp, park_pc, park_mask);
                    {
                        // The sibling takes its threads' share of any
                        // serialization context.
                        let mut local = std::mem::take(&mut self.group_mut(sib).local_stack);
                        Self::partition_local_frames(
                            &mut self.groups[gid.0].as_mut().expect("live").local_stack,
                            park_mask,
                            &mut local,
                        );
                        let lrpc = self.group(gid).local_rpc;
                        let trips = self.group(gid).spine_trips;
                        let s = self.group_mut(sib);
                        s.local_stack = local;
                        s.local_rpc = lrpc;
                        s.spine_trips = trips;
                        s.ready_at = now;
                    }
                    self.resched(sib);
                    self.try_slot(sib);
                    let g = self.group_mut(gid);
                    g.mask = run_mask;
                    g.pc = run_pc;
                    self.stats.branch_splits.incr();
                    self.trace(TraceEvent::BranchSplit {
                        cycle: now,
                        warp,
                        pc,
                        run_mask,
                        park_mask,
                    });
                    return;
                }
                self.stats.wst_full_events.incr();
            }
        }

        // Conventional serialization: on the warp stack when this group is
        // the entire current region, privately otherwise.
        let sole_region = self.wst.groups_of(warp) == 1
            && self.group(gid).local_rpc.is_none()
            && self.group(gid).mask == self.warps[warp].tos_live_mask();
        if sole_region && info.ipdom != RECONV_NONE {
            let w = &mut self.warps[warp];
            let tos = w.stack.last_mut().expect("root frame");
            tos.pc = info.ipdom;
            w.stack.push(Frame {
                pc: pc + 1,
                rpc: Some(info.ipdom),
                mask: fallthrough,
            });
            w.stack.push(Frame {
                pc: target,
                rpc: Some(info.ipdom),
                mask: taken,
            });
            let g = self.group_mut(gid);
            g.mask = taken;
            g.pc = target;
        } else {
            // Private serialization within the split.
            let r = info.ipdom; // may be RECONV_NONE: frames then pop at Halt
            let g = self.group_mut(gid);
            g.local_stack.push(Frame {
                pc: r,
                rpc: g.local_rpc,
                mask: g.mask,
            });
            g.local_stack.push(Frame {
                pc: pc + 1,
                rpc: Some(r),
                mask: fallthrough,
            });
            g.local_rpc = Some(r);
            g.mask = taken;
            g.pc = target;
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_memory(
        &mut self,
        gid: GroupId,
        pc: usize,
        op: ExecOp,
        now: Cycle,
        mem: &mut MemorySystem,
        data: &mut dyn MemoryAccess,
    ) -> ExecResult {
        let warp = self.group(gid).warp;
        let mask = self.group(gid).mask;

        // Structural-stall memo: while the group spins on full MSHRs its
        // registers are frozen, so the same `(pc, mask)` against an
        // unchanged L1 generation decodes to the same addresses and must be
        // rejected again — skip the per-lane decode and cache probe.
        if self.group(gid).reject_memo == Some((pc, mask, mem.l1_generation(self.cfg.id))) {
            mem.count_repeat_rejection();
            let g = self.group_mut(gid);
            g.ready_at = now + 1;
            self.resched(gid);
            self.current = None;
            return ExecResult::Retry;
        }

        // Borrow the per-tick scratch buffers out of `self` for the
        // duration of the access (restored at the end).
        let mut ops = std::mem::take(&mut self.scratch.ops);
        let mut accesses = std::mem::take(&mut self.scratch.accesses);
        let mut outcomes = std::mem::take(&mut self.scratch.outcomes);
        let mut miss_lines = std::mem::take(&mut self.scratch.miss_lines);
        ops.clear();
        accesses.clear();
        miss_lines.clear();

        // Decode per-lane addresses (no functional effect yet): one µop
        // dispatch for the whole warp, with the register row streamed out
        // of the SoA file.
        if self.use_uop_engine {
            let rf = &self.warps[warp].regs;
            match op {
                ExecOp::Load { dst, base, offset } => {
                    for lane in mask.iter() {
                        let addr = rf.get(base, lane).wrapping_add(offset);
                        ops.push((
                            lane,
                            StepOutcome::Load {
                                addr,
                                dst: Reg(dst),
                            },
                        ));
                    }
                }
                ExecOp::Store { src, base, offset } => {
                    for lane in mask.iter() {
                        let addr = rf.get(base, lane).wrapping_add(offset);
                        let value = match src {
                            Src::Reg(r) => rf.get(r, lane),
                            Src::Imm(v) => v,
                        };
                        ops.push((lane, StepOutcome::Store { addr, value }));
                    }
                }
                _ => unreachable!("exec_memory on non-memory µop"),
            }
            if self.check_oracle {
                let inst = self.program.inst(pc);
                for &(lane, out) in &ops {
                    let mut sh = rf.shadow(lane);
                    let expect = execute_lane(&mut sh, inst);
                    assert_eq!(
                        out, expect,
                        "µop address generation diverged from per-lane oracle at pc {pc} lane {lane}"
                    );
                }
            }
        } else {
            let inst = *self.program.inst(pc);
            let rf = &mut self.warps[warp].regs;
            for lane in mask.iter() {
                let out = execute_lane(&mut rf.lane(lane), &inst);
                ops.push((lane, out));
            }
        }
        accesses.extend(ops.iter().map(|&(lane, out)| match out {
            StepOutcome::Load { addr, .. } => LaneAccess {
                lane,
                addr,
                kind: AccessKind::Load,
            },
            StepOutcome::Store { addr, .. } => LaneAccess {
                lane,
                addr,
                kind: AccessKind::Store,
            },
            other => unreachable!("memory inst produced {other:?}"),
        }));

        let issued = 'body: {
            if !mem.warp_access_into(now, self.cfg.id, &accesses, &mut outcomes) {
                // MSHRs exhausted: structural stall; retry this group
                // shortly while other groups issue. Rejection leaves the L1
                // untouched, so the generation read here stays valid for
                // the memo until something mutates the L1.
                let memo = Some((pc, mask, mem.l1_generation(self.cfg.id)));
                let g = self.group_mut(gid);
                g.reject_memo = memo;
                g.ready_at = now + 1;
                self.resched(gid);
                self.current = None;
                break 'body false;
            }

            self.stats.on_issue(mask.count());
            match op {
                ExecOp::Load { .. } => self.stats.loads.add(mask.count() as u64),
                _ => self.stats.stores.add(mask.count() as u64),
            }

            // Functional effects (data-race-free kernels make ordering benign).
            for &(lane, out) in &ops {
                match out {
                    StepOutcome::Load { addr, dst } => {
                        let v = data.load_word(addr);
                        self.warps[warp].regs.set(dst.0, lane, v);
                    }
                    StepOutcome::Store { addr, value } => {
                        data.store_word(addr, value);
                    }
                    _ => unreachable!(),
                }
            }

            // Classify outcomes.
            let mut hit_mask = Mask::EMPTY;
            let mut miss_mask = Mask::EMPTY;
            let mut hit_ready = now;
            for (o, a) in outcomes.iter().zip(&accesses) {
                match o.outcome {
                    AccessOutcome::Hit { ready_at } => {
                        hit_mask.set(o.lane);
                        hit_ready = hit_ready.max(ready_at);
                    }
                    AccessOutcome::Miss { request } => {
                        miss_mask.set(o.lane);
                        self.warps[warp].threads[o.lane].pending = Some(request);
                        self.warps[warp].threads[o.lane].miss_count += 1;
                        self.req_map.insert(request, (warp, o.lane));
                        let line = a.addr / 128;
                        if !miss_lines.contains(&line) {
                            miss_lines.push(line);
                        }
                    }
                }
            }
            let any_miss = !miss_mask.is_empty();
            let divergent = (any_miss && !hit_mask.is_empty()) || miss_lines.len() > 1;
            self.stats.on_mem_access(any_miss, divergent);

            self.group_mut(gid).pc = pc + 1;

            if !any_miss {
                let g = self.group_mut(gid);
                g.status = GroupStatus::Ready;
                g.ready_at = hit_ready;
                self.resched(gid);
                if self.dws_pc_based() {
                    self.try_pc_merge_at(gid, now);
                }
                self.current = None; // switch on every cache access
                break 'body true;
            }

            let mem_divergent = !hit_mask.is_empty();
            match self.cfg.policy {
                Policy::Dws(c) if c.mem_split.is_some() && mem_divergent => {
                    let scheme = c.mem_split.expect("checked");
                    // `gid` itself is slotted and Ready here (it just
                    // issued), so "any other slotted ready group" is a
                    // counter comparison.
                    debug_assert!(
                        self.group(gid).slotted && self.group(gid).status == GroupStatus::Ready
                    );
                    let others_ready = self.n_slotted_ready >= 2;
                    let split_now = match scheme {
                        MemSplit::Aggressive => true,
                        MemSplit::Lazy | MemSplit::Revive => !others_ready,
                    } && self.splits_allowed();
                    if !self.splits_allowed() {
                        self.stats.throttle_suppressed.incr();
                    }
                    if split_now && self.wst.can_split(warp) {
                        self.split_on_mem(gid, hit_mask, miss_mask, hit_ready, now);
                        self.stats.mem_splits.incr();
                    } else {
                        if split_now {
                            self.stats.wst_full_events.incr();
                        } else {
                            self.stats.lazy_suppressed.incr();
                        }
                        self.group_mut(gid).status = GroupStatus::WaitMem;
                        self.resched(gid);
                    }
                }
                Policy::Slip(_) if mem_divergent => {
                    let allowed = self.slip_suspended_count(warp) + miss_mask.count()
                        <= self.slip.max_div
                        && !self.group(gid).slip_catchup;
                    if allowed {
                        // Fall-behind threads suspend *at* the memory PC; they
                        // re-execute it (as hits) when re-united.
                        let sib = self.spawn_group(warp, pc, miss_mask);
                        {
                            let mut local = std::mem::take(&mut self.group_mut(sib).local_stack);
                            Self::partition_local_frames(
                                &mut self.groups[gid.0].as_mut().expect("live").local_stack,
                                miss_mask,
                                &mut local,
                            );
                            let lrpc = self.group(gid).local_rpc;
                            let trips = self.group(gid).spine_trips;
                            let s = self.group_mut(sib);
                            s.status = GroupStatus::SlipSuspended;
                            s.slip_pc = Some(pc);
                            s.local_stack = local;
                            s.local_rpc = lrpc;
                            s.spine_trips = trips;
                            s.slotted = false;
                        }
                        self.resched(sib);
                        let g = self.group_mut(gid);
                        g.mask = hit_mask;
                        g.status = GroupStatus::Ready;
                        g.ready_at = hit_ready;
                        self.resched(gid);
                        self.stats.slip_events.incr();
                    } else {
                        self.group_mut(gid).status = GroupStatus::WaitMem;
                        self.resched(gid);
                    }
                }
                _ => {
                    // Conventional: the whole group waits for the slowest lane.
                    self.group_mut(gid).status = GroupStatus::WaitMem;
                    self.resched(gid);
                }
            }
            self.current = None; // switch on every cache access
            true
        };

        self.scratch.ops = ops;
        self.scratch.accesses = accesses;
        self.scratch.outcomes = outcomes;
        self.scratch.miss_lines = miss_lines;
        if issued {
            ExecResult::Issued
        } else {
            ExecResult::Retry
        }
    }

    /// Splits `gid` into a run-ahead (hit) group and the waiting remainder.
    fn split_on_mem(
        &mut self,
        gid: GroupId,
        hit_mask: Mask,
        miss_mask: Mask,
        hit_ready: Cycle,
        now: Cycle,
    ) {
        let warp = self.group(gid).warp;
        let pc = self.group(gid).pc;
        let run_ahead = self.spawn_group(warp, pc, hit_mask);
        {
            let mut local = std::mem::take(&mut self.group_mut(run_ahead).local_stack);
            Self::partition_local_frames(
                &mut self.groups[gid.0].as_mut().expect("live").local_stack,
                hit_mask,
                &mut local,
            );
            let lrpc = self.group(gid).local_rpc;
            let trips = self.group(gid).spine_trips;
            let s = self.group_mut(run_ahead);
            s.local_stack = local;
            s.local_rpc = lrpc;
            s.spine_trips = trips;
            s.ready_at = hit_ready;
        }
        self.resched(run_ahead);
        self.try_slot(run_ahead);
        let g = self.group_mut(gid);
        g.mask = miss_mask;
        g.status = GroupStatus::WaitMem;
        self.resched(gid);
        self.trace(TraceEvent::MemSplit {
            cycle: now,
            warp,
            pc,
            hit_mask,
            miss_mask,
        });
    }

    /// ReviveSplit: when the pipeline stalls, let arrived threads of one
    /// suspended group run ahead (paper Section 5.2).
    fn try_revive(&mut self, now: Cycle) {
        if !self.splits_allowed() || self.slots_in_use() >= self.cfg.sched_slots {
            return;
        }
        let candidate = self
            .groups
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (i, g)))
            .filter(|(_, g)| g.status == GroupStatus::WaitMem)
            .filter(|(_, g)| {
                let arrived = self.warps[g.warp].arrived_lanes(g.mask);
                !arrived.is_empty() && arrived != g.mask
            })
            .filter(|(_, g)| self.wst.can_split(g.warp))
            .min_by_key(|(_, g)| g.seq)
            .map(|(i, _)| GroupId(i));
        let Some(gid) = candidate else {
            return;
        };
        let warp = self.group(gid).warp;
        let arrived = self.warps[warp].arrived_lanes(self.group(gid).mask);
        let pc = self.group(gid).pc;
        let run_ahead = self.spawn_group(warp, pc, arrived);
        {
            let mut local = std::mem::take(&mut self.group_mut(run_ahead).local_stack);
            Self::partition_local_frames(
                &mut self.groups[gid.0].as_mut().expect("live").local_stack,
                arrived,
                &mut local,
            );
            let lrpc = self.group(gid).local_rpc;
            let trips = self.group(gid).spine_trips;
            let s = self.group_mut(run_ahead);
            s.local_stack = local;
            s.local_rpc = lrpc;
            s.spine_trips = trips;
            s.ready_at = now + 1;
        }
        self.resched(run_ahead);
        self.try_slot(run_ahead);
        let g = self.group_mut(gid);
        g.mask = g.mask - arrived;
        self.resched(gid);
        self.stats.revive_splits.incr();
        self.trace(TraceEvent::Revive {
            cycle: now,
            warp,
            pc,
            mask: arrived,
        });
    }

    fn exec_halt(&mut self, gid: GroupId, now: Cycle) {
        let warp = self.group(gid).warp;
        let mask = self.group(gid).mask;
        for lane in mask.iter() {
            if !self.warps[warp].threads[lane].halted {
                self.warps[warp].threads[lane].halted = true;
                self.live_threads -= 1;
            }
        }
        self.warps[warp].halted = self.warps[warp].halted | mask;

        // Resume any serialized local paths first.
        if self.group(gid).local_rpc.is_some() || !self.group(gid).local_stack.is_empty() {
            // Pop local frames until a live path emerges.
            let halted = self.warps[warp].halted;
            loop {
                let g = self.group_mut(gid);
                match g.local_stack.pop() {
                    Some(f) => {
                        let live = f.mask - halted;
                        if !live.is_empty() {
                            g.pc = f.pc;
                            g.local_rpc = f.rpc;
                            g.mask = live;
                            g.status = GroupStatus::Ready;
                            g.ready_at = now;
                            self.resched(gid);
                            return;
                        }
                    }
                    None => {
                        g.local_rpc = None;
                        break;
                    }
                }
            }
        }

        // Sole group: unwind the warp stack for any live parked paths.
        if self.wst.groups_of(warp) == 1 {
            while self.warps[warp].stack.len() > 1 {
                self.warps[warp].stack.pop();
                let tos = *self.warps[warp].tos();
                let live = tos.mask - self.warps[warp].halted;
                if !live.is_empty() {
                    let g = self.group_mut(gid);
                    g.pc = tos.pc;
                    g.mask = live;
                    g.status = GroupStatus::Ready;
                    g.ready_at = now;
                    self.resched(gid);
                    return;
                }
            }
        }

        // Nothing live to resume in this group.
        if matches!(self.cfg.policy, Policy::Slip(_)) {
            self.release_slip_catchups(warp, now);
        }
        self.kill_group(gid);
        // If siblings also ended (e.g. all waiting at a reconvergence that
        // can now complete), the stack-merge path handles them on their own
        // pre-issue; but their target mask shrank, so re-check now.
        if self.wst.groups_of(warp) > 1 {
            self.try_stack_merge(warp, now);
        }
    }

    // ---- barrier ------------------------------------------------------------

    /// Releases every group waiting at the global barrier (called by the
    /// simulator once all live threads of the machine have arrived). Splits
    /// of the same warp re-converge here, per Section 5.4.
    pub fn release_barrier(&mut self, now: Cycle) {
        self.trace(TraceEvent::BarrierRelease { cycle: now });
        for warp in 0..self.cfg.n_warps {
            // Oldest waiter survives; found by scan, no candidate list.
            let survivor = self
                .groups
                .iter()
                .enumerate()
                .filter_map(|(i, g)| g.as_ref().map(|g| (i, g)))
                .filter(|(_, g)| g.warp == warp && g.status == GroupStatus::WaitBarrier)
                .min_by_key(|(_, g)| g.seq)
                .map(|(i, _)| GroupId(i));
            let Some(survivor) = survivor else { continue };
            for i in (0..self.groups.len()).map(GroupId) {
                let is_waiter = i != survivor
                    && self.groups[i.0]
                        .as_ref()
                        .is_some_and(|g| g.warp == warp && g.status == GroupStatus::WaitBarrier);
                if is_waiter {
                    let mask = self.group(i).mask;
                    self.group_mut(survivor).mask = self.group(survivor).mask | mask;
                    self.kill_group(i);
                    self.stats.stack_merges.incr();
                }
            }
            let g = self.group_mut(survivor);
            g.status = GroupStatus::Ready;
            g.ready_at = now;
            g.pc += 1;
            g.slip_catchup = false;
            self.resched(survivor);
            self.try_slot(survivor);
        }
    }
}

impl Wpu {
    /// Debug helper: one line per live group (used by diagnostics and
    /// deadlock reports).
    pub fn dump_groups(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for g in self.groups.iter().flatten() {
            let _ = writeln!(
                s,
                "warp={} pc={} mask={} status={:?} ready_at={} lrpc={:?} ldepth={} slot={} catchup={} slip_pc={:?}",
                g.warp, g.pc, g.mask, g.status, g.ready_at, g.local_rpc,
                g.local_stack.len(), g.slotted, g.slip_catchup, g.slip_pc
            );
        }
        for w in &self.warps {
            let _ = writeln!(s, "warp {} stack={:?} halted={}", w.id, w.stack, w.halted);
        }
        s
    }
}

/// The shared-system half of a WPU's [`Component`] step: the timed memory
/// hierarchy plus the functional backing store.
pub struct MemPorts<'a> {
    /// The timed cache hierarchy shared by all WPUs.
    pub mem: &'a mut MemorySystem,
    /// The functional data memory shared by all WPUs.
    pub data: &'a mut dyn MemoryAccess,
}

impl<'a> Component<MemPorts<'a>> for Wpu {
    type Tick = TickClass;

    fn next_tick(&self) -> Option<Cycle> {
        match (self.cached_next_wake(), self.next_adapt_boundary()) {
            (Some(w), Some(a)) => Some(w.min(a)),
            (w, a) => w.or(a),
        }
    }

    fn compute(&mut self, now: Cycle) -> Phase<TickClass> {
        self.tick_compute(now)
    }

    fn commit(&mut self, now: Cycle, sys: &mut MemPorts<'a>) -> TickClass {
        self.tick_commit(now, sys.mem, sys.data)
    }
}
