//! Randomized differential test: for *randomly generated* structured
//! kernels, every scheduling policy — conventional, the full DWS matrix,
//! adaptive slip — must produce memory contents identical to the
//! timing-free reference runner. This is the strongest correctness property
//! of the simulator: subdivision, re-convergence, slip and barrier logic
//! may change timing, never results. Kernels are generated from the
//! vendored deterministic PRNG, so any failing seed reproduces exactly.

use dws_core::{MemSplit, Policy, TickClass, Wpu, WpuConfig};
use dws_engine::rng::Rng64;
use dws_engine::Cycle;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, ReferenceRunner, Reg, VecMemory};
use dws_mem::{MemConfig, MemorySystem};
use std::sync::Arc;

/// Words of scratch memory each generated kernel may touch.
const MEM_WORDS: i64 = 512;

/// A tiny structured-program AST we can generate and compile.
#[derive(Debug, Clone)]
enum Stmt {
    /// dst_reg, src selector, immediate
    Arith(u8, u8, i64),
    /// value reg, address-selector immediate word index
    Store(u8, i64),
    /// dst reg, address word index offset by a register
    Load(u8, u8),
    /// condition on (reg cmp imm): then-branch, else-branch
    If(u8, i64, Vec<Stmt>, Vec<Stmt>),
    /// bounded loop: iterations 1..=3, body
    Loop(u8, Vec<Stmt>),
}

/// Generates one random statement; `depth` bounds nesting and `budget`
/// bounds total statement count (mirroring proptest's recursive strategy).
fn gen_stmt(rng: &mut Rng64, depth: u32, budget: &mut usize) -> Stmt {
    *budget = budget.saturating_sub(1);
    let composite = depth > 0 && *budget > 0 && rng.chance(0.35);
    if composite {
        if rng.chance(0.5) {
            let r = rng.range_i64(0, 4) as u8;
            let imm = rng.range_i64(-3, 3);
            let then_len = 1 + rng.range_usize(3);
            let then_branch = gen_block(rng, depth - 1, then_len, budget);
            let else_len = rng.range_usize(3);
            let else_branch = gen_block(rng, depth - 1, else_len, budget);
            Stmt::If(r, imm, then_branch, else_branch)
        } else {
            let n = rng.range_i64(1, 4) as u8;
            let body_len = 1 + rng.range_usize(3);
            let body = gen_block(rng, depth - 1, body_len, budget);
            Stmt::Loop(n, body)
        }
    } else {
        match rng.range_usize(3) {
            0 => Stmt::Arith(
                rng.range_i64(0, 4) as u8,
                rng.range_i64(0, 4) as u8,
                rng.range_i64(-7, 7),
            ),
            1 => Stmt::Store(rng.range_i64(0, 4) as u8, rng.range_i64(0, MEM_WORDS / 2)),
            _ => Stmt::Load(rng.range_i64(0, 4) as u8, rng.range_i64(0, 4) as u8),
        }
    }
}

fn gen_block(rng: &mut Rng64, depth: u32, len: usize, budget: &mut usize) -> Vec<Stmt> {
    (0..len)
        .map_while(|_| {
            if *budget == 0 {
                None
            } else {
                Some(gen_stmt(rng, depth, budget))
            }
        })
        .collect()
}

/// Compiles the AST into a kernel. Every thread runs the same statements on
/// thread-dependent data, then stores its registers to a thread-private
/// output slice.
fn compile(stmts: &[Stmt]) -> Program {
    let mut b = KernelBuilder::new();
    let tid = b.tid();
    let regs: Vec<Reg> = (0..4).map(|_| b.reg()).collect();
    let addr = b.reg();
    let tmp = b.reg();
    // Seed registers from tid so threads diverge.
    for (i, &r) in regs.iter().enumerate() {
        b.mul(tmp, tid, Operand::Imm(i as i64 * 3 + 1));
        b.add(regs[i], Operand::Reg(tmp), Operand::Imm(i as i64));
        let _ = r;
    }
    emit(&mut b, stmts, &regs, addr, tmp, tid);
    // Write out all registers to out[tid*4 + i].
    for (i, &r) in regs.iter().enumerate() {
        b.mul(addr, tid, Operand::Imm(4));
        b.add(addr, Operand::Reg(addr), Operand::Imm(i as i64));
        b.rem(addr, Operand::Reg(addr), Operand::Imm(MEM_WORDS / 2));
        b.add(addr, Operand::Reg(addr), Operand::Imm(MEM_WORDS / 2));
        b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
        b.store(Operand::Reg(r), addr, 0);
    }
    b.halt();
    b.build().expect("generated kernel is well-formed")
}

fn emit(b: &mut KernelBuilder, stmts: &[Stmt], regs: &[Reg], addr: Reg, tmp: Reg, tid: Reg) {
    for s in stmts {
        match s {
            Stmt::Arith(d, src, imm) => {
                let d = regs[*d as usize % regs.len()];
                let src = regs[*src as usize % regs.len()];
                b.mul(tmp, Operand::Reg(src), Operand::Imm(3));
                b.add(d, Operand::Reg(tmp), Operand::Imm(*imm));
                b.rem(d, Operand::Reg(d), Operand::Imm(1009));
            }
            Stmt::Store(r, w) => {
                // Strictly thread-private slot (16 words per thread):
                // slot = tid*16 + (w mod 16). Cross-thread races would make
                // results interleaving-dependent and the property unsound.
                let r = regs[*r as usize % regs.len()];
                b.mul(addr, tid, Operand::Imm(16));
                b.add(addr, Operand::Reg(addr), Operand::Imm(*w % 16));
                b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
                b.store(Operand::Reg(r), addr, 0);
            }
            Stmt::Load(d, a) => {
                // Load from the thread's own 16-word window, index chosen
                // by a register value (data-dependent, but race-free).
                let d = regs[*d as usize % regs.len()];
                let a = regs[*a as usize % regs.len()];
                b.rem(addr, Operand::Reg(a), Operand::Imm(16));
                b.if_then(CondOp::Lt, Operand::Reg(addr), Operand::Imm(0), |b| {
                    b.add(addr, Operand::Reg(addr), Operand::Imm(16));
                });
                b.mul(tmp, tid, Operand::Imm(16));
                b.add(addr, Operand::Reg(addr), Operand::Reg(tmp));
                b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
                b.load(d, addr, 0);
            }
            Stmt::If(r, imm, t, e) => {
                let r = regs[*r as usize % regs.len()];
                let (t, e) = (t.clone(), e.clone());
                let regs2 = regs.to_vec();
                b.if_then_else(
                    CondOp::Gt,
                    Operand::Reg(r),
                    Operand::Imm(*imm),
                    |b| emit(b, &t, &regs2, addr, tmp, tid),
                    |b| emit(b, &e, &regs2, addr, tmp, tid),
                );
            }
            Stmt::Loop(n, body) => {
                let i = b.reg();
                let body = body.clone();
                let regs2 = regs.to_vec();
                b.for_range(
                    i,
                    Operand::Imm(0),
                    Operand::Imm(*n as i64),
                    Operand::Imm(1),
                    |b| emit(b, &body, &regs2, addr, tmp, tid),
                );
            }
        }
    }
}

/// Runs the program on a 2-warp, 8-wide WPU under `policy`.
fn run_policy(program: &Program, policy: Policy, mem0: &VecMemory) -> VecMemory {
    run_policy_with(program, policy, mem0, false).0
}

/// Observable fingerprint of one WPU-level run: final memory, end cycle,
/// and the stall/issue/split accounting the figures are built from.
type RunFingerprint = (VecMemory, u64, [u64; 7]);

/// As [`run_policy`], optionally forcing the legacy linear-scan scheduler
/// ([`Wpu::set_scan_scheduler`]) instead of the ready-ring + wake-heap.
fn run_policy_with(
    program: &Program,
    policy: Policy,
    mem0: &VecMemory,
    scan: bool,
) -> RunFingerprint {
    let program = Arc::new(program.clone());
    let mut cfg = WpuConfig::paper(0, policy);
    cfg.n_warps = 2;
    cfg.width = 8;
    cfg.sched_slots = 4;
    let mut wpu = Wpu::new(cfg, program, 0, 16);
    wpu.set_scan_scheduler(scan);
    let mut mem = MemorySystem::new(MemConfig::paper(1, 8));
    let mut data = mem0.clone();
    let mut now = Cycle(0);
    loop {
        for c in mem.drain_completions(now) {
            wpu.on_completion(c.request, c.at);
        }
        if let TickClass::Done = wpu.tick(now, &mut mem, &mut data) {
            break;
        }
        let live = wpu.live_threads();
        if live > 0 && wpu.barrier_waiting() == live {
            wpu.release_barrier(now);
        }
        now += 1;
        assert!(now.raw() < 20_000_000, "policy {policy:?} did not finish");
    }
    let s = &wpu.stats;
    let fp = [
        s.busy_cycles.get(),
        s.mem_stall_cycles.get(),
        s.idle_cycles.get(),
        s.warp_insts.get(),
        s.branch_splits.get(),
        s.mem_splits.get(),
        s.revive_splits.get(),
    ];
    (data, now.raw(), fp)
}

fn output_region(mem: &VecMemory) -> &[u64] {
    &mem.words()[(MEM_WORDS / 2) as usize..]
}

#[test]
fn random_kernels_agree_across_policies() {
    for seed in 0..24u64 {
        let mut rng = Rng64::new(0xD1575EED ^ seed);
        let mut budget = 24usize;
        let top_len = 1 + rng.range_usize(7);
        let stmts = gen_block(&mut rng, 3, top_len, &mut budget);
        let program = compile(&stmts);
        let mem0 = VecMemory::new(MEM_WORDS as u64 * 8);
        // Reference: lockstep-free execution.
        let mut reference = mem0.clone();
        ReferenceRunner::new(&program, 16)
            .with_step_budget(10_000_000)
            .run(&mut reference)
            .expect("reference terminates");
        for policy in [
            Policy::conventional(),
            Policy::dws_branch_stack(),
            Policy::dws_branch_only(),
            Policy::dws_mem_only(),
            Policy::dws_aggress(),
            Policy::dws_lazy(),
            Policy::dws_revive(),
            Policy::dws_revive_throttled(),
            Policy::dws_branch_limited(MemSplit::Revive),
            Policy::slip(),
            Policy::slip_branch_bypass(),
        ] {
            let out = run_policy(&program, policy, &mem0);
            assert_eq!(
                output_region(&out),
                output_region(&reference),
                "seed {seed}: policy {} diverged from reference ({stmts:?})",
                policy.paper_name()
            );
        }
    }
}

/// Scheduler-oracle property: the incremental ready-ring + wake-heap
/// scheduler must pick the *same group on the same cycle* as the legacy
/// exhaustive round-robin scan, for every policy, on randomly generated
/// divergent kernels. Fingerprints cover final memory, total cycles, and
/// the stall/issue/split accounting — any divergence in pick order would
/// shift at least one of these.
#[test]
fn event_scheduler_matches_scan_oracle() {
    for seed in 0..12u64 {
        let mut rng = Rng64::new(0x5C4EDA7E ^ seed);
        let mut budget = 24usize;
        let top_len = 1 + rng.range_usize(7);
        let stmts = gen_block(&mut rng, 3, top_len, &mut budget);
        let program = compile(&stmts);
        let mem0 = VecMemory::new(MEM_WORDS as u64 * 8);
        for policy in [
            Policy::conventional(),
            Policy::dws_branch_stack(),
            Policy::dws_branch_only(),
            Policy::dws_mem_only(),
            Policy::dws_aggress(),
            Policy::dws_lazy(),
            Policy::dws_revive(),
            Policy::dws_revive_throttled(),
            Policy::dws_branch_limited(MemSplit::Revive),
            Policy::slip(),
            Policy::slip_branch_bypass(),
        ] {
            let event = run_policy_with(&program, policy, &mem0, false);
            let scan = run_policy_with(&program, policy, &mem0, true);
            assert_eq!(
                event.1,
                scan.1,
                "seed {seed}: policy {} cycle count diverged from scan oracle",
                policy.paper_name()
            );
            assert_eq!(
                event.2,
                scan.2,
                "seed {seed}: policy {} accounting diverged from scan oracle",
                policy.paper_name()
            );
            assert_eq!(
                event.0.words(),
                scan.0.words(),
                "seed {seed}: policy {} memory diverged from scan oracle ({stmts:?})",
                policy.paper_name()
            );
        }
    }
}
