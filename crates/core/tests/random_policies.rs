//! Randomized differential test: for *randomly generated* structured
//! kernels, every scheduling policy — conventional, the full DWS matrix,
//! adaptive slip — must produce memory contents identical to the
//! timing-free reference runner. This is the strongest correctness property
//! of the simulator: subdivision, re-convergence, slip and barrier logic
//! may change timing, never results. Kernels are generated from the
//! vendored deterministic PRNG, so any failing seed reproduces exactly.

mod common;

use common::{all_policies, compile, gen_block, MEM_WORDS};
use dws_core::{Policy, TickClass, Wpu, WpuConfig};
use dws_engine::rng::Rng64;
use dws_engine::Cycle;
use dws_isa::{Program, ReferenceRunner, VecMemory};
use dws_mem::{MemConfig, MemorySystem};
use std::sync::Arc;

/// Runs the program on a 2-warp, 8-wide WPU under `policy`.
fn run_policy(program: &Program, policy: Policy, mem0: &VecMemory) -> VecMemory {
    run_policy_with(program, policy, mem0, false).0
}

/// Observable fingerprint of one WPU-level run: final memory, end cycle,
/// and the stall/issue/split accounting the figures are built from.
type RunFingerprint = (VecMemory, u64, [u64; 7]);

/// As [`run_policy`], optionally forcing the legacy linear-scan scheduler
/// ([`Wpu::set_scan_scheduler`]) instead of the ready-ring + wake-heap.
fn run_policy_with(
    program: &Program,
    policy: Policy,
    mem0: &VecMemory,
    scan: bool,
) -> RunFingerprint {
    let program = Arc::new(program.clone());
    let mut cfg = WpuConfig::paper(0, policy);
    cfg.n_warps = 2;
    cfg.width = 8;
    cfg.sched_slots = 4;
    let mut wpu = Wpu::new(cfg, program, 0, 16);
    wpu.set_scan_scheduler(scan);
    let mut mem = MemorySystem::new(MemConfig::paper(1, 8));
    let mut data = mem0.clone();
    let mut now = Cycle(0);
    loop {
        for c in mem.drain_completions(now) {
            wpu.on_completion(c.request, c.at);
        }
        if let TickClass::Done = wpu.tick(now, &mut mem, &mut data) {
            break;
        }
        let live = wpu.live_threads();
        if live > 0 && wpu.barrier_waiting() == live {
            wpu.release_barrier(now);
        }
        now += 1;
        assert!(now.raw() < 20_000_000, "policy {policy:?} did not finish");
    }
    let s = &wpu.stats;
    let fp = [
        s.busy_cycles.get(),
        s.mem_stall_cycles.get(),
        s.idle_cycles.get(),
        s.warp_insts.get(),
        s.branch_splits.get(),
        s.mem_splits.get(),
        s.revive_splits.get(),
    ];
    (data, now.raw(), fp)
}

fn output_region(mem: &VecMemory) -> &[u64] {
    &mem.words()[(MEM_WORDS / 2) as usize..]
}

#[test]
fn random_kernels_agree_across_policies() {
    for seed in 0..24u64 {
        let mut rng = Rng64::new(0xD1575EED ^ seed);
        let mut budget = 24usize;
        let top_len = 1 + rng.range_usize(7);
        let stmts = gen_block(&mut rng, 3, top_len, &mut budget);
        let program = compile(&stmts);
        let mem0 = VecMemory::new(MEM_WORDS as u64 * 8);
        // Reference: lockstep-free execution.
        let mut reference = mem0.clone();
        ReferenceRunner::new(&program, 16)
            .with_step_budget(10_000_000)
            .run(&mut reference)
            .expect("reference terminates");
        for policy in all_policies() {
            let out = run_policy(&program, policy, &mem0);
            assert_eq!(
                output_region(&out),
                output_region(&reference),
                "seed {seed}: policy {} diverged from reference ({stmts:?})",
                policy.paper_name()
            );
        }
    }
}

/// Scheduler-oracle property: the incremental ready-ring + wake-heap
/// scheduler must pick the *same group on the same cycle* as the legacy
/// exhaustive round-robin scan, for every policy, on randomly generated
/// divergent kernels. Fingerprints cover final memory, total cycles, and
/// the stall/issue/split accounting — any divergence in pick order would
/// shift at least one of these.
#[test]
fn event_scheduler_matches_scan_oracle() {
    for seed in 0..12u64 {
        let mut rng = Rng64::new(0x5C4EDA7E ^ seed);
        let mut budget = 24usize;
        let top_len = 1 + rng.range_usize(7);
        let stmts = gen_block(&mut rng, 3, top_len, &mut budget);
        let program = compile(&stmts);
        let mem0 = VecMemory::new(MEM_WORDS as u64 * 8);
        for policy in all_policies() {
            let event = run_policy_with(&program, policy, &mem0, false);
            let scan = run_policy_with(&program, policy, &mem0, true);
            assert_eq!(
                event.1,
                scan.1,
                "seed {seed}: policy {} cycle count diverged from scan oracle",
                policy.paper_name()
            );
            assert_eq!(
                event.2,
                scan.2,
                "seed {seed}: policy {} accounting diverged from scan oracle",
                policy.paper_name()
            );
            assert_eq!(
                event.0.words(),
                scan.0.words(),
                "seed {seed}: policy {} memory diverged from scan oracle ({stmts:?})",
                policy.paper_name()
            );
        }
    }
}
