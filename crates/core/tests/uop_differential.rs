//! Engine-oracle differential test: the predecoded µop execution engine
//! (warp-wide kernels over the SoA register file) must be observably
//! indistinguishable from the legacy per-lane interpreter
//! ([`Wpu::set_uop_engine`]) — for every scheduling policy, on randomly
//! generated divergent kernels. The fingerprint covers the final memory
//! image, the end cycle, the issue/stall/split accounting, the op-class
//! counters the engines classify directly (int/fp/load/store), and the
//! full divergence-event trace: a µop lowering bug that changed a value,
//! an address, a branch outcome, or even just event *timing* would shift
//! at least one of these.
//!
//! (Debug builds additionally cross-check both engines on every executed
//! instruction inside the WPU itself; this test is the release-mode
//! guarantee and pins run-level equality of everything observable.)

mod common;

use common::{all_policies, compile, gen_block, MEM_WORDS};
use dws_core::{Policy, TickClass, TraceEvent, Wpu, WpuConfig};
use dws_engine::rng::Rng64;
use dws_engine::Cycle;
use dws_isa::{Program, VecMemory};
use dws_mem::{MemConfig, MemorySystem};
use std::sync::Arc;

/// Everything observable about one run: final memory, end cycle, the
/// stats fingerprint, and the divergence-event trace.
struct RunResult {
    memory: VecMemory,
    cycles: u64,
    stats: [u64; 11],
    trace: Vec<TraceEvent>,
}

/// Runs the program on a 2-warp, 8-wide WPU under `policy`, with the
/// predecoded µop engine on or off (off = legacy per-lane interpreter).
fn run_engine(program: &Arc<Program>, policy: Policy, mem0: &VecMemory, uop: bool) -> RunResult {
    let mut cfg = WpuConfig::paper(0, policy);
    cfg.n_warps = 2;
    cfg.width = 8;
    cfg.sched_slots = 4;
    let mut wpu = Wpu::new(cfg, Arc::clone(program), 0, 16);
    wpu.set_uop_engine(uop);
    wpu.enable_trace(1 << 16);
    let mut mem = MemorySystem::new(MemConfig::paper(1, 8));
    let mut data = mem0.clone();
    let mut now = Cycle(0);
    loop {
        for c in mem.drain_completions(now) {
            wpu.on_completion(c.request, c.at);
        }
        if let TickClass::Done = wpu.tick(now, &mut mem, &mut data) {
            break;
        }
        let live = wpu.live_threads();
        if live > 0 && wpu.barrier_waiting() == live {
            wpu.release_barrier(now);
        }
        now += 1;
        assert!(now.raw() < 20_000_000, "policy {policy:?} did not finish");
    }
    let s = &wpu.stats;
    let stats = [
        s.busy_cycles.get(),
        s.mem_stall_cycles.get(),
        s.idle_cycles.get(),
        s.warp_insts.get(),
        s.thread_insts.get(),
        s.branch_splits.get(),
        s.mem_splits.get(),
        s.revive_splits.get(),
        s.int_ops.get() + s.fp_ops.get(),
        s.fp_ops.get(),
        s.loads.get() + s.stores.get(),
    ];
    let trace = wpu
        .tracer()
        .expect("tracing enabled")
        .events()
        .copied()
        .collect();
    RunResult {
        memory: data,
        cycles: now.raw(),
        stats,
        trace,
    }
}

#[test]
fn uop_engine_matches_legacy_interpreter() {
    for seed in 0..16u64 {
        let mut rng = Rng64::new(0xB00C0DE5 ^ seed);
        let mut budget = 24usize;
        let top_len = 1 + rng.range_usize(7);
        let stmts = gen_block(&mut rng, 3, top_len, &mut budget);
        let program = Arc::new(compile(&stmts));
        let mem0 = VecMemory::new(MEM_WORDS as u64 * 8);
        for policy in all_policies() {
            let uop = run_engine(&program, policy, &mem0, true);
            let legacy = run_engine(&program, policy, &mem0, false);
            assert_eq!(
                uop.cycles,
                legacy.cycles,
                "seed {seed}: policy {} cycle count diverged from legacy engine",
                policy.paper_name()
            );
            assert_eq!(
                uop.stats,
                legacy.stats,
                "seed {seed}: policy {} accounting diverged from legacy engine",
                policy.paper_name()
            );
            assert_eq!(
                uop.trace,
                legacy.trace,
                "seed {seed}: policy {} divergence trace diverged from legacy engine",
                policy.paper_name()
            );
            assert_eq!(
                uop.memory.words(),
                legacy.memory.words(),
                "seed {seed}: policy {} memory diverged from legacy engine ({stmts:?})",
                policy.paper_name()
            );
        }
    }
}
