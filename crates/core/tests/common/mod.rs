//! Shared randomized-kernel machinery for the differential test suites
//! (`random_policies`, `uop_differential`): a tiny structured-program AST,
//! a deterministic generator over it, and a compiler into kernel IR.
//!
//! Each test binary compiles this module independently and uses a different
//! subset, so unused items are expected.
#![allow(dead_code)]

use dws_core::{MemSplit, Policy};
use dws_engine::rng::Rng64;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, Reg};

/// Words of scratch memory each generated kernel may touch.
pub const MEM_WORDS: i64 = 512;

/// A tiny structured-program AST we can generate and compile.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// dst_reg, src selector, immediate
    Arith(u8, u8, i64),
    /// value reg, address-selector immediate word index
    Store(u8, i64),
    /// dst reg, address word index offset by a register
    Load(u8, u8),
    /// condition on (reg cmp imm): then-branch, else-branch
    If(u8, i64, Vec<Stmt>, Vec<Stmt>),
    /// bounded loop: iterations 1..=3, body
    Loop(u8, Vec<Stmt>),
}

/// Generates one random statement; `depth` bounds nesting and `budget`
/// bounds total statement count (mirroring proptest's recursive strategy).
pub fn gen_stmt(rng: &mut Rng64, depth: u32, budget: &mut usize) -> Stmt {
    *budget = budget.saturating_sub(1);
    let composite = depth > 0 && *budget > 0 && rng.chance(0.35);
    if composite {
        if rng.chance(0.5) {
            let r = rng.range_i64(0, 4) as u8;
            let imm = rng.range_i64(-3, 3);
            let then_len = 1 + rng.range_usize(3);
            let then_branch = gen_block(rng, depth - 1, then_len, budget);
            let else_len = rng.range_usize(3);
            let else_branch = gen_block(rng, depth - 1, else_len, budget);
            Stmt::If(r, imm, then_branch, else_branch)
        } else {
            let n = rng.range_i64(1, 4) as u8;
            let body_len = 1 + rng.range_usize(3);
            let body = gen_block(rng, depth - 1, body_len, budget);
            Stmt::Loop(n, body)
        }
    } else {
        match rng.range_usize(3) {
            0 => Stmt::Arith(
                rng.range_i64(0, 4) as u8,
                rng.range_i64(0, 4) as u8,
                rng.range_i64(-7, 7),
            ),
            1 => Stmt::Store(rng.range_i64(0, 4) as u8, rng.range_i64(0, MEM_WORDS / 2)),
            _ => Stmt::Load(rng.range_i64(0, 4) as u8, rng.range_i64(0, 4) as u8),
        }
    }
}

pub fn gen_block(rng: &mut Rng64, depth: u32, len: usize, budget: &mut usize) -> Vec<Stmt> {
    (0..len)
        .map_while(|_| {
            if *budget == 0 {
                None
            } else {
                Some(gen_stmt(rng, depth, budget))
            }
        })
        .collect()
}

/// Compiles the AST into a kernel. Every thread runs the same statements on
/// thread-dependent data, then stores its registers to a thread-private
/// output slice.
pub fn compile(stmts: &[Stmt]) -> Program {
    let mut b = KernelBuilder::new();
    let tid = b.tid();
    let regs: Vec<Reg> = (0..4).map(|_| b.reg()).collect();
    let addr = b.reg();
    let tmp = b.reg();
    // Seed registers from tid so threads diverge.
    for (i, &r) in regs.iter().enumerate() {
        b.mul(tmp, tid, Operand::Imm(i as i64 * 3 + 1));
        b.add(regs[i], Operand::Reg(tmp), Operand::Imm(i as i64));
        let _ = r;
    }
    emit(&mut b, stmts, &regs, addr, tmp, tid);
    // Write out all registers to out[tid*4 + i].
    for (i, &r) in regs.iter().enumerate() {
        b.mul(addr, tid, Operand::Imm(4));
        b.add(addr, Operand::Reg(addr), Operand::Imm(i as i64));
        b.rem(addr, Operand::Reg(addr), Operand::Imm(MEM_WORDS / 2));
        b.add(addr, Operand::Reg(addr), Operand::Imm(MEM_WORDS / 2));
        b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
        b.store(Operand::Reg(r), addr, 0);
    }
    b.halt();
    b.build().expect("generated kernel is well-formed")
}

fn emit(b: &mut KernelBuilder, stmts: &[Stmt], regs: &[Reg], addr: Reg, tmp: Reg, tid: Reg) {
    for s in stmts {
        match s {
            Stmt::Arith(d, src, imm) => {
                let d = regs[*d as usize % regs.len()];
                let src = regs[*src as usize % regs.len()];
                b.mul(tmp, Operand::Reg(src), Operand::Imm(3));
                b.add(d, Operand::Reg(tmp), Operand::Imm(*imm));
                b.rem(d, Operand::Reg(d), Operand::Imm(1009));
            }
            Stmt::Store(r, w) => {
                // Strictly thread-private slot (16 words per thread):
                // slot = tid*16 + (w mod 16). Cross-thread races would make
                // results interleaving-dependent and the property unsound.
                let r = regs[*r as usize % regs.len()];
                b.mul(addr, tid, Operand::Imm(16));
                b.add(addr, Operand::Reg(addr), Operand::Imm(*w % 16));
                b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
                b.store(Operand::Reg(r), addr, 0);
            }
            Stmt::Load(d, a) => {
                // Load from the thread's own 16-word window, index chosen
                // by a register value (data-dependent, but race-free).
                let d = regs[*d as usize % regs.len()];
                let a = regs[*a as usize % regs.len()];
                b.rem(addr, Operand::Reg(a), Operand::Imm(16));
                b.if_then(CondOp::Lt, Operand::Reg(addr), Operand::Imm(0), |b| {
                    b.add(addr, Operand::Reg(addr), Operand::Imm(16));
                });
                b.mul(tmp, tid, Operand::Imm(16));
                b.add(addr, Operand::Reg(addr), Operand::Reg(tmp));
                b.mul(addr, Operand::Reg(addr), Operand::Imm(8));
                b.load(d, addr, 0);
            }
            Stmt::If(r, imm, t, e) => {
                let r = regs[*r as usize % regs.len()];
                let (t, e) = (t.clone(), e.clone());
                let regs2 = regs.to_vec();
                b.if_then_else(
                    CondOp::Gt,
                    Operand::Reg(r),
                    Operand::Imm(*imm),
                    |b| emit(b, &t, &regs2, addr, tmp, tid),
                    |b| emit(b, &e, &regs2, addr, tmp, tid),
                );
            }
            Stmt::Loop(n, body) => {
                let i = b.reg();
                let body = body.clone();
                let regs2 = regs.to_vec();
                b.for_range(
                    i,
                    Operand::Imm(0),
                    Operand::Imm(*n as i64),
                    Operand::Imm(1),
                    |b| emit(b, &body, &regs2, addr, tmp, tid),
                );
            }
        }
    }
}

/// Every scheduling policy the differential suites sweep: conventional,
/// the full DWS matrix, and the adaptive-slip baselines.
pub fn all_policies() -> [Policy; 11] {
    [
        Policy::conventional(),
        Policy::dws_branch_stack(),
        Policy::dws_branch_only(),
        Policy::dws_mem_only(),
        Policy::dws_aggress(),
        Policy::dws_lazy(),
        Policy::dws_revive(),
        Policy::dws_revive_throttled(),
        Policy::dws_branch_limited(MemSplit::Revive),
        Policy::slip(),
        Policy::slip_branch_bypass(),
    ]
}
