//! Behavioral tests of the WPU: every scheduling policy must compute the
//! same results as the timing-free reference runner, and the divergence
//! machinery must create/merge splits as the paper describes.

use dws_core::{GroupStatus, Mask, Policy, TickClass, Wpu, WpuConfig};
use dws_engine::Cycle;
use dws_isa::{CondOp, KernelBuilder, Operand, Program, ReferenceRunner, VecMemory};
use dws_mem::{MemConfig, MemorySystem};
use std::sync::Arc;

/// A single-machine driver: N WPUs over one memory system and one
/// functional store.
struct Mini {
    wpus: Vec<Wpu>,
    mem: MemorySystem,
    data: VecMemory,
    cycles: u64,
}

fn run_machine(
    program: &Program,
    policy: Policy,
    n_wpus: usize,
    width: usize,
    n_warps: usize,
    data: VecMemory,
    max_cycles: u64,
) -> Mini {
    let program = Arc::new(program.clone());
    let nthreads = (n_wpus * width * n_warps) as u64;
    let mem = MemorySystem::new(MemConfig::paper(n_wpus, width));
    let wpus: Vec<Wpu> = (0..n_wpus)
        .map(|i| {
            let mut cfg = WpuConfig::paper(i, policy);
            cfg.width = width;
            cfg.n_warps = n_warps;
            cfg.sched_slots = 2 * n_warps;
            Wpu::new(
                cfg,
                Arc::clone(&program),
                (i * width * n_warps) as u64,
                nthreads,
            )
        })
        .collect();
    let mut m = Mini {
        wpus,
        mem,
        data,
        cycles: 0,
    };
    let mut now = Cycle(0);
    loop {
        for c in m.mem.drain_completions(now) {
            m.wpus[c.l1].on_completion(c.request, c.at);
        }
        let mut all_done = true;
        for w in &mut m.wpus {
            let t = w.tick(now, &mut m.mem, &mut m.data);
            if t != TickClass::Done {
                all_done = false;
            }
        }
        // Global barrier release.
        let live: u64 = m.wpus.iter().map(Wpu::live_threads).sum();
        let waiting: u64 = m.wpus.iter().map(Wpu::barrier_waiting).sum();
        if live > 0 && waiting == live {
            for w in &mut m.wpus {
                w.release_barrier(now);
            }
        }
        if all_done {
            break;
        }
        now += 1;
        m.cycles = now.raw();
        assert!(
            now.raw() < max_cycles,
            "machine did not finish within {max_cycles} cycles under {:?} \
             (live={live}, waiting={waiting})",
            policy.paper_name()
        );
    }
    m
}

fn all_policies() -> Vec<Policy> {
    vec![
        Policy::conventional(),
        Policy::dws_branch_stack(),
        Policy::dws_branch_only(),
        Policy::dws_mem_only(),
        Policy::dws_aggress(),
        Policy::dws_lazy(),
        Policy::dws_revive(),
        Policy::dws_revive_throttled(),
        Policy::dws_branch_limited(dws_core::MemSplit::Aggressive),
        Policy::dws_branch_limited(dws_core::MemSplit::Lazy),
        Policy::dws_branch_limited(dws_core::MemSplit::Revive),
        Policy::slip(),
        Policy::slip_branch_bypass(),
    ]
}

/// out[tid] = tid * 3 + 1 — no divergence at all.
fn straight_line_kernel() -> Program {
    let mut b = KernelBuilder::new();
    let tid = b.tid();
    let v = b.reg();
    let a = b.reg();
    b.mul(v, tid, Operand::Imm(3));
    b.add(v, Operand::Reg(v), Operand::Imm(1));
    b.addr(a, Operand::Imm(0), Operand::Reg(tid), 8);
    b.store(Operand::Reg(v), a, 0);
    b.halt();
    b.build().unwrap()
}

/// Bounded Collatz per thread: data-dependent loop + branch divergence.
/// in: a[0..n] at byte 0; out: steps[0..n] at byte n*8.
fn collatz_kernel(n: i64, max_steps: i64) -> Program {
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let i = b.reg();
    let a = b.reg();
    let v = b.reg();
    let steps = b.reg();
    let parity = b.reg();
    let done = b.reg();
    let t = b.reg();
    b.for_range(i, tid, Operand::Imm(n), ntid, |b| {
        b.addr(a, Operand::Imm(0), Operand::Reg(i), 8);
        b.load(v, a, 0);
        b.li(steps, 0);
        let head = b.label();
        let exit = b.label();
        b.bind(head);
        b.set(CondOp::Eq, done, Operand::Reg(v), Operand::Imm(1));
        b.set(CondOp::Ge, t, Operand::Reg(steps), Operand::Imm(max_steps));
        b.or(done, Operand::Reg(done), Operand::Reg(t));
        b.br(CondOp::Ne, Operand::Reg(done), Operand::Imm(0), exit);
        b.rem(parity, Operand::Reg(v), Operand::Imm(2));
        b.if_then_else(
            CondOp::Eq,
            Operand::Reg(parity),
            Operand::Imm(0),
            |b| b.div(v, Operand::Reg(v), Operand::Imm(2)),
            |b| {
                b.mul(v, Operand::Reg(v), Operand::Imm(3));
                b.add(v, Operand::Reg(v), Operand::Imm(1));
            },
        );
        b.add(steps, Operand::Reg(steps), Operand::Imm(1));
        b.jmp(head);
        b.bind(exit);
        b.addr(a, Operand::Imm(n * 8), Operand::Reg(i), 8);
        b.store(Operand::Reg(steps), a, 0);
    });
    b.halt();
    b.build().unwrap()
}

/// Pointer chasing: heavy memory-latency divergence, no data-dependent
/// branches. in: ring table at byte 0 (n entries); out at n*8.
fn chase_kernel(n: i64, hops: i64) -> Program {
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let i = b.reg();
    let v = b.reg();
    let a = b.reg();
    let k = b.reg();
    b.for_range(i, tid, Operand::Imm(n), ntid, |b| {
        b.mov(v, Operand::Reg(i));
        b.for_range(
            k,
            Operand::Imm(0),
            Operand::Imm(hops),
            Operand::Imm(1),
            |b| {
                b.rem(a, Operand::Reg(v), Operand::Imm(n));
                b.addr(a, Operand::Imm(0), Operand::Reg(a), 8);
                b.load(v, a, 0);
            },
        );
        b.addr(a, Operand::Imm(n * 8), Operand::Reg(i), 8);
        b.store(Operand::Reg(v), a, 0);
    });
    b.halt();
    b.build().unwrap()
}

/// Two barrier-separated phases with cross-thread communication.
fn barrier_kernel(n: i64) -> Program {
    let mut b = KernelBuilder::new();
    let (tid, ntid) = (b.tid(), b.ntid());
    let i = b.reg();
    let a = b.reg();
    let v = b.reg();
    let j = b.reg();
    b.for_range(i, tid, Operand::Imm(n), ntid, |b| {
        b.addr(a, Operand::Imm(0), Operand::Reg(i), 8);
        b.add(v, Operand::Reg(i), Operand::Imm(100));
        b.store(Operand::Reg(v), a, 0);
    });
    b.barrier();
    b.for_range(i, tid, Operand::Imm(n), ntid, |b| {
        b.add(j, Operand::Reg(i), Operand::Imm(1));
        b.rem(j, Operand::Reg(j), Operand::Imm(n));
        b.addr(a, Operand::Imm(0), Operand::Reg(j), 8);
        b.load(v, a, 0);
        b.mul(v, Operand::Reg(v), Operand::Imm(2));
        b.addr(a, Operand::Imm(n * 8), Operand::Reg(i), 8);
        b.store(Operand::Reg(v), a, 0);
    });
    b.halt();
    b.build().unwrap()
}

fn collatz_data(n: i64) -> VecMemory {
    let mut m = VecMemory::new(2 * n as u64 * 8);
    for i in 0..n {
        // A spread of values with very different trajectory lengths.
        m.write_i64(i as u64 * 8, (i * 7 + 3) % 97 + 1);
    }
    m
}

fn chase_data(n: i64) -> VecMemory {
    let mut m = VecMemory::new(2 * n as u64 * 8);
    for i in 0..n {
        // Deterministic scramble with large strides (cache-hostile).
        m.write_i64(i as u64 * 8, (i * striding(n) + 13) % n);
    }
    m
}

fn striding(n: i64) -> i64 {
    // A multiplier coprime with n to make the ring a single cycle-ish mess.
    let mut s = 337;
    while gcd(s, n) != 1 {
        s += 2;
    }
    s
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn reference_words(program: &Program, nthreads: u64, mut data: VecMemory) -> Vec<u64> {
    ReferenceRunner::new(program, nthreads)
        .run(&mut data)
        .expect("reference run");
    data.words().to_vec()
}

#[test]
fn straight_line_all_policies_match_reference() {
    let p = straight_line_kernel();
    let nthreads = 2 * 8 * 2; // 2 WPUs x 8 wide x 2 warps
    let data = VecMemory::new(nthreads * 8);
    let expect = reference_words(&p, nthreads, data.clone());
    for policy in all_policies() {
        let m = run_machine(&p, policy, 2, 8, 2, data.clone(), 1_000_000);
        assert_eq!(
            m.data.words(),
            &expect[..],
            "policy {} diverged from reference",
            policy.paper_name()
        );
    }
}

#[test]
fn collatz_all_policies_match_reference() {
    let n = 96;
    let p = collatz_kernel(n, 200);
    let nthreads = 32; // 1 WPU x 16 x 2
    let data = collatz_data(n);
    let expect = reference_words(&p, nthreads, data.clone());
    for policy in all_policies() {
        let m = run_machine(&p, policy, 1, 16, 2, data.clone(), 10_000_000);
        assert_eq!(
            m.data.words(),
            &expect[..],
            "policy {} diverged from reference",
            policy.paper_name()
        );
    }
}

#[test]
fn chase_all_policies_match_reference() {
    let n = 512;
    let p = chase_kernel(n, 24);
    let nthreads = 64; // 1 WPU x 16 x 4
    let data = chase_data(n);
    let expect = reference_words(&p, nthreads, data.clone());
    for policy in all_policies() {
        let m = run_machine(&p, policy, 1, 16, 4, data.clone(), 50_000_000);
        assert_eq!(
            m.data.words(),
            &expect[..],
            "policy {} diverged from reference",
            policy.paper_name()
        );
    }
}

#[test]
fn barrier_all_policies_match_reference() {
    let n = 64;
    let p = barrier_kernel(n);
    let nthreads = 2 * 8 * 2;
    let data = VecMemory::new(2 * n as u64 * 8);
    let expect = reference_words(&p, nthreads, data.clone());
    for policy in all_policies() {
        let m = run_machine(&p, policy, 2, 8, 2, data.clone(), 10_000_000);
        assert_eq!(
            m.data.words(),
            &expect[..],
            "policy {} diverged from reference",
            policy.paper_name()
        );
    }
}

#[test]
fn divergent_branches_are_counted() {
    let n = 96;
    let p = collatz_kernel(n, 200);
    let m = run_machine(
        &p,
        Policy::conventional(),
        1,
        16,
        2,
        collatz_data(n),
        10_000_000,
    );
    let s = &m.wpus[0].stats;
    assert!(s.branches.get() > 0);
    assert!(
        s.divergent_branches.get() > 0,
        "collatz must produce divergent branches"
    );
    assert!(s.simd_width.ratio().unwrap() < 16.0);
}

#[test]
fn dws_revive_creates_and_merges_splits() {
    let n = 512;
    let p = chase_kernel(n, 24);
    let m = run_machine(
        &p,
        Policy::dws_revive(),
        1,
        16,
        4,
        chase_data(n),
        50_000_000,
    );
    let s = &m.wpus[0].stats;
    assert!(
        s.mem_splits.get() + s.revive_splits.get() > 0,
        "pointer chasing must trigger memory-divergence subdivision"
    );
    assert!(
        s.pc_merges.get() + s.stack_merges.get() > 0,
        "splits must re-converge"
    );
    assert!(m.wpus[0].wst_peak() > 0);
}

#[test]
fn dws_aggressive_splits_on_divergence() {
    let n = 512;
    let p = chase_kernel(n, 24);
    let m = run_machine(
        &p,
        Policy::dws_aggress(),
        1,
        16,
        4,
        chase_data(n),
        50_000_000,
    );
    assert!(m.wpus[0].stats.mem_splits.get() > 0);
}

/// The paper's Figures 8/9 scenario: lanes alternate between a cached hot
/// region and an L1-hostile cold region each iteration, with a divergent
/// branch selecting the region and compute in between. Hit lanes running
/// ahead issue the next iteration's misses early — exactly what DWS
/// exploits.
fn alternating_kernel(iters: i64, compute: usize) -> Program {
    const HOT_WORDS: i64 = 1024; // 8 KB
    const COLD_WORDS: i64 = 64 * 1024; // 512 KB
    let hot_base = 0i64;
    let cold_base = HOT_WORDS * 8;
    let out_base = cold_base + COLD_WORDS * 8;
    let mut b = KernelBuilder::new();
    let tid = b.tid();
    let k = b.reg();
    let ph = b.reg();
    let a = b.reg();
    let v = b.reg();
    let acc = b.reg();
    let t = b.reg();
    b.li(acc, 0);
    b.for_range(
        k,
        Operand::Imm(0),
        Operand::Imm(iters),
        Operand::Imm(1),
        |b| {
            b.add(ph, Operand::Reg(k), Operand::Reg(tid));
            b.and(ph, Operand::Reg(ph), Operand::Imm(1));
            b.if_then_else(
                CondOp::Eq,
                Operand::Reg(ph),
                Operand::Imm(0),
                |b| {
                    b.mul(t, Operand::Reg(tid), Operand::Imm(37));
                    b.add(t, Operand::Reg(t), Operand::Reg(k));
                    b.rem(t, Operand::Reg(t), Operand::Imm(HOT_WORDS));
                    b.addr(a, Operand::Imm(hot_base), Operand::Reg(t), 8);
                },
                |b| {
                    b.mul(t, Operand::Reg(tid), Operand::Imm(8191));
                    b.add(t, Operand::Reg(t), Operand::Reg(k));
                    b.mul(t, Operand::Reg(t), Operand::Imm(257));
                    b.rem(t, Operand::Reg(t), Operand::Imm(COLD_WORDS));
                    b.addr(a, Operand::Imm(cold_base), Operand::Reg(t), 8);
                },
            );
            b.load(v, a, 0);
            b.add(acc, Operand::Reg(acc), Operand::Reg(v));
            for _ in 0..compute {
                b.mul(acc, Operand::Reg(acc), Operand::Imm(3));
                b.add(acc, Operand::Reg(acc), Operand::Imm(1));
            }
        },
    );
    b.addr(a, Operand::Imm(out_base), Operand::Reg(tid), 8);
    b.store(Operand::Reg(acc), a, 0);
    b.halt();
    b.build().unwrap()
}

fn alternating_data() -> VecMemory {
    let words = 1024 + 64 * 1024;
    let mut m = VecMemory::new((words + 64) as u64 * 8 + 4096);
    for i in 0..words {
        m.write_i64(i as u64 * 8, i % 1000);
    }
    m
}

#[test]
fn dws_helps_memory_divergent_workload() {
    let p = alternating_kernel(200, 6);
    let conv = run_machine(
        &p,
        Policy::conventional(),
        1,
        16,
        4,
        alternating_data(),
        100_000_000,
    );
    let dws = run_machine(
        &p,
        Policy::dws_revive(),
        1,
        16,
        4,
        alternating_data(),
        100_000_000,
    );
    assert!(
        (dws.cycles as f64) < 0.9 * conv.cycles as f64,
        "DWS.ReviveSplit ({} cycles) should beat Conv ({} cycles) by >1.1X \
         on the alternating hot/cold workload",
        dws.cycles,
        conv.cycles
    );
    // Equivalence on this workload too.
    let expect = reference_words(&p, 64, alternating_data());
    assert_eq!(dws.data.words(), &expect[..]);
    assert_eq!(conv.data.words(), &expect[..]);
}

#[test]
fn alternating_all_policies_match_reference() {
    let p = alternating_kernel(40, 4);
    let expect = reference_words(&p, 64, alternating_data());
    for policy in all_policies() {
        let m = run_machine(&p, policy, 1, 16, 4, alternating_data(), 100_000_000);
        assert_eq!(
            m.data.words(),
            &expect[..],
            "policy {} diverged from reference",
            policy.paper_name()
        );
    }
}

#[test]
fn wst_of_zero_disables_subdivision() {
    let n = 256;
    let p = chase_kernel(n, 8);
    let program = Arc::new(p.clone());
    let mut cfg = WpuConfig::paper(0, Policy::dws_revive());
    cfg.wst_entries = 0;
    let mut wpu = Wpu::new(cfg, Arc::clone(&program), 0, 64);
    let mut mem = MemorySystem::new(MemConfig::paper(1, 16));
    let mut data = chase_data(n);
    let mut now = Cycle(0);
    while !wpu.done() {
        for c in mem.drain_completions(now) {
            wpu.on_completion(c.request, c.at);
        }
        wpu.tick(now, &mut mem, &mut data);
        let live = wpu.live_threads();
        if live > 0 && wpu.barrier_waiting() == live {
            wpu.release_barrier(now);
        }
        now += 1;
        assert!(now.raw() < 50_000_000);
    }
    assert_eq!(wpu.stats.mem_splits.get(), 0);
    assert_eq!(wpu.stats.revive_splits.get(), 0);
    assert_eq!(wpu.wst_peak(), 0);
    assert!(
        wpu.stats.wst_full_events.get() > 0,
        "splits were suppressed"
    );
}

#[test]
fn slip_policy_slips_and_merges() {
    let n = 512;
    let p = chase_kernel(n, 24);
    let m = run_machine(&p, Policy::slip(), 1, 16, 4, chase_data(n), 100_000_000);
    let s = &m.wpus[0].stats;
    assert!(s.slip_events.get() > 0, "slip must leave threads behind");
}

#[test]
fn per_thread_miss_map_has_shape_and_content() {
    let n = 512;
    let p = chase_kernel(n, 16);
    let m = run_machine(
        &p,
        Policy::conventional(),
        1,
        16,
        4,
        chase_data(n),
        100_000_000,
    );
    let map = m.wpus[0].per_thread_misses();
    assert_eq!(map.len(), 4);
    assert!(map.iter().all(|w| w.len() == 16));
    let total: u64 = map.iter().flatten().sum();
    assert!(total > 0, "pointer chase must miss");
}

#[test]
fn groups_return_to_one_per_warp_at_end() {
    let n = 96;
    let p = collatz_kernel(n, 200);
    let m = run_machine(
        &p,
        Policy::dws_revive(),
        1,
        16,
        2,
        collatz_data(n),
        10_000_000,
    );
    assert_eq!(m.wpus[0].groups_alive(), 0, "all groups retired");
    assert!(m.wpus[0].done());
}

#[test]
fn mask_status_invariants_sampled() {
    // Drive a machine for a while and check in-flight invariants.
    let n = 512;
    let p = chase_kernel(n, 16);
    let program = Arc::new(p);
    let mut cfg = WpuConfig::paper(0, Policy::dws_revive());
    cfg.n_warps = 4;
    let mut wpu = Wpu::new(cfg, Arc::clone(&program), 0, 64);
    let mut mem = MemorySystem::new(MemConfig::paper(1, 16));
    let mut data = chase_data(n);
    let mut now = Cycle(0);
    while now.0 < 200_000 {
        if wpu.done() {
            break;
        }
        for c in mem.drain_completions(now) {
            wpu.on_completion(c.request, c.at);
        }
        wpu.tick(now, &mut mem, &mut data);
        let live = wpu.live_threads();
        if live > 0 && wpu.barrier_waiting() == live {
            wpu.release_barrier(now);
        }
        now += 1;
    }
    // The WPU exposes only aggregate views; the key invariant visible here
    // is conservation of threads between groups and halts.
    let _ = GroupStatus::Ready;
    let _ = Mask::EMPTY;
}

/// An `if` with an empty taken path (the min-update pattern): under
/// PC-based branch DWS the split must re-merge almost immediately, so the
/// split and merge counts match and the SIMD width stays high.
#[test]
fn empty_path_branch_split_remerges_immediately() {
    // for k in 0..64 { if (tid+k) % 2 == 0 { acc += 1 } ; acc += k }
    let mut b = KernelBuilder::new();
    let tid = b.tid();
    let k = b.reg();
    let acc = b.reg();
    let t = b.reg();
    let a = b.reg();
    b.li(acc, 0);
    b.for_range(k, Operand::Imm(0), Operand::Imm(64), Operand::Imm(1), |b| {
        b.add(t, Operand::Reg(k), Operand::Reg(tid));
        b.and(t, Operand::Reg(t), Operand::Imm(1));
        b.if_then(CondOp::Eq, Operand::Reg(t), Operand::Imm(0), |b| {
            b.add(acc, Operand::Reg(acc), Operand::Imm(1));
        });
        b.add(acc, Operand::Reg(acc), Operand::Reg(k));
    });
    b.addr(a, Operand::Imm(0), Operand::Reg(tid), 8);
    b.store(Operand::Reg(acc), a, 0);
    b.halt();
    let p = b.build().unwrap();

    let expect = reference_words(&p, 32, VecMemory::new(64 * 8));
    let m = run_machine(
        &p,
        Policy::dws_branch_only(),
        1,
        16,
        2,
        VecMemory::new(64 * 8),
        10_000_000,
    );
    assert_eq!(m.data.words(), &expect[..]);
    let s = &m.wpus[0].stats;
    assert!(s.branch_splits.get() > 50, "every iteration diverges");
    assert_eq!(
        s.branch_splits.get(),
        s.pc_merges.get() + s.stack_merges.get(),
        "every split re-merges"
    );
    assert!(
        s.simd_width.ratio().unwrap() > 12.0,
        "width stays high: {}",
        s.simd_width.ratio().unwrap()
    );
}

/// Under stack-based re-convergence (no PC matching), splits only re-unite
/// at stack post-dominators or barriers: pc merges must be zero.
#[test]
fn stack_based_mode_never_pc_merges() {
    let n = 96;
    let p = collatz_kernel(n, 200);
    let m = run_machine(
        &p,
        Policy::dws_branch_stack(),
        1,
        16,
        2,
        collatz_data(n),
        50_000_000,
    );
    let s = &m.wpus[0].stats;
    assert_eq!(s.pc_merges.get(), 0, "stack mode must not PC-merge");
    assert!(s.branch_splits.get() > 0);
}

/// BranchLimited re-convergence: memory splits must re-unite before any
/// conditional branch, so every split is matched by a stack merge and no
/// split survives past a branch.
#[test]
fn branch_limited_reconverges_at_branches() {
    let n = 512;
    let p = chase_kernel(n, 24);
    let m = run_machine(
        &p,
        Policy::dws_branch_limited(dws_core::MemSplit::Aggressive),
        1,
        16,
        4,
        chase_data(n),
        100_000_000,
    );
    let s = &m.wpus[0].stats;
    assert!(s.mem_splits.get() > 0, "divergent chase must split");
    assert!(
        s.stack_merges.get() + s.pc_merges.get() >= s.mem_splits.get(),
        "BL: every split re-unites at a branch ({} splits, {} merges)",
        s.mem_splits.get(),
        s.stack_merges.get() + s.pc_merges.get()
    );
}

/// The scheduler completes with the minimum viable slot count.
#[test]
fn minimum_scheduler_slots_still_complete() {
    let n = 96;
    let p = collatz_kernel(n, 200);
    let program = Arc::new(p.clone());
    let mut cfg = WpuConfig::paper(0, Policy::dws_revive());
    cfg.n_warps = 4;
    cfg.sched_slots = 4; // == warps: no headroom for splits
    let mut wpu = Wpu::new(cfg, program, 0, 64);
    let mut mem = dws_mem::MemorySystem::new(dws_mem::MemConfig::paper(1, 16));
    let mut data = collatz_data(n);
    let mut now = Cycle(0);
    while !wpu.done() {
        for c in mem.drain_completions(now) {
            wpu.on_completion(c.request, c.at);
        }
        wpu.tick(now, &mut mem, &mut data);
        let live = wpu.live_threads();
        if live > 0 && wpu.barrier_waiting() == live {
            wpu.release_barrier(now);
        }
        now += 1;
        assert!(now.raw() < 50_000_000, "tight slots must not deadlock");
    }
    let expect = reference_words(&p, 64, collatz_data(n));
    assert_eq!(data.words(), &expect[..]);
}

/// Turning off both PC-merge refinements must still be correct (the
/// ablation configuration), just slower on branchy code.
#[test]
fn ablation_flags_preserve_correctness() {
    let n = 96;
    let p = collatz_kernel(n, 200);
    let expect = reference_words(&p, 32, collatz_data(n));
    let policy = match Policy::dws_revive() {
        Policy::Dws(mut c) => {
            c.issue_pc_cam = false;
            c.park_short_path = false;
            Policy::Dws(c)
        }
        _ => unreachable!(),
    };
    let m = run_machine(&p, policy, 1, 16, 2, collatz_data(n), 50_000_000);
    assert_eq!(m.data.words(), &expect[..]);
}

/// The divergence tracer records splits and merges in causal order.
#[test]
fn tracer_records_divergence_story() {
    use dws_core::TraceEvent;
    let n = 512;
    let p = chase_kernel(n, 16);
    let program = Arc::new(p);
    let mut cfg = WpuConfig::paper(0, Policy::dws_revive());
    cfg.n_warps = 4;
    let mut wpu = Wpu::new(cfg, program, 0, 64);
    wpu.enable_trace(4096);
    let mut mem = MemorySystem::new(MemConfig::paper(1, 16));
    let mut data = chase_data(n);
    let mut now = Cycle(0);
    while !wpu.done() {
        for c in mem.drain_completions(now) {
            wpu.on_completion(c.request, c.at);
        }
        wpu.tick(now, &mut mem, &mut data);
        now += 1;
        assert!(now.raw() < 100_000_000);
    }
    let tracer = wpu.tracer().expect("tracing enabled");
    assert!(!tracer.is_empty(), "divergent run must produce events");
    let splits = tracer
        .events()
        .filter(|e| matches!(e, TraceEvent::MemSplit { .. } | TraceEvent::Revive { .. }))
        .count();
    let merges = tracer
        .events()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::PcMerge { .. } | TraceEvent::StackMerge { .. }
            )
        })
        .count();
    assert!(splits > 0, "chase must split");
    assert!(merges > 0, "splits must merge");
    // Events are recorded in non-decreasing cycle order.
    let cycles: Vec<u64> = tracer.events().map(|e| e.cycle().raw()).collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    // Display renders every event.
    for e in tracer.events().take(5) {
        assert!(!e.to_string().is_empty());
    }
}
