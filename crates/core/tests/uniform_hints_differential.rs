//! Uniformity-hint differential test: the scheduler consumes the
//! verifier's static branch-uniformity classification
//! ([`dws_isa::branch_uniformity`]) to evaluate provably-uniform branches
//! through one representative lane instead of the full warp. The fast path
//! must be *invisible*: cycle- and result-identical to full evaluation
//! ([`Wpu::set_uniform_hints`]), with the warp-split-table peak never
//! increasing — a hint can only skip redundant work, never change a branch
//! outcome or create a split. The dynamic spine guard (groups merging at
//! different uniform-loop trip counts poison the warp's fast path) is what
//! keeps the static classification sound; these kernels exercise it
//! through mem-divergence run-ahead across uniform loop back-edges.

mod common;

use common::{all_policies, compile, gen_block, MEM_WORDS};
use dws_core::{Policy, TickClass, TraceEvent, Wpu, WpuConfig};
use dws_engine::rng::Rng64;
use dws_engine::Cycle;
use dws_isa::{Program, VecMemory};
use dws_mem::{MemConfig, MemorySystem};
use std::sync::Arc;

struct RunResult {
    memory: VecMemory,
    cycles: u64,
    wst_peak: usize,
    fast_branches: u64,
    trace: Vec<TraceEvent>,
}

/// Runs the program on a 2-warp, 8-wide WPU under `policy`, with the
/// uniformity fast path on or off.
fn run_hints(program: &Arc<Program>, policy: Policy, mem0: &VecMemory, hints: bool) -> RunResult {
    let mut cfg = WpuConfig::paper(0, policy);
    cfg.n_warps = 2;
    cfg.width = 8;
    cfg.sched_slots = 4;
    let mut wpu = Wpu::new(cfg, Arc::clone(program), 0, 16);
    wpu.set_uniform_hints(hints);
    wpu.enable_trace(1 << 16);
    let mut mem = MemorySystem::new(MemConfig::paper(1, 8));
    let mut data = mem0.clone();
    let mut now = Cycle(0);
    loop {
        for c in mem.drain_completions(now) {
            wpu.on_completion(c.request, c.at);
        }
        if let TickClass::Done = wpu.tick(now, &mut mem, &mut data) {
            break;
        }
        let live = wpu.live_threads();
        if live > 0 && wpu.barrier_waiting() == live {
            wpu.release_barrier(now);
        }
        now += 1;
        assert!(now.raw() < 20_000_000, "policy {policy:?} did not finish");
    }
    RunResult {
        memory: data,
        cycles: now.raw(),
        wst_peak: wpu.wst_peak(),
        fast_branches: wpu.stats.uniform_fast_branches.get(),
        trace: wpu
            .tracer()
            .expect("tracing enabled")
            .events()
            .copied()
            .collect(),
    }
}

#[test]
fn uniform_hints_are_invisible() {
    let mut total_fast = 0u64;
    for seed in 0..16u64 {
        let mut rng = Rng64::new(0x0F45_7B1A ^ seed);
        let mut budget = 24usize;
        let top_len = 1 + rng.range_usize(7);
        let stmts = gen_block(&mut rng, 3, top_len, &mut budget);
        let program = Arc::new(compile(&stmts));
        let mem0 = VecMemory::new(MEM_WORDS as u64 * 8);
        for policy in all_policies() {
            let on = run_hints(&program, policy, &mem0, true);
            let off = run_hints(&program, policy, &mem0, false);
            let ctx = format!("seed {seed} policy {}", policy.paper_name());
            assert_eq!(on.cycles, off.cycles, "{ctx}: cycles diverged");
            assert_eq!(
                on.memory.words(),
                off.memory.words(),
                "{ctx}: memory diverged ({stmts:?})"
            );
            assert_eq!(on.trace, off.trace, "{ctx}: divergence trace diverged");
            assert!(
                on.wst_peak <= off.wst_peak,
                "{ctx}: hints raised the WST peak ({} > {})",
                on.wst_peak,
                off.wst_peak
            );
            assert_eq!(
                off.fast_branches, 0,
                "{ctx}: fast path taken with hints off"
            );
            total_fast += on.fast_branches;
        }
    }
    // The generator emits uniform loop bounds and uniform conditions often
    // enough that a dead fast path would be a wiring bug, not bad luck.
    assert!(
        total_fast > 1000,
        "only {total_fast} fast-path branches across the battery — hints look dead"
    );
}
