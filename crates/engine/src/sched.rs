//! Reusable event-driven scheduling primitives.
//!
//! Two small structures carry the simulator's "index what's ready, sleep
//! until the next event" architecture:
//!
//! - [`WakeHeap`]: a time-ordered min-heap, FIFO within a cycle. The WPU
//!   keeps its not-yet-ready groups here; each L1 mirrors its outstanding
//!   fill times here; [`EventQueue`](crate::EventQueue) is a thin wrapper
//!   over it.
//! - [`ReadyRing`]: a fixed-capacity bitset with a circular
//!   next-from-cursor scan, giving round-robin selection over the set of
//!   currently-issuable groups in O(words) instead of O(groups) with a
//!   per-element predicate.
//!
//! Both are allocation-quiet in steady state: `WakeHeap` reuses its
//! `BinaryHeap` capacity and `ReadyRing` only grows when the backing slab
//! does.

use crate::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending wakeup: ready time, insertion sequence number, payload.
struct WakeEntry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for WakeEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for WakeEntry<T> {}

impl<T> PartialOrd for WakeEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for WakeEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // cycle, the first-inserted) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(wake cycle, payload)` pairs, FIFO within a cycle.
///
/// # Example
///
/// ```
/// use dws_engine::{Cycle, WakeHeap};
///
/// let mut h = WakeHeap::new();
/// h.push(Cycle(9), 'b');
/// h.push(Cycle(3), 'a');
/// assert_eq!(h.next_at(), Some(Cycle(3)));
/// assert_eq!(h.pop(), Some((Cycle(3), 'a')));
/// assert_eq!(h.pop(), Some((Cycle(9), 'b')));
/// assert_eq!(h.pop(), None);
/// ```
pub struct WakeHeap<T> {
    heap: BinaryHeap<WakeEntry<T>>,
    next_seq: u64,
}

impl<T> Default for WakeHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WakeHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        WakeHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to wake at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(WakeEntry { at, seq, payload });
    }

    /// The earliest entry without removing it.
    pub fn peek(&self) -> Option<(Cycle, &T)> {
        self.heap.peek().map(|e| (e.at, &e.payload))
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes and returns the earliest entry if it is due at or before
    /// `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.heap.peek().map(|e| e.at <= now).unwrap_or(false) {
            self.pop()
        } else {
            None
        }
    }

    /// The wake time of the earliest entry, if any.
    pub fn next_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> std::fmt::Debug for WakeHeap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeHeap")
            .field("pending", &self.heap.len())
            .field("next_at", &self.next_at())
            .finish()
    }
}

/// A bitset over slab indices with a circular next-from-cursor scan.
///
/// The WPU keeps the set of currently-issuable groups here; round-robin
/// selection is [`next_from`](Self::next_from), which visits indices
/// `cursor, cursor+1, ..., len-1, 0, ..., cursor-1` and returns the first
/// member — exactly the order of a modular slab scan, without touching the
/// groups themselves.
///
/// # Example
///
/// ```
/// use dws_engine::ReadyRing;
///
/// let mut r = ReadyRing::new();
/// r.grow_to(8);
/// r.insert(1);
/// r.insert(6);
/// assert_eq!(r.next_from(2), Some(6)); // wraps past 7 back to 1 if needed
/// assert_eq!(r.next_from(7), Some(1));
/// r.remove(6);
/// assert_eq!(r.next_from(2), Some(1));
/// ```
#[derive(Default, Clone)]
pub struct ReadyRing {
    words: Vec<u64>,
    /// Capacity in bits (the backing slab's length).
    len: usize,
}

impl ReadyRing {
    /// Creates an empty ring of capacity 0 (grow with
    /// [`grow_to`](Self::grow_to)).
    pub fn new() -> Self {
        ReadyRing::default()
    }

    /// Ensures the ring covers indices `0..n`. Never shrinks.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.len {
            self.len = n;
            let words = n.div_ceil(64);
            if words > self.words.len() {
                self.words.resize(words, 0);
            }
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Adds index `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the grown capacity.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "ReadyRing index {i} >= capacity {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes index `i` from the set (no-op when absent or out of range).
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Whether index `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes every member, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// The first member at or after `cursor`, wrapping around — the member
    /// a circular scan starting at `cursor % capacity` would find first.
    pub fn next_from(&self, cursor: usize) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let cursor = cursor % self.len;
        self.scan(cursor, self.len).or_else(|| self.scan(0, cursor))
    }

    /// First member in `[from, to)`, by word-level scan.
    fn scan(&self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let first_word = from / 64;
        let last_word = (to - 1) / 64;
        for wi in first_word..=last_word {
            let mut w = self.words[wi];
            if wi == first_word {
                w &= !0u64 << (from % 64);
            }
            if wi == last_word && !to.is_multiple_of(64) {
                w &= (1u64 << (to % 64)) - 1;
            }
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }
}

impl std::fmt::Debug for ReadyRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadyRing")
            .field("capacity", &self.len)
            .field("count", &self.count())
            .finish()
    }
}

/// Result of a component's compute phase.
///
/// `Complete` carries the tick's summary; `NeedsCommit` means the
/// component reached its first shared-system interaction and parked the
/// rest of the tick until [`Component::commit`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase<T> {
    /// The tick finished entirely inside component-local state.
    Complete(T),
    /// The tick is suspended at a buffered shared-system intent; the
    /// caller must invoke `commit` with exclusive access to the system.
    NeedsCommit,
}

/// A two-phase steppable simulation component.
///
/// The deterministic parallel engine splits one logical tick into
///
/// 1. a **compute** phase that touches only the component's own state and
///    may therefore run concurrently with every other component's compute
///    phase, and
/// 2. a **commit** phase with exclusive (`&mut`) access to the shared
///    system `Sys`, replayed serially in fixed component-index order.
///
/// Because a component's compute phase reads nothing another component
/// can write, and commits are ordered exactly as a serial sweep over the
/// components would order them, a compute-in-parallel / commit-in-order
/// schedule is bit-identical to ticking the components one after another.
///
/// `next_tick` exposes the component's cached next event time so an
/// event-driven driver can skip cycles on which no component is due.
pub trait Component<Sys: ?Sized> {
    /// Per-tick summary (e.g. a busy/stall classification).
    type Tick;

    /// The next cycle at which this component must tick, if any.
    fn next_tick(&self) -> Option<Cycle>;

    /// Runs the component-local part of the tick. Returning
    /// [`Phase::NeedsCommit`] parks the tick at its first shared-system
    /// intent.
    fn compute(&mut self, now: Cycle) -> Phase<Self::Tick>;

    /// Applies the parked intent (and the rest of the tick) against the
    /// shared system. Must only be called after `compute` returned
    /// [`Phase::NeedsCommit`].
    fn commit(&mut self, now: Cycle, sys: &mut Sys) -> Self::Tick;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_heap_orders_by_time_then_fifo() {
        let mut h = WakeHeap::new();
        h.push(Cycle(5), "late");
        h.push(Cycle(2), "first");
        h.push(Cycle(2), "second");
        h.push(Cycle(9), "latest");
        assert_eq!(h.len(), 4);
        assert_eq!(h.peek(), Some((Cycle(2), &"first")));
        assert_eq!(h.pop(), Some((Cycle(2), "first")));
        assert_eq!(h.pop(), Some((Cycle(2), "second")));
        assert_eq!(h.pop(), Some((Cycle(5), "late")));
        assert_eq!(h.pop(), Some((Cycle(9), "latest")));
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn wake_heap_pop_ready_respects_now() {
        let mut h = WakeHeap::new();
        h.push(Cycle(10), 'a');
        h.push(Cycle(20), 'b');
        assert_eq!(h.pop_ready(Cycle(9)), None);
        assert_eq!(h.pop_ready(Cycle(10)), Some((Cycle(10), 'a')));
        assert_eq!(h.pop_ready(Cycle(15)), None);
        assert_eq!(h.next_at(), Some(Cycle(20)));
        assert_eq!(h.pop_ready(Cycle(100)), Some((Cycle(20), 'b')));
    }

    #[test]
    fn wake_heap_fifo_survives_interleaved_push_pop() {
        let mut h = WakeHeap::new();
        h.push(Cycle(1), 0);
        assert_eq!(h.pop(), Some((Cycle(1), 0)));
        h.push(Cycle(3), 1);
        h.push(Cycle(3), 2);
        h.push(Cycle(2), 3);
        let order: Vec<i32> = std::iter::from_fn(|| h.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn wake_heap_clear_keeps_working() {
        let mut h = WakeHeap::new();
        for i in 0..100 {
            h.push(Cycle(i), i);
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.next_at(), None);
        h.push(Cycle(7), 42);
        assert_eq!(h.pop(), Some((Cycle(7), 42)));
    }

    #[test]
    fn ready_ring_empty_and_zero_capacity() {
        let r = ReadyRing::new();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.next_from(0), None);
        assert_eq!(r.next_from(5), None);
        assert!(!r.contains(0));
    }

    #[test]
    fn ready_ring_insert_remove_contains() {
        let mut r = ReadyRing::new();
        r.grow_to(130);
        for i in [0, 63, 64, 65, 127, 128, 129] {
            r.insert(i);
            assert!(r.contains(i));
        }
        assert_eq!(r.count(), 7);
        r.remove(64);
        assert!(!r.contains(64));
        assert_eq!(r.count(), 6);
        r.remove(500); // out of range: no-op
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 130, "clear keeps capacity");
    }

    #[test]
    fn ready_ring_next_from_matches_modular_scan() {
        // Differential check against the reference modular scan the WPU
        // scheduler used before the ring existed.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 7, 63, 64, 65, 130] {
            let mut r = ReadyRing::new();
            r.grow_to(n);
            let mut set = vec![false; n];
            for _ in 0..200 {
                let i = rng() as usize % n;
                if rng() % 2 == 0 {
                    r.insert(i);
                    set[i] = true;
                } else {
                    r.remove(i);
                    set[i] = false;
                }
                let cursor = rng() as usize % (n + 1);
                let reference = (0..n).map(|off| (cursor + off) % n).find(|&i| set[i % n]);
                assert_eq!(r.next_from(cursor), reference, "n={n} cursor={cursor}");
            }
        }
    }

    #[test]
    fn ready_ring_grow_preserves_members() {
        let mut r = ReadyRing::new();
        r.grow_to(4);
        r.insert(3);
        r.grow_to(100);
        assert!(r.contains(3));
        r.insert(99);
        assert_eq!(r.next_from(4), Some(99));
        assert_eq!(r.next_from(0), Some(3));
    }

    /// A counter component: every third tick it must append its id to a
    /// shared log (the "system"), otherwise the tick is purely local. A
    /// compute-all / commit-in-order schedule must produce the same log
    /// as ticking components one by one.
    struct Logger {
        id: usize,
        ticks: u64,
    }

    impl Component<Vec<usize>> for Logger {
        type Tick = bool;

        fn next_tick(&self) -> Option<Cycle> {
            Some(Cycle(self.ticks))
        }

        fn compute(&mut self, _now: Cycle) -> Phase<bool> {
            self.ticks += 1;
            if self.ticks.is_multiple_of(3) {
                Phase::NeedsCommit
            } else {
                Phase::Complete(false)
            }
        }

        fn commit(&mut self, _now: Cycle, sys: &mut Vec<usize>) -> bool {
            sys.push(self.id);
            true
        }
    }

    #[test]
    fn component_commit_order_matches_serial_sweep() {
        let run = |interleaved: bool| {
            let mut cs: Vec<Logger> = (0..4).map(|id| Logger { id, ticks: 0 }).collect();
            let mut log = Vec::new();
            for cycle in 0..9 {
                let now = Cycle(cycle);
                if interleaved {
                    // Compute everywhere first (models the parallel phase),
                    // then commit in index order.
                    let pending: Vec<bool> = cs
                        .iter_mut()
                        .map(|c| c.compute(now) == Phase::NeedsCommit)
                        .collect();
                    for (c, p) in cs.iter_mut().zip(pending) {
                        if p {
                            c.commit(now, &mut log);
                        }
                    }
                } else {
                    for c in &mut cs {
                        if c.compute(now) == Phase::NeedsCommit {
                            c.commit(now, &mut log);
                        }
                    }
                }
            }
            log
        };
        let serial = run(false);
        assert_eq!(serial, run(true));
        assert_eq!(serial.len(), 12, "3 commit rounds x 4 components");
    }
}
