//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std::collections::HashMap` defaults to SipHash with per-process random
//! keys — HashDoS resistance the simulator does not need (keys are line
//! addresses and request ids it generated itself), at a real cost on paths
//! that hash once per cache miss. [`FastHasher`] is a Fibonacci
//! multiply-and-rotate mixer (the FxHash construction): a couple of cycles
//! per word, and fixed-seeded so map *contents* are reproducible across
//! runs. Iteration order is still arbitrary — callers must never observe
//! it, same as with the default hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-and-rotate word mixer; see module docs.
#[derive(Default)]
pub struct FastHasher(u64);

/// 2^64 / phi, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(SEED).rotate_left(26);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
}

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_behaves_like_a_map() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 0x1_0001, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 0x1_0001)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.remove(&0), Some(0));
        assert_eq!(m.get(&0), None);
    }

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FastHasher::default();
        a.write(b"hello world"); // 11 bytes: one full chunk + remainder
        let mut b = FastHasher::default();
        b.write(b"hello worlc");
        assert_ne!(a.finish(), b.finish());
    }
}
