//! Deterministic fault injection for chaos-hardened simulation runs.
//!
//! A [`FaultPlan`] describes *timing* perturbations — extra fill latency,
//! delayed link epochs, transient MSHR back-pressure, wake jitter, and
//! scheduler-heap churn — that components apply at fixed injection points.
//! Faults never touch architectural state, only *when* things happen, so a
//! run under any plan must still produce verified kernel output; what a
//! plan stresses is every cached-state fast path (ready ring, wake heap,
//! next-wake bounds, fill mirrors, reject memos) under timings the nominal
//! simulator never generates.
//!
//! Determinism contract:
//!
//! * Draws come from a [`SplitMix64`](crate::rng::Rng64) stream seeded from
//!   `plan.seed ^ component salt`, so a `(plan, machine)` pair replays
//!   bit-identically — a chaos failure is always reproducible.
//! * A knob that is *off* (zero magnitude or probability) never advances
//!   the stream, so the zero-fault plan performs **zero** draws and a
//!   machine running under [`FaultPlan::none`] is bit-identical to one
//!   with no injector at all.
//!
//! # Example
//!
//! ```
//! use dws_engine::fault::FaultPlan;
//!
//! assert!(FaultPlan::none().injector(7).is_none());
//! let mut inj = FaultPlan::mem_jitter(42).injector(7).unwrap();
//! let j = inj.fill_jitter();
//! assert!(j <= FaultPlan::mem_jitter(42).fill_jitter);
//! // Same plan + salt => same stream.
//! let mut again = FaultPlan::mem_jitter(42).injector(7).unwrap();
//! assert_eq!(again.fill_jitter(), j);
//! ```

use crate::rng::Rng64;

/// A seeded, reproducible description of which timing faults to inject.
///
/// Each fault class is a `(magnitude, probability)` pair; magnitude `0` or
/// probability `0.0` disables the class without consuming randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injection streams (mixed with a per-component salt).
    pub seed: u64,
    /// Max extra cycles added to an L1 fill completion time.
    pub fill_jitter: u64,
    /// Probability a fill draws jitter.
    pub fill_jitter_prob: f64,
    /// Max extra cycles added to a request's crossbar/bus departure,
    /// shifting which link epoch carries it (and thus reordering traffic
    /// relative to the nominal schedule).
    pub link_delay: u64,
    /// Probability a link transfer draws a delay.
    pub link_delay_prob: f64,
    /// Max MSHR entries transiently withheld from an allocation
    /// feasibility check, forcing spurious back-pressure rejections.
    pub mshr_withhold: u32,
    /// Probability an MSHR feasibility check draws back-pressure.
    pub mshr_withhold_prob: f64,
    /// Max extra cycles added to a group's wake time when a memory
    /// completion readies it.
    pub wake_jitter: u64,
    /// Probability a wakeup draws jitter.
    pub wake_jitter_prob: f64,
    /// Probability that a stalled scheduler tick re-enqueues its pending
    /// wake entries under fresh stamps, leaving stale entries behind for
    /// the lazy-invalidation paths to drop.
    pub sched_churn_prob: f64,
}

impl FaultPlan {
    /// The zero-fault plan: no knob active, no randomness consumed.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        fill_jitter: 0,
        fill_jitter_prob: 0.0,
        link_delay: 0,
        link_delay_prob: 0.0,
        mshr_withhold: 0,
        mshr_withhold_prob: 0.0,
        wake_jitter: 0,
        wake_jitter_prob: 0.0,
        sched_churn_prob: 0.0,
    };

    /// The zero-fault plan (see [`FaultPlan::NONE`]).
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::NONE
    }

    /// Whether every fault class is disabled.
    #[must_use]
    pub fn is_nop(&self) -> bool {
        !(self.fill_active()
            || self.link_active()
            || self.mshr_active()
            || self.wake_active()
            || self.churn_active())
    }

    /// Preset: moderate fill-latency jitter only.
    #[must_use]
    pub fn mem_jitter(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fill_jitter: 40,
            fill_jitter_prob: 0.25,
            ..FaultPlan::NONE
        }
    }

    /// Preset: delayed/reordered link epochs only.
    #[must_use]
    pub fn link_chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            link_delay: 24,
            link_delay_prob: 0.3,
            ..FaultPlan::NONE
        }
    }

    /// Preset: transient MSHR back-pressure only.
    #[must_use]
    pub fn mshr_squeeze(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            mshr_withhold: 31,
            mshr_withhold_prob: 0.5,
            ..FaultPlan::NONE
        }
    }

    /// Preset: scheduler-side faults only (wake jitter + heap churn).
    #[must_use]
    pub fn sched_chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            wake_jitter: 16,
            wake_jitter_prob: 0.3,
            sched_churn_prob: 0.2,
            ..FaultPlan::NONE
        }
    }

    /// Preset: every fault class at once.
    #[must_use]
    pub fn full_chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fill_jitter: 40,
            fill_jitter_prob: 0.2,
            link_delay: 24,
            link_delay_prob: 0.2,
            mshr_withhold: 31,
            mshr_withhold_prob: 0.3,
            wake_jitter: 16,
            wake_jitter_prob: 0.2,
            sched_churn_prob: 0.1,
        }
    }

    /// Builds the per-component injector, or `None` for a nop plan (so the
    /// component keeps an `Option` it can skip with one branch).
    ///
    /// `salt` distinguishes streams between components (e.g. the memory
    /// system vs each WPU) so they do not replay each other's draws.
    #[must_use]
    pub fn injector(&self, salt: u64) -> Option<FaultInjector> {
        if self.is_nop() {
            return None;
        }
        Some(FaultInjector {
            plan: *self,
            rng: Rng64::new(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        })
    }

    fn fill_active(&self) -> bool {
        self.fill_jitter > 0 && self.fill_jitter_prob > 0.0
    }
    fn link_active(&self) -> bool {
        self.link_delay > 0 && self.link_delay_prob > 0.0
    }
    fn mshr_active(&self) -> bool {
        self.mshr_withhold > 0 && self.mshr_withhold_prob > 0.0
    }
    fn wake_active(&self) -> bool {
        self.wake_jitter > 0 && self.wake_jitter_prob > 0.0
    }
    fn churn_active(&self) -> bool {
        self.sched_churn_prob > 0.0
    }
}

/// The stateful side of a [`FaultPlan`]: one deterministic draw stream per
/// component. Every draw method short-circuits — without touching the
/// stream — when its fault class is disabled, so partial plans stay
/// reproducible no matter which injection points fire.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng64,
}

impl FaultInjector {
    /// Extra cycles to add to an L1 fill completion (0 = no fault).
    #[inline]
    pub fn fill_jitter(&mut self) -> u64 {
        if !self.plan.fill_active() {
            return 0;
        }
        self.magnitude(self.plan.fill_jitter_prob, self.plan.fill_jitter)
    }

    /// Extra cycles to add to a link departure (0 = no fault).
    #[inline]
    pub fn link_delay(&mut self) -> u64 {
        if !self.plan.link_active() {
            return 0;
        }
        self.magnitude(self.plan.link_delay_prob, self.plan.link_delay)
    }

    /// MSHR entries to withhold from one feasibility check (0 = no fault).
    #[inline]
    pub fn mshr_withhold(&mut self) -> usize {
        if !self.plan.mshr_active() {
            return 0;
        }
        self.magnitude(
            self.plan.mshr_withhold_prob,
            u64::from(self.plan.mshr_withhold),
        ) as usize
    }

    /// Extra cycles to delay one group wakeup (0 = no fault).
    #[inline]
    pub fn wake_jitter(&mut self) -> u64 {
        if !self.plan.wake_active() {
            return 0;
        }
        self.magnitude(self.plan.wake_jitter_prob, self.plan.wake_jitter)
    }

    /// Whether this stalled scheduler tick should churn the wake heap.
    #[inline]
    pub fn sched_churn(&mut self) -> bool {
        self.plan.churn_active() && self.rng.chance(self.plan.sched_churn_prob)
    }

    /// One `chance(prob)` draw, then a uniform magnitude in `[1, max]`.
    fn magnitude(&mut self, prob: f64, max: u64) -> u64 {
        if !self.rng.chance(prob) {
            return 0;
        }
        1 + self.rng.range_usize(max as usize) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_plan_has_no_injector() {
        assert!(FaultPlan::none().is_nop());
        assert!(FaultPlan::NONE.injector(3).is_none());
        // A seed alone does not activate anything.
        let seeded = FaultPlan {
            seed: 99,
            ..FaultPlan::NONE
        };
        assert!(seeded.is_nop());
        assert!(seeded.injector(0).is_none());
    }

    #[test]
    fn presets_are_active_and_reproducible() {
        for plan in [
            FaultPlan::mem_jitter(7),
            FaultPlan::link_chaos(7),
            FaultPlan::mshr_squeeze(7),
            FaultPlan::sched_chaos(7),
            FaultPlan::full_chaos(7),
        ] {
            assert!(!plan.is_nop());
            let mut a = plan.injector(1).unwrap();
            let mut b = plan.injector(1).unwrap();
            for _ in 0..100 {
                assert_eq!(a.fill_jitter(), b.fill_jitter());
                assert_eq!(a.link_delay(), b.link_delay());
                assert_eq!(a.mshr_withhold(), b.mshr_withhold());
                assert_eq!(a.wake_jitter(), b.wake_jitter());
                assert_eq!(a.sched_churn(), b.sched_churn());
            }
        }
    }

    #[test]
    fn disabled_knob_never_advances_the_stream() {
        // Only wake jitter is active; draining the other draw methods must
        // not disturb the wake-jitter sequence.
        let plan = FaultPlan {
            seed: 5,
            wake_jitter: 8,
            wake_jitter_prob: 1.0,
            ..FaultPlan::NONE
        };
        let mut clean = plan.injector(0).unwrap();
        let expect: Vec<u64> = (0..32).map(|_| clean.wake_jitter()).collect();
        let mut noisy = plan.injector(0).unwrap();
        let got: Vec<u64> = (0..32)
            .map(|_| {
                assert_eq!(noisy.fill_jitter(), 0);
                assert_eq!(noisy.link_delay(), 0);
                assert_eq!(noisy.mshr_withhold(), 0);
                assert!(!noisy.sched_churn());
                noisy.wake_jitter()
            })
            .collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn magnitudes_stay_in_bounds() {
        let plan = FaultPlan::full_chaos(11);
        let mut inj = plan.injector(2).unwrap();
        let mut any_nonzero = false;
        for _ in 0..1000 {
            let f = inj.fill_jitter();
            assert!(f <= plan.fill_jitter);
            let l = inj.link_delay();
            assert!(l <= plan.link_delay);
            let m = inj.mshr_withhold();
            assert!(m <= plan.mshr_withhold as usize);
            let w = inj.wake_jitter();
            assert!(w <= plan.wake_jitter);
            any_nonzero |= f + l + w + m as u64 > 0;
        }
        assert!(any_nonzero, "an active plan must actually fire");
    }

    #[test]
    fn salts_separate_streams() {
        let plan = FaultPlan::mem_jitter(1);
        let a: Vec<u64> = {
            let mut i = plan.injector(0).unwrap();
            (0..64).map(|_| i.fill_jitter()).collect()
        };
        let b: Vec<u64> = {
            let mut i = plan.injector(1).unwrap();
            (0..64).map(|_| i.fill_jitter()).collect()
        };
        assert_ne!(a, b);
    }
}
