//! `DWS_SANITIZE` — opt-in release-mode runtime sanitizer flag.
//!
//! Debug builds cross-check every event-driven/predecoded fast path
//! against the exhaustive oracle it replaced (scheduler ring vs slab scan,
//! µop kernels vs per-lane interpreter, fill mirror vs event queue). Those
//! checks compile out of release builds — exactly the builds chaos sweeps
//! run at. Setting `DWS_SANITIZE=1` (or `true`) re-enables them at runtime
//! so a release-mode fault-injection run still validates the fast paths it
//! stresses.
//!
//! Components read the flag once at construction (via [`enabled`], which
//! caches the environment lookup), so toggling the variable mid-process
//! affects only machines built afterwards.

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state cache: 0 = unresolved, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the runtime sanitizer is enabled (`DWS_SANITIZE=1`/`true`).
///
/// The first call reads the environment; later calls (and races) hit the
/// cached answer.
#[must_use]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = std::env::var("DWS_SANITIZE")
                .map(|v| {
                    let v = v.trim();
                    v == "1" || v.eq_ignore_ascii_case("true")
                })
                .unwrap_or(false);
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the sanitizer on or off for this process, overriding the
/// environment (test hook; affects only components constructed after the
/// call).
pub fn force(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_overrides_and_sticks() {
        force(true);
        assert!(enabled());
        assert!(enabled(), "cached answer is stable");
        force(false);
        assert!(!enabled());
    }
}
