//! Cycle-level simulation engine primitives shared by the DWS simulator.
//!
//! The paper evaluates dynamic warp subdivision on MV5, a cycle-accurate,
//! event-driven simulator derived from M5. This crate provides the equivalent
//! foundation for the Rust reproduction:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp,
//! * [`EventQueue`] — a deterministic future-event list used to schedule
//!   memory-request completions and other timed callbacks,
//! * [`sched`] — the event-driven scheduling primitives ([`WakeHeap`],
//!   [`ReadyRing`]) shared by the WPU scheduler and the memory system,
//! * [`stats`] — counter/histogram infrastructure used by every component,
//! * [`rng`] — a vendored deterministic PRNG for benchmark input generation,
//! * [`fault`] — seeded timing-fault injection for chaos runs,
//! * [`sanitize`] — the `DWS_SANITIZE` opt-in release-mode oracle checks.
//!
//! # Example
//!
//! ```
//! use dws_engine::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle(10), "late");
//! q.push(Cycle(5), "early");
//! assert_eq!(q.pop_ready(Cycle(5)), Some((Cycle(5), "early")));
//! assert_eq!(q.pop_ready(Cycle(5)), None);
//! assert_eq!(q.pop_ready(Cycle(10)), Some((Cycle(10), "late")));
//! ```

pub mod event;
pub mod fault;
pub mod hash;
pub mod rng;
pub mod sanitize;
pub mod sched;
pub mod stats;

pub use event::EventQueue;
pub use fault::{FaultInjector, FaultPlan};
pub use hash::{FastHashMap, FastHashSet};
pub use sched::{Component, Phase, ReadyRing, WakeHeap};

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation timestamp measured in WPU clock cycles.
///
/// All components in the reproduction run off a single 1 GHz clock domain,
/// matching the paper's Table 3 (crossbar and memory-bus latencies are
/// expressed in WPU cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero timestamp, i.e. the start of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; useful for latency math near time zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.max(rhs.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(10);
        assert_eq!(c + 5, Cycle(15));
        assert_eq!(Cycle(20) - Cycle(5), 15);
        assert_eq!(Cycle(3).saturating_sub(Cycle(7)), Cycle::ZERO);
        assert_eq!(Cycle(3).max(Cycle(7)), Cycle(7));
        let mut c = Cycle(1);
        c += 2;
        assert_eq!(c, Cycle(3));
    }

    #[test]
    fn cycle_display_and_from() {
        assert_eq!(Cycle::from(42).to_string(), "42");
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    fn cycle_ordering() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(9).raw(), 9);
    }
}
