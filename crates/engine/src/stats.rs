//! Statistics primitives: scalar counters, distributions, and ratio helpers.
//!
//! Every simulator component accumulates its measurements into these types;
//! the `dws-sim` crate aggregates them into per-run `Metrics`. The paper
//! reports harmonic means across benchmarks, so [`harmonic_mean`] lives here
//! as the shared implementation.

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// An online accumulator for a stream of sample values (count/sum/min/max).
///
/// Used e.g. for "instructions between divergent misses" (Table 1) and MSHR
/// occupancy distributions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Distribution {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Distribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Distribution {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &Distribution) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Harmonic mean of a slice of positive values.
///
/// Returns `None` for an empty slice or when any value is non-positive
/// (the harmonic mean is undefined there). All per-benchmark means reported
/// by the paper — and therefore by the bench harness — are harmonic means.
///
/// # Example
///
/// ```
/// let hm = dws_engine::stats::harmonic_mean(&[1.0, 4.0, 4.0]).unwrap();
/// assert!((hm - 2.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let denom: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / denom)
}

/// A utilization ratio accumulated as (used, total) pairs.
///
/// Example: average SIMD width per issued instruction is accumulated as
/// (active lanes, instructions) — `ratio()` then yields the mean width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Creates a zeroed ratio.
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Adds `num` to the numerator and `den` to the denominator.
    pub fn add(&mut self, num: u64, den: u64) {
        self.num += num;
        self.den += den;
    }

    /// Numerator so far.
    pub fn numerator(&self) -> u64 {
        self.num
    }

    /// Denominator so far.
    pub fn denominator(&self) -> u64 {
        self.den
    }

    /// Current value, or `None` if nothing has been recorded.
    pub fn ratio(&self) -> Option<f64> {
        (self.den > 0).then(|| self.num as f64 / self.den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn distribution_tracks_moments() {
        let mut d = Distribution::new();
        assert_eq!(d.mean(), None);
        for v in [2.0, 4.0, 6.0] {
            d.record(v);
        }
        assert_eq!(d.count(), 3);
        assert_eq!(d.mean(), Some(4.0));
        assert_eq!(d.min(), Some(2.0));
        assert_eq!(d.max(), Some(6.0));
        assert_eq!(d.sum(), 12.0);
    }

    #[test]
    fn distribution_merge() {
        let mut a = Distribution::new();
        a.record(1.0);
        let mut b = Distribution::new();
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(9.0));
        // Merging an empty distribution is a no-op.
        let empty = Distribution::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
        assert_eq!(harmonic_mean(&[-1.0]), None);
        let hm = harmonic_mean(&[2.0, 2.0]).unwrap();
        assert!((hm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::new();
        assert_eq!(r.ratio(), None);
        r.add(3, 4);
        r.add(1, 4);
        assert_eq!(r.ratio(), Some(0.5));
        assert_eq!(r.numerator(), 4);
        assert_eq!(r.denominator(), 8);
    }
}
