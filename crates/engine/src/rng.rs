//! Vendored deterministic PRNG for input generation.
//!
//! The benchmark input generators need a small, seedable, reproducible
//! random source — nothing cryptographic. Depending on an external crate
//! for this made the whole workspace unbuildable without registry access,
//! so the generator is vendored here: SplitMix64 (Steele, Lea & Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014), the
//! same mixer `rand` uses to seed its small RNGs. Identical seeds produce
//! identical streams on every platform and in every build profile, which
//! is what keeps benchmark inputs — and therefore simulated cycle counts —
//! byte-stable across hosts.

/// A seedable SplitMix64 generator.
///
/// ```
/// use dws_engine::rng::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_f64(-1.0, 1.0);
/// assert!((-1.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: an additive Weyl sequence through a bijective mixer.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.range_u64(span) as i64)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.range_u64(n as u64) as usize
    }

    /// Uniform `u64` in `[0, n)` via Lemire's multiply-shift reduction
    /// (the bias of a plain modulo would be invisible at these range
    /// sizes, but debiasing is cheap enough to just do it right).
    #[inline]
    fn range_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// True with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix64_vector() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it/splitmix64.c).
        let mut r = Rng64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::new(99);
        let mut b = Rng64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(100);
        assert_ne!(Rng64::new(99).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let f = r.range_f64(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = r.range_i64(-10, 10);
            assert!((-10..10).contains(&i));
            let u = r.range_usize(3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_i64_covers_endpoints() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[(r.range_i64(-2, 2) + 2) as usize] = true;
        }
        assert_eq!(seen, [true, true, true, true]);
    }

    #[test]
    fn f64_distribution_is_sane() {
        let mut r = Rng64::new(11);
        let n = 100_000;
        let mean = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
