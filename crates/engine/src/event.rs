//! A deterministic future-event list.
//!
//! The memory hierarchy schedules request completions at absolute cycles;
//! the top-level simulator drains events that have become ready at the start
//! of every cycle. Events scheduled for the same cycle are delivered in
//! insertion order (FIFO), which keeps whole-system simulation deterministic
//! — a property the test suite relies on heavily.
//!
//! The ordering machinery lives in [`WakeHeap`](crate::sched::WakeHeap);
//! `EventQueue` is the drain-oriented view of it.

use crate::sched::WakeHeap;
use crate::Cycle;

/// A future-event list ordered by ready cycle, FIFO within a cycle.
///
/// # Example
///
/// ```
/// use dws_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'b');
/// q.push(Cycle(3), 'c');
/// q.push(Cycle(1), 'a');
/// let drained: Vec<char> = q.drain_ready(Cycle(3)).map(|(_, p)| p).collect();
/// assert_eq!(drained, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<T> {
    heap: WakeHeap<T>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: WakeHeap::new(),
        }
    }

    /// Schedules `payload` to become ready at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        self.heap.push(at, payload);
    }

    /// Pops the earliest event if it is ready at or before `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        self.heap.pop_ready(now)
    }

    /// Drains every event ready at or before `now`, in deterministic order.
    pub fn drain_ready(&mut self, now: Cycle) -> DrainReady<'_, T> {
        DrainReady { queue: self, now }
    }

    /// The ready time of the earliest pending event, if any.
    ///
    /// The top-level run loop uses this to skip ahead over cycles in which
    /// every warp is stalled waiting for memory.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.heap.next_at()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_ready_at", &self.next_ready_at())
            .finish()
    }
}

/// Iterator returned by [`EventQueue::drain_ready`].
pub struct DrainReady<'a, T> {
    queue: &'a mut EventQueue<T>,
    now: Cycle,
}

impl<T> Iterator for DrainReady<'_, T> {
    type Item = (Cycle, T);
    fn next(&mut self) -> Option<Self::Item> {
        self.queue.pop_ready(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop_ready(Cycle(100)), Some((Cycle(10), 1)));
        assert_eq!(q.pop_ready(Cycle(100)), Some((Cycle(20), 2)));
        assert_eq!(q.pop_ready(Cycle(100)), Some((Cycle(30), 3)));
        assert_eq!(q.pop_ready(Cycle(100)), None);
    }

    #[test]
    fn fifo_within_a_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        let out: Vec<i32> = q.drain_ready(Cycle(7)).map(|(_, p)| p).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn not_ready_is_not_popped() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), ());
        assert_eq!(q.pop_ready(Cycle(4)), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.next_ready_at(), Some(Cycle(5)));
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        let mut q = EventQueue::new();
        q.push(Cycle(2), "a");
        assert_eq!(q.pop_ready(Cycle(2)), Some((Cycle(2), "a")));
        q.push(Cycle(2), "b");
        q.push(Cycle(1), "c");
        assert_eq!(q.pop_ready(Cycle(2)), Some((Cycle(1), "c")));
        assert_eq!(q.pop_ready(Cycle(2)), Some((Cycle(2), "b")));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
