//! Randomized tests: the event queue delivers exactly the pushed events, in
//! time order, FIFO within a cycle. Driven by the vendored deterministic
//! PRNG over many seeds, so failures reproduce exactly.

use dws_engine::rng::Rng64;
use dws_engine::{Cycle, EventQueue};

#[test]
fn delivers_all_events_in_stable_time_order() {
    for seed in 0..64u64 {
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.range_usize(199);
        let times: Vec<u64> = (0..n).map(|_| rng.range_i64(0, 50) as u64).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), i);
        }
        let drained: Vec<(Cycle, usize)> = q.drain_ready(Cycle(1000)).collect();
        assert_eq!(drained.len(), times.len());
        // Expected: stable sort by time of (time, index).
        let mut expect: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, _)| t);
        for ((at, payload), (t, i)) in drained.iter().zip(expect) {
            assert_eq!(at.raw(), t, "seed {seed}");
            assert_eq!(*payload, i, "seed {seed}");
        }
    }
}

#[test]
fn pop_ready_never_returns_future_events() {
    for seed in 0..64u64 {
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.range_usize(99);
        let times: Vec<u64> = (0..n).map(|_| rng.range_i64(0, 100) as u64).collect();
        let horizon = rng.range_i64(0, 100) as u64;
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(Cycle(t), t);
        }
        let ready: Vec<u64> = q.drain_ready(Cycle(horizon)).map(|(_, p)| p).collect();
        assert!(ready.iter().all(|&t| t <= horizon), "seed {seed}");
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        assert_eq!(ready.len(), expected, "seed {seed}");
        assert_eq!(q.len(), times.len() - expected, "seed {seed}");
    }
}
