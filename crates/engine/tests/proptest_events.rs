//! Property tests: the event queue delivers exactly the pushed events, in
//! time order, FIFO within a cycle.

use dws_engine::{Cycle, EventQueue};
use proptest::prelude::*;

proptest! {
    #[test]
    fn delivers_all_events_in_stable_time_order(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), i);
        }
        let drained: Vec<(Cycle, usize)> = q.drain_ready(Cycle(1000)).collect();
        prop_assert_eq!(drained.len(), times.len());
        // Expected: stable sort by time of (time, index).
        let mut expect: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, _)| t);
        for ((at, payload), (t, i)) in drained.iter().zip(expect) {
            prop_assert_eq!(at.raw(), t);
            prop_assert_eq!(*payload, i);
        }
    }

    #[test]
    fn pop_ready_never_returns_future_events(
        times in prop::collection::vec(0u64..100, 1..100),
        horizon in 0u64..100
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(Cycle(t), t);
        }
        let ready: Vec<u64> = q.drain_ready(Cycle(horizon)).map(|(_, p)| p).collect();
        prop_assert!(ready.iter().all(|&t| t <= horizon));
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(ready.len(), expected);
        prop_assert_eq!(q.len(), times.len() - expected);
    }
}
