//! A set-associative tag array with MESI line states and true-LRU
//! replacement, shared by the L1 and L2 models.

use crate::config::CacheConfig;
use dws_engine::stats::Counter;

/// MESI coherence state of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MesiState {
    /// Dirty, exclusive to one cache.
    Modified,
    /// Clean, exclusive to one cache.
    Exclusive,
    /// Clean, possibly in several caches.
    Shared,
    /// Not present.
    Invalid,
}

impl MesiState {
    /// Whether a store may complete locally in this state.
    pub fn writable(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Whether the line holds valid data.
    pub fn valid(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: MesiState,
    lru: u64,
}

/// Information about a line displaced by [`CacheArray::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address (byte address >> line bits) of the victim.
    pub line_addr: u64,
    /// State the victim held; `Modified` victims need a writeback.
    pub state: MesiState,
}

/// Hit/miss/eviction counters for one cache array.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Probe hits.
    pub hits: Counter,
    /// Probe misses.
    pub misses: Counter,
    /// Lines displaced by fills.
    pub evictions: Counter,
    /// Modified lines displaced (writebacks generated).
    pub dirty_evictions: Counter,
}

/// A set-associative tag array.
///
/// Addresses given to the array are *line addresses* (byte address divided
/// by the line size); the caller performs that conversion once per access.
///
/// # Example
///
/// ```
/// use dws_mem::{CacheArray, CacheConfig, MesiState};
/// let mut c = CacheArray::new(&CacheConfig::paper_l1d(16));
/// assert_eq!(c.probe(7), MesiState::Invalid);
/// c.fill(7, MesiState::Exclusive);
/// assert_eq!(c.probe(7), MesiState::Exclusive);
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    /// All lines, flattened as `[set * assoc + way]` so a set's ways sit in
    /// one cache-resident stretch.
    lines: Vec<Line>,
    assoc: usize,
    set_mask: u64,
    tick: u64,
    /// Aggregate statistics.
    pub stats: CacheStats,
}

impl CacheArray {
    /// Builds an empty array with the given geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let num_sets = config.num_sets();
        CacheArray {
            lines: vec![
                Line {
                    tag: 0,
                    state: MesiState::Invalid,
                    lru: 0,
                };
                config.assoc * num_sets
            ],
            assoc: config.assoc,
            set_mask: num_sets as u64 - 1,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr >> self.set_mask.count_ones()
    }

    #[inline]
    fn set(&self, set: usize) -> &[Line] {
        &self.lines[set * self.assoc..(set + 1) * self.assoc]
    }

    #[inline]
    fn set_mut(&mut self, set: usize) -> &mut [Line] {
        &mut self.lines[set * self.assoc..(set + 1) * self.assoc]
    }

    /// Looks up a line, updating LRU and hit/miss statistics.
    pub fn probe(&mut self, line_addr: u64) -> MesiState {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        self.tick += 1;
        let tick = self.tick;
        let assoc = self.assoc;
        // Field-level slice (not the `set_mut` helper) so `self.stats`
        // stays borrowable inside the loop.
        for line in &mut self.lines[set * assoc..(set + 1) * assoc] {
            if line.state.valid() && line.tag == tag {
                line.lru = tick;
                self.stats.hits.incr();
                return line.state;
            }
        }
        self.stats.misses.incr();
        MesiState::Invalid
    }

    /// Looks up a line without disturbing LRU or statistics.
    pub fn peek(&self, line_addr: u64) -> MesiState {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        for line in self.set(set) {
            if line.state.valid() && line.tag == tag {
                return line.state;
            }
        }
        MesiState::Invalid
    }

    /// [`peek`](Self::peek) that also reports which way holds the line, so
    /// a later [`touch`](Self::touch) can replay the LRU/statistics update
    /// of a [`probe`](Self::probe) without re-scanning the set.
    pub fn lookup(&self, line_addr: u64) -> (MesiState, Option<usize>) {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        for (w, line) in self.set(set).iter().enumerate() {
            if line.state.valid() && line.tag == tag {
                return (line.state, Some(w));
            }
        }
        (MesiState::Invalid, None)
    }

    /// Completes a [`lookup`](Self::lookup) with exactly the side effects a
    /// [`probe`](Self::probe) would have had: the LRU bump and hit count on
    /// a remembered way, the miss count otherwise. Falls back to a full
    /// probe when the remembered way no longer holds the line (it was
    /// invalidated between lookup and touch, e.g. by an L2 back-
    /// invalidation), preserving probe-equivalence in every case.
    pub fn touch(&mut self, line_addr: u64, way: Option<usize>) -> MesiState {
        if let Some(w) = way {
            let set = self.set_of(line_addr);
            let tag = self.tag_of(line_addr);
            self.tick += 1;
            let tick = self.tick;
            let line = &mut self.lines[set * self.assoc + w];
            if line.state.valid() && line.tag == tag {
                line.lru = tick;
                let state = line.state;
                self.stats.hits.incr();
                return state;
            }
            // The speculative tick bump must not stand when the remembered
            // way went stale: undo before the full-probe fallback re-bumps.
            self.tick -= 1;
        }
        self.probe(line_addr)
    }

    /// Installs a line in `state`, evicting the LRU victim if the set is
    /// full. Returns the victim, if a valid line was displaced.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (fills must be preceded by a
    /// miss).
    pub fn fill(&mut self, line_addr: u64, state: MesiState) -> Option<Evicted> {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        self.tick += 1;
        let tick = self.tick;
        let set_bits = self.set_mask.count_ones();
        let assoc = self.assoc;
        let lines = &mut self.lines[set * assoc..(set + 1) * assoc];
        debug_assert!(
            !lines.iter().any(|l| l.state.valid() && l.tag == tag),
            "fill of already-present line {line_addr:#x}"
        );
        // Prefer an invalid way; otherwise evict true-LRU.
        let way = match lines.iter().position(|l| !l.state.valid()) {
            Some(w) => w,
            None => {
                let (w, _) = lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .expect("non-empty set");
                w
            }
        };
        let victim = lines[way];
        lines[way] = Line {
            tag,
            state,
            lru: tick,
        };
        if victim.state.valid() {
            self.stats.evictions.incr();
            if victim.state == MesiState::Modified {
                self.stats.dirty_evictions.incr();
            }
            Some(Evicted {
                line_addr: (victim.tag << set_bits) | set as u64,
                state: victim.state,
            })
        } else {
            None
        }
    }

    /// Changes the state of a present line.
    ///
    /// # Panics
    ///
    /// Panics if the line is absent.
    pub fn set_state(&mut self, line_addr: u64, state: MesiState) {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        for line in self.set_mut(set) {
            if line.state.valid() && line.tag == tag {
                line.state = state;
                return;
            }
        }
        panic!("set_state on absent line {line_addr:#x}");
    }

    /// Invalidates a line if present, returning its previous state.
    pub fn invalidate(&mut self, line_addr: u64) -> MesiState {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        for line in self.set_mut(set) {
            if line.state.valid() && line.tag == tag {
                let prev = line.state;
                line.state = MesiState::Invalid;
                return prev;
            }
        }
        MesiState::Invalid
    }

    /// Number of valid lines currently resident (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.state.valid()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways, 128B lines.
        CacheArray::new(&CacheConfig {
            size_bytes: 4 * 128,
            assoc: 2,
            line_bytes: 128,
            hit_latency: 1,
            mshrs: 4,
            mshr_targets: 4,
            banks: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(0), MesiState::Invalid);
        c.fill(0, MesiState::Shared);
        assert_eq!(c.probe(0), MesiState::Shared);
        assert_eq!(c.stats.hits.get(), 1);
        assert_eq!(c.stats.misses.get(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds even line addresses: 0, 2, 4 map to set 0.
        c.fill(0, MesiState::Exclusive);
        c.fill(2, MesiState::Exclusive);
        c.probe(0); // make line 0 most recent
        let evicted = c.fill(4, MesiState::Exclusive).expect("eviction");
        assert_eq!(evicted.line_addr, 2);
        assert_eq!(c.peek(0), MesiState::Exclusive);
        assert_eq!(c.peek(2), MesiState::Invalid);
        assert_eq!(c.peek(4), MesiState::Exclusive);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(0, MesiState::Modified);
        c.fill(2, MesiState::Shared);
        c.probe(2);
        let ev = c.fill(4, MesiState::Shared).unwrap();
        assert_eq!(ev.line_addr, 0);
        assert_eq!(ev.state, MesiState::Modified);
        assert_eq!(c.stats.dirty_evictions.get(), 1);
        assert_eq!(c.stats.evictions.get(), 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Lines 0,2 -> set 0; lines 1,3 -> set 1.
        c.fill(0, MesiState::Shared);
        c.fill(1, MesiState::Shared);
        c.fill(2, MesiState::Shared);
        c.fill(3, MesiState::Shared);
        assert_eq!(c.resident_lines(), 4);
        assert!(c.fill(5, MesiState::Shared).is_some());
        assert_eq!(c.peek(1), MesiState::Invalid, "victim from set 1");
        assert_eq!(c.peek(0), MesiState::Shared, "set 0 untouched");
    }

    #[test]
    fn state_transitions() {
        let mut c = tiny();
        c.fill(6, MesiState::Exclusive);
        c.set_state(6, MesiState::Modified);
        assert_eq!(c.peek(6), MesiState::Modified);
        assert_eq!(c.invalidate(6), MesiState::Modified);
        assert_eq!(c.peek(6), MesiState::Invalid);
        assert_eq!(c.invalidate(6), MesiState::Invalid, "idempotent");
    }

    #[test]
    #[should_panic(expected = "absent line")]
    fn set_state_absent_panics() {
        let mut c = tiny();
        c.set_state(9, MesiState::Shared);
    }

    #[test]
    fn writable_states() {
        assert!(MesiState::Modified.writable());
        assert!(MesiState::Exclusive.writable());
        assert!(!MesiState::Shared.writable());
        assert!(!MesiState::Invalid.writable());
        assert!(MesiState::Shared.valid());
        assert!(!MesiState::Invalid.valid());
    }

    #[test]
    fn fully_associative_single_set() {
        let cfg = CacheConfig {
            size_bytes: 4 * 128,
            assoc: 4,
            line_bytes: 128,
            hit_latency: 1,
            mshrs: 4,
            mshr_targets: 4,
            banks: 1,
        };
        let mut c = CacheArray::new(&cfg);
        for la in 0..4 {
            c.fill(la, MesiState::Shared);
        }
        assert_eq!(c.resident_lines(), 4);
        // A fifth distinct line evicts the LRU (line 0).
        let ev = c.fill(100, MesiState::Shared).unwrap();
        assert_eq!(ev.line_addr, 0);
    }
}
