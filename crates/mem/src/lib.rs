//! The two-level coherent cache hierarchy from the paper's Table 3.
//!
//! Each WPU owns a private, banked L1 D-cache (and an L1 I-cache); all L1s
//! share an inclusive on-chip L2 through a crossbar; only the L2 talks to
//! DRAM. Coherence is directory-based MESI kept at the L2.
//!
//! The central type is [`MemorySystem`]: WPUs present a warp's worth of
//! lane accesses with [`MemorySystem::warp_access`], get back per-lane
//! hit/miss outcomes (this is where *memory divergence* is detected), and
//! later receive completions from [`MemorySystem::drain_completions`].
//!
//! Timing is resolved analytically at request-processing time: queueing at
//! cache banks, MSHR occupancy, crossbar occupancy + latency, L2 lookup,
//! and DRAM occupancy + latency are all accumulated into a deterministic
//! completion cycle, which is then delivered through an event queue. This
//! reproduces MV5's event-driven memory behavior without simulating
//! individual coherence messages; functional values live in a separate
//! word-granular store owned by the simulator, so timing approximations can
//! never corrupt results.

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod link;
pub mod mshr;

pub use cache::{CacheArray, CacheStats, Evicted, MesiState};
pub use config::{CacheConfig, MemConfig};
pub use hierarchy::{
    AccessKind, AccessOutcome, Completion, LaneAccess, LaneOutcome, MemStats, MemorySystem,
    RequestId,
};
pub use link::{Crossbar, Dram};
pub use mshr::{MshrFile, MshrId};
